//! Critical-path extraction over the span DAG.
//!
//! Answers the question the predecessor paper (arXiv:2009.14467) asks
//! before every optimization: *where does the end-to-end wall clock go?*
//! The pipeline is bulk-synchronous — SUMMA broadcasts fence every block —
//! so the run's critical path follows the rank that finishes last, and
//! end-to-end time decomposes into that rank's main-track phases plus
//! whatever nothing covers (startup, scheduling gaps). Attribution is
//! *innermost-covering*: each instant of the critical rank's timeline is
//! charged to the most deeply nested span covering it, so nested spans
//! never double-count.
//!
//! Two signals the flat component totals cannot express fall out directly:
//!
//! * **Hidden communication** — the intersection of the comm-prefetch
//!   track's `summa.bcast.prefetch` spans with main-track compute, i.e.
//!   broadcast time the overlapped schedule actually hid (PR 6's win,
//!   measured instead of inferred from cwait deltas).
//! * **Comm edges** — `SendTo`/`RecvFrom` event pairs matched by peer
//!   rank, the cross-rank dependency edges of the span DAG.
//!
//! Timelines come from a live [`TraceSession`] or a Chrome trace JSON
//! written by `--trace-out`, so `pastis analyze` works offline.

use std::collections::BTreeMap;

use crate::json::{parse, JsonValue};
use crate::names;
use crate::recorder::Track;
use crate::TraceSession;

/// One closed interval on a rank's timeline (owned form of
/// [`crate::SpanEvent`], buildable from a parsed trace file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSpan {
    /// Span name.
    pub name: String,
    /// Chrome `tid` of the track ([`Track::tid`] mapping).
    pub tid: u64,
    /// Start, µs since the session epoch.
    pub start_us: u64,
    /// End, µs since the session epoch.
    pub end_us: u64,
}

/// One communication event on a rank's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineComm {
    /// Operation label (`broadcast`, `send_to`, ...).
    pub op: String,
    /// Timestamp, µs since the session epoch.
    pub ts_us: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Concrete peer rank for point-to-point operations.
    pub peer: Option<u32>,
    /// Time spent inside the operation, µs.
    pub wait_us: u64,
}

/// Everything one rank recorded, in recording order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTimeline {
    /// The rank id.
    pub rank: usize,
    /// Spans across all tracks.
    pub spans: Vec<TimelineSpan>,
    /// Communication events.
    pub comms: Vec<TimelineComm>,
}

/// Extract per-rank timelines from a live session.
pub fn timelines_from_session(session: &TraceSession) -> Vec<RankTimeline> {
    session
        .recorders()
        .iter()
        .map(|rec| RankTimeline {
            rank: rec.rank(),
            spans: rec
                .snapshot_spans()
                .iter()
                .map(|s| TimelineSpan {
                    name: s.name.to_owned(),
                    tid: s.track.tid(),
                    start_us: s.start_us,
                    end_us: s.end_us(),
                })
                .collect(),
            comms: rec
                .snapshot_comms()
                .iter()
                .map(|c| TimelineComm {
                    op: c.op.label().to_owned(),
                    ts_us: c.ts_us,
                    bytes: c.bytes,
                    peer: c.peer,
                    wait_us: (c.wait_s * 1e6).round().max(0.0) as u64,
                })
                .collect(),
        })
        .collect()
}

/// Extract per-rank timelines from Chrome trace JSON (the `--trace-out`
/// format): `"ph":"X"` complete events become spans, `"ph":"i"` instants
/// in the `comm` category become communication events.
pub fn timelines_from_chrome_json(text: &str) -> Result<Vec<RankTimeline>, String> {
    let v = parse(text)?;
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    let mut by_rank: BTreeMap<usize, RankTimeline> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        let pid = e.get("pid").and_then(JsonValue::as_u64).unwrap_or(0) as usize;
        let name = e.get("name").and_then(JsonValue::as_str).unwrap_or("");
        let tl = by_rank.entry(pid).or_insert_with(|| RankTimeline {
            rank: pid,
            ..RankTimeline::default()
        });
        match ph {
            "X" => {
                let ts = e
                    .get("ts")
                    .and_then(JsonValue::as_u64)
                    .ok_or("X event missing ts")?;
                let dur = e.get("dur").and_then(JsonValue::as_u64).unwrap_or(0);
                tl.spans.push(TimelineSpan {
                    name: name.to_owned(),
                    tid: e.get("tid").and_then(JsonValue::as_u64).unwrap_or(0),
                    start_us: ts,
                    end_us: ts + dur,
                });
            }
            "i" if e.get("cat").and_then(JsonValue::as_str) == Some("comm") => {
                let args = e.get("args").ok_or("comm instant missing args")?;
                tl.comms.push(TimelineComm {
                    op: name.strip_prefix("comm.").unwrap_or(name).to_owned(),
                    ts_us: e.get("ts").and_then(JsonValue::as_u64).unwrap_or(0),
                    bytes: args.get("bytes").and_then(JsonValue::as_u64).unwrap_or(0),
                    peer: args
                        .get("peer")
                        .and_then(JsonValue::as_u64)
                        .map(|p| p as u32),
                    wait_us: args.get("wait_us").and_then(JsonValue::as_u64).unwrap_or(0),
                });
            }
            _ => {}
        }
    }
    Ok(by_rank.into_values().collect())
}

/// Seconds attributed to one phase of the critical rank's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseShare {
    /// Span name the time is attributed to.
    pub name: String,
    /// Microseconds attributed.
    pub us: u64,
}

/// One matched point-to-point transfer: a `SendTo` on `src` paired with
/// the corresponding `RecvFrom` on `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommEdge {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload bytes (sender-side accounting).
    pub bytes: u64,
    /// Send timestamp, µs.
    pub send_ts_us: u64,
    /// Receive completion, µs (receive timestamp + wait).
    pub recv_end_us: u64,
}

/// The extracted critical path and its wall-clock attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Ranks in the trace.
    pub nranks: usize,
    /// The rank that finishes last — the bulk-synchronous critical rank.
    pub critical_rank: usize,
    /// Earliest main-track activity across ranks, µs since epoch.
    pub t0_us: u64,
    /// End-to-end wall clock: latest main-track end minus `t0_us`.
    pub wall_us: u64,
    /// Wall-clock attribution on the critical rank, in pipeline order
    /// ([`names::CRITICAL_PHASES`] first, then other names
    /// alphabetically). Only phases with nonzero time appear.
    pub phases: Vec<PhaseShare>,
    /// Wall-clock no span covers (startup, scheduling gaps).
    pub unattributed_us: u64,
    /// Per-rank broadcast-prefetch time overlapped with main-track
    /// compute — communication the schedule hid, `(rank, µs)`.
    pub hidden_comm_us: Vec<(usize, u64)>,
    /// Matched point-to-point transfers.
    pub edges: Vec<CommEdge>,
}

impl CriticalPath {
    /// Extract the critical path. Returns `None` when no rank recorded a
    /// main-track span.
    pub fn extract(timelines: &[RankTimeline]) -> Option<CriticalPath> {
        let main = |tl: &RankTimeline| -> Vec<(u64, u64, String)> {
            tl.spans
                .iter()
                .filter(|s| s.tid == Track::Rank.tid())
                .map(|s| (s.start_us, s.end_us, s.name.clone()))
                .collect()
        };

        // Global window and the last-finishing rank.
        let mut t0 = u64::MAX;
        let mut t1 = 0u64;
        let mut critical_rank = None;
        for tl in timelines {
            for s in tl.spans.iter().filter(|s| s.tid == Track::Rank.tid()) {
                t0 = t0.min(s.start_us);
                if s.end_us > t1 || (s.end_us == t1 && critical_rank.is_none()) {
                    t1 = s.end_us;
                    critical_rank = Some(tl.rank);
                }
            }
        }
        let critical_rank = critical_rank?;
        let wall_us = t1 - t0;

        // Innermost-covering attribution over the critical rank's main
        // track: split [t0, t1] at every span boundary and charge each
        // segment to the latest-starting (most nested) covering span.
        let crit = timelines.iter().find(|tl| tl.rank == critical_rank)?;
        let spans = main(crit);
        let mut bounds: Vec<u64> = vec![t0, t1];
        for (s, e, _) in &spans {
            bounds.push((*s).clamp(t0, t1));
            bounds.push((*e).clamp(t0, t1));
        }
        bounds.sort_unstable();
        bounds.dedup();
        let mut attributed: BTreeMap<&str, u64> = BTreeMap::new();
        let mut unattributed_us = 0u64;
        for w in bounds.windows(2) {
            let (seg_start, seg_end) = (w[0], w[1]);
            let len = seg_end - seg_start;
            let covering = spans
                .iter()
                .filter(|(s, e, _)| *s <= seg_start && *e >= seg_end)
                .max_by_key(|(s, e, _)| (*s, std::cmp::Reverse(*e)));
            match covering {
                Some((_, _, name)) => *attributed.entry(name).or_insert(0) += len,
                None => unattributed_us += len,
            }
        }

        // Stable phase order: the pipeline phases first, then the rest.
        let mut phases = Vec::new();
        for p in names::CRITICAL_PHASES {
            if let Some(&us) = attributed.get(*p) {
                phases.push(PhaseShare {
                    name: (*p).to_owned(),
                    us,
                });
            }
        }
        for (name, &us) in &attributed {
            if !names::CRITICAL_PHASES.contains(name) {
                phases.push(PhaseShare {
                    name: (*name).to_owned(),
                    us,
                });
            }
        }

        // Hidden communication: prefetch-track spans intersected with the
        // union of the same rank's main-track spans.
        let mut hidden_comm_us = Vec::new();
        for tl in timelines {
            let compute = interval_union(&main(tl));
            let hidden: u64 = tl
                .spans
                .iter()
                .filter(|s| s.tid == Track::CommPath.tid())
                .map(|s| intersect_len(s.start_us, s.end_us, &compute))
                .sum();
            hidden_comm_us.push((tl.rank, hidden));
        }

        Some(CriticalPath {
            nranks: timelines.len(),
            critical_rank,
            t0_us: t0,
            wall_us,
            phases,
            unattributed_us,
            hidden_comm_us,
            edges: comm_edges(timelines),
        })
    }

    /// Fraction of the end-to-end wall clock attributed to named phases
    /// (1.0 when everything is covered).
    pub fn attributed_fraction(&self) -> f64 {
        if self.wall_us == 0 {
            return 1.0;
        }
        1.0 - self.unattributed_us as f64 / self.wall_us as f64
    }

    /// Hidden (overlapped) broadcast-prefetch µs on the critical rank.
    pub fn hidden_comm_critical_us(&self) -> u64 {
        self.hidden_comm_us
            .iter()
            .find(|(r, _)| *r == self.critical_rank)
            .map_or(0, |(_, us)| *us)
    }

    /// Hidden broadcast-prefetch µs summed over all ranks.
    pub fn hidden_comm_total_us(&self) -> u64 {
        self.hidden_comm_us.iter().map(|(_, us)| *us).sum()
    }
}

/// Merge possibly-overlapping intervals into a disjoint sorted union.
fn interval_union(spans: &[(u64, u64, String)]) -> Vec<(u64, u64)> {
    let mut iv: Vec<(u64, u64)> = spans
        .iter()
        .filter(|(s, e, _)| e > s)
        .map(|(s, e, _)| (*s, *e))
        .collect();
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (s, e) in iv {
        match out.last_mut() {
            Some((_, le)) if s <= *le => *le = (*le).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Length of `[s, e)` ∩ the disjoint sorted `union`.
fn intersect_len(s: u64, e: u64, union: &[(u64, u64)]) -> u64 {
    union
        .iter()
        .map(|(us, ue)| e.min(*ue).saturating_sub(s.max(*us)))
        .sum()
}

/// Pair `send_to` events with their matching `recv_from` events by peer
/// rank: the k-th send from `src` to `dst` matches the k-th receive on
/// `dst` naming peer `src` (the mailbox preserves per-pair FIFO order).
/// Unmatched events (e.g. a crashed peer) are dropped.
pub fn comm_edges(timelines: &[RankTimeline]) -> Vec<CommEdge> {
    let mut recvs: BTreeMap<(usize, usize), Vec<&TimelineComm>> = BTreeMap::new();
    for tl in timelines {
        for c in &tl.comms {
            if c.op == "recv_from" {
                if let Some(peer) = c.peer {
                    recvs.entry((peer as usize, tl.rank)).or_default().push(c);
                }
            }
        }
    }
    let mut cursor: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut edges = Vec::new();
    for tl in timelines {
        for c in &tl.comms {
            if c.op == "send_to" {
                if let Some(peer) = c.peer {
                    let key = (tl.rank, peer as usize);
                    let k = cursor.entry(key).or_insert(0);
                    if let Some(r) = recvs.get(&key).and_then(|v| v.get(*k)) {
                        edges.push(CommEdge {
                            src: tl.rank,
                            dst: peer as usize,
                            bytes: c.bytes,
                            send_ts_us: c.ts_us,
                            recv_end_us: r.ts_us + r.wait_us,
                        });
                    }
                    *k += 1;
                }
            }
        }
    }
    edges.sort_by_key(|e| (e.send_ts_us, e.src, e.dst));
    edges
}

/// Render the critical path as the deterministic text block `pastis
/// analyze` prints.
pub fn render_critical_path(cp: &CriticalPath) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let wall_s = cp.wall_us as f64 * 1e-6;
    let _ = writeln!(
        out,
        "Critical path: rank {} of {} finishes last, wall {:.6} s",
        cp.critical_rank, cp.nranks, wall_s
    );
    let _ = writeln!(out, "{:<24} {:>12} {:>8}", "phase", "seconds", "share");
    let share = |us: u64| {
        if cp.wall_us == 0 {
            0.0
        } else {
            100.0 * us as f64 / cp.wall_us as f64
        }
    };
    for p in &cp.phases {
        let _ = writeln!(
            out,
            "{:<24} {:>12.6} {:>7.2}%",
            p.name,
            p.us as f64 * 1e-6,
            share(p.us)
        );
    }
    let _ = writeln!(
        out,
        "{:<24} {:>12.6} {:>7.2}%",
        "(unattributed)",
        cp.unattributed_us as f64 * 1e-6,
        share(cp.unattributed_us)
    );
    let _ = writeln!(
        out,
        "attributed: {:.2}% of end-to-end wall clock",
        100.0 * cp.attributed_fraction()
    );
    let _ = writeln!(
        out,
        "hidden comm (bcast prefetch overlapped with compute): {:.6} s critical rank, {:.6} s cluster-wide",
        cp.hidden_comm_critical_us() as f64 * 1e-6,
        cp.hidden_comm_total_us() as f64 * 1e-6
    );
    let _ = writeln!(
        out,
        "p2p comm edges: {} transfers, {} bytes",
        cp.edges.len(),
        cp.edges.iter().map(|e| e.bytes).sum::<u64>()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{CommOp, TraceSession};
    use crate::Component;

    /// A deterministic 2-rank virtual-time session: rank 1 finishes last,
    /// with an outer block span containing a nested stage span, and a
    /// prefetch span overlapping compute.
    fn session() -> TraceSession {
        let s = TraceSession::virtual_time();
        let r0 = s.recorder(0);
        r0.record_span_at(
            Component::SparseOther,
            "kmer_matrix",
            Track::Rank,
            0.0,
            1.0,
            &[],
        );
        r0.record_span_at(Component::SpGemm, "summa.block", Track::Rank, 1.0, 2.0, &[]);
        let r1 = s.recorder(1);
        r1.record_span_at(
            Component::SparseOther,
            "kmer_matrix",
            Track::Rank,
            0.0,
            1.5,
            &[],
        );
        r1.record_span_at(Component::SpGemm, "summa.block", Track::Rank, 1.5, 2.0, &[]);
        // Nested (innermost-covering must charge this slice to the inner
        // span, not double-count it).
        r1.record_span_at(Component::Align, "align.batch", Track::Rank, 3.5, 1.0, &[]);
        // Prefetch overlapping [1.5, 3.5] compute for 0.75 s.
        r1.record_span_at(
            Component::CommWait,
            "summa.bcast.prefetch",
            Track::CommPath,
            2.0,
            0.75,
            &[],
        );
        s
    }

    #[test]
    fn attribution_covers_the_wall_clock() {
        let tl = timelines_from_session(&session());
        let cp = CriticalPath::extract(&tl).unwrap();
        assert_eq!(cp.critical_rank, 1);
        assert_eq!(cp.wall_us, 4_500_000);
        assert_eq!(cp.unattributed_us, 0);
        assert!((cp.attributed_fraction() - 1.0).abs() < 1e-12);
        let us: BTreeMap<&str, u64> = cp.phases.iter().map(|p| (p.name.as_str(), p.us)).collect();
        assert_eq!(us["kmer_matrix"], 1_500_000);
        assert_eq!(us["summa.block"], 2_000_000);
        assert_eq!(us["align.batch"], 1_000_000);
        // Pipeline order is preserved in the rendering.
        let names: Vec<&str> = cp.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["kmer_matrix", "summa.block", "align.batch"]);
    }

    #[test]
    fn nested_spans_attribute_to_the_innermost() {
        let s = TraceSession::virtual_time();
        let r = s.recorder(0);
        r.record_span_at(Component::SpGemm, "summa.block", Track::Rank, 0.0, 4.0, &[]);
        r.record_span_at(Component::Align, "align.batch", Track::Rank, 1.0, 2.0, &[]);
        let cp = CriticalPath::extract(&timelines_from_session(&s)).unwrap();
        let us: BTreeMap<&str, u64> = cp.phases.iter().map(|p| (p.name.as_str(), p.us)).collect();
        assert_eq!(us["summa.block"], 2_000_000); // 4 s minus the nested 2 s
        assert_eq!(us["align.batch"], 2_000_000);
        assert_eq!(cp.unattributed_us, 0);
    }

    #[test]
    fn gaps_are_reported_not_hidden() {
        let s = TraceSession::virtual_time();
        let r = s.recorder(0);
        r.record_span_at(Component::Io, "io.read", Track::Rank, 0.0, 1.0, &[]);
        r.record_span_at(Component::Io, "io.write", Track::Rank, 2.0, 1.0, &[]);
        let cp = CriticalPath::extract(&timelines_from_session(&s)).unwrap();
        assert_eq!(cp.wall_us, 3_000_000);
        assert_eq!(cp.unattributed_us, 1_000_000);
        assert!((cp.attributed_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hidden_comm_is_the_prefetch_compute_intersection() {
        let tl = timelines_from_session(&session());
        let cp = CriticalPath::extract(&tl).unwrap();
        assert_eq!(cp.hidden_comm_us, vec![(0, 0), (1, 750_000)]);
        assert_eq!(cp.hidden_comm_critical_us(), 750_000);
        assert_eq!(cp.hidden_comm_total_us(), 750_000);
    }

    #[test]
    fn chrome_round_trip_preserves_the_critical_path() {
        let sess = session();
        let from_live = CriticalPath::extract(&timelines_from_session(&sess)).unwrap();
        let json = crate::chrome_trace_json(&sess);
        let from_file = CriticalPath::extract(&timelines_from_chrome_json(&json).unwrap()).unwrap();
        assert_eq!(from_live, from_file);
    }

    #[test]
    fn p2p_edges_pair_sends_with_receives() {
        let s = TraceSession::new();
        let r0 = s.recorder(0);
        let r1 = s.recorder(1);
        r0.record_comm_p2p(CommOp::SendTo, 100, 1, 0.0);
        r0.record_comm_p2p(CommOp::SendTo, 200, 1, 0.0);
        r1.record_comm_p2p(CommOp::RecvFrom, 0, 0, 0.01);
        r1.record_comm_p2p(CommOp::RecvFrom, 0, 0, 0.02);
        // An unmatched send (peer never received) produces no edge.
        r0.record_comm_p2p(CommOp::SendTo, 300, 3, 0.0);
        let edges = comm_edges(&timelines_from_session(&s));
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].src, 0);
        assert_eq!(edges[0].dst, 1);
        assert_eq!(edges.iter().map(|e| e.bytes).sum::<u64>(), 300);
    }

    #[test]
    fn empty_timeline_yields_none() {
        assert!(CriticalPath::extract(&[]).is_none());
        let s = TraceSession::new();
        s.recorder(0); // registered but recorded nothing
        assert!(CriticalPath::extract(&timelines_from_session(&s)).is_none());
    }

    #[test]
    fn rendering_is_deterministic() {
        let tl = timelines_from_session(&session());
        let cp = CriticalPath::extract(&tl).unwrap();
        let a = render_critical_path(&cp);
        assert_eq!(a, render_critical_path(&cp));
        assert!(a.contains("Critical path: rank 1 of 2"));
        assert!(a.contains("attributed: 100.00%"));
    }
}
