//! The per-rank event recorder and the cross-rank trace session.
//!
//! Design goals, in order:
//!
//! 1. **Observation-only.** A recorder is a sink; nothing in the pipeline
//!    reads it back, so enabling telemetry cannot change any search output.
//! 2. **Cheap enough to leave on.** Spans are recorded at *batch*
//!    granularity (one span per SUMMA block, per alignment batch, per
//!    collective), never per pair or per cell, so the recording cost is a
//!    mutex push amortized over thousands of DP cells. The disabled mode is
//!    a `None` check: no clock read, no allocation, no lock.
//! 3. **Two time planes.** The threaded backend records real monotonic
//!    timestamps against the session epoch; the virtual-time simulator
//!    records *modeled* timestamps through the `*_at` entry points — same
//!    event structures, same exporters.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::component::Component;

/// Communication operation kinds recorded by instrumented communicators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommOp {
    /// One-to-all broadcast (the SUMMA stage propagation).
    Broadcast,
    /// All-gather (k-mer column compaction, graph gathering).
    AllGather,
    /// Rooted gather.
    Gather,
    /// Personalized all-to-all.
    AllToAllV,
    /// All-reduce (stats aggregation).
    AllReduce,
    /// Barrier.
    Barrier,
    /// Non-blocking point-to-point send (sequence exchange).
    SendTo,
    /// Blocking point-to-point receive (the "cwait" side).
    RecvFrom,
}

impl CommOp {
    /// All operation kinds in display order.
    pub const ALL: [CommOp; 8] = [
        CommOp::Broadcast,
        CommOp::AllGather,
        CommOp::Gather,
        CommOp::AllToAllV,
        CommOp::AllReduce,
        CommOp::Barrier,
        CommOp::SendTo,
        CommOp::RecvFrom,
    ];

    /// Stable dense index in the order of [`CommOp::ALL`].
    pub fn index(self) -> usize {
        match self {
            CommOp::Broadcast => 0,
            CommOp::AllGather => 1,
            CommOp::Gather => 2,
            CommOp::AllToAllV => 3,
            CommOp::AllReduce => 4,
            CommOp::Barrier => 5,
            CommOp::SendTo => 6,
            CommOp::RecvFrom => 7,
        }
    }

    /// Short label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            CommOp::Broadcast => "broadcast",
            CommOp::AllGather => "all_gather",
            CommOp::Gather => "gather",
            CommOp::AllToAllV => "all_to_allv",
            CommOp::AllReduce => "all_reduce",
            CommOp::Barrier => "barrier",
            CommOp::SendTo => "send_to",
            CommOp::RecvFrom => "recv_from",
        }
    }
}

/// The display track a span belongs to within its rank's process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// The rank's main timeline (pipeline phases, collectives).
    Rank,
    /// One alignment-pool worker's occupancy sub-track (0 = the calling
    /// thread).
    AlignWorker(u32),
    /// One SpGEMM-pool worker's occupancy sub-track (0 = the calling
    /// thread). Kept off the main track so phase totals (which sum
    /// [`Track::Rank`] spans only) never double-count the pool's
    /// per-chunk spans.
    SpGemmWorker(u32),
    /// The dedicated comm-issuing path of the double-buffered SUMMA: the
    /// `summa.bcast.prefetch` spans posting stage `k+1`'s broadcasts while
    /// stage `k` computes. Off [`Track::Rank`] so the prefetch time is
    /// visible without double-counting inside the enclosing block span.
    CommPath,
    /// One unified-pool worker's occupancy sub-track (slots from
    /// `pastis-pool`, which serves both engines; slots at and above the
    /// pool's thread count are the submitting threads helping out).
    PoolWorker(u32),
}

impl Track {
    /// Chrome `tid` for this track: 0 = main, 1+w = align worker `w`,
    /// 1025+w = SpGEMM worker `w`, 2049 = the SUMMA comm-prefetch path,
    /// 2050+w = unified-pool worker `w` (offsets keep the families in
    /// disjoint tid ranges for any realistic pool size).
    pub fn tid(self) -> u64 {
        match self {
            Track::Rank => 0,
            Track::AlignWorker(w) => 1 + w as u64,
            Track::SpGemmWorker(w) => 1025 + w as u64,
            Track::CommPath => 2049,
            Track::PoolWorker(w) => 2050 + w as u64,
        }
    }

    /// Human-readable display label (also the Chrome `thread_name`).
    pub fn label(self) -> String {
        Track::tid_label(self.tid())
    }

    /// Display label for a Chrome `tid` produced by [`Track::tid`].
    pub fn tid_label(tid: u64) -> String {
        match tid {
            0 => "main".to_string(),
            1..=1024 => format!("align-worker {}", tid - 1),
            1025..=2048 => format!("spgemm-worker {}", tid - 1025),
            2049 => "comm-prefetch".to_string(),
            _ => format!("pool-worker {}", tid - 2050),
        }
    }
}

/// One closed span: a named interval attributed to a [`Component`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Component the interval is attributed to (the trace category).
    pub component: Component,
    /// Span name, e.g. `"summa.block"`.
    pub name: &'static str,
    /// Track within the rank's process.
    pub track: Track,
    /// Start, microseconds since the session epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Structured arguments (counters attached to the span).
    pub args: Vec<(&'static str, u64)>,
}

impl SpanEvent {
    /// End timestamp (µs since epoch).
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}

/// One communication operation: kind, traffic, peers, and wait time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommEvent {
    /// Operation kind.
    pub op: CommOp,
    /// Timestamp (µs since the session epoch) of the call.
    pub ts_us: u64,
    /// Payload bytes this rank moved in the operation (caller-supplied,
    /// mirroring the `CommStats` accounting — and, on the virtual-time
    /// backend, exactly the α–β model's assumed volume).
    pub bytes: u64,
    /// Number of peer ranks involved besides this one.
    pub peers: u32,
    /// For point-to-point operations, the concrete peer rank (the
    /// destination of a send, the source of a receive) — the information
    /// the critical-path extractor needs to pair a `SendTo` with its
    /// matching `RecvFrom` into a cross-rank comm edge. `None` for
    /// collectives, where the whole team participates.
    pub peer: Option<u32>,
    /// Seconds this rank spent inside the operation (wait + transfer).
    pub wait_s: f64,
}

/// How a recorder obtains timestamps.
#[derive(Debug, Clone, Copy)]
enum Epoch {
    /// Real monotonic clock relative to the session's creation instant.
    Real(Instant),
    /// Virtual time: only the `*_at` recording entry points are meaningful;
    /// clock-reading entry points record at the largest timestamp seen.
    Virtual,
}

#[derive(Debug, Default)]
struct Events {
    spans: Vec<SpanEvent>,
    comms: Vec<CommEvent>,
    counters: BTreeMap<&'static str, f64>,
}

#[derive(Debug)]
struct RecorderInner {
    rank: usize,
    epoch: Epoch,
    events: Mutex<Events>,
}

/// A per-rank telemetry sink. Cloning is cheap (an `Arc`); the disabled
/// recorder ([`Recorder::disabled`]) makes every call a no-op.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Recorder {
    /// The no-op recorder: every call returns immediately.
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The rank this recorder belongs to (0 when disabled).
    pub fn rank(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.rank)
    }

    /// Microseconds since the session epoch (0 when disabled or virtual).
    pub fn now_us(&self) -> u64 {
        match self.inner.as_deref() {
            Some(RecorderInner {
                epoch: Epoch::Real(e),
                ..
            }) => e.elapsed().as_micros() as u64,
            _ => 0,
        }
    }

    /// Open an RAII span on the rank's main track; it closes (and is
    /// recorded) when the guard drops. Prefer the [`crate::span!`] macro.
    pub fn span(&self, component: Component, name: &'static str) -> SpanGuard {
        SpanGuard {
            rec: self.inner.clone(),
            component,
            name,
            track: Track::Rank,
            start_us: self.now_us(),
            args: Vec::new(),
        }
    }

    /// Record a closed span with explicit (virtual or replayed) timestamps.
    pub fn record_span_at(
        &self,
        component: Component,
        name: &'static str,
        track: Track,
        start_s: f64,
        dur_s: f64,
        args: &[(&'static str, u64)],
    ) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        inner.events.lock().unwrap().spans.push(SpanEvent {
            component,
            name,
            track,
            start_us: secs_to_us(start_s),
            dur_us: secs_to_us(dur_s),
            args: args.to_vec(),
        });
    }

    /// Record a communication operation that just completed, taking
    /// `wait_s` seconds (timestamped at the call's *start*).
    pub fn record_comm(&self, op: CommOp, bytes: u64, peers: usize, wait_s: f64) {
        if self.inner.is_none() {
            return;
        }
        let ts = self.now_us().saturating_sub(secs_to_us(wait_s));
        self.record_comm_at(op, bytes, peers, wait_s, ts as f64 * 1e-6);
    }

    /// Record a just-completed point-to-point operation against a concrete
    /// `peer` rank (send destination / receive source), so the analytics
    /// layer can pair both sides into a comm edge.
    pub fn record_comm_p2p(&self, op: CommOp, bytes: u64, peer: usize, wait_s: f64) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let ts_us = self.now_us().saturating_sub(secs_to_us(wait_s));
        inner.events.lock().unwrap().comms.push(CommEvent {
            op,
            ts_us,
            bytes,
            peers: 1,
            peer: Some(peer as u32),
            wait_s,
        });
    }

    /// Record a communication operation with an explicit timestamp.
    pub fn record_comm_at(&self, op: CommOp, bytes: u64, peers: usize, wait_s: f64, ts_s: f64) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        inner.events.lock().unwrap().comms.push(CommEvent {
            op,
            ts_us: secs_to_us(ts_s),
            bytes,
            peers: peers as u32,
            peer: None,
            wait_s,
        });
    }

    /// Accumulate `v` into the named per-rank counter.
    pub fn add_counter(&self, name: &'static str, v: f64) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        *inner
            .events
            .lock()
            .unwrap()
            .counters
            .entry(name)
            .or_insert(0.0) += v;
    }

    /// Snapshot of all spans recorded so far.
    pub fn snapshot_spans(&self) -> Vec<SpanEvent> {
        self.inner
            .as_deref()
            .map_or_else(Vec::new, |i| i.events.lock().unwrap().spans.clone())
    }

    /// Snapshot of all communication events recorded so far.
    pub fn snapshot_comms(&self) -> Vec<CommEvent> {
        self.inner
            .as_deref()
            .map_or_else(Vec::new, |i| i.events.lock().unwrap().comms.clone())
    }

    /// Snapshot of the per-rank counters.
    pub fn counters(&self) -> BTreeMap<&'static str, f64> {
        self.inner
            .as_deref()
            .map_or_else(BTreeMap::new, |i| i.events.lock().unwrap().counters.clone())
    }
}

fn secs_to_us(s: f64) -> u64 {
    (s * 1e6).round().max(0.0) as u64
}

/// RAII guard returned by [`Recorder::span`]; records the span on drop.
/// Dropping a disabled guard does nothing.
#[must_use = "a span guard records its interval when dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    rec: Option<Arc<RecorderInner>>,
    component: Component,
    name: &'static str,
    track: Track,
    start_us: u64,
    args: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Move the span to the given track (builder style).
    pub fn on_track(mut self, track: Track) -> SpanGuard {
        self.track = track;
        self
    }

    /// Attach a structured argument (builder style).
    pub fn arg(mut self, name: &'static str, value: u64) -> SpanGuard {
        if self.rec.is_some() {
            self.args.push((name, value));
        }
        self
    }

    /// Attach a structured argument after creation (e.g. a count known
    /// only when the spanned work finishes).
    pub fn push_arg(&mut self, name: &'static str, value: u64) {
        if self.rec.is_some() {
            self.args.push((name, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.rec.take() else {
            return;
        };
        let end_us = match inner.epoch {
            Epoch::Real(e) => e.elapsed().as_micros() as u64,
            Epoch::Virtual => self.start_us,
        };
        inner.events.lock().unwrap().spans.push(SpanEvent {
            component: self.component,
            name: self.name,
            track: self.track,
            start_us: self.start_us,
            dur_us: end_us.saturating_sub(self.start_us),
            args: std::mem::take(&mut self.args),
        });
    }
}

/// A set of per-rank recorders sharing one epoch, so timestamps from
/// different ranks land on one timeline. Create once before spawning rank
/// threads, hand each rank `session.recorder(rank)`, export after joining.
#[derive(Debug)]
pub struct TraceSession {
    epoch: Epoch,
    recorders: Mutex<Vec<Recorder>>,
}

impl Default for TraceSession {
    fn default() -> TraceSession {
        TraceSession::new()
    }
}

impl TraceSession {
    /// A real-time session: timestamps are monotonic microseconds since
    /// this call.
    pub fn new() -> TraceSession {
        TraceSession {
            epoch: Epoch::Real(Instant::now()),
            recorders: Mutex::new(Vec::new()),
        }
    }

    /// A virtual-time session for the performance-model plane: events are
    /// recorded through the `*_at` entry points with modeled timestamps.
    pub fn virtual_time() -> TraceSession {
        TraceSession {
            epoch: Epoch::Virtual,
            recorders: Mutex::new(Vec::new()),
        }
    }

    /// Whether this session carries modeled (virtual) rather than measured
    /// timestamps.
    pub fn is_virtual(&self) -> bool {
        matches!(self.epoch, Epoch::Virtual)
    }

    /// Create (and register) the recorder for `rank`. Calling twice for
    /// the same rank returns the same underlying sink.
    pub fn recorder(&self, rank: usize) -> Recorder {
        let mut regs = self.recorders.lock().unwrap();
        if let Some(r) = regs.iter().find(|r| r.rank() == rank) {
            return r.clone();
        }
        let rec = Recorder {
            inner: Some(Arc::new(RecorderInner {
                rank,
                epoch: self.epoch,
                events: Mutex::new(Events::default()),
            })),
        };
        regs.push(rec.clone());
        rec
    }

    /// All registered recorders, sorted by rank.
    pub fn recorders(&self) -> Vec<Recorder> {
        let mut v = self.recorders.lock().unwrap().clone();
        v.sort_by_key(Recorder::rank);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let mut g = span!(rec, Component::Align, "noop", { x: 1u64 });
            g.push_arg("y", 2);
        }
        rec.record_comm(CommOp::Barrier, 0, 3, 0.1);
        rec.add_counter("pairs", 5.0);
        assert!(rec.snapshot_spans().is_empty());
        assert!(rec.snapshot_comms().is_empty());
        assert!(rec.counters().is_empty());
    }

    #[test]
    fn span_guard_records_on_drop_with_args() {
        let session = TraceSession::new();
        let rec = session.recorder(2);
        assert_eq!(rec.rank(), 2);
        let round = 4u64;
        {
            let mut g = span!(rec, Component::SpGemm, "summa.bcast_a", { round, bytes: 128u64 });
            g.push_arg("late", 7);
        }
        let spans = rec.snapshot_spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.name, "summa.bcast_a");
        assert_eq!(s.component, Component::SpGemm);
        assert_eq!(s.track, Track::Rank);
        assert_eq!(s.args, vec![("round", 4), ("bytes", 128), ("late", 7)]);
        assert!(s.end_us() >= s.start_us);
    }

    #[test]
    fn nested_spans_are_contained() {
        let session = TraceSession::new();
        let rec = session.recorder(0);
        {
            let _outer = rec.span(Component::SpGemm, "outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = rec.span(Component::SparseOther, "inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let spans = rec.snapshot_spans();
        assert_eq!(spans.len(), 2);
        // Drop order: inner first.
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.name, "inner");
        assert!(outer.start_us <= inner.start_us);
        assert!(inner.end_us() <= outer.end_us());
    }

    #[test]
    fn virtual_session_records_explicit_times() {
        let session = TraceSession::virtual_time();
        assert!(session.is_virtual());
        let rec = session.recorder(1);
        rec.record_span_at(
            Component::Io,
            "io.read",
            Track::Rank,
            0.5,
            1.25,
            &[("bytes", 10)],
        );
        rec.record_comm_at(CommOp::Broadcast, 4096, 3, 0.01, 2.0);
        let spans = rec.snapshot_spans();
        assert_eq!(spans[0].start_us, 500_000);
        assert_eq!(spans[0].dur_us, 1_250_000);
        let comms = rec.snapshot_comms();
        assert_eq!(comms[0].bytes, 4096);
        assert_eq!(comms[0].ts_us, 2_000_000);
        assert_eq!(comms[0].peers, 3);
    }

    #[test]
    fn session_deduplicates_rank_recorders() {
        let session = TraceSession::new();
        let a = session.recorder(3);
        let b = session.recorder(3);
        a.add_counter("x", 1.0);
        b.add_counter("x", 1.0);
        assert_eq!(session.recorders().len(), 1);
        assert_eq!(session.recorders()[0].counters()["x"], 2.0);
    }

    #[test]
    fn recorders_sorted_by_rank() {
        let session = TraceSession::new();
        for r in [3usize, 0, 2, 1] {
            session.recorder(r);
        }
        let ranks: Vec<usize> = session.recorders().iter().map(Recorder::rank).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn counters_accumulate() {
        let session = TraceSession::new();
        let rec = session.recorder(0);
        rec.add_counter("aligned_pairs", 10.0);
        rec.add_counter("aligned_pairs", 5.0);
        assert_eq!(rec.counters()["aligned_pairs"], 15.0);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let session = TraceSession::new();
        let rec = session.recorder(0);
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let rec = rec.clone();
                s.spawn(move || {
                    let _g = rec
                        .span(Component::Align, "align.worker")
                        .on_track(Track::AlignWorker(w));
                });
            }
        });
        assert_eq!(rec.snapshot_spans().len(), 4);
    }
}
