//! Log-bucketed duration histograms with mergeable state.
//!
//! The analytics primitive behind per-span-kind latency reporting: each
//! histogram buckets microsecond durations into power-of-two bins, so the
//! state is a fixed 65-slot count vector that merges across workers,
//! ranks, and runs by element-wise addition (associative and commutative —
//! pinned by a proptest). Percentile queries walk the cumulative counts
//! and answer within one bucket of the true order statistic: the p-th
//! percentile estimate and the true value always share a bucket, so the
//! error is bounded by that bucket's width.
//!
//! Histograms are built at *export* time from recorded span snapshots
//! ([`span_histograms`]), never on the recording path, so enabling them
//! adds nothing to the per-span recording cost.

use std::collections::BTreeMap;

use crate::json::{JsonValue, JsonWriter};
use crate::recorder::Recorder;

/// Number of buckets: slot 0 holds zero-length durations, slot `i ≥ 1`
/// holds durations in `[2^(i-1), 2^i)` µs — 64 slots cover the full
/// `u64` microsecond range.
pub const NUM_BUCKETS: usize = 65;

/// A mergeable histogram of durations in microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationHistogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for DurationHistogram {
    fn default() -> DurationHistogram {
        DurationHistogram::new()
    }
}

/// Bucket index for a duration: 0 for 0 µs, else `floor(log2(us)) + 1`.
pub fn bucket_index(us: u64) -> usize {
    (64 - us.leading_zeros()) as usize
}

/// Inclusive `[lo, hi]` µs range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == NUM_BUCKETS - 1 {
        (1u64 << (i - 1), u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub fn new() -> DurationHistogram {
        DurationHistogram {
            counts: [0; NUM_BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Record one duration in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Record one duration in seconds (negative values clamp to 0).
    pub fn record_secs(&mut self, s: f64) {
        self.record_us((s * 1e6).round().max(0.0) as u64);
    }

    /// Fold `other` into `self`. Merging is associative and commutative,
    /// and merging an empty histogram is the identity.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded durations (µs, saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Smallest recorded duration (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Largest recorded duration (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean recorded duration in µs (0.0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Per-bucket counts (index via [`bucket_bounds`]).
    pub fn bucket_counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// The `q`-quantile duration estimate in µs, `q ∈ [0, 1]`. Returns the
    /// upper bound of the bucket holding the order statistic, clamped to
    /// the observed `[min, max]` — so the estimate never errs by more than
    /// the width of that shared bucket. 0 when empty.
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the order statistic: ceil(q * count), at least 1.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                // The order statistic lies in bucket i, i.e. in
                // [lo, hi] ∩ [min, max]; hi.min(max) is inside that range.
                let (_, hi) = bucket_bounds(i);
                return hi.min(self.max_us);
            }
        }
        self.max_us
    }

    /// Median estimate (µs).
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(0.50)
    }

    /// 95th-percentile estimate (µs).
    pub fn p95_us(&self) -> u64 {
        self.percentile_us(0.95)
    }

    /// 99th-percentile estimate (µs).
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(0.99)
    }

    /// Write this histogram as a JSON object: summary fields plus the
    /// non-empty buckets as `[index, count]` pairs in index order.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object()
            .field_u64("count", self.count)
            .field_u64("sum_us", self.sum_us)
            .field_u64("min_us", self.min_us())
            .field_u64("max_us", self.max_us)
            .field_u64("p50_us", self.p50_us())
            .field_u64("p95_us", self.p95_us())
            .field_u64("p99_us", self.p99_us())
            .key("buckets")
            .begin_array();
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                w.begin_array().u64(i as u64).u64(c).end_array();
            }
        }
        w.end_array().end_object();
    }

    /// Parse a histogram object produced by [`DurationHistogram::write_json`],
    /// validating the invariants `trace-check` enforces: bucket indices
    /// strictly increasing and in range, bucket counts summing to `count`,
    /// and percentile monotonicity `p50 ≤ p95 ≤ p99 ≤ max`.
    pub fn from_json(v: &JsonValue) -> Result<DurationHistogram, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("histogram missing {k}"))
        };
        let count = field("count")?;
        let sum_us = field("sum_us")?;
        let min_us = field("min_us")?;
        let max_us = field("max_us")?;
        let (p50, p95, p99) = (field("p50_us")?, field("p95_us")?, field("p99_us")?);
        if !(p50 <= p95 && p95 <= p99 && p99 <= max_us) {
            return Err(format!(
                "histogram percentiles not monotone: p50={p50} p95={p95} p99={p99} max={max_us}"
            ));
        }
        let buckets = v
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or("histogram missing buckets")?;
        let mut h = DurationHistogram::new();
        let mut last: Option<usize> = None;
        let mut total = 0u64;
        for b in buckets {
            let pair = b.as_array().ok_or("bucket entry is not a pair")?;
            let (i, c) = match pair {
                [i, c] => (
                    i.as_u64().ok_or("bucket index not an integer")? as usize,
                    c.as_u64().ok_or("bucket count not an integer")?,
                ),
                _ => return Err("bucket entry is not a pair".into()),
            };
            if i >= NUM_BUCKETS {
                return Err(format!("bucket index {i} out of range"));
            }
            if last.is_some_and(|l| i <= l) {
                return Err(format!("bucket indices not strictly increasing at {i}"));
            }
            if c == 0 {
                return Err(format!("empty bucket {i} serialized"));
            }
            last = Some(i);
            h.counts[i] = c;
            total += c;
        }
        if total != count {
            return Err(format!(
                "bucket counts sum to {total}, declared count is {count}"
            ));
        }
        h.count = count;
        h.sum_us = sum_us;
        h.min_us = if count == 0 { u64::MAX } else { min_us };
        h.max_us = max_us;
        Ok(h)
    }
}

/// Build one histogram per span *name* from everything `rec` has recorded
/// so far, across all tracks. Keys are owned so histograms parsed back
/// from JSON compare against live ones.
pub fn span_histograms(rec: &Recorder) -> BTreeMap<String, DurationHistogram> {
    let mut out: BTreeMap<String, DurationHistogram> = BTreeMap::new();
    for s in rec.snapshot_spans() {
        out.entry(s.name.to_owned())
            .or_default()
            .record_us(s.dur_us);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_inert() {
        let h = DurationHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_us(), 0);
        assert_eq!(h.max_us(), 0);
        assert_eq!(h.p50_us(), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn bucket_indexing_is_logarithmic() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn percentiles_share_a_bucket_with_the_true_order_statistic() {
        let mut h = DurationHistogram::new();
        let mut values = vec![3u64, 7, 8, 100, 150, 1000, 1200, 5000, 9000, 40_000];
        for &v in &values {
            h.record_us(v);
        }
        values.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let est = h.percentile_us(q);
            assert_eq!(
                bucket_index(est),
                bucket_index(truth),
                "q={q}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn percentile_clamps_to_observed_range() {
        let mut h = DurationHistogram::new();
        h.record_us(700); // bucket [512, 1023]
        assert_eq!(h.p50_us(), 700);
        assert_eq!(h.p99_us(), 700);
    }

    #[test]
    fn merge_equals_bulk_recording() {
        let mut a = DurationHistogram::new();
        let mut b = DurationHistogram::new();
        let mut all = DurationHistogram::new();
        for v in [1u64, 5, 9, 2000] {
            a.record_us(v);
            all.record_us(v);
        }
        for v in [0u64, 7, 300, 80_000] {
            b.record_us(v);
            all.record_us(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        // Commutativity.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ba, merged);
        // Identity.
        let mut id = all.clone();
        id.merge(&DurationHistogram::new());
        assert_eq!(id, all);
    }

    #[test]
    fn json_round_trips() {
        let mut h = DurationHistogram::new();
        for v in [0u64, 1, 3, 900, 1_000_000] {
            h.record_us(v);
        }
        let mut w = JsonWriter::new();
        h.write_json(&mut w);
        let text = w.finish();
        let parsed = DurationHistogram::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn json_validation_rejects_broken_invariants() {
        let mut h = DurationHistogram::new();
        h.record_us(10);
        h.record_us(500);
        let mut w = JsonWriter::new();
        h.write_json(&mut w);
        let good = w.finish();
        // Declared count disagrees with bucket sum.
        let bad = good.replace("\"count\":2", "\"count\":3");
        assert!(DurationHistogram::from_json(&crate::json::parse(&bad).unwrap()).is_err());
        // Percentiles out of order.
        let bad = good.replace("\"p50_us\":", "\"p50_us\":9999999,\"x\":");
        assert!(DurationHistogram::from_json(&crate::json::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn span_histograms_group_by_name_across_tracks() {
        use crate::recorder::{TraceSession, Track};
        use crate::Component;
        let session = TraceSession::virtual_time();
        let rec = session.recorder(0);
        rec.record_span_at(Component::Align, "align.batch", Track::Rank, 0.0, 0.5, &[]);
        rec.record_span_at(Component::Align, "align.batch", Track::Rank, 1.0, 0.25, &[]);
        rec.record_span_at(
            Component::Align,
            "align.unit",
            Track::PoolWorker(1),
            0.0,
            0.1,
            &[],
        );
        let hists = span_histograms(&rec);
        assert_eq!(hists.len(), 2);
        assert_eq!(hists["align.batch"].count(), 2);
        assert_eq!(hists["align.batch"].max_us(), 500_000);
        assert_eq!(hists["align.unit"].count(), 1);
    }
}
