//! Human-readable end-of-run report.
//!
//! Condenses a [`MetricsReport`] into the terminal summary printed after a
//! search: per-component seconds with min/avg/max across ranks and the
//! max/avg imbalance factor (Figure 7's metric), per-collective traffic
//! totals, and the pipeline counters. Supersedes the ad-hoc stat printing
//! the CLI did before the telemetry layer existed.

use std::fmt::Write as _;

use crate::component::Component;
use crate::metrics::MetricsReport;
use crate::recorder::CommOp;

/// Render the end-of-run report for `report` as plain text.
pub fn render_report(report: &MetricsReport) -> String {
    let mut out = String::new();
    let plane = if report.virtual_time {
        "virtual-time"
    } else {
        "measured"
    };
    let _ = writeln!(
        out,
        "== telemetry report ({plane}, {} rank{}) ==",
        report.nranks(),
        if report.nranks() == 1 { "" } else { "s" }
    );
    if report.nranks() == 0 {
        out.push_str("(no ranks recorded)\n");
        return out;
    }

    out.push_str("-- component seconds (across ranks) --\n");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "component", "min", "avg", "max", "stddev", "imb"
    );
    for c in Component::ALL {
        let s = report
            .component_imbalance(c)
            .expect("nranks > 0 checked above");
        if s.max == 0.0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<14} {:>10.4} {:>10.4} {:>10.4} {:>9.4} {:>7.2}x",
            c.label(),
            s.min,
            s.avg,
            s.max,
            s.stddev,
            s.imbalance_factor()
        );
    }

    // Serving-mode latency percentiles, merged across ranks — only when
    // the run actually served (the spans exist).
    let serve_names = [
        crate::names::SPAN_SERVE_REQUEST,
        crate::names::SPAN_SERVE_BATCH,
        crate::names::SPAN_INDEX_LOAD,
    ];
    let mut serve_rows = Vec::new();
    for name in serve_names {
        let mut merged = crate::hist::DurationHistogram::new();
        for r in &report.ranks {
            if let Some(h) = r.span_hist.get(name) {
                merged.merge(h);
            }
        }
        if merged.count() > 0 {
            serve_rows.push((name, merged));
        }
    }
    if !serve_rows.is_empty() {
        out.push_str("-- serve latency (ms, merged over ranks) --\n");
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "span", "count", "p50", "p95", "p99", "max"
        );
        for (name, h) in serve_rows {
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                name,
                h.count(),
                h.p50_us() as f64 / 1e3,
                h.p95_us() as f64 / 1e3,
                h.p99_us() as f64 / 1e3,
                h.max_us() as f64 / 1e3,
            );
        }
    }

    let any_comm = CommOp::ALL
        .iter()
        .any(|&op| report.ranks.iter().any(|r| r.comm_totals(op).count > 0));
    if any_comm {
        out.push_str("-- communication (totals over ranks) --\n");
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>14} {:>12}",
            "op", "count", "bytes", "seconds"
        );
        for op in CommOp::ALL {
            let count: u64 = report.ranks.iter().map(|r| r.comm_totals(op).count).sum();
            if count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:>14} {:>12.4}",
                op.label(),
                count,
                report.total_bytes(op),
                report.total_wait_s(op)
            );
        }
    }

    // Union of counter names across ranks (each rank may miss some).
    let mut names: Vec<&str> = report
        .ranks
        .iter()
        .flat_map(|r| r.counters.keys().map(String::as_str))
        .collect();
    names.sort_unstable();
    names.dedup();
    if !names.is_empty() {
        out.push_str("-- counters (across ranks) --\n");
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>12} {:>7}",
            "counter", "total", "avg/rank", "imb"
        );
        for name in names {
            let s = report
                .counter_imbalance(name)
                .expect("nranks > 0 checked above");
            let total: f64 = report.ranks.iter().map(|r| r.counter(name)).sum();
            let _ = writeln!(
                out,
                "{:<18} {:>14.0} {:>12.1} {:>6.2}x",
                name,
                total,
                s.avg,
                s.imbalance_factor()
            );
        }
    }

    // Degraded-but-survived conditions the operator should see without
    // scanning the counter table.
    let total_of = |name: &str| -> f64 { report.ranks.iter().map(|r| r.counter(name)).sum() };
    let ckpt_failed = total_of(crate::names::CTR_FAULT_CKPT_SAVE_FAILED);
    if ckpt_failed > 0.0 {
        out.push_str("-- warnings --\n");
        let _ = writeln!(
            out,
            "warning: {ckpt_failed:.0} best-effort checkpoint save(s) failed; the run \
             completed but a restart would lose the unsaved progress"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Track;
    use crate::TraceSession;

    #[test]
    fn report_lists_components_comm_and_counters() {
        let session = TraceSession::virtual_time();
        for rank in 0..2usize {
            let rec = session.recorder(rank);
            rec.record_span_at(
                Component::Align,
                "align.batch",
                Track::Rank,
                0.0,
                1.0 + rank as f64,
                &[],
            );
            rec.record_comm_at(CommOp::AllGather, 2048, 1, 0.125, 0.0);
            rec.add_counter("similar_pairs", 42.0);
        }
        let text = render_report(&MetricsReport::from_session(&session));
        assert!(text.contains("virtual-time, 2 ranks"));
        assert!(text.contains("align"));
        assert!(text.contains("all_gather"));
        assert!(text.contains("4096"));
        assert!(text.contains("similar_pairs"));
        assert!(text.contains("84"));
        // Components with no recorded time are omitted.
        assert!(!text.contains("cwait"));
    }

    #[test]
    fn serve_latency_section_appears_only_for_serving_runs() {
        let session = TraceSession::virtual_time();
        for rank in 0..2usize {
            let rec = session.recorder(rank);
            // 1 ms and 3 ms requests on rank 0, 2 ms on rank 1.
            let end = 0.001 * (1.0 + 2.0 * rank as f64);
            rec.record_span_at(
                Component::SparseOther,
                crate::names::SPAN_SERVE_REQUEST,
                Track::Rank,
                0.0,
                end,
                &[],
            );
            rec.record_span_at(
                Component::SparseOther,
                crate::names::SPAN_SERVE_BATCH,
                Track::Rank,
                0.0,
                0.004,
                &[],
            );
        }
        session.recorder(0).record_span_at(
            Component::SparseOther,
            crate::names::SPAN_SERVE_REQUEST,
            Track::Rank,
            0.0,
            0.003,
            &[],
        );
        let text = render_report(&MetricsReport::from_session(&session));
        assert!(text.contains("-- serve latency"), "{text}");
        assert!(text.contains("serve.request"), "{text}");
        assert!(text.contains("serve.batch"), "{text}");
        // index.load was never recorded — its row is omitted.
        assert!(!text.contains("index.load"), "{text}");

        // A batch run without serve spans has no serve section at all.
        let batch = TraceSession::virtual_time();
        batch.recorder(0).record_span_at(
            Component::Align,
            "align.batch",
            Track::Rank,
            0.0,
            1.0,
            &[],
        );
        let text = render_report(&MetricsReport::from_session(&batch));
        assert!(!text.contains("serve latency"), "{text}");
    }

    #[test]
    fn failed_checkpoint_saves_surface_as_warning() {
        let session = TraceSession::virtual_time();
        let rec = session.recorder(0);
        rec.add_counter(crate::names::CTR_FAULT_CKPT_SAVE_FAILED, 2.0);
        let text = render_report(&MetricsReport::from_session(&session));
        assert!(text.contains("-- warnings --"), "{text}");
        assert!(
            text.contains("warning: 2 best-effort checkpoint save(s) failed"),
            "{text}"
        );
        // No warning section when nothing failed.
        let clean = TraceSession::virtual_time();
        clean.recorder(0).add_counter("similar_pairs", 1.0);
        let text = render_report(&MetricsReport::from_session(&clean));
        assert!(!text.contains("warnings"), "{text}");
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let text = render_report(&MetricsReport::from_session(&TraceSession::new()));
        assert!(text.contains("no ranks recorded"));
    }
}
