//! Flat, schema-versioned metrics derived from a [`TraceSession`].
//!
//! Where the Chrome export preserves the raw timeline, [`MetricsReport`]
//! condenses it into per-rank aggregates: component seconds (Table IV's
//! buckets), per-collective traffic totals (the α–β model's inputs), and
//! the named pipeline counters. `pastis-bench` table binaries and the CLI
//! `--metrics-json` flag consume this form.
//!
//! Component seconds are summed over **main-track spans only**
//! ([`Track::Rank`]): alignment-worker sub-track spans overlap their
//! enclosing `align.batch` span by construction and exist for occupancy
//! inspection, not accounting. Nested main-track spans are rare and
//! deliberate (none are emitted by the pipeline today), so no
//! double-counting correction is applied beyond the track filter.

use std::collections::BTreeMap;

use crate::component::{Component, ImbalanceStats};
use crate::json::{JsonValue, JsonWriter};
use crate::recorder::{CommOp, Recorder, Track};
use crate::TraceSession;

/// Version of the metrics-JSON schema; bump on breaking shape changes.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Per-operation communication totals for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommTotals {
    /// Number of operations of this kind.
    pub count: u64,
    /// Total payload bytes this rank moved.
    pub bytes: u64,
    /// Total seconds spent inside the operation.
    pub wait_s: f64,
}

/// One rank's aggregated telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTelemetry {
    /// The rank id.
    pub rank: usize,
    /// Seconds per [`Component`], indexed by [`Component::index`], summed
    /// over main-track spans.
    pub component_s: [f64; Component::ALL.len()],
    /// Per-collective traffic totals, indexed by [`CommOp::index`].
    pub comm: [CommTotals; CommOp::ALL.len()],
    /// Named pipeline counters (aligned pairs, cells, ...).
    pub counters: BTreeMap<&'static str, f64>,
    /// End of the last event on this rank, µs since the session epoch.
    pub span_end_us: u64,
}

impl RankTelemetry {
    /// Seconds attributed to `c` on this rank.
    pub fn component_secs(&self, c: Component) -> f64 {
        self.component_s[c.index()]
    }

    /// Traffic totals for `op` on this rank.
    pub fn comm_totals(&self, op: CommOp) -> CommTotals {
        self.comm[op.index()]
    }

    /// A named counter (0.0 when absent).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    fn from_recorder(rec: &Recorder) -> RankTelemetry {
        let mut t = RankTelemetry {
            rank: rec.rank(),
            ..RankTelemetry::default()
        };
        for s in rec.snapshot_spans() {
            if s.track == Track::Rank {
                t.component_s[s.component.index()] += s.dur_us as f64 * 1e-6;
            }
            t.span_end_us = t.span_end_us.max(s.end_us());
        }
        for c in rec.snapshot_comms() {
            let slot = &mut t.comm[c.op.index()];
            slot.count += 1;
            slot.bytes += c.bytes;
            slot.wait_s += c.wait_s;
        }
        t.counters = rec.counters();
        t
    }
}

/// The full cross-rank metrics report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// One entry per rank, sorted by rank.
    pub ranks: Vec<RankTelemetry>,
    /// Whether the source session carried modeled (virtual) timestamps.
    pub virtual_time: bool,
}

impl MetricsReport {
    /// Aggregate everything recorded in `session` so far.
    pub fn from_session(session: &TraceSession) -> MetricsReport {
        MetricsReport {
            ranks: session
                .recorders()
                .iter()
                .map(RankTelemetry::from_recorder)
                .collect(),
            virtual_time: session.is_virtual(),
        }
    }

    /// Number of ranks in the report.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Cross-rank imbalance stats for a component's seconds. `None` when
    /// the report is empty.
    pub fn component_imbalance(&self, c: Component) -> Option<ImbalanceStats> {
        if self.ranks.is_empty() {
            return None;
        }
        let values: Vec<f64> = self.ranks.iter().map(|r| r.component_secs(c)).collect();
        Some(ImbalanceStats::from_values(&values))
    }

    /// Cross-rank imbalance stats for a named counter. `None` when the
    /// report is empty.
    pub fn counter_imbalance(&self, name: &str) -> Option<ImbalanceStats> {
        if self.ranks.is_empty() {
            return None;
        }
        let values: Vec<f64> = self.ranks.iter().map(|r| r.counter(name)).collect();
        Some(ImbalanceStats::from_values(&values))
    }

    /// Total payload bytes moved in `op` summed over all ranks.
    pub fn total_bytes(&self, op: CommOp) -> u64 {
        self.ranks.iter().map(|r| r.comm_totals(op).bytes).sum()
    }

    /// Total seconds spent in `op` summed over all ranks.
    pub fn total_wait_s(&self, op: CommOp) -> f64 {
        self.ranks.iter().map(|r| r.comm_totals(op).wait_s).sum()
    }

    /// Serialize to the schema-versioned metrics JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("schema_version", METRICS_SCHEMA_VERSION as u64)
            .key("virtual_time")
            .bool(self.virtual_time)
            .field_u64("nranks", self.ranks.len() as u64)
            .key("ranks")
            .begin_array();
        for r in &self.ranks {
            w.begin_object().field_u64("rank", r.rank as u64);
            w.key("component_seconds").begin_object();
            for c in Component::ALL {
                w.field_f64(c.label(), r.component_secs(c));
            }
            w.end_object();
            w.key("comm").begin_object();
            for op in CommOp::ALL {
                let t = r.comm_totals(op);
                w.key(op.label())
                    .begin_object()
                    .field_u64("count", t.count)
                    .field_u64("bytes", t.bytes)
                    .field_f64("wait_seconds", t.wait_s)
                    .end_object();
            }
            w.end_object();
            w.key("counters").begin_object();
            for (k, v) in &r.counters {
                w.field_f64(k, *v);
            }
            w.end_object();
            w.field_u64("span_end_us", r.span_end_us);
            w.end_object();
        }
        w.end_array().end_object();
        w.finish()
    }

    /// Validate a metrics JSON document produced by
    /// [`MetricsReport::to_json`]: checks the schema version and the
    /// per-rank shape, returning the declared ranks. Used by the CLI
    /// `trace-check` subcommand and CI.
    pub fn parse_json(text: &str) -> Result<ParsedMetrics, String> {
        let v = crate::json::parse(text)?;
        let schema = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema_version")?;
        if schema != METRICS_SCHEMA_VERSION as u64 {
            return Err(format!("unsupported schema_version {schema}"));
        }
        let ranks = v
            .get("ranks")
            .and_then(JsonValue::as_array)
            .ok_or("missing ranks array")?;
        let mut out = ParsedMetrics {
            nranks: v.get("nranks").and_then(JsonValue::as_u64).unwrap_or(0) as usize,
            rank_ids: Vec::new(),
            phase_names: Vec::new(),
        };
        for r in ranks {
            out.rank_ids.push(
                r.get("rank")
                    .and_then(JsonValue::as_u64)
                    .ok_or("rank entry missing rank id")? as usize,
            );
            let comp = r
                .get("component_seconds")
                .ok_or("rank entry missing component_seconds")?;
            if r.get("comm").is_none() {
                return Err("rank entry missing comm".into());
            }
            for c in Component::ALL {
                if comp
                    .get(c.label())
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0)
                    > 0.0
                    && !out.phase_names.iter().any(|p| p == c.label())
                {
                    out.phase_names.push(c.label().to_owned());
                }
            }
        }
        Ok(out)
    }
}

/// Shallow, validation-oriented view of a parsed metrics document (used by
/// the CLI `trace-check` subcommand and CI).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedMetrics {
    /// Declared rank count.
    pub nranks: usize,
    /// Rank ids present in the `ranks` array.
    pub rank_ids: Vec<usize>,
    /// Component labels with nonzero recorded seconds on at least one
    /// rank — the pipeline phases the document covers.
    pub phase_names: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session() -> TraceSession {
        let session = TraceSession::virtual_time();
        for rank in 0..3usize {
            let rec = session.recorder(rank);
            rec.record_span_at(
                Component::SpGemm,
                "summa.block",
                Track::Rank,
                0.0,
                1.0 + rank as f64,
                &[],
            );
            rec.record_span_at(
                Component::Align,
                "align.worker",
                Track::AlignWorker(0),
                0.0,
                100.0, // must NOT count toward component seconds
                &[],
            );
            rec.record_comm_at(CommOp::Broadcast, 100 * (rank as u64 + 1), 2, 0.5, 0.0);
            rec.record_comm_at(CommOp::Broadcast, 50, 2, 0.25, 1.0);
            rec.add_counter("aligned_pairs", 10.0 * (rank as f64 + 1.0));
        }
        session
    }

    #[test]
    fn aggregates_main_track_only() {
        let report = MetricsReport::from_session(&sample_session());
        assert_eq!(report.nranks(), 3);
        assert!(report.virtual_time);
        let r1 = &report.ranks[1];
        assert!((r1.component_secs(Component::SpGemm) - 2.0).abs() < 1e-9);
        // Worker sub-track span excluded from accounting.
        assert_eq!(r1.component_secs(Component::Align), 0.0);
        let bt = r1.comm_totals(CommOp::Broadcast);
        assert_eq!(bt.count, 2);
        assert_eq!(bt.bytes, 250);
        assert!((bt.wait_s - 0.75).abs() < 1e-12);
        assert_eq!(r1.counter("aligned_pairs"), 20.0);
        assert_eq!(report.total_bytes(CommOp::Broadcast), 100 + 200 + 300 + 150);
    }

    #[test]
    fn imbalance_views() {
        let report = MetricsReport::from_session(&sample_session());
        let imb = report.component_imbalance(Component::SpGemm).unwrap();
        assert_eq!(imb.min, 1.0);
        assert_eq!(imb.max, 3.0);
        let pairs = report.counter_imbalance("aligned_pairs").unwrap();
        assert_eq!(pairs.avg, 20.0);
        assert!((pairs.imbalance_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_validates() {
        let report = MetricsReport::from_session(&sample_session());
        let text = report.to_json();
        let parsed = MetricsReport::parse_json(&text).unwrap();
        assert_eq!(parsed.nranks, 3);
        assert_eq!(parsed.rank_ids, vec![0, 1, 2]);
        // Spot-check raw JSON fields through the generic parser too.
        let v = crate::json::parse(&text).unwrap();
        let rank0 = &v.get("ranks").unwrap().as_array().unwrap()[0];
        assert_eq!(
            rank0
                .get("comm")
                .unwrap()
                .get("broadcast")
                .unwrap()
                .get("bytes")
                .unwrap()
                .as_u64(),
            Some(150)
        );
        assert_eq!(
            rank0
                .get("counters")
                .unwrap()
                .get("aligned_pairs")
                .unwrap()
                .as_f64(),
            Some(10.0)
        );
    }

    #[test]
    fn schema_version_is_enforced() {
        let bad = r#"{"schema_version":999,"nranks":0,"ranks":[]}"#;
        assert!(MetricsReport::parse_json(bad).is_err());
    }

    #[test]
    fn empty_report_is_sane() {
        let report = MetricsReport::from_session(&TraceSession::new());
        assert_eq!(report.nranks(), 0);
        assert!(report.component_imbalance(Component::Align).is_none());
        let parsed = MetricsReport::parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed.nranks, 0);
    }
}
