//! Flat, schema-versioned metrics derived from a [`TraceSession`].
//!
//! Where the Chrome export preserves the raw timeline, [`MetricsReport`]
//! condenses it into per-rank aggregates: component seconds (Table IV's
//! buckets), per-collective traffic totals (the α–β model's inputs), and
//! the named pipeline counters. `pastis-bench` table binaries and the CLI
//! `--metrics-json` flag consume this form.
//!
//! Component seconds are summed over **main-track spans only**
//! ([`Track::Rank`]): alignment-worker sub-track spans overlap their
//! enclosing `align.batch` span by construction and exist for occupancy
//! inspection, not accounting. Nested main-track spans are rare and
//! deliberate (none are emitted by the pipeline today), so no
//! double-counting correction is applied beyond the track filter.

use std::collections::BTreeMap;

use crate::component::{Component, ImbalanceStats};
use crate::hist::{span_histograms, DurationHistogram};
use crate::json::{JsonValue, JsonWriter};
use crate::recorder::{CommOp, Recorder, Track};
use crate::TraceSession;

/// Version of the metrics-JSON schema; bump on breaking shape changes.
///
/// * v1 — component seconds, per-op comm totals, counters.
/// * v2 — adds per-span-name duration histograms (`span_hist`) and
///   per-worker-track busy seconds (`worker_seconds`). v1 documents still
///   parse (the new sections read back empty).
pub const METRICS_SCHEMA_VERSION: u32 = 2;

/// Per-operation communication totals for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommTotals {
    /// Number of operations of this kind.
    pub count: u64,
    /// Total payload bytes this rank moved.
    pub bytes: u64,
    /// Total seconds spent inside the operation.
    pub wait_s: f64,
}

/// One rank's aggregated telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTelemetry {
    /// The rank id.
    pub rank: usize,
    /// Seconds per [`Component`], indexed by [`Component::index`], summed
    /// over main-track spans.
    pub component_s: [f64; Component::ALL.len()],
    /// Per-collective traffic totals, indexed by [`CommOp::index`].
    pub comm: [CommTotals; CommOp::ALL.len()],
    /// Named pipeline counters (aligned pairs, cells, ...). Owned keys so
    /// a report parsed back from JSON compares equal to a live one.
    pub counters: BTreeMap<String, f64>,
    /// Duration histogram per span name, over **all** tracks (schema v2).
    pub span_hist: BTreeMap<String, DurationHistogram>,
    /// Busy seconds per off-main track (worker occupancy), keyed by the
    /// track's display label (schema v2).
    pub worker_seconds: BTreeMap<String, f64>,
    /// End of the last event on this rank, µs since the session epoch.
    pub span_end_us: u64,
}

impl RankTelemetry {
    /// Seconds attributed to `c` on this rank.
    pub fn component_secs(&self, c: Component) -> f64 {
        self.component_s[c.index()]
    }

    /// Traffic totals for `op` on this rank.
    pub fn comm_totals(&self, op: CommOp) -> CommTotals {
        self.comm[op.index()]
    }

    /// A named counter (0.0 when absent).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    fn from_recorder(rec: &Recorder) -> RankTelemetry {
        let mut t = RankTelemetry {
            rank: rec.rank(),
            ..RankTelemetry::default()
        };
        for s in rec.snapshot_spans() {
            if s.track == Track::Rank {
                t.component_s[s.component.index()] += s.dur_us as f64 * 1e-6;
            } else {
                *t.worker_seconds.entry(s.track.label()).or_insert(0.0) += s.dur_us as f64 * 1e-6;
            }
            t.span_end_us = t.span_end_us.max(s.end_us());
        }
        for c in rec.snapshot_comms() {
            let slot = &mut t.comm[c.op.index()];
            slot.count += 1;
            slot.bytes += c.bytes;
            slot.wait_s += c.wait_s;
        }
        t.counters = rec
            .counters()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();
        t.span_hist = span_histograms(rec);
        t
    }
}

/// The full cross-rank metrics report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// One entry per rank, sorted by rank.
    pub ranks: Vec<RankTelemetry>,
    /// Whether the source session carried modeled (virtual) timestamps.
    pub virtual_time: bool,
}

impl MetricsReport {
    /// Aggregate everything recorded in `session` so far.
    pub fn from_session(session: &TraceSession) -> MetricsReport {
        MetricsReport {
            ranks: session
                .recorders()
                .iter()
                .map(RankTelemetry::from_recorder)
                .collect(),
            virtual_time: session.is_virtual(),
        }
    }

    /// Number of ranks in the report.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Cross-rank imbalance stats for a component's seconds. `None` when
    /// the report is empty.
    pub fn component_imbalance(&self, c: Component) -> Option<ImbalanceStats> {
        if self.ranks.is_empty() {
            return None;
        }
        let values: Vec<f64> = self.ranks.iter().map(|r| r.component_secs(c)).collect();
        Some(ImbalanceStats::from_values(&values))
    }

    /// Cross-rank imbalance stats for a named counter. `None` when the
    /// report is empty.
    pub fn counter_imbalance(&self, name: &str) -> Option<ImbalanceStats> {
        if self.ranks.is_empty() {
            return None;
        }
        let values: Vec<f64> = self.ranks.iter().map(|r| r.counter(name)).collect();
        Some(ImbalanceStats::from_values(&values))
    }

    /// Total payload bytes moved in `op` summed over all ranks.
    pub fn total_bytes(&self, op: CommOp) -> u64 {
        self.ranks.iter().map(|r| r.comm_totals(op).bytes).sum()
    }

    /// Total seconds spent in `op` summed over all ranks.
    pub fn total_wait_s(&self, op: CommOp) -> f64 {
        self.ranks.iter().map(|r| r.comm_totals(op).wait_s).sum()
    }

    /// Serialize to the schema-versioned metrics JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("schema_version", METRICS_SCHEMA_VERSION as u64)
            .key("virtual_time")
            .bool(self.virtual_time)
            .field_u64("nranks", self.ranks.len() as u64)
            .key("ranks")
            .begin_array();
        for r in &self.ranks {
            w.begin_object().field_u64("rank", r.rank as u64);
            w.key("component_seconds").begin_object();
            for c in Component::ALL {
                w.field_f64(c.label(), r.component_secs(c));
            }
            w.end_object();
            w.key("comm").begin_object();
            for op in CommOp::ALL {
                let t = r.comm_totals(op);
                w.key(op.label())
                    .begin_object()
                    .field_u64("count", t.count)
                    .field_u64("bytes", t.bytes)
                    .field_f64("wait_seconds", t.wait_s)
                    .end_object();
            }
            w.end_object();
            w.key("counters").begin_object();
            for (k, v) in &r.counters {
                w.field_f64(k, *v);
            }
            w.end_object();
            w.key("span_hist").begin_object();
            for (name, h) in &r.span_hist {
                w.key(name);
                h.write_json(&mut w);
            }
            w.end_object();
            w.key("worker_seconds").begin_object();
            for (label, secs) in &r.worker_seconds {
                w.field_f64(label, *secs);
            }
            w.end_object();
            w.field_u64("span_end_us", r.span_end_us);
            w.end_object();
        }
        w.end_array().end_object();
        w.finish()
    }

    /// Reconstruct a full report from its [`MetricsReport::to_json`] form.
    /// Accepts schema v1 (the new sections read back empty) and v2; on v2
    /// every histogram's invariants are validated. The round trip is exact:
    /// `from_json(to_json(r)) == r` up to float formatting.
    pub fn from_json(text: &str) -> Result<MetricsReport, String> {
        let v = crate::json::parse(text)?;
        let schema = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema_version")?;
        if schema == 0 || schema > METRICS_SCHEMA_VERSION as u64 {
            return Err(format!("unsupported schema_version {schema}"));
        }
        let ranks = v
            .get("ranks")
            .and_then(JsonValue::as_array)
            .ok_or("missing ranks array")?;
        let mut report = MetricsReport {
            ranks: Vec::with_capacity(ranks.len()),
            virtual_time: matches!(v.get("virtual_time"), Some(JsonValue::Bool(true))),
        };
        for r in ranks {
            let mut t = RankTelemetry {
                rank: r
                    .get("rank")
                    .and_then(JsonValue::as_u64)
                    .ok_or("rank entry missing rank id")? as usize,
                ..RankTelemetry::default()
            };
            let comp = r
                .get("component_seconds")
                .ok_or("rank entry missing component_seconds")?;
            for c in Component::ALL {
                t.component_s[c.index()] = comp
                    .get(c.label())
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("missing component_seconds.{}", c.label()))?;
            }
            let comm = r.get("comm").ok_or("rank entry missing comm")?;
            for op in CommOp::ALL {
                let o = comm
                    .get(op.label())
                    .ok_or_else(|| format!("missing comm.{}", op.label()))?;
                t.comm[op.index()] = CommTotals {
                    count: o.get("count").and_then(JsonValue::as_u64).unwrap_or(0),
                    bytes: o.get("bytes").and_then(JsonValue::as_u64).unwrap_or(0),
                    wait_s: o
                        .get("wait_seconds")
                        .and_then(JsonValue::as_f64)
                        .unwrap_or(0.0),
                };
            }
            if let Some(JsonValue::Object(m)) = r.get("counters") {
                for (k, val) in m {
                    t.counters.insert(
                        k.clone(),
                        val.as_f64()
                            .ok_or_else(|| format!("counter {k} not a number"))?,
                    );
                }
            } else {
                return Err("rank entry missing counters".into());
            }
            match r.get("span_hist") {
                Some(JsonValue::Object(m)) => {
                    for (name, hv) in m {
                        let h = DurationHistogram::from_json(hv)
                            .map_err(|e| format!("span_hist.{name}: {e}"))?;
                        t.span_hist.insert(name.clone(), h);
                    }
                }
                Some(_) => return Err("span_hist is not an object".into()),
                None if schema >= 2 => return Err("schema v2 rank missing span_hist".into()),
                None => {}
            }
            match r.get("worker_seconds") {
                Some(JsonValue::Object(m)) => {
                    for (label, sv) in m {
                        t.worker_seconds.insert(
                            label.clone(),
                            sv.as_f64()
                                .ok_or_else(|| format!("worker_seconds.{label} not a number"))?,
                        );
                    }
                }
                Some(_) => return Err("worker_seconds is not an object".into()),
                None if schema >= 2 => return Err("schema v2 rank missing worker_seconds".into()),
                None => {}
            }
            t.span_end_us = r
                .get("span_end_us")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0);
            report.ranks.push(t);
        }
        Ok(report)
    }

    /// Validate a metrics JSON document produced by
    /// [`MetricsReport::to_json`]: checks the schema version (v1 and v2
    /// both parse), the per-rank shape, and — on v2 — every histogram's
    /// invariants (bucket indices monotone and summing to the declared
    /// count, percentiles `p50 ≤ p95 ≤ p99 ≤ max`). Returns a shallow
    /// summary for the CLI `trace-check` subcommand and CI.
    pub fn parse_json(text: &str) -> Result<ParsedMetrics, String> {
        let v = crate::json::parse(text)?;
        let schema = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema_version")? as u32;
        let report = MetricsReport::from_json(text)?;
        let declared = v.get("nranks").and_then(JsonValue::as_u64).unwrap_or(0) as usize;
        if declared != report.ranks.len() {
            return Err(format!(
                "nranks declares {declared} ranks, document has {}",
                report.ranks.len()
            ));
        }
        let mut out = ParsedMetrics {
            schema,
            nranks: declared,
            rank_ids: Vec::new(),
            phase_names: Vec::new(),
            hist_names: Vec::new(),
        };
        for r in &report.ranks {
            out.rank_ids.push(r.rank);
            for c in Component::ALL {
                if r.component_secs(c) > 0.0 && !out.phase_names.iter().any(|p| p == c.label()) {
                    out.phase_names.push(c.label().to_owned());
                }
            }
            for name in r.span_hist.keys() {
                if !out.hist_names.contains(name) {
                    out.hist_names.push(name.clone());
                }
            }
        }
        out.hist_names.sort();
        Ok(out)
    }
}

/// Shallow, validation-oriented view of a parsed metrics document (used by
/// the CLI `trace-check` subcommand and CI).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedMetrics {
    /// Schema version the document declared (1 or 2).
    pub schema: u32,
    /// Declared rank count.
    pub nranks: usize,
    /// Rank ids present in the `ranks` array.
    pub rank_ids: Vec<usize>,
    /// Component labels with nonzero recorded seconds on at least one
    /// rank — the pipeline phases the document covers.
    pub phase_names: Vec<String>,
    /// Span names carrying a duration histogram (schema v2; sorted).
    pub hist_names: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session() -> TraceSession {
        let session = TraceSession::virtual_time();
        for rank in 0..3usize {
            let rec = session.recorder(rank);
            rec.record_span_at(
                Component::SpGemm,
                "summa.block",
                Track::Rank,
                0.0,
                1.0 + rank as f64,
                &[],
            );
            rec.record_span_at(
                Component::Align,
                "align.worker",
                Track::AlignWorker(0),
                0.0,
                100.0, // must NOT count toward component seconds
                &[],
            );
            rec.record_comm_at(CommOp::Broadcast, 100 * (rank as u64 + 1), 2, 0.5, 0.0);
            rec.record_comm_at(CommOp::Broadcast, 50, 2, 0.25, 1.0);
            rec.add_counter("aligned_pairs", 10.0 * (rank as f64 + 1.0));
        }
        session
    }

    #[test]
    fn aggregates_main_track_only() {
        let report = MetricsReport::from_session(&sample_session());
        assert_eq!(report.nranks(), 3);
        assert!(report.virtual_time);
        let r1 = &report.ranks[1];
        assert!((r1.component_secs(Component::SpGemm) - 2.0).abs() < 1e-9);
        // Worker sub-track span excluded from accounting.
        assert_eq!(r1.component_secs(Component::Align), 0.0);
        let bt = r1.comm_totals(CommOp::Broadcast);
        assert_eq!(bt.count, 2);
        assert_eq!(bt.bytes, 250);
        assert!((bt.wait_s - 0.75).abs() < 1e-12);
        assert_eq!(r1.counter("aligned_pairs"), 20.0);
        assert_eq!(report.total_bytes(CommOp::Broadcast), 100 + 200 + 300 + 150);
    }

    #[test]
    fn imbalance_views() {
        let report = MetricsReport::from_session(&sample_session());
        let imb = report.component_imbalance(Component::SpGemm).unwrap();
        assert_eq!(imb.min, 1.0);
        assert_eq!(imb.max, 3.0);
        let pairs = report.counter_imbalance("aligned_pairs").unwrap();
        assert_eq!(pairs.avg, 20.0);
        assert!((pairs.imbalance_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_validates() {
        let report = MetricsReport::from_session(&sample_session());
        let text = report.to_json();
        let parsed = MetricsReport::parse_json(&text).unwrap();
        assert_eq!(parsed.nranks, 3);
        assert_eq!(parsed.rank_ids, vec![0, 1, 2]);
        // Spot-check raw JSON fields through the generic parser too.
        let v = crate::json::parse(&text).unwrap();
        let rank0 = &v.get("ranks").unwrap().as_array().unwrap()[0];
        assert_eq!(
            rank0
                .get("comm")
                .unwrap()
                .get("broadcast")
                .unwrap()
                .get("bytes")
                .unwrap()
                .as_u64(),
            Some(150)
        );
        assert_eq!(
            rank0
                .get("counters")
                .unwrap()
                .get("aligned_pairs")
                .unwrap()
                .as_f64(),
            Some(10.0)
        );
    }

    #[test]
    fn schema_version_is_enforced() {
        let bad = r#"{"schema_version":999,"nranks":0,"ranks":[]}"#;
        assert!(MetricsReport::parse_json(bad).is_err());
    }

    #[test]
    fn full_report_round_trips_through_json() {
        let report = MetricsReport::from_session(&sample_session());
        let back = MetricsReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn v2_documents_carry_histograms_and_worker_seconds() {
        let report = MetricsReport::from_session(&sample_session());
        let parsed = MetricsReport::parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed.schema, METRICS_SCHEMA_VERSION);
        assert_eq!(
            parsed.hist_names,
            vec!["align.worker".to_string(), "summa.block".to_string()]
        );
        let back = MetricsReport::from_json(&report.to_json()).unwrap();
        let r1 = &back.ranks[1];
        assert_eq!(r1.span_hist["summa.block"].count(), 1);
        assert_eq!(r1.span_hist["summa.block"].max_us(), 2_000_000);
        // The worker sub-track's busy seconds are reported per label.
        assert!((r1.worker_seconds["align-worker 0"] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn v1_documents_still_parse() {
        // A v1 document has no span_hist / worker_seconds sections.
        let v1 = r#"{"schema_version":1,"virtual_time":true,"nranks":1,"ranks":[{"rank":0,
            "component_seconds":{"align":1.0,"spgemm":2.0,"sparse-other":0.0,"io":0.0,
            "cwait":0.5,"other":0.0},
            "comm":{"broadcast":{"count":1,"bytes":10,"wait_seconds":0.1},
            "all_gather":{"count":0,"bytes":0,"wait_seconds":0.0},
            "gather":{"count":0,"bytes":0,"wait_seconds":0.0},
            "all_to_allv":{"count":0,"bytes":0,"wait_seconds":0.0},
            "all_reduce":{"count":0,"bytes":0,"wait_seconds":0.0},
            "barrier":{"count":0,"bytes":0,"wait_seconds":0.0},
            "send_to":{"count":0,"bytes":0,"wait_seconds":0.0},
            "recv_from":{"count":0,"bytes":0,"wait_seconds":0.0}},
            "counters":{"aligned_pairs":7.0},"span_end_us":3000000}]}"#;
        let parsed = MetricsReport::parse_json(v1).unwrap();
        assert_eq!(parsed.schema, 1);
        assert_eq!(parsed.nranks, 1);
        assert!(parsed.hist_names.is_empty());
        let report = MetricsReport::from_json(v1).unwrap();
        assert_eq!(report.ranks[0].counter("aligned_pairs"), 7.0);
        assert!(report.ranks[0].span_hist.is_empty());
    }

    #[test]
    fn broken_histogram_invariants_fail_validation() {
        let report = MetricsReport::from_session(&sample_session());
        let text = report.to_json();
        // Corrupt one histogram's declared count.
        let bad = text.replacen("\"count\":1,", "\"count\":4,", 1);
        assert_ne!(bad, text);
        assert!(MetricsReport::parse_json(&bad).is_err());
    }

    #[test]
    fn empty_report_is_sane() {
        let report = MetricsReport::from_session(&TraceSession::new());
        assert_eq!(report.nranks(), 0);
        assert!(report.component_imbalance(Component::Align).is_none());
        let parsed = MetricsReport::parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed.nranks, 0);
    }
}
