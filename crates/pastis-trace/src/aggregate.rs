//! Cross-rank aggregation: merge per-rank metrics into one cluster view.
//!
//! A production run writes one metrics JSON per launcher invocation (all
//! local ranks), or one file per node at scale. [`ClusterReport`] merges
//! any number of [`MetricsReport`]s into a single report carrying
//! per-phase imbalance factors ([`PhaseStat`], Fig. 7's metric), the
//! top-k slowest ranks and workers, and cluster-wide span-duration
//! histograms (element-wise merged — the order files are merged in does
//! not change any number). The `pastis analyze` subcommand, the
//! `table2_io_cwait` / `fig7_loadbalance` generators, and the pipeline's
//! straggler scan all consume this one aggregation path.

use std::collections::BTreeMap;

use crate::component::{Component, ImbalanceStats};
use crate::hist::DurationHistogram;
use crate::metrics::MetricsReport;
use crate::recorder::CommOp;
use crate::TraceSession;

/// Per-rank values of one named phase with their cross-rank summary.
///
/// This is the aggregator's unit of straggler analysis: the pipeline's
/// end-of-run scan and Fig. 7's imbalance bars are both a `PhaseStat`
/// over different value vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase (span) name.
    pub name: String,
    /// One value per rank, in `rank_ids` order.
    pub per_rank: Vec<f64>,
    /// min/avg/max/stddev summary of `per_rank`.
    pub stats: ImbalanceStats,
}

impl PhaseStat {
    /// Build from per-rank values. Panics on an empty slice.
    pub fn from_values(name: impl Into<String>, per_rank: &[f64]) -> PhaseStat {
        PhaseStat {
            name: name.into(),
            per_rank: per_rank.to_vec(),
            stats: ImbalanceStats::from_values(per_rank),
        }
    }

    /// Median of the per-rank values (average of the middle two when the
    /// rank count is even). Uses the IEEE total order so a NaN value
    /// (a rank that recorded garbage) sorts last instead of panicking
    /// mid-aggregation; downstream consumers guard against a NaN result.
    pub fn median(&self) -> f64 {
        let mut sorted = self.per_rank.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }

    /// The `max/avg` load-imbalance factor (Fig. 7's y-axis).
    pub fn imbalance_factor(&self) -> f64 {
        self.stats.imbalance_factor()
    }

    /// Indices of ranks whose value exceeds
    /// `max(factor × median, min_abs)` — the straggler rule: the median
    /// baseline resists one extreme rank dragging the average up, and the
    /// absolute floor keeps trivial runs from flagging timing noise.
    pub fn outliers(&self, factor: f64, min_abs: f64) -> Vec<usize> {
        let threshold = (factor * self.median()).max(min_abs);
        self.per_rank
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// Sum over ranks.
    pub fn total(&self) -> f64 {
        self.per_rank.iter().sum()
    }
}

/// The merged cross-rank cluster report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterReport {
    /// All ranks merged into one [`MetricsReport`], sorted by rank id.
    pub merged: MetricsReport,
    /// Per-phase (span name) seconds across ranks, sorted by name. The
    /// per-rank seconds are each rank's histogram sum for that span name,
    /// so worker-track phases aggregate alongside main-track ones.
    pub phases: Vec<PhaseStat>,
    /// Cluster-wide duration histogram per span name (all ranks merged).
    pub hist: BTreeMap<String, DurationHistogram>,
    /// Ranks by descending main-track busy seconds, `(rank, seconds)`.
    pub slowest_ranks: Vec<(usize, f64)>,
    /// Worker tracks by descending busy seconds,
    /// `(rank, track label, seconds)`.
    pub slowest_workers: Vec<(usize, String, f64)>,
    /// End of the last recorded event across ranks, seconds since epoch.
    pub wall_s: f64,
}

impl ClusterReport {
    /// Merge per-rank metrics reports (e.g. one parsed JSON per node)
    /// into one cluster report. Rank ids must be disjoint across inputs.
    pub fn from_reports(reports: &[MetricsReport]) -> Result<ClusterReport, String> {
        let mut merged = MetricsReport {
            ranks: Vec::new(),
            virtual_time: reports.iter().any(|r| r.virtual_time),
        };
        for r in reports {
            for t in &r.ranks {
                if merged.ranks.iter().any(|m| m.rank == t.rank) {
                    return Err(format!("rank {} appears in more than one report", t.rank));
                }
                merged.ranks.push(t.clone());
            }
        }
        merged.ranks.sort_by_key(|t| t.rank);

        let nranks = merged.ranks.len();
        let mut phases = Vec::new();
        let mut hist: BTreeMap<String, DurationHistogram> = BTreeMap::new();
        if nranks > 0 {
            let mut names: Vec<&String> = merged
                .ranks
                .iter()
                .flat_map(|t| t.span_hist.keys())
                .collect();
            names.sort();
            names.dedup();
            let names: Vec<String> = names.into_iter().cloned().collect();
            for name in &names {
                let per_rank: Vec<f64> = merged
                    .ranks
                    .iter()
                    .map(|t| {
                        t.span_hist
                            .get(name)
                            .map_or(0.0, |h| h.sum_us() as f64 * 1e-6)
                    })
                    .collect();
                phases.push(PhaseStat::from_values(name.clone(), &per_rank));
                let mut h = DurationHistogram::new();
                for t in &merged.ranks {
                    if let Some(rh) = t.span_hist.get(name) {
                        h.merge(rh);
                    }
                }
                hist.insert(name.clone(), h);
            }
        }

        let mut slowest_ranks: Vec<(usize, f64)> = merged
            .ranks
            .iter()
            .map(|t| (t.rank, t.component_s.iter().sum()))
            .collect();
        slowest_ranks.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

        let mut slowest_workers: Vec<(usize, String, f64)> = merged
            .ranks
            .iter()
            .flat_map(|t| {
                t.worker_seconds
                    .iter()
                    .map(|(label, &s)| (t.rank, label.clone(), s))
            })
            .collect();
        slowest_workers.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap()
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });

        let wall_s = merged
            .ranks
            .iter()
            .map(|t| t.span_end_us)
            .max()
            .unwrap_or(0) as f64
            * 1e-6;

        Ok(ClusterReport {
            merged,
            phases,
            hist,
            slowest_ranks,
            slowest_workers,
            wall_s,
        })
    }

    /// Aggregate a live session (equivalent to exporting every rank's
    /// metrics and merging the files).
    pub fn from_session(session: &TraceSession) -> ClusterReport {
        ClusterReport::from_reports(&[MetricsReport::from_session(session)])
            .expect("a single session cannot duplicate ranks")
    }

    /// Number of ranks merged.
    pub fn nranks(&self) -> usize {
        self.merged.ranks.len()
    }

    /// Cross-rank stats for a component's main-track seconds.
    pub fn component(&self, c: Component) -> Option<ImbalanceStats> {
        self.merged.component_imbalance(c)
    }

    /// Cross-rank stats for a named counter.
    pub fn counter(&self, name: &str) -> Option<ImbalanceStats> {
        self.merged.counter_imbalance(name)
    }

    /// The named phase's stats, if any rank recorded it.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// The top-`k` slowest ranks by main-track busy seconds.
    pub fn top_ranks(&self, k: usize) -> &[(usize, f64)] {
        &self.slowest_ranks[..k.min(self.slowest_ranks.len())]
    }

    /// The top-`k` slowest worker tracks by busy seconds.
    pub fn top_workers(&self, k: usize) -> &[(usize, String, f64)] {
        &self.slowest_workers[..k.min(self.slowest_workers.len())]
    }
}

/// Render a cluster report as the deterministic text block `pastis
/// analyze` prints.
pub fn render_cluster_report(r: &ClusterReport, top_k: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Cluster report: {} rank(s){}",
        r.nranks(),
        if r.merged.virtual_time {
            " [virtual time]"
        } else {
            ""
        }
    );
    let _ = writeln!(out, "wall clock: {:.6} s", r.wall_s);

    let _ = writeln!(
        out,
        "\n{:<24} {:>6} {:>12} {:>12} {:>7} {:>10} {:>10} {:>10}",
        "phase", "n", "total_s", "max_s", "imb", "p50_ms", "p95_ms", "p99_ms"
    );
    for p in &r.phases {
        let h = &r.hist[&p.name];
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>12.6} {:>12.6} {:>7.3} {:>10.3} {:>10.3} {:>10.3}",
            p.name,
            h.count(),
            p.total(),
            p.stats.max,
            p.imbalance_factor(),
            h.p50_us() as f64 * 1e-3,
            h.p95_us() as f64 * 1e-3,
            h.p99_us() as f64 * 1e-3,
        );
    }

    let _ = writeln!(
        out,
        "\n{:<24} {:>12} {:>12} {:>7}",
        "component", "avg_s", "max_s", "imb"
    );
    for c in Component::ALL {
        if let Some(s) = r.component(c) {
            if s.max > 0.0 {
                let _ = writeln!(
                    out,
                    "{:<24} {:>12.6} {:>12.6} {:>7.3}",
                    c.label(),
                    s.avg,
                    s.max,
                    s.imbalance_factor()
                );
            }
        }
    }

    let _ = writeln!(
        out,
        "\ntop {} slowest ranks (main-track busy seconds):",
        top_k
    );
    for (rank, s) in r.top_ranks(top_k) {
        let _ = writeln!(out, "  rank {rank:<6} {s:.6} s");
    }
    if !r.slowest_workers.is_empty() {
        let _ = writeln!(out, "top {} slowest workers (busy seconds):", top_k);
        for (rank, label, s) in r.top_workers(top_k) {
            let _ = writeln!(out, "  rank {rank} {label:<20} {s:.6} s");
        }
    }

    let mut comm_lines = String::new();
    for op in CommOp::ALL {
        let count: u64 = r.merged.ranks.iter().map(|t| t.comm_totals(op).count).sum();
        if count > 0 {
            let _ = writeln!(
                comm_lines,
                "  {:<12} count {:>8}  bytes {:>12}  wait {:.6} s",
                op.label(),
                count,
                r.merged.total_bytes(op),
                r.merged.total_wait_s(op)
            );
        }
    }
    if !comm_lines.is_empty() {
        let _ = writeln!(out, "comm totals (all ranks):");
        out.push_str(&comm_lines);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{TraceSession, Track};

    fn session() -> TraceSession {
        let s = TraceSession::virtual_time();
        for rank in 0..4usize {
            let rec = s.recorder(rank);
            rec.record_span_at(
                Component::SpGemm,
                "summa.block",
                Track::Rank,
                0.0,
                1.0 + rank as f64 * 0.5,
                &[],
            );
            rec.record_span_at(Component::Align, "align.batch", Track::Rank, 2.0, 2.0, &[]);
            rec.record_span_at(
                Component::Align,
                "align.unit",
                Track::PoolWorker(rank as u32),
                2.0,
                0.5 * (rank + 1) as f64,
                &[],
            );
            rec.add_counter("aligned_pairs", 100.0 * (rank + 1) as f64);
        }
        s
    }

    #[test]
    fn phase_stat_median_and_outliers() {
        let p = PhaseStat::from_values("x", &[1.0, 1.0, 9.0, 1.0]);
        assert_eq!(p.median(), 1.0);
        assert_eq!(p.outliers(3.0, 1e-3), vec![2]);
        assert!((p.imbalance_factor() - 3.0).abs() < 1e-12);
        // The absolute floor suppresses noise-scale flags.
        let tiny = PhaseStat::from_values("y", &[1e-7, 1e-7, 9e-7]);
        assert!(tiny.outliers(3.0, 1e-3).is_empty());
    }

    #[test]
    fn phase_stat_tolerates_nan_and_zero_medians() {
        // A NaN per-rank value must not panic the aggregation: it sorts
        // last under the IEEE total order, the median stays finite when
        // the healthy majority is, and the imbalance factor is defined.
        let p = PhaseStat::from_values("x", &[1.0, f64::NAN, 1.0]);
        assert_eq!(p.median(), 1.0);
        assert_eq!(p.imbalance_factor(), 1.0);
        // All-NaN: median is NaN but outliers degrade to "none flagged"
        // (NaN threshold comparisons are false) instead of panicking.
        let all_nan = PhaseStat::from_values("y", &[f64::NAN, f64::NAN]);
        assert!(all_nan.median().is_nan());
        assert!(all_nan.outliers(3.0, 1e-3).is_empty());
        assert_eq!(all_nan.imbalance_factor(), 1.0);
        // Zero median (empty phase on every rank): factor 1.0, no inf.
        let zero = PhaseStat::from_values("z", &[0.0, 0.0, 0.0]);
        assert_eq!(zero.median(), 0.0);
        assert_eq!(zero.imbalance_factor(), 1.0);
        assert!(zero.outliers(3.0, 1e-3).is_empty());
    }

    #[test]
    fn cluster_report_merges_phases_and_ranks() {
        let r = ClusterReport::from_session(&session());
        assert_eq!(r.nranks(), 4);
        let block = r.phase("summa.block").unwrap();
        assert_eq!(block.per_rank, vec![1.0, 1.5, 2.0, 2.5]);
        assert!((block.imbalance_factor() - 2.5 / 1.75).abs() < 1e-12);
        // Merged histogram counts every rank's spans.
        assert_eq!(r.hist["summa.block"].count(), 4);
        // Rank 3 is the busiest (2.5 + 2.0 main-track seconds).
        assert_eq!(r.top_ranks(1), &[(3, 4.5)]);
        // Its pool worker is also the busiest worker track.
        let (rank, label, secs) = &r.top_workers(1)[0];
        assert_eq!((*rank, label.as_str()), (3, "pool-worker 3"));
        assert!((secs - 2.0).abs() < 1e-9);
        // Last event ends at 4.0 s (align.batch / align.unit on rank 3).
        assert!((r.wall_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_matches_metrics_report_views() {
        let sess = session();
        let cluster = ClusterReport::from_session(&sess);
        let direct = MetricsReport::from_session(&sess);
        assert_eq!(
            cluster.component(Component::Align),
            direct.component_imbalance(Component::Align)
        );
        assert_eq!(
            cluster.counter("aligned_pairs"),
            direct.counter_imbalance("aligned_pairs")
        );
    }

    #[test]
    fn merge_rejects_duplicate_ranks() {
        let a = MetricsReport::from_session(&session());
        assert!(ClusterReport::from_reports(&[a.clone(), a]).is_err());
    }

    #[test]
    fn merge_of_split_reports_equals_single_report() {
        // Split the 4-rank report into two 2-rank files and merge: every
        // aggregate must match the unsplit path.
        let full = MetricsReport::from_session(&session());
        let mut lo = full.clone();
        let mut hi = full.clone();
        lo.ranks.retain(|t| t.rank < 2);
        hi.ranks.retain(|t| t.rank >= 2);
        let merged = ClusterReport::from_reports(&[hi, lo]).unwrap();
        let whole = ClusterReport::from_reports(&[full]).unwrap();
        assert_eq!(merged, whole);
    }

    #[test]
    fn rendered_report_is_deterministic() {
        let a = render_cluster_report(&ClusterReport::from_session(&session()), 3);
        let b = render_cluster_report(&ClusterReport::from_session(&session()), 3);
        assert_eq!(a, b);
        assert!(a.contains("summa.block"));
        assert!(a.contains("pool-worker 3"));
    }
}
