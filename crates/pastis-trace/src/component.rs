//! Pipeline components and per-rank imbalance statistics.
//!
//! [`Component`] follows the paper's reporting breakdown (Table IV:
//! Align / SpGEMM / Sparse (all) / IO / Communication wait) and is shared
//! between the telemetry layer (span categories) and `pastis-comm`'s
//! [`TimeBreakdown`](https://docs.rs/pastis-comm) accumulator, which
//! re-exports it. [`ImbalanceStats`] condenses a per-rank metric into the
//! min/avg/max(/stddev) summaries plotted in Figure 7.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Pipeline components timed separately, following the paper's breakdown
/// (Table IV: Align / SpGEMM / Sparse (all) / IO / Communication wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Batch pairwise alignment (GPU in the paper).
    Align,
    /// The SpGEMM proper inside the sparse phase.
    SpGemm,
    /// Other sparse work: k-mer matrix formation, transposes, pruning,
    /// symmetricity handling, output assembly.
    SparseOther,
    /// Parallel file input/output.
    Io,
    /// Waiting on sequence point-to-point transfers ("cwait", Table II).
    CommWait,
    /// Anything else (setup, bookkeeping).
    Other,
}

impl Component {
    /// All components in display order.
    pub const ALL: [Component; 6] = [
        Component::Align,
        Component::SpGemm,
        Component::SparseOther,
        Component::Io,
        Component::CommWait,
        Component::Other,
    ];

    /// Stable dense index into `[0, Component::ALL.len())`, in the order
    /// of [`Component::ALL`].
    pub fn index(self) -> usize {
        match self {
            Component::Align => 0,
            Component::SpGemm => 1,
            Component::SparseOther => 2,
            Component::Io => 3,
            Component::CommWait => 4,
            Component::Other => 5,
        }
    }

    /// Short label used in experiment tables and trace categories.
    pub fn label(self) -> &'static str {
        match self {
            Component::Align => "align",
            Component::SpGemm => "spgemm",
            Component::SparseOther => "sparse-other",
            Component::Io => "io",
            Component::CommWait => "cwait",
            Component::Other => "other",
        }
    }
}

/// Minimum / average / maximum (and dispersion) of a per-rank metric — the
/// vertical bars of Figure 7 and the "Imbalance (%)" rows of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceStats {
    /// Minimum across ranks.
    pub min: f64,
    /// Mean across ranks.
    pub avg: f64,
    /// Maximum across ranks.
    pub max: f64,
    /// Population standard deviation across ranks.
    pub stddev: f64,
}

impl ImbalanceStats {
    /// Compute stats over per-rank values. Panics on an empty slice.
    pub fn from_values(values: &[f64]) -> ImbalanceStats {
        assert!(!values.is_empty(), "imbalance stats need at least one rank");
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / values.len() as f64;
        ImbalanceStats {
            min,
            avg,
            max,
            stddev: var.sqrt(),
        }
    }

    /// Load imbalance as the paper reports it: `(max/avg − 1) × 100` %.
    /// Zero for perfectly balanced work; 0 when the ratio is undefined
    /// (zero, near-zero, or NaN average — empty or trivially small phases).
    pub fn imbalance_pct(&self) -> f64 {
        (self.imbalance_factor() - 1.0) * 100.0
    }

    /// Figure 7's y-axis metric: the `max/avg` load-imbalance factor
    /// (1.0 = perfectly balanced). Defined as 1.0 whenever the ratio is
    /// not a finite number: a zero or NaN average (empty phases, ranks
    /// that recorded nothing) and a subnormal near-zero average whose
    /// quotient overflows to infinity all mean "no measurable work", not
    /// "infinitely imbalanced", and must not propagate inf/NaN into the
    /// straggler counters or the analyze report.
    pub fn imbalance_factor(&self) -> f64 {
        // Anything but a strictly-positive average — zero, negative, or
        // NaN (incomparable) — routes to the defined fallback.
        if self.avg.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return 1.0;
        }
        let f = self.max / self.avg;
        if f.is_finite() {
            f
        } else {
            1.0
        }
    }

    /// Ratio max/min (∞ if min is 0 and max > 0, 1 if both 0).
    pub fn spread(&self) -> f64 {
        if self.min > 0.0 {
            self.max / self.min
        } else if self.max > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

impl fmt::Display for ImbalanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min={:.4} avg={:.4} max={:.4} (imb {:.1}%)",
            self.min,
            self.avg,
            self.max,
            self.imbalance_pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_index_is_dense_and_ordered() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(Component::CommWait.label(), "cwait");
    }

    #[test]
    fn imbalance_stats_match_paper_definition() {
        let s = ImbalanceStats::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.avg, 2.0);
        assert_eq!(s.max, 3.0);
        assert!((s.imbalance_pct() - 50.0).abs() < 1e-12);
        assert!((s.imbalance_factor() - 1.5).abs() < 1e-12);
        assert_eq!(s.spread(), 3.0);
        // Population stddev of {1,2,3} is sqrt(2/3).
        assert!((s.stddev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn imbalance_degenerate_cases() {
        let z = ImbalanceStats::from_values(&[0.0, 0.0]);
        assert_eq!(z.imbalance_pct(), 0.0);
        assert_eq!(z.imbalance_factor(), 1.0);
        assert_eq!(z.spread(), 1.0);
        assert_eq!(z.stddev, 0.0);
        let half = ImbalanceStats::from_values(&[0.0, 2.0]);
        assert_eq!(half.spread(), f64::INFINITY);
        assert_eq!(half.stddev, 1.0);
    }

    #[test]
    fn imbalance_factor_is_defined_for_pathological_averages() {
        // NaN average (a rank reported NaN seconds) must not escape `<= 0`
        // guards: the factor and pct stay at their balanced identities.
        let nan = ImbalanceStats {
            min: 0.0,
            avg: f64::NAN,
            max: 1.0,
            stddev: 0.0,
        };
        assert_eq!(nan.imbalance_factor(), 1.0);
        assert_eq!(nan.imbalance_pct(), 0.0);
        // Subnormal near-zero average: max/avg overflows to inf; a
        // trivially small phase is "no measurable work", factor 1.0.
        let tiny = ImbalanceStats {
            min: 0.0,
            avg: f64::MIN_POSITIVE,
            max: 1.0e300,
            stddev: 0.0,
        };
        assert_eq!(tiny.imbalance_factor(), 1.0);
        // NaN max with a healthy average also stays defined.
        let nan_max = ImbalanceStats {
            min: 0.0,
            avg: 1.0,
            max: f64::NAN,
            stddev: 0.0,
        };
        assert_eq!(nan_max.imbalance_factor(), 1.0);
        // A genuinely imbalanced phase is untouched by the guards.
        let real = ImbalanceStats::from_values(&[1.0, 3.0]);
        assert_eq!(real.imbalance_factor(), 1.5);
    }

    #[test]
    fn balanced_input_has_zero_dispersion() {
        let s = ImbalanceStats::from_values(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.imbalance_factor(), 1.0);
        assert_eq!(s.imbalance_pct(), 0.0);
    }
}
