//! The span/counter name registry — one authoritative list of every
//! telemetry name the workspace emits.
//!
//! Telemetry names are load-bearing: the analytics layer groups
//! histograms by span name ([`crate::hist`]), the critical-path extractor
//! attributes wall-clock to them ([`crate::critical`]), and the CLI's
//! `trace-check` subcommand validates exported files against this
//! registry. A typo'd literal at an emit site would silently create an
//! orphan series, so emit sites reference these constants instead of
//! spelling strings; `trace-check` flags any name outside
//! [`KNOWN_SPANS`] / [`KNOWN_COUNTERS`].
//!
//! When adding a new span or counter: add the constant here, use it at
//! the emit site, and the validators pick it up automatically.

// --- Pipeline phase spans (main track, `Track::Rank`). ---

/// K-mer matrix construction (`A` formation), per rank.
pub const SPAN_KMER_MATRIX: &str = "kmer_matrix";
/// Blocking receive side of the sequence exchange — the paper's "cwait".
pub const SPAN_SEQ_EXCHANGE_RECV: &str = "seq_exchange.recv";
/// One SUMMA output block's sparse phase (broadcasts + local SpGEMM).
pub const SPAN_SUMMA_BLOCK: &str = "summa.block";
/// One output block's batch alignment phase.
pub const SPAN_ALIGN_BATCH: &str = "align.batch";
/// Final similarity-graph assembly.
pub const SPAN_OUTPUT_ASSEMBLY: &str = "output.assembly";
/// Parallel file read (perf-model plane).
pub const SPAN_IO_READ: &str = "io.read";
/// Parallel file write (perf-model plane).
pub const SPAN_IO_WRITE: &str = "io.write";

// --- Sub-track spans (worker occupancy / comm-prefetch path). ---

/// One local SpGEMM stage inside the overlapped SUMMA schedule
/// (`Track::SpGemmWorker`).
pub const SPAN_SPGEMM_STAGE: &str = "spgemm.stage";
/// Posting stage `k+1`'s broadcasts while stage `k` computes
/// (`Track::CommPath`) — the overlap the critical path credits as
/// hidden communication.
pub const SPAN_SUMMA_BCAST_PREFETCH: &str = "summa.bcast.prefetch";
/// One claimed row chunk of the parallel SpGEMM kernel.
pub const SPAN_SPGEMM_ROW_CHUNK: &str = "spgemm.row_chunk";
/// One claimed unit of alignment work on a unified-pool worker.
pub const SPAN_ALIGN_UNIT: &str = "align.unit";
/// One alignment-pool worker's whole-batch occupancy span.
pub const SPAN_ALIGN_WORKER: &str = "align.worker";

// --- Spill spans (memory-budgeted execution). ---

/// Writing one completed output block (or index shard) to the spill
/// directory as a CRC-framed shard.
pub const SPAN_SPILL_WRITE: &str = "spill.write";
/// Streaming a spilled shard back from disk (CRC-verified).
pub const SPAN_SPILL_READ: &str = "spill.read";

// --- Serving-mode spans (`pastis serve`). ---

/// One serve request's admission-to-result latency (opened when the
/// query is admitted, closed when its result is ready) — the series
/// behind the serve p50/p95/p99 report.
pub const SPAN_SERVE_REQUEST: &str = "serve.request";
/// One admission batch's compute: query matrix formation, striped
/// SpGEMM against the loaded index, batch alignment.
pub const SPAN_SERVE_BATCH: &str = "serve.batch";
/// Loading (and CRC-verifying) one persisted index stripe from disk.
pub const SPAN_INDEX_LOAD: &str = "index.load";

// --- Autotuner spans (`--tune auto`). ---

/// One collective tuning decision: window telemetry reduction plus the
/// pure knob computation, at the top of a block-loop iteration.
pub const SPAN_TUNE_DECIDE: &str = "tune.decide";

// --- Baseline pipeline spans. ---

/// MMseqs2-like baseline: k-mer index build.
pub const SPAN_INDEX_BUILD: &str = "index.build";
/// MMseqs2-like baseline: prefilter scan.
pub const SPAN_PREFILTER: &str = "prefilter";
/// DIAMOND-like baseline: seed-join packaging for one (r, c) pair.
pub const SPAN_PACKAGE_SEED_JOIN: &str = "package.seed_join";
/// DIAMOND-like baseline: alignment of one joined chunk.
pub const SPAN_JOIN_ALIGN: &str = "join.align";

/// Every span name the workspace emits, in display order.
pub const KNOWN_SPANS: &[&str] = &[
    SPAN_KMER_MATRIX,
    SPAN_SEQ_EXCHANGE_RECV,
    SPAN_SUMMA_BLOCK,
    SPAN_ALIGN_BATCH,
    SPAN_OUTPUT_ASSEMBLY,
    SPAN_IO_READ,
    SPAN_IO_WRITE,
    SPAN_SPGEMM_STAGE,
    SPAN_SUMMA_BCAST_PREFETCH,
    SPAN_SPGEMM_ROW_CHUNK,
    SPAN_ALIGN_UNIT,
    SPAN_ALIGN_WORKER,
    SPAN_SPILL_WRITE,
    SPAN_SPILL_READ,
    SPAN_SERVE_REQUEST,
    SPAN_SERVE_BATCH,
    SPAN_INDEX_LOAD,
    SPAN_TUNE_DECIDE,
    SPAN_INDEX_BUILD,
    SPAN_PREFILTER,
    SPAN_PACKAGE_SEED_JOIN,
    SPAN_JOIN_ALIGN,
];

// --- Work counters. ---

/// Candidate pairs surviving the sparse phase.
pub const CTR_CANDIDATES: &str = "candidates";
/// Pairs actually aligned.
pub const CTR_ALIGNED_PAIRS: &str = "aligned_pairs";
/// DP cells computed across all alignments.
pub const CTR_CELLS: &str = "cells";
/// Pairs passing the similarity thresholds.
pub const CTR_SIMILAR_PAIRS: &str = "similar_pairs";
/// Wall seconds in the alignment component.
pub const CTR_ALIGN_SECONDS: &str = "align_seconds";
/// Wall seconds in the sparse components (SpGEMM + other).
pub const CTR_SPARSE_SECONDS: &str = "sparse_seconds";
/// CPU seconds summed over alignment workers (vs the wall split).
pub const CTR_ALIGN_CPU_SECONDS: &str = "align_cpu_seconds";
/// MMseqs2-like baseline: candidates emitted by the prefilter.
pub const CTR_PREFILTER_CANDIDATES: &str = "prefilter_candidates";

// --- Serving-mode counters (`pastis serve`). ---

/// Queries admitted to the serving loop.
pub const CTR_SERVE_REQUESTS: &str = "serve.requests";
/// Admission batches executed.
pub const CTR_SERVE_BATCHES: &str = "serve.batches";
/// Queries answered from the content-keyed result cache.
pub const CTR_SERVE_CACHE_HIT: &str = "serve.cache.hit";
/// Queries that missed the result cache (computed fresh).
pub const CTR_SERVE_CACHE_MISS: &str = "serve.cache.miss";
/// Cache entries evicted to respect the LRU bound.
pub const CTR_SERVE_CACHE_EVICTIONS: &str = "serve.cache.evictions";
/// Persisted index stripes loaded from disk.
pub const CTR_INDEX_STRIPES_LOADED: &str = "index.stripes_loaded";
/// MMseqs2-like baseline: prefilter tables reused from a persisted
/// index directory instead of being rebuilt.
pub const CTR_INDEX_PREFILTER_REUSED: &str = "index.prefilter_reused";

// --- Engine counters. ---

/// Units the unified pool's workers claimed from the other engine's
/// backlog.
pub const CTR_POOL_STEALS: &str = "pool.steals";
/// Numeric id of the SIMD backend the alignment kernel ran on.
pub const CTR_ALIGN_SIMD_BACKEND: &str = "align.simd_backend";
/// Lanes promoted from i16 to i32 on saturation rescue.
pub const CTR_ALIGN_LANE_PROMOTIONS: &str = "align.lane_promotions";
/// SpGEMM kernel dispatches: auto selector invoked.
pub const CTR_SPGEMM_KERNEL_AUTO: &str = "spgemm.kernel.auto";
/// SpGEMM kernel dispatches: hash kernel.
pub const CTR_SPGEMM_KERNEL_HASH: &str = "spgemm.kernel.hash";
/// SpGEMM kernel dispatches: heap kernel.
pub const CTR_SPGEMM_KERNEL_HEAP: &str = "spgemm.kernel.heap";
/// SpGEMM kernel dispatches: parallel row-partitioned kernel.
pub const CTR_SPGEMM_KERNEL_PARALLEL: &str = "spgemm.kernel.parallel";

// --- Checkpoint / resume counters. ---

/// Block index the run resumed from (0 when fresh).
pub const CTR_RESUME_FROM_BLOCK: &str = "resume.from_block";
/// Checkpoint block shards written by this rank.
pub const CTR_CHECKPOINT_BLOCKS_WRITTEN: &str = "checkpoint.blocks_written";
/// Baseline checkpoint units written by this rank.
pub const CTR_CHECKPOINT_UNITS_WRITTEN: &str = "checkpoint.units_written";
/// Best-effort checkpoint writes that failed (non-fatal).
pub const CTR_CHECKPOINT_WRITE_FAILED: &str = "checkpoint.write_failed";

// --- Straggler scan counters. ---

/// Median of the all-gathered per-rank block seconds.
pub const CTR_STRAGGLER_MEDIAN_SECONDS: &str = "straggler.median_seconds";
/// This rank's own block seconds as seen by the scan.
pub const CTR_STRAGGLER_SELF_SECONDS: &str = "straggler.self_seconds";
/// 1.0 when the scan flagged this rank as a straggler.
pub const CTR_STRAGGLER_FLAGGED: &str = "straggler.flagged";
/// Cross-rank max/avg imbalance factor of the block seconds (identical
/// on every rank; recorded once per rank for the aggregator).
pub const CTR_STRAGGLER_IMBALANCE_FACTOR: &str = "straggler.imbalance_factor";

// --- Fault-injection counters (`FaultyComm`). ---

/// Injected op delays taken.
pub const CTR_FAULT_DELAYS: &str = "fault.delays";
/// Injected p2p frame drops.
pub const CTR_FAULT_DROPS: &str = "fault.drops";
/// Injected p2p frame corruptions.
pub const CTR_FAULT_CORRUPTS: &str = "fault.corrupts";
/// Frames rejected by CRC validation on receive.
pub const CTR_FAULT_CRC_REJECTS: &str = "fault.crc_rejects";
/// Receive retries after a reject or drop.
pub const CTR_FAULT_RETRIES: &str = "fault.retries";
/// Injected op stalls taken.
pub const CTR_FAULT_STALLS: &str = "fault.stalls";
/// Baseline best-effort checkpoint saves that hit an I/O error
/// (mirrors [`CTR_CHECKPOINT_WRITE_FAILED`] into the fault family so the
/// end-of-run report can warn about degraded restartability).
pub const CTR_FAULT_CKPT_SAVE_FAILED: &str = "fault.ckpt_save_failed";

// --- Memory budget / spill counters. ---

/// Bytes of completed output blocks and index shards written to spill.
pub const CTR_SPILL_BYTES_OUT: &str = "spill.bytes_out";
/// Bytes streamed back from spill on demand.
pub const CTR_SPILL_BYTES_IN: &str = "spill.bytes_in";
/// Shards written to the spill directory.
pub const CTR_SPILL_BLOCKS_OUT: &str = "spill.blocks_out";
/// Shards streamed back (CRC-verified) from the spill directory.
pub const CTR_SPILL_BLOCKS_IN: &str = "spill.blocks_in";
/// Spilled shards rejected by CRC validation on readback.
pub const CTR_SPILL_CRC_REJECTS: &str = "spill.crc_rejects";
/// Output blocks recomputed because their spilled shard was unreadable.
pub const CTR_SPILL_RECOMPUTES: &str = "spill.recomputes";
/// Peak live bytes the memory accountant observed on this rank.
pub const CTR_MEM_HIGH_WATER: &str = "mem.high_water";
/// Blocks run with broadcast prefetch paused under budget pressure.
pub const CTR_MEM_BACKPRESSURE_PREFETCH_PAUSED: &str = "mem.backpressure.prefetch_paused";
/// Align batches split into smaller sequential slices under pressure.
pub const CTR_MEM_BACKPRESSURE_BATCH_SHRUNK: &str = "mem.backpressure.batch_shrunk";

// --- Autotuner counters (`--tune`). ---

/// Collective tuning decisions evaluated (one per block-loop window).
pub const CTR_TUNE_DECISIONS: &str = "tune.decisions";
/// Decisions that actually re-split the engine caps mid-run.
pub const CTR_TUNE_RESPLITS: &str = "tune.resplits";
/// Current SpGEMM-engine worker cap after a seed or re-split.
pub const CTR_TUNE_SPGEMM_CAP: &str = "tune.spgemm_cap";
/// Current align-engine worker cap after a seed or re-split.
pub const CTR_TUNE_ALIGN_CAP: &str = "tune.align_cap";
/// Current pre-blocking lookahead depth after a tuning decision.
pub const CTR_TUNE_LOOKAHEAD: &str = "tune.lookahead";
/// Current serve admission-batch size after a seed or adaptation.
pub const CTR_TUNE_SERVE_BATCH: &str = "tune.serve_batch";

// --- Spill fault-injection counters (`FaultyStore`). ---

/// Injected spill-write corruptions.
pub const CTR_FAULT_SPILL_CORRUPTS: &str = "fault.spill.corrupts";
/// Injected spill-write disk-full failures.
pub const CTR_FAULT_SPILL_DISK_FULL: &str = "fault.spill.disk_full";
/// Injected spill-write short (truncated) writes.
pub const CTR_FAULT_SPILL_SHORT_WRITES: &str = "fault.spill.short_writes";
/// Injected spill-write stalls taken.
pub const CTR_FAULT_SPILL_STALLS: &str = "fault.spill.stalls";

/// Every counter name the workspace emits, in display order.
pub const KNOWN_COUNTERS: &[&str] = &[
    CTR_CANDIDATES,
    CTR_ALIGNED_PAIRS,
    CTR_CELLS,
    CTR_SIMILAR_PAIRS,
    CTR_ALIGN_SECONDS,
    CTR_SPARSE_SECONDS,
    CTR_ALIGN_CPU_SECONDS,
    CTR_PREFILTER_CANDIDATES,
    CTR_SERVE_REQUESTS,
    CTR_SERVE_BATCHES,
    CTR_SERVE_CACHE_HIT,
    CTR_SERVE_CACHE_MISS,
    CTR_SERVE_CACHE_EVICTIONS,
    CTR_INDEX_STRIPES_LOADED,
    CTR_INDEX_PREFILTER_REUSED,
    CTR_POOL_STEALS,
    CTR_ALIGN_SIMD_BACKEND,
    CTR_ALIGN_LANE_PROMOTIONS,
    CTR_SPGEMM_KERNEL_AUTO,
    CTR_SPGEMM_KERNEL_HASH,
    CTR_SPGEMM_KERNEL_HEAP,
    CTR_SPGEMM_KERNEL_PARALLEL,
    CTR_RESUME_FROM_BLOCK,
    CTR_CHECKPOINT_BLOCKS_WRITTEN,
    CTR_CHECKPOINT_UNITS_WRITTEN,
    CTR_CHECKPOINT_WRITE_FAILED,
    CTR_STRAGGLER_MEDIAN_SECONDS,
    CTR_STRAGGLER_SELF_SECONDS,
    CTR_STRAGGLER_FLAGGED,
    CTR_STRAGGLER_IMBALANCE_FACTOR,
    CTR_FAULT_DELAYS,
    CTR_FAULT_DROPS,
    CTR_FAULT_CORRUPTS,
    CTR_FAULT_CRC_REJECTS,
    CTR_FAULT_RETRIES,
    CTR_FAULT_STALLS,
    CTR_FAULT_CKPT_SAVE_FAILED,
    CTR_SPILL_BYTES_OUT,
    CTR_SPILL_BYTES_IN,
    CTR_SPILL_BLOCKS_OUT,
    CTR_SPILL_BLOCKS_IN,
    CTR_SPILL_CRC_REJECTS,
    CTR_SPILL_RECOMPUTES,
    CTR_MEM_HIGH_WATER,
    CTR_MEM_BACKPRESSURE_PREFETCH_PAUSED,
    CTR_MEM_BACKPRESSURE_BATCH_SHRUNK,
    CTR_TUNE_DECISIONS,
    CTR_TUNE_RESPLITS,
    CTR_TUNE_SPGEMM_CAP,
    CTR_TUNE_ALIGN_CAP,
    CTR_TUNE_LOOKAHEAD,
    CTR_TUNE_SERVE_BATCH,
    CTR_FAULT_SPILL_CORRUPTS,
    CTR_FAULT_SPILL_DISK_FULL,
    CTR_FAULT_SPILL_SHORT_WRITES,
    CTR_FAULT_SPILL_STALLS,
];

/// Whether `name` is a registered span name.
pub fn is_known_span(name: &str) -> bool {
    KNOWN_SPANS.contains(&name)
}

/// Whether `name` is a registered counter name.
pub fn is_known_counter(name: &str) -> bool {
    KNOWN_COUNTERS.contains(&name)
}

/// The pipeline phases the critical-path extractor attributes end-to-end
/// wall-clock to, in pipeline order. Every main-track second of a
/// production run falls under one of these (plus the comm-prefetch track's
/// [`SPAN_SUMMA_BCAST_PREFETCH`], reported separately as hidden time).
pub const CRITICAL_PHASES: &[&str] = &[
    SPAN_IO_READ,
    SPAN_KMER_MATRIX,
    SPAN_SEQ_EXCHANGE_RECV,
    SPAN_SUMMA_BLOCK,
    SPAN_ALIGN_BATCH,
    SPAN_OUTPUT_ASSEMBLY,
    SPAN_IO_WRITE,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_are_duplicate_free() {
        for (i, a) in KNOWN_SPANS.iter().enumerate() {
            assert!(!KNOWN_SPANS[..i].contains(a), "duplicate span {a}");
        }
        for (i, a) in KNOWN_COUNTERS.iter().enumerate() {
            assert!(!KNOWN_COUNTERS[..i].contains(a), "duplicate counter {a}");
        }
    }

    #[test]
    fn lookups_work() {
        assert!(is_known_span(SPAN_SUMMA_BLOCK));
        assert!(is_known_counter(CTR_POOL_STEALS));
        assert!(!is_known_span("summa.blok"));
        assert!(!is_known_counter("pool.steal"));
    }

    #[test]
    fn critical_phases_are_registered_spans() {
        for p in CRITICAL_PHASES {
            assert!(is_known_span(p), "{p} not in KNOWN_SPANS");
        }
    }
}
