//! Minimal JSON writer and reader.
//!
//! The workspace builds offline against vendored dependency stubs, so no
//! serializer is available; the exporters hand-roll their JSON through
//! [`JsonWriter`], and the CLI's `trace-check` subcommand validates emitted
//! files with the small recursive-descent parser in [`parse`].
//!
//! Output is deterministic: object keys are written in insertion order,
//! floats use Rust's shortest-roundtrip `Display`, and timestamps are
//! integer microseconds.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with escaping).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number. Non-finite values (which JSON
/// cannot represent) are written as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `Display` prints integral floats without a decimal point; keep
        // them recognizably floating-point for schema stability.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// An append-only JSON builder with explicit structure calls. The caller
/// is responsible for matching `begin_*`/`end_*` pairs; commas are managed
/// automatically.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    // One entry per open container: whether a value has been written at
    // this level (i.e. the next value needs a leading comma).
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Finish and return the accumulated JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.needs_comma.is_empty(), "unclosed JSON container");
        self.buf
    }

    fn pre_value(&mut self) {
        if let Some(top) = self.needs_comma.last_mut() {
            if *top {
                self.buf.push(',');
            }
            *top = true;
        }
    }

    /// Open an object as the next value.
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Close the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push('}');
        self
    }

    /// Open an array as the next value.
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Close the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push(']');
        self
    }

    /// Write an object key; the next call writes its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
        // The key's value must not get its own comma.
        if let Some(top) = self.needs_comma.last_mut() {
            *top = false;
        }
        self
    }

    /// Write a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        write_escaped(&mut self.buf, s);
        self
    }

    /// Write an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Write a float value (`null` if non-finite).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        write_f64(&mut self.buf, v);
        self
    }

    /// Write a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Convenience: `key` followed by a string value.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).string(v)
    }

    /// Convenience: `key` followed by an unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64(v)
    }

    /// Convenience: `key` followed by a float value.
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).f64(v)
    }
}

/// A parsed JSON value (reader side; used by `trace-check` and tests).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. `BTreeMap` for deterministic iteration.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object's entry for `k`, if this is an object containing it.
    pub fn get(&self, k: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(k),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Returns a human-readable error with a
/// byte offset on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not needed for our own output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = &b[*pos..];
                let ch_len = match s[0] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                out.push_str(chunk);
                *pos += chunk.len();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("name", "x")
            .field_u64("n", 3)
            .key("xs")
            .begin_array()
            .u64(1)
            .u64(2)
            .end_array()
            .key("inner")
            .begin_object()
            .field_f64("f", 0.5)
            .key("flag")
            .bool(true)
            .end_object()
            .end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"x","n":3,"xs":[1,2],"inner":{"f":0.5,"flag":true}}"#
        );
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut w = JsonWriter::new();
        w.f64(2.0);
        assert_eq!(w.finish(), "2.0");
        let mut w = JsonWriter::new();
        w.f64(f64::NAN);
        assert_eq!(w.finish(), "null");
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f — µs";
        let mut w = JsonWriter::new();
        w.begin_object().field_str("s", nasty).end_object();
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn writer_output_parses_back() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("schema", 1)
            .key("events")
            .begin_array()
            .begin_object()
            .field_str("ph", "X")
            .field_u64("ts", 12)
            .field_f64("w", 1.5)
            .end_object()
            .end_array()
            .end_object();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(1));
        let events = v.get("events").unwrap().as_array().unwrap();
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("ts").unwrap().as_u64(), Some(12));
        assert_eq!(events[0].get("w").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn parser_accepts_standard_forms() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), JsonValue::Number(-250.0));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
        assert_eq!(parse(r#""µs""#).unwrap().as_str(), Some("\u{b5}s"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
