//! Structured run telemetry for PASTIS-RS.
//!
//! The paper's entire evaluation (Tables I–IV, Figures 5–9) rests on
//! per-stage, per-rank, per-byte instrumentation: component timers,
//! communication-wait shares, load-imbalance triples, and the α–β SUMMA
//! traffic analysis of Section VI-A. This crate is the measurement
//! substrate behind the reproduction of those analyses:
//!
//! * [`Recorder`] — a per-rank event sink with RAII spans
//!   (`span!(rec, Component::SpGemm, "summa.block", {r, c})`), monotonic
//!   microsecond timestamps, and a no-op disabled mode that compiles to an
//!   `Option` check per call — cheap enough to leave on by default.
//! * [`TraceSession`] — a set of rank recorders sharing one epoch, so
//!   cross-rank timelines align; also available in *virtual-time* mode
//!   where the performance-model plane records modeled timestamps instead
//!   of reading a clock.
//! * [`CommOp`]/[`CommEvent`] — per-collective traffic records (op kind,
//!   payload bytes, peer count, wait seconds), the counters the α–β cost
//!   model can be validated against.
//! * Exporters — Chrome `trace_event` JSON ([`chrome_trace_json`]; one
//!   track per rank plus one sub-track per alignment worker, loadable in
//!   Perfetto / `chrome://tracing`), a schema-versioned flat metrics JSON
//!   ([`MetricsReport`]), and a human-readable end-of-run report
//!   ([`render_report`]) with per-component min/avg/max across ranks.
//!
//! Telemetry is observation-only by construction: recorders never feed
//! back into scheduling, and every search output is pinned identical with
//! telemetry on and off (`tests/telemetry_e2e.rs` at the workspace root).

#![warn(missing_docs)]

pub mod aggregate;
pub mod chrome;
pub mod component;
pub mod critical;
pub mod flight;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod names;
pub mod recorder;
pub mod report;

pub use aggregate::{render_cluster_report, ClusterReport, PhaseStat};
pub use chrome::chrome_trace_json;
pub use component::{Component, ImbalanceStats};
pub use critical::{render_critical_path, timelines_from_chrome_json, CriticalPath, RankTimeline};
pub use flight::{
    install_crash_dump, start_heartbeat, FlightRecorder, HeartbeatHandle,
    FLIGHT_DUMP_SCHEMA_VERSION,
};
pub use hist::DurationHistogram;
pub use metrics::{CommTotals, MetricsReport, RankTelemetry, METRICS_SCHEMA_VERSION};
pub use recorder::{CommEvent, CommOp, Recorder, SpanEvent, SpanGuard, TraceSession, Track};
pub use report::render_report;

/// Open an RAII span on a [`Recorder`] with optional structured arguments.
///
/// ```
/// use pastis_trace::{span, Component, TraceSession};
/// let session = TraceSession::new();
/// let rec = session.recorder(0);
/// let round = 3u64;
/// let bytes = 4096u64;
/// {
///     let _s = span!(rec, Component::SpGemm, "summa.bcast_a", { round, bytes });
/// } // span closes here
/// assert_eq!(rec.snapshot_spans().len(), 1);
/// ```
///
/// Argument entries are either a bare identifier (recorded under its own
/// name) or `name: expr`; values must be `u64`.
#[macro_export]
macro_rules! span {
    ($rec:expr, $comp:expr, $name:expr) => {
        $rec.span($comp, $name)
    };
    ($rec:expr, $comp:expr, $name:expr, { $($k:ident $(: $v:expr)?),+ $(,)? }) => {
        $rec.span($comp, $name)$(.arg(stringify!($k), $crate::__span_arg!($k $(, $v)?)))+
    };
}

/// Internal helper for [`span!`]: resolves `{name}` shorthand vs `{name: expr}`.
#[doc(hidden)]
#[macro_export]
macro_rules! __span_arg {
    ($k:ident) => {
        $k
    };
    ($k:ident, $v:expr) => {
        $v
    };
}
