//! Chrome `trace_event` exporter.
//!
//! Emits the JSON-object flavour of the [Trace Event Format] consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a top-level
//! object with a `traceEvents` array. Mapping:
//!
//! * **process = rank.** `pid` is the rank id; a `process_name` metadata
//!   event labels it `"rank N"`.
//! * **thread = track.** `tid 0` is the rank's main pipeline track; `tid
//!   1 + w` is alignment-pool worker `w`'s occupancy sub-track, labelled
//!   with `thread_name` metadata.
//! * **spans** become complete events (`"ph":"X"`) with the component
//!   label as `cat` and span args under `args`.
//! * **communication events** become instant events (`"ph":"i"`, thread
//!   scope) named `comm.<op>` with `bytes`, `peers`, and `wait_us` args.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Timestamps are integer microseconds since the session epoch, so the
//! export is byte-deterministic for virtual-time sessions (pinned by the
//! golden-file test).

use crate::json::JsonWriter;
use crate::recorder::{Recorder, Track};
use crate::TraceSession;

/// Render the whole session as Chrome `trace_event` JSON.
pub fn chrome_trace_json(session: &TraceSession) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("displayTimeUnit", "ms")
        .key("traceEvents")
        .begin_array();
    for rec in session.recorders() {
        write_rank_events(&mut w, &rec);
    }
    w.end_array().end_object();
    w.finish()
}

fn write_rank_events(w: &mut JsonWriter, rec: &Recorder) {
    let pid = rec.rank() as u64;

    // Process metadata: name the rank's track group.
    w.begin_object()
        .field_str("name", "process_name")
        .field_str("ph", "M")
        .field_u64("pid", pid)
        .field_u64("tid", 0)
        .key("args")
        .begin_object()
        .field_str("name", &format!("rank {pid}"))
        .end_object()
        .end_object();

    let spans = rec.snapshot_spans();

    // Thread metadata for every track that carries events.
    let mut tids: Vec<u64> = spans.iter().map(|s| s.track.tid()).collect();
    tids.push(0); // comm events + pipeline spans live on the main track
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let label = Track::tid_label(tid);
        w.begin_object()
            .field_str("name", "thread_name")
            .field_str("ph", "M")
            .field_u64("pid", pid)
            .field_u64("tid", tid)
            .key("args")
            .begin_object()
            .field_str("name", &label)
            .end_object()
            .end_object();
    }

    // Spans, ordered by (track, start) for deterministic output regardless
    // of drop order.
    let mut ordered: Vec<usize> = (0..spans.len()).collect();
    ordered.sort_by_key(|&i| (spans[i].track.tid(), spans[i].start_us, spans[i].dur_us));
    for i in ordered {
        let s = &spans[i];
        w.begin_object()
            .field_str("name", s.name)
            .field_str("cat", s.component.label())
            .field_str("ph", "X")
            .field_u64("ts", s.start_us)
            .field_u64("dur", s.dur_us)
            .field_u64("pid", pid)
            .field_u64("tid", s.track.tid());
        if !s.args.is_empty() {
            w.key("args").begin_object();
            for (k, v) in &s.args {
                w.field_u64(k, *v);
            }
            w.end_object();
        }
        w.end_object();
    }

    // Communication instants on the main track.
    let mut comms = rec.snapshot_comms();
    comms.sort_by_key(|a| (a.ts_us, a.op.index()));
    for c in comms {
        w.begin_object()
            .field_str("name", &format!("comm.{}", c.op.label()))
            .field_str("cat", "comm")
            .field_str("ph", "i")
            .field_str("s", "t")
            .field_u64("ts", c.ts_us)
            .field_u64("pid", pid)
            .field_u64("tid", Track::Rank.tid())
            .key("args")
            .begin_object()
            .field_u64("bytes", c.bytes)
            .field_u64("peers", c.peers as u64)
            .field_u64("wait_us", (c.wait_s * 1e6).round().max(0.0) as u64);
        if let Some(peer) = c.peer {
            w.field_u64("peer", peer as u64);
        }
        w.end_object().end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::recorder::CommOp;
    use crate::Component;

    fn sample_session() -> TraceSession {
        let session = TraceSession::virtual_time();
        for rank in 0..2 {
            let rec = session.recorder(rank);
            rec.record_span_at(
                Component::SpGemm,
                "summa.block",
                Track::Rank,
                0.0,
                0.5,
                &[("r", 0), ("c", 1)],
            );
            rec.record_span_at(
                Component::Align,
                "align.worker",
                Track::AlignWorker(0),
                0.5,
                0.25,
                &[],
            );
            rec.record_comm_at(CommOp::Broadcast, 1024, 1, 0.01, 0.0);
        }
        session
    }

    #[test]
    fn export_parses_and_has_one_process_per_rank() {
        let text = chrome_trace_json(&sample_session());
        let v = parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        let mut pids: Vec<u64> = events
            .iter()
            .map(|e| e.get("pid").unwrap().as_u64().unwrap())
            .collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids, vec![0, 1]);
        // Every event carries the mandatory keys.
        for e in events {
            for k in ["name", "ph", "pid", "tid"] {
                assert!(e.get(k).is_some(), "missing {k}: {e:?}");
            }
        }
    }

    #[test]
    fn worker_spans_land_on_sub_tracks() {
        let text = chrome_trace_json(&sample_session());
        let v = parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let worker_span = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("align.worker"))
            .unwrap();
        assert_eq!(worker_span.get("tid").unwrap().as_u64(), Some(1));
        // ...and a thread_name metadata event labels that tid.
        assert!(events.iter().any(|e| {
            e.get("name").unwrap().as_str() == Some("thread_name")
                && e.get("tid").unwrap().as_u64() == Some(1)
                && e.get("args").unwrap().get("name").unwrap().as_str() == Some("align-worker 0")
        }));
    }

    #[test]
    fn comm_events_are_instants_with_byte_args() {
        let text = chrome_trace_json(&sample_session());
        let v = parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let comm = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("comm.broadcast"))
            .unwrap();
        assert_eq!(comm.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            comm.get("args").unwrap().get("bytes").unwrap().as_u64(),
            Some(1024)
        );
        assert_eq!(
            comm.get("args").unwrap().get("wait_us").unwrap().as_u64(),
            Some(10_000)
        );
    }

    #[test]
    fn virtual_export_is_deterministic() {
        let a = chrome_trace_json(&sample_session());
        let b = chrome_trace_json(&sample_session());
        assert_eq!(a, b);
    }
}
