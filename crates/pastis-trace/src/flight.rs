//! Flight recorder: a bounded in-memory ring of progress breadcrumbs,
//! periodic heartbeat snapshots, and a crash dump.
//!
//! Long many-against-many runs fail in the worst possible place: hours
//! in, on a rank whose stdout nobody was watching. The flight recorder
//! keeps the last [`FlightRecorder::capacity`] breadcrumbs (phase
//! transitions, heartbeats, fault-plan events) in a fixed-size ring —
//! recording is a mutex push, nothing is written anywhere until asked —
//! and on demand serializes the ring *plus a tail sample of every rank's
//! trace* to JSON. Sampling happens at dump time, so the recording hot
//! path pays nothing for the feature.
//!
//! Two consumers:
//!
//! * `pastis --progress` starts a [`heartbeat`] thread that prints a
//!   one-line cluster snapshot (per-rank span counts and the span each
//!   rank is furthest into) every period.
//! * [`install_crash_dump`] chains a panic hook that writes the dump
//!   JSON next to the run's outputs when any rank thread panics (e.g. a
//!   seeded `FaultPlan` crash), preserving the last moments of every
//!   rank for post-mortem analysis.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json::JsonWriter;
use crate::recorder::Track;
use crate::TraceSession;

/// Default ring capacity: enough for hours of heartbeats at the default
/// period while staying trivially bounded in memory.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// How many trailing spans / comm events per rank a dump samples.
const DUMP_TAIL: usize = 32;

/// Version tag on the crash-dump JSON document.
pub const FLIGHT_DUMP_SCHEMA_VERSION: u32 = 1;

/// One breadcrumb in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Monotonic sequence number (never wraps; survives ring eviction so
    /// dumps show how many breadcrumbs were dropped).
    pub seq: u64,
    /// Microseconds since the flight recorder was created.
    pub ts_us: u64,
    /// Entry kind: `note`, `heartbeat`, `panic`, ...
    pub kind: String,
    /// Free-form payload.
    pub what: String,
}

/// The bounded breadcrumb ring. Cheap to share (`Arc`), safe to record
/// to from any thread.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    cap: usize,
    seq: AtomicU64,
    entries: Mutex<VecDeque<FlightEntry>>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A ring holding at most `capacity` breadcrumbs (oldest evicted
    /// first). `capacity` is clamped to at least 1.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            epoch: Instant::now(),
            cap: capacity.max(1),
            seq: AtomicU64::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total breadcrumbs ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Push a breadcrumb, evicting the oldest when the ring is full.
    pub fn note(&self, kind: &str, what: impl Into<String>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let entry = FlightEntry {
            seq,
            ts_us: self.epoch.elapsed().as_micros() as u64,
            kind: kind.to_owned(),
            what: what.into(),
        };
        let mut ring = self.entries.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Snapshot the ring, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }

    /// Record a heartbeat breadcrumb summarizing the session and return
    /// the one-line progress string (what `--progress` prints).
    pub fn heartbeat(&self, session: &TraceSession) -> String {
        let mut parts = Vec::new();
        for rec in session.recorders() {
            let spans = rec.snapshot_spans();
            let last_main = spans
                .iter()
                .filter(|s| s.track == Track::Rank)
                .max_by_key(|s| (s.end_us(), s.start_us))
                .map_or("-", |s| s.name);
            parts.push(format!(
                "r{}: {} spans, in {}",
                rec.rank(),
                spans.len(),
                last_main
            ));
        }
        let line = if parts.is_empty() {
            "no ranks registered yet".to_owned()
        } else {
            parts.join("; ")
        };
        self.note("heartbeat", &line);
        line
    }

    /// Serialize the ring — plus, when a session is given, a per-rank tail
    /// sample of recent spans, comm events, and all counters — to JSON.
    /// All trace sampling happens here, at dump time.
    pub fn dump_json(&self, session: Option<&TraceSession>, reason: Option<&str>) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("schema", FLIGHT_DUMP_SCHEMA_VERSION as u64)
            .field_str("reason", reason.unwrap_or("requested"))
            .field_u64("recorded", self.recorded())
            .key("ring")
            .begin_array();
        for e in self.entries() {
            w.begin_object()
                .field_u64("seq", e.seq)
                .field_u64("ts_us", e.ts_us)
                .field_str("kind", &e.kind)
                .field_str("what", &e.what)
                .end_object();
        }
        w.end_array();
        if let Some(session) = session {
            w.key("ranks").begin_array();
            for rec in session.recorders() {
                w.begin_object().field_u64("rank", rec.rank() as u64);
                let spans = rec.snapshot_spans();
                w.key("recent_spans").begin_array();
                for s in spans.iter().rev().take(DUMP_TAIL).rev() {
                    w.begin_object()
                        .field_str("name", s.name)
                        .field_str("track", &s.track.label())
                        .field_u64("start_us", s.start_us)
                        .field_u64("dur_us", s.dur_us)
                        .end_object();
                }
                w.end_array();
                let comms = rec.snapshot_comms();
                w.key("recent_comms").begin_array();
                for c in comms.iter().rev().take(DUMP_TAIL).rev() {
                    w.begin_object()
                        .field_str("op", c.op.label())
                        .field_u64("ts_us", c.ts_us)
                        .field_u64("bytes", c.bytes);
                    if let Some(peer) = c.peer {
                        w.field_u64("peer", peer as u64);
                    }
                    w.end_object();
                }
                w.end_array();
                w.key("counters").begin_object();
                for (k, v) in rec.counters() {
                    w.field_f64(k, v);
                }
                w.end_object().end_object();
            }
            w.end_array();
        }
        w.end_object();
        w.finish()
    }

    /// Write [`FlightRecorder::dump_json`] to `path`.
    pub fn write_dump(
        &self,
        path: &Path,
        session: Option<&TraceSession>,
        reason: Option<&str>,
    ) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.dump_json(session, reason).as_bytes())?;
        f.write_all(b"\n")
    }
}

/// Chain a panic hook that writes a crash dump to `path` the first time
/// any thread panics (subsequent panics fall through to the previous
/// hook only). The hook records the panic message as the dump reason and
/// samples the session's per-rank tails at dump time.
pub fn install_crash_dump(flight: Arc<FlightRecorder>, session: Arc<TraceSession>, path: PathBuf) {
    let fired = AtomicBool::new(false);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !fired.swap(true, Ordering::SeqCst) {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_owned());
            let reason = format!("panic: {msg}");
            flight.note("panic", &reason);
            let _ = flight.write_dump(&path, Some(&session), Some(&reason));
        }
        prev(info);
    }));
}

/// Handle for a running heartbeat thread; [`HeartbeatHandle::stop`] joins
/// it.
#[derive(Debug)]
pub struct HeartbeatHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatHandle {
    /// Signal the thread and wait for it to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for HeartbeatHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Start a background thread that records a heartbeat every `period` and
/// passes the progress line to `on_line` (e.g. `|l| eprintln!("[hb] {l}")`).
/// The thread polls its stop flag every 25 ms, so stopping is prompt even
/// with long periods.
pub fn start_heartbeat(
    flight: Arc<FlightRecorder>,
    session: Arc<TraceSession>,
    period: Duration,
    on_line: impl Fn(&str) + Send + 'static,
) -> HeartbeatHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::spawn(move || {
        let tick = Duration::from_millis(25);
        let mut next = Instant::now() + period;
        while !stop2.load(Ordering::SeqCst) {
            std::thread::sleep(tick.min(period));
            if Instant::now() >= next {
                on_line(&flight.heartbeat(&session));
                next += period;
            }
        }
    });
    HeartbeatHandle {
        stop,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::recorder::CommOp;
    use crate::Component;

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let fr = FlightRecorder::new(3);
        for i in 0..10 {
            fr.note("note", format!("step {i}"));
        }
        let e = fr.entries();
        assert_eq!(e.len(), 3);
        assert_eq!(fr.recorded(), 10);
        assert_eq!(e[0].what, "step 7");
        assert_eq!(e[2].what, "step 9");
        assert_eq!(e[2].seq, 9);
    }

    #[test]
    fn heartbeat_names_the_current_span_per_rank() {
        let s = TraceSession::virtual_time();
        let r0 = s.recorder(0);
        r0.record_span_at(
            Component::SparseOther,
            "kmer_matrix",
            Track::Rank,
            0.0,
            1.0,
            &[],
        );
        r0.record_span_at(Component::SpGemm, "summa.block", Track::Rank, 1.0, 1.0, &[]);
        s.recorder(1)
            .record_span_at(Component::Io, "io.read", Track::Rank, 0.0, 0.5, &[]);
        let fr = FlightRecorder::default();
        let line = fr.heartbeat(&s);
        assert_eq!(line, "r0: 2 spans, in summa.block; r1: 1 spans, in io.read");
        assert_eq!(fr.entries().len(), 1);
        assert_eq!(fr.entries()[0].kind, "heartbeat");
    }

    #[test]
    fn dump_samples_rank_tails_at_dump_time() {
        let s = TraceSession::virtual_time();
        let r = s.recorder(0);
        for i in 0..(DUMP_TAIL + 5) {
            r.record_span_at(
                Component::Align,
                "align.batch",
                Track::Rank,
                i as f64,
                0.5,
                &[],
            );
        }
        r.record_comm_p2p(CommOp::SendTo, 64, 1, 0.0);
        r.add_counter("aligned_pairs", 7.0);
        let fr = FlightRecorder::new(8);
        fr.note("note", "phase: align");
        let doc = parse(&fr.dump_json(Some(&s), Some("test"))).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("test"));
        let ranks = doc.get("ranks").unwrap().as_array().unwrap();
        assert_eq!(ranks.len(), 1);
        let spans = ranks[0].get("recent_spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), DUMP_TAIL); // tail-truncated
                                            // The tail keeps the *latest* spans.
        let last = spans.last().unwrap();
        assert_eq!(
            last.get("start_us").unwrap().as_u64(),
            Some((DUMP_TAIL as u64 + 4) * 1_000_000)
        );
        let comms = ranks[0].get("recent_comms").unwrap().as_array().unwrap();
        assert_eq!(comms[0].get("peer").unwrap().as_u64(), Some(1));
        assert_eq!(
            ranks[0]
                .get("counters")
                .unwrap()
                .get("aligned_pairs")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn dump_without_session_has_no_ranks_section() {
        let fr = FlightRecorder::default();
        fr.note("note", "hello");
        let doc = parse(&fr.dump_json(None, None)).unwrap();
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("requested"));
        assert!(doc.get("ranks").is_none());
        let ring = doc.get("ring").unwrap().as_array().unwrap();
        assert_eq!(ring.len(), 1);
        assert_eq!(ring[0].get("what").unwrap().as_str(), Some("hello"));
    }

    #[test]
    fn heartbeat_thread_ticks_and_stops() {
        let fr = Arc::new(FlightRecorder::default());
        let s = Arc::new(TraceSession::new());
        s.recorder(0);
        let lines = Arc::new(Mutex::new(Vec::new()));
        let lines2 = Arc::clone(&lines);
        let h = start_heartbeat(
            Arc::clone(&fr),
            Arc::clone(&s),
            Duration::from_millis(30),
            move |l| lines2.lock().unwrap().push(l.to_owned()),
        );
        std::thread::sleep(Duration::from_millis(120));
        h.stop();
        let n = lines.lock().unwrap().len();
        assert!(n >= 1, "expected at least one heartbeat, got {n}");
        assert!(fr.recorded() >= n as u64);
    }
}
