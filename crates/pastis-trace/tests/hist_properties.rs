//! Property tests for [`DurationHistogram`]: merging is a commutative
//! monoid over arbitrary recordings, merge equals bulk recording, and
//! percentile estimates always land in the same log-bucket as the true
//! order statistic (error bounded by one bucket width).

use pastis_trace::hist::{bucket_index, DurationHistogram};
use proptest::prelude::*;

/// Raw samples spanning every bucket regime: a base value plus a shift
/// up to 2^24 reaches durations from 0 µs to ~2^40 µs (~13 days).
fn shifted(raw: &[(u64, u32)]) -> Vec<u64> {
    raw.iter().map(|&(v, s)| v << s).collect()
}

fn hist_of(values: &[u64]) -> DurationHistogram {
    let mut h = DurationHistogram::new();
    for &v in values {
        h.record_us(v);
    }
    h
}

fn samples() -> proptest::collection::VecStrategy<(std::ops::Range<u64>, std::ops::Range<u32>)> {
    proptest::collection::vec((0u64..1 << 16, 0u32..25), 0..64)
}

proptest! {
    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let (ha, hb) = (hist_of(&shifted(&a)), hist_of(&shifted(&b)));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (
            hist_of(&shifted(&a)),
            hist_of(&shifted(&b)),
            hist_of(&shifted(&c)),
        );
        let mut left = ha.clone(); // (a ⊕ b) ⊕ c
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone(); // a ⊕ (b ⊕ c)
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn empty_is_the_identity(a in samples()) {
        let ha = hist_of(&shifted(&a));
        let mut merged = ha.clone();
        merged.merge(&DurationHistogram::new());
        prop_assert_eq!(&merged, &ha);
        let mut from_empty = DurationHistogram::new();
        from_empty.merge(&ha);
        prop_assert_eq!(&from_empty, &ha);
    }

    #[test]
    fn merge_equals_bulk_recording(a in samples(), b in samples()) {
        let (va, vb) = (shifted(&a), shifted(&b));
        let mut merged = hist_of(&va);
        merged.merge(&hist_of(&vb));
        let all: Vec<u64> = va.iter().chain(vb.iter()).copied().collect();
        prop_assert_eq!(merged, hist_of(&all));
    }

    /// The q-quantile estimate shares a bucket with the true order
    /// statistic, so the estimate's error never exceeds the width of
    /// that bucket — and the estimate stays within the observed range.
    #[test]
    fn percentile_error_is_within_one_bucket(
        raw in proptest::collection::vec((0u64..1 << 16, 0u32..25), 1..64),
        q in 0.0f64..1.001,
    ) {
        let q = q.min(1.0);
        let values = shifted(&raw);
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.percentile_us(q);
        prop_assert_eq!(
            bucket_index(est), bucket_index(truth),
            "q={}: estimate {} and truth {} in different buckets", q, est, truth
        );
        prop_assert!(est >= h.min_us() && est <= h.max_us());
    }

    /// Merged summaries stay consistent (count/sum add, max extremizes)
    /// and percentile queries are monotone in q.
    #[test]
    fn summaries_stay_consistent_under_merge(a in samples(), b in samples()) {
        let (ha, hb) = (hist_of(&shifted(&a)), hist_of(&shifted(&b)));
        let mut m = ha.clone();
        m.merge(&hb);
        prop_assert_eq!(m.count(), ha.count() + hb.count());
        prop_assert_eq!(m.sum_us(), ha.sum_us().saturating_add(hb.sum_us()));
        prop_assert!(m.p50_us() <= m.p95_us());
        prop_assert!(m.p95_us() <= m.p99_us());
        prop_assert!(m.p99_us() <= m.max_us());
        if m.count() > 0 {
            prop_assert_eq!(m.max_us(), ha.max_us().max(hb.max_us()));
        }
    }

    /// JSON round-trip preserves the full mergeable state, not just the
    /// summary fields.
    #[test]
    fn json_round_trip_is_lossless(a in samples()) {
        let h = hist_of(&shifted(&a));
        let mut w = pastis_trace::json::JsonWriter::new();
        h.write_json(&mut w);
        let text = w.finish();
        let back = DurationHistogram::from_json(&pastis_trace::json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, h);
    }
}
