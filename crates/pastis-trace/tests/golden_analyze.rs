//! Golden-file test for the `pastis analyze` critical-path report.
//!
//! A fixed four-rank virtual-time session — overlapped prefetch, one
//! straggling rank, a deliberate attribution gap, and a cross-rank
//! send/recv pair — is exported to Chrome JSON and re-imported through
//! the exact path `pastis analyze --trace` uses
//! ([`timelines_from_chrome_json`] → [`CriticalPath::extract`] →
//! [`render_critical_path`]); the rendered report must match
//! `tests/golden/critical_path.txt` byte-for-byte.
//!
//! Regenerate with `TRACE_BLESS=1 cargo test -p pastis-trace --test
//! golden_analyze` after an intentional format change.

use pastis_trace::{
    chrome_trace_json, names, render_critical_path, timelines_from_chrome_json, CommOp, Component,
    CriticalPath, TraceSession, Track,
};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/critical_path.txt"
);

/// Four ranks through the full pipeline shape. Rank 2 straggles in the
/// align phase and finishes last; every rank overlaps a broadcast
/// prefetch with its SUMMA block (hidden comm); the critical rank has a
/// 50 ms unattributed scheduling gap before output assembly; rank 0
/// sends one exchange frame to rank 1.
fn fixture_session() -> TraceSession {
    let session = TraceSession::virtual_time();
    for rank in 0..4usize {
        let rec = session.recorder(rank);
        let r = rank as f64;
        rec.record_span_at(
            Component::Io,
            names::SPAN_IO_READ,
            Track::Rank,
            0.0,
            0.2,
            &[],
        );
        rec.record_span_at(
            Component::SparseOther,
            names::SPAN_KMER_MATRIX,
            Track::Rank,
            0.2,
            0.5,
            &[("nnz", 4096 + rank as u64)],
        );
        rec.record_span_at(
            Component::CommWait,
            names::SPAN_SEQ_EXCHANGE_RECV,
            Track::Rank,
            0.7,
            0.2,
            &[],
        );
        rec.record_span_at(
            Component::SpGemm,
            names::SPAN_SUMMA_BLOCK,
            Track::Rank,
            0.9,
            1.2 + 0.1 * r,
            &[("stage", rank as u64)],
        );
        // The overlapped broadcast prefetch rides the comm track entirely
        // under the SUMMA block above: fully hidden communication.
        rec.record_span_at(
            Component::CommWait,
            names::SPAN_SUMMA_BCAST_PREFETCH,
            Track::CommPath,
            1.0,
            0.4,
            &[("bytes", 1 << 20)],
        );
        let align_start = 2.1 + 0.1 * r;
        let align_dur = if rank == 2 { 2.4 } else { 1.5 };
        rec.record_span_at(
            Component::Align,
            names::SPAN_ALIGN_BATCH,
            Track::Rank,
            align_start,
            align_dur,
            &[("pairs", 128)],
        );
        // 50 ms gap no span covers — shows up as unattributed time on the
        // critical rank.
        let tail = align_start + align_dur + 0.05;
        rec.record_span_at(
            Component::SparseOther,
            names::SPAN_OUTPUT_ASSEMBLY,
            Track::Rank,
            tail,
            0.2,
            &[],
        );
        rec.record_span_at(
            Component::Io,
            names::SPAN_IO_WRITE,
            Track::Rank,
            tail + 0.2,
            0.1,
            &[("edges", 777)],
        );
    }
    // One sequence-exchange frame crossing ranks: the analytics layer
    // pairs both sides into a comm edge.
    session
        .recorder(0)
        .record_comm_p2p(CommOp::SendTo, 8192, 1, 0.002);
    session
        .recorder(1)
        .record_comm_p2p(CommOp::RecvFrom, 0, 0, 0.004);
    session
        .recorder(1)
        .record_comm_at(CommOp::Broadcast, 512, 3, 0.001, 0.9);
    session
}

fn rendered_report() -> (CriticalPath, String) {
    let chrome = chrome_trace_json(&fixture_session());
    let timelines = timelines_from_chrome_json(&chrome).expect("fixture export must re-import");
    let cp = CriticalPath::extract(&timelines).expect("fixture has main-track spans");
    let text = render_critical_path(&cp);
    (cp, text)
}

#[test]
fn analyze_critical_path_matches_golden_file() {
    let (_, text) = rendered_report();
    if std::env::var_os("TRACE_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with TRACE_BLESS=1");
    assert_eq!(
        text, golden,
        "critical-path report drifted from the golden file; \
         if intentional, regenerate with TRACE_BLESS=1"
    );
}

#[test]
fn critical_path_attributes_the_wall_clock() {
    let (cp, _) = rendered_report();
    assert_eq!(cp.nranks, 4);
    assert_eq!(
        cp.critical_rank, 2,
        "rank 2's long align phase loses the race"
    );
    // The only uncovered window on the critical rank is the 50 ms gap, so
    // attribution clears the PR's ≥95% acceptance bar with margin.
    assert!(
        cp.attributed_fraction() >= 0.95,
        "attributed only {:.2}% of wall clock",
        cp.attributed_fraction() * 100.0
    );
    // align.batch dominates the critical path.
    let top = cp.phases.first().map(|p| p.name.as_str());
    let align_us = cp
        .phases
        .iter()
        .find(|p| p.name == names::SPAN_ALIGN_BATCH)
        .map_or(0, |p| p.us);
    assert!(
        cp.phases.iter().all(|p| p.us <= align_us),
        "align.batch must dominate, top phase was {top:?}"
    );
    // Every rank fully hides its 0.4 s prefetch under the SUMMA block.
    assert_eq!(cp.hidden_comm_us.len(), 4);
    for &(_, us) in &cp.hidden_comm_us {
        assert_eq!(us, 400_000);
    }
    // The send/recv pair becomes exactly one cross-rank edge.
    assert_eq!(cp.edges.len(), 1);
    assert_eq!((cp.edges[0].src, cp.edges[0].dst), (0, 1));
    assert_eq!(cp.edges[0].bytes, 8192);
}
