//! Property tests for the recorder: any interleaving of span opens/closes
//! yields a well-nested, monotonically-timestamped trace.

use pastis_trace::{Component, Recorder, SpanEvent, SpanGuard, TraceSession, Track};
use proptest::prelude::*;

const COMPONENTS: [Component; 4] = [
    Component::Align,
    Component::SpGemm,
    Component::SparseOther,
    Component::CommWait,
];

const NAMES: [&str; 4] = ["kmer_matrix", "summa.block", "prune", "align.batch"];

/// Interpret a program of byte-coded actions against a recorder: even
/// bytes open a new span (LIFO on a stack), odd bytes close the most
/// recently opened one. Returns the number of spans opened.
fn run_program(rec: &Recorder, program: &[u8]) -> usize {
    let mut stack: Vec<SpanGuard> = Vec::new();
    let mut opened = 0usize;
    for &b in program {
        if b % 2 == 0 {
            let comp = COMPONENTS[(b as usize / 2) % COMPONENTS.len()];
            let name = NAMES[(b as usize / 2) % NAMES.len()];
            stack.push(rec.span(comp, name).arg("step", opened as u64));
            opened += 1;
        } else {
            drop(stack.pop()); // no-op on empty stack
        }
    }
    while let Some(g) = stack.pop() {
        drop(g); // close whatever is still open, innermost first
    }
    opened
}

/// Two intervals on the same track must be disjoint or strictly nested —
/// never partially overlapping.
fn partially_overlap(a: &SpanEvent, b: &SpanEvent) -> bool {
    a.start_us < b.start_us && b.start_us < a.end_us() && a.end_us() < b.end_us()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleaved_spans_are_well_nested_and_monotonic(
        program in proptest::collection::vec(0u8..=255, 0..40),
    ) {
        let session = TraceSession::new();
        let rec = session.recorder(0);
        let opened = run_program(&rec, &program);

        let spans = rec.snapshot_spans();
        prop_assert_eq!(spans.len(), opened);

        for s in &spans {
            // Every span lies on the main track with a sane interval.
            prop_assert_eq!(s.track, Track::Rank);
            prop_assert!(s.end_us() >= s.start_us);
        }

        // Spans are recorded at close time, so end timestamps are
        // monotonically non-decreasing in record order.
        for pair in spans.windows(2) {
            prop_assert!(pair[0].end_us() <= pair[1].end_us());
        }

        // Well-nested: no two spans partially overlap.
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                prop_assert!(
                    !partially_overlap(a, b) && !partially_overlap(b, a),
                    "partial overlap: {:?} vs {:?}",
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn disabled_recorder_stays_empty_for_any_program(
        program in proptest::collection::vec(0u8..=255, 0..40),
    ) {
        let rec = Recorder::disabled();
        run_program(&rec, &program);
        prop_assert_eq!(rec.snapshot_spans().len(), 0);
    }
}
