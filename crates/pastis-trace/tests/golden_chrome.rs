//! Golden-file test: the Chrome `trace_event` export of a fixed
//! virtual-time session must match `tests/golden/chrome_trace.json`
//! byte-for-byte, and satisfy the trace_event schema.
//!
//! Regenerate with `TRACE_BLESS=1 cargo test -p pastis-trace --test
//! golden_chrome` after an intentional format change.

use pastis_trace::{chrome_trace_json, json, CommOp, Component, TraceSession, Track};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/chrome_trace.json"
);

/// A small fixed two-rank session exercising every event shape: main-track
/// spans with args, worker sub-track spans, and comm instants.
fn fixture_session() -> TraceSession {
    let session = TraceSession::virtual_time();
    for rank in 0..2usize {
        let rec = session.recorder(rank);
        rec.record_span_at(
            Component::SparseOther,
            "kmer_matrix",
            Track::Rank,
            0.0,
            0.125,
            &[("nnz", 640 + rank as u64)],
        );
        rec.record_span_at(
            Component::SpGemm,
            "summa.block",
            Track::Rank,
            0.125,
            0.5,
            &[("r", 0), ("c", rank as u64)],
        );
        rec.record_comm_at(CommOp::Broadcast, 1536, 1, 0.0625, 0.125);
        rec.record_span_at(
            Component::Align,
            "align.batch",
            Track::Rank,
            0.625,
            0.25,
            &[("pairs", 32)],
        );
        for w in 0..2u32 {
            rec.record_span_at(
                Component::Align,
                "align.worker",
                Track::AlignWorker(w),
                0.625,
                0.2 + w as f64 * 0.05,
                &[("units", 4)],
            );
        }
        rec.record_comm_at(CommOp::AllReduce, 56, 1, 0.001, 0.875);
    }
    session
}

#[test]
fn chrome_export_matches_golden_file() {
    let text = chrome_trace_json(&fixture_session());
    if std::env::var_os("TRACE_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with TRACE_BLESS=1");
    assert_eq!(
        text, golden,
        "chrome trace export drifted from the golden file; \
         if intentional, regenerate with TRACE_BLESS=1"
    );
}

#[test]
fn chrome_export_satisfies_trace_event_schema() {
    let text = chrome_trace_json(&fixture_session());
    let v = json::parse(&text).expect("export must be valid JSON");

    let events = v
        .get("traceEvents")
        .and_then(json::JsonValue::as_array)
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());

    let mut pids = Vec::new();
    for e in events {
        // Mandatory keys on every event.
        let ph = e.get("ph").and_then(json::JsonValue::as_str).unwrap();
        assert!(e.get("name").and_then(json::JsonValue::as_str).is_some());
        let pid = e.get("pid").and_then(json::JsonValue::as_u64).unwrap();
        assert!(e.get("tid").and_then(json::JsonValue::as_u64).is_some());
        pids.push(pid);
        match ph {
            // Complete events need ts + dur.
            "X" => {
                assert!(e.get("ts").and_then(json::JsonValue::as_u64).is_some());
                assert!(e.get("dur").and_then(json::JsonValue::as_u64).is_some());
            }
            // Instants need ts and a scope.
            "i" => {
                assert!(e.get("ts").and_then(json::JsonValue::as_u64).is_some());
                assert_eq!(e.get("s").and_then(json::JsonValue::as_str), Some("t"));
            }
            // Metadata events carry an args.name.
            "M" => {
                assert!(e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(json::JsonValue::as_str)
                    .is_some());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids, vec![0, 1], "one Chrome process per rank");

    // Worker sub-tracks exist and are labelled.
    for want in ["align-worker 0", "align-worker 1"] {
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(json::JsonValue::as_str) == Some("thread_name")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(json::JsonValue::as_str)
                        == Some(want)
            }),
            "missing thread_name metadata for {want}"
        );
    }
}
