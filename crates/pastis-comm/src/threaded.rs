//! Shared-memory SPMD communicator: `p` ranks as OS threads.
//!
//! Collectives are implemented with an *exchange board*: a slot per rank
//! guarded by a mutex, with a barrier before the collect phase and another
//! before slots are recycled. Each rank only ever writes its own slot, which
//! keeps the board race-free across back-to-back collectives.
//!
//! Point-to-point messages use one unbounded channel per (source,
//! destination) pair, giving MPI-like FIFO ordering per pair and
//! non-blocking sends (used by PASTIS for the overlap-hidden sequence
//! exchange).
//!
//! Every blocking wait (barrier phases of a collective, `recv_from`) is
//! bounded by the handle's [`CommConfig::op_timeout`]. Real MPI hangs
//! forever on a lost rank; the test substrate instead fails with a typed
//! [`CommError`] — as a panic on the infallible paths, as an `Err` from
//! the `*_deadline` variants — so a deadlocked test diagnoses itself
//! instead of hanging CI.

use std::any::Any;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::communicator::{CommError, CommStats, CommStatsSnapshot, Communicator, Payload};

type Slot = Option<Box<dyn Any + Send + Sync>>;
/// One rank's p2p inboxes, indexed by source rank.
type MailboxRow = Vec<Receiver<Box<dyn Any + Send>>>;

/// Bounded-wait policy of a [`ThreadedComm`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommConfig {
    /// Upper bound on any single blocking wait inside a collective or a
    /// point-to-point receive. `None` waits forever (true MPI semantics);
    /// the default is bounded so that a deadlock becomes a diagnosed
    /// failure. Override the default globally with the
    /// `PASTIS_COMM_TIMEOUT_MS` environment variable.
    pub op_timeout: Option<Duration>,
}

impl CommConfig {
    /// Default bound on a single blocking wait (no rank of the test
    /// substrate legitimately waits this long).
    pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(120);

    /// Wait forever, exactly like MPI.
    pub fn unbounded() -> CommConfig {
        CommConfig { op_timeout: None }
    }

    /// Bound every blocking wait by `timeout`.
    pub fn bounded(timeout: Duration) -> CommConfig {
        CommConfig {
            op_timeout: Some(timeout),
        }
    }
}

impl Default for CommConfig {
    fn default() -> CommConfig {
        static ENV_MS: OnceLock<Option<u64>> = OnceLock::new();
        let env_ms = *ENV_MS.get_or_init(|| {
            std::env::var("PASTIS_COMM_TIMEOUT_MS")
                .ok()
                .and_then(|s| s.parse().ok())
        });
        CommConfig {
            op_timeout: Some(env_ms.map_or(CommConfig::DEFAULT_OP_TIMEOUT, Duration::from_millis)),
        }
    }
}

/// A reusable generation barrier with a timed wait (std's [`std::sync::Barrier`]
/// has none). A wait that times out *poisons* the barrier: every current and
/// future waiter fails immediately, so one diagnosed deadlock brings the
/// whole world down instead of leaving sibling ranks hung.
struct GenBarrier {
    size: usize,
    state: StdMutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl GenBarrier {
    fn new(size: usize) -> GenBarrier {
        GenBarrier {
            size,
            state: StdMutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Wait for all `size` ranks; `Err(())` on timeout or poisoning.
    fn wait(&self, timeout: Option<Duration>) -> Result<(), ()> {
        let mut st = self.state.lock().expect("barrier mutex poisoned");
        if st.poisoned {
            return Err(());
        }
        st.arrived += 1;
        if st.arrived == self.size {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        let deadline = timeout.map(|t| Instant::now() + t);
        while st.generation == gen && !st.poisoned {
            match deadline {
                None => st = self.cv.wait(st).expect("barrier mutex poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        st.poisoned = true;
                        self.cv.notify_all();
                        return Err(());
                    }
                    st = self
                        .cv
                        .wait_timeout(st, d - now)
                        .expect("barrier mutex poisoned")
                        .0;
                }
            }
        }
        // A generation advance means our round completed even if a later
        // round poisoned the barrier concurrently.
        if st.generation == gen {
            Err(())
        } else {
            Ok(())
        }
    }
}

/// State shared by all ranks of one (sub-)communicator.
struct Core {
    size: usize,
    barrier: GenBarrier,
    /// Exchange board: one deposit slot per rank.
    board: Mutex<Vec<Slot>>,
    /// p2p mailboxes: `receivers[dst][src]`, taken once by rank `dst`.
    pending_receivers: Mutex<Vec<Option<MailboxRow>>>,
    /// p2p senders: `senders[src][dst]`.
    senders: Vec<Vec<Sender<Box<dyn Any + Send>>>>,
}

impl Core {
    fn new(size: usize) -> Arc<Self> {
        assert!(size > 0, "communicator must have at least one rank");
        let mut senders: Vec<Vec<Sender<Box<dyn Any + Send>>>> = Vec::with_capacity(size);
        let mut receivers: Vec<MailboxRow> = (0..size).map(|_| Vec::with_capacity(size)).collect();
        for _src in 0..size {
            let mut row = Vec::with_capacity(size);
            for inbox in receivers.iter_mut() {
                let (tx, rx) = unbounded();
                row.push(tx);
                inbox.push(rx);
            }
            senders.push(row);
        }
        Arc::new(Core {
            size,
            barrier: GenBarrier::new(size),
            board: Mutex::new((0..size).map(|_| None).collect()),
            pending_receivers: Mutex::new(receivers.into_iter().map(Some).collect()),
            senders,
        })
    }
}

/// Per-rank handle to a threaded communicator.
///
/// Create a world with [`run_threaded`] (spawns the rank threads for you) or
/// [`ThreadedComm::world`] (returns one handle per rank to spawn manually).
pub struct ThreadedComm {
    rank: usize,
    core: Arc<Core>,
    /// Receivers for messages addressed to this rank, indexed by source.
    mailboxes: Vec<Receiver<Box<dyn Any + Send>>>,
    stats: Arc<CommStats>,
    config: CommConfig,
}

impl ThreadedComm {
    /// Create `p` rank handles sharing one world communicator, with the
    /// default bounded-wait policy ([`CommConfig::default`]).
    pub fn world(p: usize) -> Vec<ThreadedComm> {
        ThreadedComm::world_with(p, CommConfig::default())
    }

    /// Create `p` rank handles sharing one world communicator with an
    /// explicit bounded-wait policy.
    pub fn world_with(p: usize, config: CommConfig) -> Vec<ThreadedComm> {
        let core = Core::new(p);
        (0..p)
            .map(|rank| ThreadedComm::attach(rank, Arc::clone(&core), config))
            .collect()
    }

    fn attach(rank: usize, core: Arc<Core>, config: CommConfig) -> ThreadedComm {
        let mailboxes = core.pending_receivers.lock()[rank]
            .take()
            .expect("rank handle already attached");
        ThreadedComm {
            rank,
            core,
            mailboxes,
            stats: Arc::new(CommStats::default()),
            config,
        }
    }

    /// The bounded-wait policy of this handle (inherited by `split`).
    pub fn config(&self) -> CommConfig {
        self.config
    }

    /// Wait on the shared barrier, bounded by `timeout`; maps a timed-out or
    /// poisoned barrier to a typed [`CommError::Timeout`].
    fn try_barrier(&self, op: &'static str, timeout: Option<Duration>) -> Result<(), CommError> {
        self.core
            .barrier
            .wait(timeout)
            .map_err(|()| CommError::Timeout {
                op,
                rank: self.rank,
                peer: None,
                waited_ms: timeout.map_or(0, |t| t.as_millis() as u64),
            })
    }

    /// Barrier wait on the infallible path: a diagnosed deadlock panics with
    /// the [`CommError`] message (real MPI would hang here forever).
    fn wait_barrier(&self, op: &'static str) {
        if let Err(e) = self.try_barrier(op, self.config.op_timeout) {
            panic!("{e}");
        }
    }

    /// Receive one boxed message from `src`, bounded by `timeout`.
    fn recv_boxed(
        &self,
        src: usize,
        op: &'static str,
        timeout: Option<Duration>,
    ) -> Result<Box<dyn Any + Send>, CommError> {
        match timeout {
            None => self.mailboxes[src].recv().map_err(|_| CommError::Closed {
                op,
                rank: self.rank,
                peer: src,
            }),
            Some(t) => self.mailboxes[src].recv_timeout(t).map_err(|e| match e {
                RecvTimeoutError::Timeout => CommError::Timeout {
                    op,
                    rank: self.rank,
                    peer: Some(src),
                    waited_ms: t.as_millis() as u64,
                },
                RecvTimeoutError::Disconnected => CommError::Closed {
                    op,
                    rank: self.rank,
                    peer: src,
                },
            }),
        }
    }

    /// Deposit a value in this rank's slot, run the collect phase, then
    /// clear the slot. `collect` runs between the two barriers and may read
    /// any slot on the board. `op` labels the collective in timeout errors.
    fn exchange<R>(
        &self,
        op: &'static str,
        deposit: Slot,
        collect: impl FnOnce(&mut Vec<Slot>) -> R,
    ) -> R {
        {
            let mut board = self.core.board.lock();
            debug_assert!(
                board[self.rank].is_none(),
                "collective ordering violation: rank {} slot still occupied",
                self.rank
            );
            board[self.rank] = deposit;
        }
        self.wait_barrier(op);
        let out = {
            let mut board = self.core.board.lock();
            collect(&mut board)
        };
        self.wait_barrier(op);
        self.core.board.lock()[self.rank] = None;
        out
    }
}

fn downcast_clone<T: Payload>(slot: &Slot, what: &str) -> T {
    slot.as_ref()
        .unwrap_or_else(|| panic!("{what}: expected a deposited value"))
        .downcast_ref::<T>()
        .unwrap_or_else(|| panic!("{what}: payload type mismatch across ranks"))
        .clone()
}

impl Communicator for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.core.size
    }

    fn barrier(&self) {
        self.stats.barriers.fetch_add(1, Ordering::Relaxed);
        self.wait_barrier("barrier");
    }

    fn barrier_deadline(&self, timeout: Duration) -> Result<(), CommError> {
        self.stats.barriers.fetch_add(1, Ordering::Relaxed);
        self.try_barrier("barrier", Some(timeout))
    }

    fn broadcast<T: Payload>(&self, root: usize, value: T, nbytes: usize) -> T {
        assert!(root < self.size(), "broadcast root {root} out of range");
        self.stats.broadcasts.fetch_add(1, Ordering::Relaxed);
        self.stats.add_bytes(nbytes as u64);
        let deposit: Slot = if self.rank == root {
            Some(Box::new(value))
        } else {
            None
        };
        self.exchange("broadcast", deposit, |board| {
            downcast_clone::<T>(&board[root], "broadcast")
        })
    }

    fn all_gather<T: Payload>(&self, value: T) -> Vec<T> {
        self.stats.all_gathers.fetch_add(1, Ordering::Relaxed);
        self.stats
            .add_bytes((std::mem::size_of::<T>() * self.size()) as u64);
        self.exchange("all_gather", Some(Box::new(value)), |board| {
            board
                .iter()
                .map(|slot| downcast_clone::<T>(slot, "all_gather"))
                .collect()
        })
    }

    fn gather<T: Payload>(&self, root: usize, value: T) -> Option<Vec<T>> {
        assert!(root < self.size(), "gather root {root} out of range");
        self.stats.all_gathers.fetch_add(1, Ordering::Relaxed);
        self.stats.add_bytes(std::mem::size_of::<T>() as u64);
        let rank = self.rank;
        self.exchange("gather", Some(Box::new(value)), move |board| {
            (rank == root).then(|| {
                board
                    .iter()
                    .map(|slot| downcast_clone::<T>(slot, "gather"))
                    .collect()
            })
        })
    }

    fn all_to_allv<T: Payload>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(
            parts.len(),
            self.size(),
            "all_to_allv requires one part per destination rank"
        );
        self.stats.all_to_allvs.fetch_add(1, Ordering::Relaxed);
        let sent: usize = parts.iter().map(Vec::len).sum();
        self.stats
            .add_bytes((sent * std::mem::size_of::<T>()) as u64);
        let rank = self.rank;
        let size = self.size();
        self.exchange("all_to_allv", Some(Box::new(parts)), move |board| {
            (0..size)
                .map(|src| {
                    let all_parts = board[src]
                        .as_ref()
                        .expect("all_to_allv: missing deposit")
                        .downcast_ref::<Vec<Vec<T>>>()
                        .expect("all_to_allv: payload type mismatch across ranks");
                    all_parts[rank].clone()
                })
                .collect()
        })
    }

    fn send_to<T: Payload>(&self, dst: usize, value: T, nbytes: usize) {
        assert!(dst < self.size(), "send_to destination {dst} out of range");
        self.stats.p2p_messages.fetch_add(1, Ordering::Relaxed);
        self.stats.add_bytes(nbytes as u64);
        self.core.senders[self.rank][dst]
            .send(Box::new(value))
            .expect("send_to: destination mailbox closed");
    }

    fn recv_from<T: Payload>(&self, src: usize) -> T {
        assert!(src < self.size(), "recv_from source {src} out of range");
        let msg = match self.recv_boxed(src, "recv_from", self.config.op_timeout) {
            Ok(msg) => msg,
            Err(e) => panic!("{e}"),
        };
        *msg.downcast::<T>()
            .unwrap_or_else(|_| panic!("recv_from: payload type mismatch (src {src})"))
    }

    fn recv_from_deadline<T: Payload>(
        &self,
        src: usize,
        timeout: Duration,
    ) -> Result<T, CommError> {
        assert!(src < self.size(), "recv_from source {src} out of range");
        let msg = self.recv_boxed(src, "recv_from", Some(timeout))?;
        Ok(*msg
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("recv_from: payload type mismatch (src {src})")))
    }

    fn split(&self, color: usize, key: usize) -> Self {
        // 1. Learn every rank's (color, key).
        let pairs = self.all_gather((color, key, self.rank));
        // 2. My group, ordered by (key, parent rank).
        let mut members: Vec<(usize, usize)> = pairs
            .iter()
            .filter(|(c, _, _)| *c == color)
            .map(|(_, k, r)| (*k, *r))
            .collect();
        members.sort_unstable();
        let my_new_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("split: rank missing from its own group");
        let leader = members[0].1;
        // 3. The group leader creates the new core; everyone fetches the
        //    leader's deposit. Each rank writes only its own slot, so
        //    multiple leaders coexist on the board.
        let deposit: Slot = if self.rank == leader {
            Some(Box::new(Core::new(members.len())))
        } else {
            None
        };
        let new_core = self.exchange("split", deposit, |board| {
            downcast_clone::<Arc<Core>>(&board[leader], "split")
        });
        ThreadedComm::attach(my_new_rank, new_core, self.config)
    }

    fn stats(&self) -> CommStatsSnapshot {
        self.stats.snapshot()
    }
}

/// Run an SPMD closure on `p` rank threads and collect each rank's result in
/// rank order.
///
/// This is the main entry point for the "functional plane" of PASTIS-RS:
/// real data movement between real threads, used to validate algorithm
/// correctness and output determinism at small `p`.
///
/// # Panics
///
/// Propagates a panic from any rank thread.
pub fn run_threaded<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(&ThreadedComm) -> R + Send + Sync + 'static,
{
    run_threaded_with(p, CommConfig::default(), f)
}

/// [`run_threaded`] with an explicit bounded-wait policy for the world.
pub fn run_threaded_with<R, F>(p: usize, config: CommConfig, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(&ThreadedComm) -> R + Send + Sync + 'static,
{
    let handles = ThreadedComm::world_with(p, config);
    let f = Arc::new(f);
    let joins: Vec<thread::JoinHandle<R>> = handles
        .into_iter()
        .map(|comm| {
            let f = Arc::clone(&f);
            thread::Builder::new()
                .name(format!("rank-{}", comm.rank()))
                .stack_size(16 << 20)
                .spawn(move || f(&comm))
                .expect("failed to spawn rank thread")
        })
        .collect();
    joins
        .into_iter()
        .map(|j| j.join().expect("rank thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_delivers_root_value() {
        let out = run_threaded(4, |c| c.broadcast(2, c.rank() * 100, 8));
        assert_eq!(out, vec![200, 200, 200, 200]);
    }

    #[test]
    fn all_gather_orders_by_rank() {
        let out = run_threaded(3, |c| c.all_gather(format!("r{}", c.rank())));
        for v in out {
            assert_eq!(v, vec!["r0", "r1", "r2"]);
        }
    }

    #[test]
    fn gather_only_on_root() {
        let out = run_threaded(3, |c| c.gather(1, c.rank() as u64));
        assert_eq!(out[0], None);
        assert_eq!(out[1], Some(vec![0, 1, 2]));
        assert_eq!(out[2], None);
    }

    #[test]
    fn all_to_allv_transposes() {
        let out = run_threaded(3, |c| {
            let parts: Vec<Vec<usize>> = (0..3).map(|d| vec![c.rank() * 10 + d]).collect();
            c.all_to_allv(parts)
        });
        // Rank r receives [s*10 + r] from each source s.
        for (r, got) in out.iter().enumerate() {
            let want: Vec<Vec<usize>> = (0..3).map(|s| vec![s * 10 + r]).collect();
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn all_to_allv_variable_sizes() {
        let out = run_threaded(4, |c| {
            // Rank r sends r copies of its rank to each destination.
            let parts: Vec<Vec<u8>> = (0..4).map(|_| vec![c.rank() as u8; c.rank()]).collect();
            c.all_to_allv(parts)
        });
        for got in &out {
            for (s, part) in got.iter().enumerate() {
                assert_eq!(part, &vec![s as u8; s]);
            }
        }
    }

    #[test]
    fn all_reduce_sum_min_max() {
        use crate::communicator::ReduceOp;
        let out = run_threaded(4, |c| {
            let v = [c.rank() as u64 + 1];
            (
                c.all_reduce(&v, ReduceOp::Sum)[0],
                c.all_reduce(&v, ReduceOp::Min)[0],
                c.all_reduce(&v, ReduceOp::Max)[0],
            )
        });
        for (s, mn, mx) in out {
            assert_eq!(s, 10);
            assert_eq!(mn, 1);
            assert_eq!(mx, 4);
        }
    }

    #[test]
    fn p2p_fifo_per_pair() {
        let out = run_threaded(2, |c| {
            if c.rank() == 0 {
                c.send_to(1, 1u32, 4);
                c.send_to(1, 2u32, 4);
                c.send_to(1, 3u32, 4);
                Vec::new()
            } else {
                vec![
                    c.recv_from::<u32>(0),
                    c.recv_from::<u32>(0),
                    c.recv_from::<u32>(0),
                ]
            }
        });
        assert_eq!(out[1], vec![1, 2, 3]);
    }

    #[test]
    fn p2p_send_before_recv_is_nonblocking() {
        // All ranks send first, then receive: must not deadlock.
        let out = run_threaded(3, |c| {
            for dst in 0..3 {
                c.send_to(dst, c.rank(), 8);
            }
            (0..3).map(|src| c.recv_from::<usize>(src)).sum::<usize>()
        });
        assert_eq!(out, vec![3, 3, 3]);
    }

    #[test]
    fn split_rows() {
        // 2x2 grid: colors by row.
        let out = run_threaded(4, |c| {
            let row = c.rank() / 2;
            let sub = c.split(row, c.rank());
            (sub.rank(), sub.size(), sub.all_gather(c.rank()))
        });
        assert_eq!(out[0], (0, 2, vec![0, 1]));
        assert_eq!(out[1], (1, 2, vec![0, 1]));
        assert_eq!(out[2], (0, 2, vec![2, 3]));
        assert_eq!(out[3], (1, 2, vec![2, 3]));
    }

    #[test]
    fn split_respects_key_order() {
        let out = run_threaded(4, |c| {
            // Reverse ordering via key.
            let sub = c.split(0, 100 - c.rank());
            sub.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn nested_collectives_on_subcomm() {
        let out = run_threaded(4, |c| {
            let sub = c.split(c.rank() % 2, c.rank());
            let local = sub.all_gather(c.rank());
            c.barrier();
            local
        });
        assert_eq!(out[0], vec![0, 2]);
        assert_eq!(out[1], vec![1, 3]);
        assert_eq!(out[2], vec![0, 2]);
        assert_eq!(out[3], vec![1, 3]);
    }

    #[test]
    fn stats_counting() {
        let out = run_threaded(2, |c| {
            c.broadcast(0, 7u8, 1);
            c.barrier();
            c.stats()
        });
        for s in out {
            assert_eq!(s.broadcasts, 1);
            assert_eq!(s.barriers, 1);
            assert_eq!(s.bytes, 1);
        }
    }

    #[test]
    fn recv_from_deadline_times_out_with_typed_error() {
        let out = run_threaded(2, |c| {
            if c.rank() == 1 {
                let r = c.recv_from_deadline::<u32>(0, Duration::from_millis(20));
                let timed_out = matches!(
                    r,
                    Err(CommError::Timeout {
                        op: "recv_from",
                        rank: 1,
                        peer: Some(0),
                        ..
                    })
                );
                // Late message still arrives once the sender gets there.
                c.barrier();
                let v = c.recv_from::<u32>(0);
                (timed_out, v)
            } else {
                c.barrier();
                c.send_to(1, 77u32, 4);
                (true, 0)
            }
        });
        assert_eq!(out[1], (true, 77));
        assert!(out[0].0);
    }

    #[test]
    fn deadlocked_barrier_fails_fast_with_timeout() {
        // Rank 1 never reaches the barrier: rank 0's bounded wait must fail
        // with a typed error instead of hanging.
        let mut handles =
            ThreadedComm::world_with(2, CommConfig::bounded(Duration::from_millis(30)));
        let absent = handles.pop().unwrap();
        let waiter = handles.pop().unwrap();
        let j = thread::spawn(move || waiter.barrier_deadline(Duration::from_millis(30)));
        let r = j.join().unwrap();
        assert!(matches!(
            r,
            Err(CommError::Timeout {
                op: "barrier",
                rank: 0,
                peer: None,
                ..
            })
        ));
        // The barrier is now poisoned: the missing rank fails immediately too.
        assert!(absent.barrier_deadline(Duration::from_secs(5)).is_err());
    }

    #[test]
    fn bounded_recv_on_infallible_path_panics_with_comm_error() {
        let handles = ThreadedComm::world_with(1, CommConfig::bounded(Duration::from_millis(10)));
        let c = handles.into_iter().next().unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.recv_from::<u32>(0);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("comm timeout"), "got panic message: {msg}");
    }

    #[test]
    fn split_inherits_config() {
        let out = run_threaded_with(2, CommConfig::bounded(Duration::from_secs(9)), |c| {
            let sub = c.split(0, c.rank());
            sub.config()
        });
        assert_eq!(out[0], CommConfig::bounded(Duration::from_secs(9)));
        assert_eq!(out[1], CommConfig::bounded(Duration::from_secs(9)));
    }

    #[test]
    fn single_rank_world() {
        let out = run_threaded(1, |c| {
            let g = c.all_gather(42u8);
            let b = c.broadcast(0, 7u8, 1);
            (g, b)
        });
        assert_eq!(out[0], (vec![42], 7));
    }
}
