//! 2D process grids and 1D block distributions.
//!
//! CombBLAS — and therefore PASTIS — distributes sparse matrices over a
//! square `√p × √p` process grid (Section V-A of the paper: "It uses a
//! square process grid with the requirement of number of processes to be a
//! perfect square number"). [`GridShape`] is the pure index arithmetic
//! (usable by the performance-model plane without any communicator), and
//! [`ProcessGrid`] binds a shape to a live [`Communicator`] with row and
//! column sub-communicators for the SUMMA broadcasts.

use crate::communicator::Communicator;

/// Pure 2D grid geometry: `rows × cols` ranks in row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridShape {
    /// Number of process rows.
    pub rows: usize,
    /// Number of process columns.
    pub cols: usize,
}

impl GridShape {
    /// A square grid for `p` ranks. `p` must be a perfect square, matching
    /// the CombBLAS requirement.
    ///
    /// # Errors
    ///
    /// Returns an error message if `p` is zero or not a perfect square.
    pub fn square(p: usize) -> Result<GridShape, String> {
        if p == 0 {
            return Err("process grid requires at least one rank".into());
        }
        let s = (p as f64).sqrt().round() as usize;
        if s * s != p {
            return Err(format!(
                "2D Sparse SUMMA requires a perfect-square process count, got {p}"
            ));
        }
        Ok(GridShape { rows: s, cols: s })
    }

    /// Total rank count.
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    /// Grid coordinates of `rank` (row-major).
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.size());
        (rank / self.cols, rank % self.cols)
    }

    /// Rank at grid coordinates `(row, col)`.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }
}

/// 1D block distribution of `n` items over `parts` owners, CombBLAS-style:
/// the first `n % parts` owners get one extra item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDist1D {
    /// Number of distributed items (matrix rows or columns).
    pub n: usize,
    /// Number of owners.
    pub parts: usize,
}

impl BlockDist1D {
    /// Create a distribution of `n` items over `parts > 0` owners.
    pub fn new(n: usize, parts: usize) -> BlockDist1D {
        assert!(parts > 0, "block distribution needs at least one part");
        BlockDist1D { n, parts }
    }

    /// Number of items owned by `part`.
    pub fn part_len(&self, part: usize) -> usize {
        debug_assert!(part < self.parts);
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        base + usize::from(part < extra)
    }

    /// Global index of the first item owned by `part`.
    pub fn part_offset(&self, part: usize) -> usize {
        debug_assert!(part <= self.parts);
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        part * base + part.min(extra)
    }

    /// Owner of global item `i`.
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.n, "index {i} out of range {}", self.n);
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        let boundary = extra * (base + 1);
        if i < boundary {
            i / (base + 1)
        } else {
            // base == 0 means more parts than items, so every valid index
            // lives below `boundary` and the division is well-defined.
            match (i - boundary).checked_div(base) {
                Some(q) => extra + q,
                None => unreachable!("index {i} beyond distributed range"),
            }
        }
    }

    /// Convert a global index to `(owner, local index)`.
    pub fn to_local(&self, i: usize) -> (usize, usize) {
        let owner = self.owner(i);
        (owner, i - self.part_offset(owner))
    }

    /// Convert `(owner, local index)` back to the global index.
    pub fn to_global(&self, part: usize, local: usize) -> usize {
        debug_assert!(local < self.part_len(part));
        self.part_offset(part) + local
    }
}

/// A live 2D process grid: geometry plus world/row/column communicators.
///
/// The row communicator connects all ranks in this rank's grid row (used to
/// broadcast stripes of `A` in SUMMA); the column communicator connects this
/// rank's grid column (stripes of `B`).
pub struct ProcessGrid<C: Communicator> {
    shape: GridShape,
    world: C,
    row_comm: C,
    col_comm: C,
}

impl<C: Communicator> ProcessGrid<C> {
    /// Build a square grid over `world`. The world size must be a perfect
    /// square.
    pub fn square(world: C) -> ProcessGrid<C> {
        let shape = GridShape::square(world.size()).unwrap_or_else(|e| panic!("{e}"));
        Self::from_shape(world, shape)
    }

    /// Build a grid with an explicit (possibly rectangular) shape over
    /// `world`; `rows × cols` must tile the world size exactly. SUMMA
    /// itself requires a square grid (it asserts this), so this
    /// constructor serves layouts that don't run SUMMA — and lets tests
    /// exercise that assert.
    pub fn with_shape(world: C, rows: usize, cols: usize) -> ProcessGrid<C> {
        assert_eq!(
            rows * cols,
            world.size(),
            "grid shape {rows}x{cols} does not tile {} ranks",
            world.size()
        );
        Self::from_shape(world, GridShape { rows, cols })
    }

    fn from_shape(world: C, shape: GridShape) -> ProcessGrid<C> {
        let (my_row, my_col) = shape.coords(world.rank());
        // Color by row: ranks of one row form the row communicator.
        let row_comm = world.split(my_row, my_col);
        let col_comm = world.split(my_col, my_row);
        ProcessGrid {
            shape,
            world,
            row_comm,
            col_comm,
        }
    }

    /// Grid geometry.
    pub fn shape(&self) -> GridShape {
        self.shape
    }

    /// This rank's grid row.
    pub fn my_row(&self) -> usize {
        self.shape.coords(self.world.rank()).0
    }

    /// This rank's grid column.
    pub fn my_col(&self) -> usize {
        self.shape.coords(self.world.rank()).1
    }

    /// The world communicator spanning the whole grid.
    pub fn world(&self) -> &C {
        &self.world
    }

    /// Communicator spanning this rank's grid row; the sub-rank equals the
    /// grid column.
    pub fn row_comm(&self) -> &C {
        &self.row_comm
    }

    /// Communicator spanning this rank's grid column; the sub-rank equals
    /// the grid row.
    pub fn col_comm(&self) -> &C {
        &self.col_comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::run_threaded;

    #[test]
    fn square_shapes() {
        assert_eq!(
            GridShape::square(1).unwrap(),
            GridShape { rows: 1, cols: 1 }
        );
        assert_eq!(
            GridShape::square(9).unwrap(),
            GridShape { rows: 3, cols: 3 }
        );
        assert!(GridShape::square(8).is_err());
        assert!(GridShape::square(0).is_err());
    }

    #[test]
    fn coords_roundtrip() {
        let g = GridShape::square(16).unwrap();
        for rank in 0..16 {
            let (r, c) = g.coords(rank);
            assert_eq!(g.rank_of(r, c), rank);
        }
    }

    #[test]
    fn block_dist_covers_everything_in_order() {
        for n in [0usize, 1, 7, 10, 64, 101] {
            for parts in [1usize, 2, 3, 7, 16] {
                let d = BlockDist1D::new(n, parts);
                let total: usize = (0..parts).map(|p| d.part_len(p)).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                let mut seen = 0usize;
                for p in 0..parts {
                    assert_eq!(d.part_offset(p), seen);
                    seen += d.part_len(p);
                }
                for i in 0..n {
                    let (owner, local) = d.to_local(i);
                    assert!(local < d.part_len(owner));
                    assert_eq!(d.to_global(owner, local), i);
                }
            }
        }
    }

    #[test]
    fn block_dist_remainder_goes_first() {
        let d = BlockDist1D::new(10, 4);
        assert_eq!(
            (0..4).map(|p| d.part_len(p)).collect::<Vec<_>>(),
            vec![3, 3, 2, 2]
        );
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(5), 1);
        assert_eq!(d.owner(9), 3);
    }

    #[test]
    fn live_grid_row_and_col_comms() {
        let out = run_threaded(4, |c| {
            let rank = c.rank();
            let world = c.split(0, rank); // clone of the world ordering
            let grid = ProcessGrid::square(world);
            let row_members = grid.row_comm().all_gather(rank);
            let col_members = grid.col_comm().all_gather(rank);
            (grid.my_row(), grid.my_col(), row_members, col_members)
        });
        assert_eq!(out[0], (0, 0, vec![0, 1], vec![0, 2]));
        assert_eq!(out[1], (0, 1, vec![0, 1], vec![1, 3]));
        assert_eq!(out[2], (1, 0, vec![2, 3], vec![0, 2]));
        assert_eq!(out[3], (1, 1, vec![2, 3], vec![1, 3]));
    }
}
