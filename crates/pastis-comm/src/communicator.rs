//! The SPMD communicator abstraction.
//!
//! The trait mirrors the subset of MPI that PASTIS uses: collectives along
//! (sub-)communicators plus non-blocking point-to-point transfers for the
//! sequence exchange (whose completion wait is the `cwait` component of
//! Table II in the paper).
//!
//! All collective operations are *bulk-synchronous*: every rank of the
//! communicator must call the same sequence of collectives in the same
//! order, exactly as with MPI. Violating this is a programming error and the
//! threaded implementation will either dead-lock or panic with a descriptive
//! message, matching MPI's undefined-behaviour contract closely enough for a
//! test substrate.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A payload that can travel between ranks.
///
/// In the threaded implementation nothing is serialized — values are cloned
/// across threads — so the bound is simply `Clone + Send + Sync + 'static`.
pub trait Payload: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Payload for T {}

/// Typed failure of a communicator operation.
///
/// The fault layer (bounded waits in [`crate::ThreadedComm`], injection in
/// [`crate::FaultyComm`]) turns what would otherwise be an infinite hang or
/// a silent corruption into one of these values. Infallible trait methods
/// (`recv_from`, `barrier`, the collectives) report the same conditions by
/// panicking with the error's `Display` string — a deadlocked test then
/// fails with a diagnosis instead of hanging CI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A bounded wait expired before the operation completed.
    Timeout {
        /// The operation that timed out (e.g. `"recv_from"`, `"barrier"`).
        op: &'static str,
        /// The waiting rank.
        rank: usize,
        /// The peer waited on (`None` for collectives).
        peer: Option<usize>,
        /// How long the rank waited before giving up.
        waited_ms: u64,
    },
    /// Every retransmission attempt of a point-to-point message failed the
    /// CRC check (see [`crate::FaultyComm`]'s framing).
    Corrupt {
        /// The receiving operation.
        op: &'static str,
        /// The receiving rank.
        rank: usize,
        /// The sending rank.
        src: usize,
        /// Frames rejected before giving up.
        rejects: u32,
    },
    /// A rank executed an injected hard crash (chaos testing only).
    RankDead {
        /// The crashed rank.
        rank: usize,
        /// The communicator-op index at which the crash fired.
        at_op: u64,
    },
    /// The peer's channel is closed — its thread is gone.
    Closed {
        /// The operation that observed the closed channel.
        op: &'static str,
        /// The observing rank.
        rank: usize,
        /// The dead peer.
        peer: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout {
                op,
                rank,
                peer,
                waited_ms,
            } => match peer {
                Some(p) => write!(
                    f,
                    "comm timeout: rank {rank} waited {waited_ms}ms in {op} on rank {p}"
                ),
                None => write!(f, "comm timeout: rank {rank} waited {waited_ms}ms in {op}"),
            },
            CommError::Corrupt {
                op,
                rank,
                src,
                rejects,
            } => write!(
                f,
                "comm corruption: rank {rank} rejected {rejects} frame(s) from rank {src} in {op}"
            ),
            CommError::RankDead { rank, at_op } => {
                write!(f, "injected crash: rank {rank} died at comm op {at_op}")
            }
            CommError::Closed { op, rank, peer } => {
                write!(f, "comm closed: rank {rank} found rank {peer} gone in {op}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Built-in reduction operators for [`Communicator::all_reduce`].
///
/// Mirrors the MPI predefined operations PASTIS uses (sum/min/max on
/// counters and timings). Custom folds are available through
/// [`Communicator::all_reduce_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// Apply the operator to two `u64` operands.
    #[inline]
    pub fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Apply the operator to two `f64` operands.
    #[inline]
    pub fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Traffic counters recorded by a communicator.
///
/// Byte counts are *approximations supplied by the caller* (PASTIS-RS's
/// distributed-matrix layer knows the exact serialized size of the
/// sub-matrices it broadcasts and passes it down), so the counters can feed
/// the α–β cost model with the same numbers the analysis in Section VI-A
/// uses.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Number of broadcast operations issued by this rank.
    pub broadcasts: AtomicU64,
    /// Number of all-gather operations issued by this rank.
    pub all_gathers: AtomicU64,
    /// Number of all-to-allv operations issued by this rank.
    pub all_to_allvs: AtomicU64,
    /// Number of reductions issued by this rank.
    pub reductions: AtomicU64,
    /// Number of barrier operations issued by this rank.
    pub barriers: AtomicU64,
    /// Number of point-to-point messages sent by this rank.
    pub p2p_messages: AtomicU64,
    /// Approximate bytes moved by this rank (caller-supplied sizes).
    pub bytes: AtomicU64,
}

impl CommStats {
    /// Record `n` bytes of traffic.
    #[inline]
    pub fn add_bytes(&self, n: u64) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot the counters into a plain struct.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            broadcasts: self.broadcasts.load(Ordering::Relaxed),
            all_gathers: self.all_gathers.load(Ordering::Relaxed),
            all_to_allvs: self.all_to_allvs.load(Ordering::Relaxed),
            reductions: self.reductions.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            p2p_messages: self.p2p_messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`CommStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStatsSnapshot {
    /// Number of broadcast operations.
    pub broadcasts: u64,
    /// Number of all-gather operations.
    pub all_gathers: u64,
    /// Number of all-to-allv operations.
    pub all_to_allvs: u64,
    /// Number of reductions.
    pub reductions: u64,
    /// Number of barriers.
    pub barriers: u64,
    /// Number of point-to-point messages.
    pub p2p_messages: u64,
    /// Approximate bytes moved.
    pub bytes: u64,
}

/// An MPI-like SPMD communicator.
///
/// Implementations: [`crate::ThreadedComm`] (ranks are threads, data really
/// moves) and [`crate::SelfComm`] (`p = 1`).
pub trait Communicator: Send + Sized {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in this communicator.
    fn size(&self) -> usize;

    /// Synchronize all ranks of this communicator.
    fn barrier(&self);

    /// Broadcast `value` from `root` to every rank; every rank receives the
    /// root's value. Non-root ranks pass their (ignored) local value or a
    /// default; only the root's `value` is used, mirroring `MPI_Bcast`
    /// buffer semantics. `nbytes` is the caller's estimate of the payload
    /// size, recorded in [`CommStats`].
    fn broadcast<T: Payload>(&self, root: usize, value: T, nbytes: usize) -> T;

    /// Gather one value from every rank onto every rank, ordered by rank.
    fn all_gather<T: Payload>(&self, value: T) -> Vec<T>;

    /// Gather one value from every rank onto `root` (rank order). Returns
    /// `Some(values)` on the root and `None` elsewhere.
    fn gather<T: Payload>(&self, root: usize, value: T) -> Option<Vec<T>>;

    /// Personalized all-to-all: `parts[d]` is sent to rank `d`; the return
    /// value's element `s` is the part rank `s` addressed to this rank.
    fn all_to_allv<T: Payload>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>>;

    /// Element-wise reduction of a `u64` vector across all ranks; every rank
    /// receives the reduced vector.
    fn all_reduce(&self, values: &[u64], op: ReduceOp) -> Vec<u64> {
        self.all_reduce_with(values.to_vec(), move |mut a, b| {
            assert_eq!(a.len(), b.len(), "all_reduce length mismatch across ranks");
            for (x, y) in a.iter_mut().zip(b) {
                *x = op.apply_u64(*x, y);
            }
            a
        })
    }

    /// Element-wise reduction of an `f64` vector across all ranks.
    ///
    /// The fold is applied in **fixed rank order** (`((v0 ⊕ v1) ⊕ v2) …`,
    /// via [`Communicator::all_reduce_with`]), never in arrival order, so
    /// floating-point sums are bit-deterministic even when ranks reach the
    /// reduction at wildly different times (e.g. under injected delays —
    /// pinned by `fault::tests::f64_all_reduce_is_bit_deterministic_under_delays`).
    fn all_reduce_f64(&self, values: &[f64], op: ReduceOp) -> Vec<f64> {
        self.all_reduce_with(values.to_vec(), move |mut a, b| {
            assert_eq!(a.len(), b.len(), "all_reduce length mismatch across ranks");
            for (x, y) in a.iter_mut().zip(b) {
                *x = op.apply_f64(*x, y);
            }
            a
        })
    }

    /// Generic all-reduce with a caller-supplied associative fold.
    ///
    /// The fold is applied in rank order (`((v0 ⊕ v1) ⊕ v2) …`), so
    /// non-commutative but associative operators are well-defined.
    fn all_reduce_with<T, F>(&self, value: T, fold: F) -> T
    where
        T: Payload,
        F: Fn(T, T) -> T,
    {
        let all = self.all_gather(value);
        let mut it = all.into_iter();
        let first = it.next().expect("all_reduce on empty communicator");
        it.fold(first, fold)
    }

    /// Non-blocking send of `value` to rank `dst`. The message is delivered
    /// into `dst`'s mailbox and matched by [`Communicator::recv_from`] in
    /// FIFO order per (source, destination) pair.
    fn send_to<T: Payload>(&self, dst: usize, value: T, nbytes: usize);

    /// Blocking receive of the next message sent by rank `src` to this rank.
    fn recv_from<T: Payload>(&self, src: usize) -> T;

    /// Bounded-wait variant of [`Communicator::recv_from`]: gives up with
    /// [`CommError::Timeout`] once `timeout` elapses with no message.
    ///
    /// The default implementation ignores the deadline and delegates to the
    /// blocking receive (correct for implementations whose receives cannot
    /// stall, like [`crate::SelfComm`]); [`crate::ThreadedComm`] overrides
    /// it with a real timed wait.
    fn recv_from_deadline<T: Payload>(
        &self,
        src: usize,
        timeout: Duration,
    ) -> Result<T, CommError> {
        let _ = timeout;
        Ok(self.recv_from(src))
    }

    /// Bounded-wait variant of [`Communicator::barrier`]: gives up with
    /// [`CommError::Timeout`] if the barrier does not complete in time
    /// (some rank never arrived — the classic deadlock signature).
    ///
    /// The default implementation ignores the deadline and delegates to the
    /// blocking barrier; [`crate::ThreadedComm`] overrides it.
    fn barrier_deadline(&self, timeout: Duration) -> Result<(), CommError> {
        let _ = timeout;
        self.barrier();
        Ok(())
    }

    /// Split this communicator into disjoint sub-communicators.
    ///
    /// Ranks passing the same `color` form a group; within a group ranks are
    /// ordered by `key` (ties broken by parent rank), mirroring
    /// `MPI_Comm_split`.
    fn split(&self, color: usize, key: usize) -> Self;

    /// Traffic counters for this rank.
    fn stats(&self) -> CommStatsSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_op_u64() {
        assert_eq!(ReduceOp::Sum.apply_u64(3, 4), 7);
        assert_eq!(ReduceOp::Min.apply_u64(3, 4), 3);
        assert_eq!(ReduceOp::Max.apply_u64(3, 4), 4);
    }

    #[test]
    fn reduce_op_f64() {
        assert_eq!(ReduceOp::Sum.apply_f64(1.5, 2.5), 4.0);
        assert_eq!(ReduceOp::Min.apply_f64(1.5, 2.5), 1.5);
        assert_eq!(ReduceOp::Max.apply_f64(1.5, 2.5), 2.5);
    }

    #[test]
    fn stats_snapshot_roundtrip() {
        let s = CommStats::default();
        s.add_bytes(128);
        s.broadcasts.fetch_add(2, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.bytes, 128);
        assert_eq!(snap.broadcasts, 2);
        assert_eq!(snap.barriers, 0);
    }
}
