//! The SPMD communicator abstraction.
//!
//! The trait mirrors the subset of MPI that PASTIS uses: collectives along
//! (sub-)communicators plus non-blocking point-to-point transfers for the
//! sequence exchange (whose completion wait is the `cwait` component of
//! Table II in the paper).
//!
//! All collective operations are *bulk-synchronous*: every rank of the
//! communicator must call the same sequence of collectives in the same
//! order, exactly as with MPI. Violating this is a programming error and the
//! threaded implementation will either dead-lock or panic with a descriptive
//! message, matching MPI's undefined-behaviour contract closely enough for a
//! test substrate.

use std::sync::atomic::{AtomicU64, Ordering};

/// A payload that can travel between ranks.
///
/// In the threaded implementation nothing is serialized — values are cloned
/// across threads — so the bound is simply `Clone + Send + Sync + 'static`.
pub trait Payload: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Payload for T {}

/// Built-in reduction operators for [`Communicator::all_reduce`].
///
/// Mirrors the MPI predefined operations PASTIS uses (sum/min/max on
/// counters and timings). Custom folds are available through
/// [`Communicator::all_reduce_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// Apply the operator to two `u64` operands.
    #[inline]
    pub fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Apply the operator to two `f64` operands.
    #[inline]
    pub fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Traffic counters recorded by a communicator.
///
/// Byte counts are *approximations supplied by the caller* (PASTIS-RS's
/// distributed-matrix layer knows the exact serialized size of the
/// sub-matrices it broadcasts and passes it down), so the counters can feed
/// the α–β cost model with the same numbers the analysis in Section VI-A
/// uses.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Number of broadcast operations issued by this rank.
    pub broadcasts: AtomicU64,
    /// Number of all-gather operations issued by this rank.
    pub all_gathers: AtomicU64,
    /// Number of all-to-allv operations issued by this rank.
    pub all_to_allvs: AtomicU64,
    /// Number of reductions issued by this rank.
    pub reductions: AtomicU64,
    /// Number of barrier operations issued by this rank.
    pub barriers: AtomicU64,
    /// Number of point-to-point messages sent by this rank.
    pub p2p_messages: AtomicU64,
    /// Approximate bytes moved by this rank (caller-supplied sizes).
    pub bytes: AtomicU64,
}

impl CommStats {
    /// Record `n` bytes of traffic.
    #[inline]
    pub fn add_bytes(&self, n: u64) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot the counters into a plain struct.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            broadcasts: self.broadcasts.load(Ordering::Relaxed),
            all_gathers: self.all_gathers.load(Ordering::Relaxed),
            all_to_allvs: self.all_to_allvs.load(Ordering::Relaxed),
            reductions: self.reductions.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            p2p_messages: self.p2p_messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`CommStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStatsSnapshot {
    /// Number of broadcast operations.
    pub broadcasts: u64,
    /// Number of all-gather operations.
    pub all_gathers: u64,
    /// Number of all-to-allv operations.
    pub all_to_allvs: u64,
    /// Number of reductions.
    pub reductions: u64,
    /// Number of barriers.
    pub barriers: u64,
    /// Number of point-to-point messages.
    pub p2p_messages: u64,
    /// Approximate bytes moved.
    pub bytes: u64,
}

/// An MPI-like SPMD communicator.
///
/// Implementations: [`crate::ThreadedComm`] (ranks are threads, data really
/// moves) and [`crate::SelfComm`] (`p = 1`).
pub trait Communicator: Send + Sized {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in this communicator.
    fn size(&self) -> usize;

    /// Synchronize all ranks of this communicator.
    fn barrier(&self);

    /// Broadcast `value` from `root` to every rank; every rank receives the
    /// root's value. Non-root ranks pass their (ignored) local value or a
    /// default; only the root's `value` is used, mirroring `MPI_Bcast`
    /// buffer semantics. `nbytes` is the caller's estimate of the payload
    /// size, recorded in [`CommStats`].
    fn broadcast<T: Payload>(&self, root: usize, value: T, nbytes: usize) -> T;

    /// Gather one value from every rank onto every rank, ordered by rank.
    fn all_gather<T: Payload>(&self, value: T) -> Vec<T>;

    /// Gather one value from every rank onto `root` (rank order). Returns
    /// `Some(values)` on the root and `None` elsewhere.
    fn gather<T: Payload>(&self, root: usize, value: T) -> Option<Vec<T>>;

    /// Personalized all-to-all: `parts[d]` is sent to rank `d`; the return
    /// value's element `s` is the part rank `s` addressed to this rank.
    fn all_to_allv<T: Payload>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>>;

    /// Element-wise reduction of a `u64` vector across all ranks; every rank
    /// receives the reduced vector.
    fn all_reduce(&self, values: &[u64], op: ReduceOp) -> Vec<u64> {
        self.all_reduce_with(values.to_vec(), move |mut a, b| {
            assert_eq!(a.len(), b.len(), "all_reduce length mismatch across ranks");
            for (x, y) in a.iter_mut().zip(b) {
                *x = op.apply_u64(*x, y);
            }
            a
        })
    }

    /// Element-wise reduction of an `f64` vector across all ranks.
    fn all_reduce_f64(&self, values: &[f64], op: ReduceOp) -> Vec<f64> {
        self.all_reduce_with(values.to_vec(), move |mut a, b| {
            assert_eq!(a.len(), b.len(), "all_reduce length mismatch across ranks");
            for (x, y) in a.iter_mut().zip(b) {
                *x = op.apply_f64(*x, y);
            }
            a
        })
    }

    /// Generic all-reduce with a caller-supplied associative fold.
    ///
    /// The fold is applied in rank order (`((v0 ⊕ v1) ⊕ v2) …`), so
    /// non-commutative but associative operators are well-defined.
    fn all_reduce_with<T, F>(&self, value: T, fold: F) -> T
    where
        T: Payload,
        F: Fn(T, T) -> T,
    {
        let all = self.all_gather(value);
        let mut it = all.into_iter();
        let first = it.next().expect("all_reduce on empty communicator");
        it.fold(first, fold)
    }

    /// Non-blocking send of `value` to rank `dst`. The message is delivered
    /// into `dst`'s mailbox and matched by [`Communicator::recv_from`] in
    /// FIFO order per (source, destination) pair.
    fn send_to<T: Payload>(&self, dst: usize, value: T, nbytes: usize);

    /// Blocking receive of the next message sent by rank `src` to this rank.
    fn recv_from<T: Payload>(&self, src: usize) -> T;

    /// Split this communicator into disjoint sub-communicators.
    ///
    /// Ranks passing the same `color` form a group; within a group ranks are
    /// ordered by `key` (ties broken by parent rank), mirroring
    /// `MPI_Comm_split`.
    fn split(&self, color: usize, key: usize) -> Self;

    /// Traffic counters for this rank.
    fn stats(&self) -> CommStatsSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_op_u64() {
        assert_eq!(ReduceOp::Sum.apply_u64(3, 4), 7);
        assert_eq!(ReduceOp::Min.apply_u64(3, 4), 3);
        assert_eq!(ReduceOp::Max.apply_u64(3, 4), 4);
    }

    #[test]
    fn reduce_op_f64() {
        assert_eq!(ReduceOp::Sum.apply_f64(1.5, 2.5), 4.0);
        assert_eq!(ReduceOp::Min.apply_f64(1.5, 2.5), 1.5);
        assert_eq!(ReduceOp::Max.apply_f64(1.5, 2.5), 2.5);
    }

    #[test]
    fn stats_snapshot_roundtrip() {
        let s = CommStats::default();
        s.add_bytes(128);
        s.broadcasts.fetch_add(2, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.bytes, 128);
        assert_eq!(snap.broadcasts, 2);
        assert_eq!(snap.barriers, 0);
    }
}
