//! Virtual clocks, component time breakdowns, and imbalance statistics.
//!
//! Section VII of the paper ("How performance was measured") describes three
//! reporting mechanisms: component timers, alignments/second, and cell
//! updates/second, with load imbalance captured as the minimum / average /
//! maximum per-process time in a component. This module is the Rust
//! counterpart: [`VirtualClock`] accumulates per-rank time by
//! [`Component`], and [`ImbalanceStats`] condenses a per-rank metric into
//! the min/avg/max triples plotted in Figure 7.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::communicator::{Communicator, ReduceOp};

// The component taxonomy and imbalance summaries moved to `pastis-trace`
// (shared with the telemetry layer's span categories); re-exported here so
// existing `pastis_comm::{Component, ImbalanceStats}` paths keep working.
pub use pastis_trace::{Component, ImbalanceStats};

/// Seconds spent per [`Component`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    secs: [f64; 6],
}

impl TimeBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> TimeBreakdown {
        TimeBreakdown::default()
    }

    /// Seconds recorded for `c`.
    pub fn get(&self, c: Component) -> f64 {
        self.secs[c.index()]
    }

    /// Add `dt` seconds to component `c`.
    pub fn record(&mut self, c: Component, dt: f64) {
        debug_assert!(dt >= 0.0, "negative time increment");
        self.secs[c.index()] += dt;
    }

    /// Total seconds across all components.
    pub fn total(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// The paper's "sparse (all)" aggregate: SpGEMM plus other sparse work.
    pub fn sparse_all(&self) -> f64 {
        self.get(Component::SpGemm) + self.get(Component::SparseOther)
    }

    /// Component-wise maximum (the bulk-synchronous combine across ranks:
    /// the slowest rank defines the step time per component).
    pub fn max_combine(&self, other: &TimeBreakdown) -> TimeBreakdown {
        let mut out = *self;
        for i in 0..out.secs.len() {
            out.secs[i] = out.secs[i].max(other.secs[i]);
        }
        out
    }

    /// Elementwise **max** all-reduce of this rank's breakdown across
    /// `comm`: every rank receives, per component, the slowest rank's time
    /// (the bulk-synchronous view of where the critical path went).
    pub fn all_reduce_max<C: Communicator>(&self, comm: &C) -> TimeBreakdown {
        self.all_reduce(comm, ReduceOp::Max)
    }

    /// Elementwise **sum** all-reduce of this rank's breakdown across
    /// `comm`: every rank receives, per component, the total CPU-seconds
    /// spent machine-wide (the resource-usage view).
    pub fn all_reduce_sum<C: Communicator>(&self, comm: &C) -> TimeBreakdown {
        self.all_reduce(comm, ReduceOp::Sum)
    }

    fn all_reduce<C: Communicator>(&self, comm: &C, op: ReduceOp) -> TimeBreakdown {
        let reduced = comm.all_reduce_f64(&self.secs, op);
        let mut out = TimeBreakdown::new();
        out.secs.copy_from_slice(&reduced);
        out
    }
}

impl Add for TimeBreakdown {
    type Output = TimeBreakdown;
    fn add(mut self, rhs: TimeBreakdown) -> TimeBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: TimeBreakdown) {
        for i in 0..self.secs.len() {
            self.secs[i] += rhs.secs[i];
        }
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in Component::ALL {
            let v = self.get(c);
            if v > 0.0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}={:.3}s", c.label(), v)?;
                first = false;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// A per-rank virtual clock for the performance-model plane.
///
/// Each virtual rank advances its own clock by modeled durations; a
/// bulk-synchronous step then advances every rank to the maximum (stragglers
/// gate the step), which is exactly how component times compose in an SPMD
/// program with barriers between phases.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VirtualClock {
    now: f64,
    breakdown: TimeBreakdown,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by `dt` seconds attributed to component `c`.
    pub fn advance(&mut self, c: Component, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.now += dt;
        self.breakdown.record(c, dt);
    }

    /// Advance to absolute time `t` (no-op if already past), attributing
    /// the skipped interval to `c` — used to model barrier waits.
    pub fn advance_to(&mut self, c: Component, t: f64) {
        if t > self.now {
            let dt = t - self.now;
            self.now = t;
            self.breakdown.record(c, dt);
        }
    }

    /// Per-component accumulated time.
    pub fn breakdown(&self) -> &TimeBreakdown {
        &self.breakdown
    }
}

/// Synchronize a set of virtual rank clocks at a barrier: every clock jumps
/// to the maximum `now`, with waiting time attributed to `wait_component`.
/// Returns the barrier time.
pub fn barrier_sync(clocks: &mut [VirtualClock], wait_component: Component) -> f64 {
    let t = clocks.iter().map(VirtualClock::now).fold(0.0, f64::max);
    for c in clocks.iter_mut() {
        c.advance_to(wait_component, t);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = TimeBreakdown::new();
        b.record(Component::Align, 2.0);
        b.record(Component::SpGemm, 1.0);
        b.record(Component::SparseOther, 0.5);
        assert_eq!(b.get(Component::Align), 2.0);
        assert_eq!(b.sparse_all(), 1.5);
        assert_eq!(b.total(), 3.5);
    }

    #[test]
    fn breakdown_add_and_max_combine() {
        let mut a = TimeBreakdown::new();
        a.record(Component::Align, 1.0);
        let mut b = TimeBreakdown::new();
        b.record(Component::Align, 3.0);
        b.record(Component::Io, 2.0);
        let sum = a + b;
        assert_eq!(sum.get(Component::Align), 4.0);
        assert_eq!(sum.get(Component::Io), 2.0);
        let mx = a.max_combine(&b);
        assert_eq!(mx.get(Component::Align), 3.0);
        assert_eq!(mx.get(Component::Io), 2.0);
    }

    #[test]
    fn clock_advances_and_attributes() {
        let mut c = VirtualClock::new();
        c.advance(Component::Io, 1.0);
        c.advance(Component::Align, 2.0);
        assert_eq!(c.now(), 3.0);
        assert_eq!(c.breakdown().get(Component::Io), 1.0);
        c.advance_to(Component::CommWait, 2.5); // already past: no-op
        assert_eq!(c.now(), 3.0);
        c.advance_to(Component::CommWait, 5.0);
        assert_eq!(c.now(), 5.0);
        assert_eq!(c.breakdown().get(Component::CommWait), 2.0);
    }

    #[test]
    fn barrier_lifts_all_clocks_to_max() {
        let mut clocks = vec![
            VirtualClock::new(),
            VirtualClock::new(),
            VirtualClock::new(),
        ];
        clocks[0].advance(Component::Align, 1.0);
        clocks[1].advance(Component::Align, 4.0);
        clocks[2].advance(Component::Align, 2.0);
        let t = barrier_sync(&mut clocks, Component::CommWait);
        assert_eq!(t, 4.0);
        for c in &clocks {
            assert_eq!(c.now(), 4.0);
        }
        assert_eq!(clocks[0].breakdown().get(Component::CommWait), 3.0);
        assert_eq!(clocks[1].breakdown().get(Component::CommWait), 0.0);
    }

    #[test]
    fn breakdown_all_reduce_across_threaded_ranks() {
        let results = crate::threaded::run_threaded(3, |comm| {
            let mut b = TimeBreakdown::new();
            // Rank r spent r+1 seconds aligning and 0.5 s in IO.
            b.record(Component::Align, (comm.rank() + 1) as f64);
            b.record(Component::Io, 0.5);
            (b.all_reduce_max(comm), b.all_reduce_sum(comm))
        });
        for (mx, sum) in results {
            assert_eq!(mx.get(Component::Align), 3.0);
            assert_eq!(mx.get(Component::Io), 0.5);
            assert_eq!(sum.get(Component::Align), 6.0);
            assert_eq!(sum.get(Component::Io), 1.5);
            assert_eq!(sum.get(Component::SpGemm), 0.0);
        }
    }

    #[test]
    fn display_formats() {
        let mut b = TimeBreakdown::new();
        b.record(Component::Align, 1.25);
        let s = format!("{b}");
        assert!(s.contains("align=1.250s"));
        assert_eq!(format!("{}", TimeBreakdown::new()), "(empty)");
    }
}
