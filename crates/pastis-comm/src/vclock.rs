//! Virtual clocks, component time breakdowns, and imbalance statistics.
//!
//! Section VII of the paper ("How performance was measured") describes three
//! reporting mechanisms: component timers, alignments/second, and cell
//! updates/second, with load imbalance captured as the minimum / average /
//! maximum per-process time in a component. This module is the Rust
//! counterpart: [`VirtualClock`] accumulates per-rank time by
//! [`Component`], and [`ImbalanceStats`] condenses a per-rank metric into
//! the min/avg/max triples plotted in Figure 7.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Pipeline components timed separately, following the paper's breakdown
/// (Table IV: Align / SpGEMM / Sparse (all) / IO / Communication wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Batch pairwise alignment (GPU in the paper).
    Align,
    /// The SpGEMM proper inside the sparse phase.
    SpGemm,
    /// Other sparse work: k-mer matrix formation, transposes, pruning,
    /// symmetricity handling, output assembly.
    SparseOther,
    /// Parallel file input/output.
    Io,
    /// Waiting on sequence point-to-point transfers ("cwait", Table II).
    CommWait,
    /// Anything else (setup, bookkeeping).
    Other,
}

impl Component {
    /// All components in display order.
    pub const ALL: [Component; 6] = [
        Component::Align,
        Component::SpGemm,
        Component::SparseOther,
        Component::Io,
        Component::CommWait,
        Component::Other,
    ];

    fn index(self) -> usize {
        match self {
            Component::Align => 0,
            Component::SpGemm => 1,
            Component::SparseOther => 2,
            Component::Io => 3,
            Component::CommWait => 4,
            Component::Other => 5,
        }
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Component::Align => "align",
            Component::SpGemm => "spgemm",
            Component::SparseOther => "sparse-other",
            Component::Io => "io",
            Component::CommWait => "cwait",
            Component::Other => "other",
        }
    }
}

/// Seconds spent per [`Component`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    secs: [f64; 6],
}

impl TimeBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> TimeBreakdown {
        TimeBreakdown::default()
    }

    /// Seconds recorded for `c`.
    pub fn get(&self, c: Component) -> f64 {
        self.secs[c.index()]
    }

    /// Add `dt` seconds to component `c`.
    pub fn record(&mut self, c: Component, dt: f64) {
        debug_assert!(dt >= 0.0, "negative time increment");
        self.secs[c.index()] += dt;
    }

    /// Total seconds across all components.
    pub fn total(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// The paper's "sparse (all)" aggregate: SpGEMM plus other sparse work.
    pub fn sparse_all(&self) -> f64 {
        self.get(Component::SpGemm) + self.get(Component::SparseOther)
    }

    /// Component-wise maximum (the bulk-synchronous combine across ranks:
    /// the slowest rank defines the step time per component).
    pub fn max_combine(&self, other: &TimeBreakdown) -> TimeBreakdown {
        let mut out = *self;
        for i in 0..out.secs.len() {
            out.secs[i] = out.secs[i].max(other.secs[i]);
        }
        out
    }
}

impl Add for TimeBreakdown {
    type Output = TimeBreakdown;
    fn add(mut self, rhs: TimeBreakdown) -> TimeBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: TimeBreakdown) {
        for i in 0..self.secs.len() {
            self.secs[i] += rhs.secs[i];
        }
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in Component::ALL {
            let v = self.get(c);
            if v > 0.0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}={:.3}s", c.label(), v)?;
                first = false;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// A per-rank virtual clock for the performance-model plane.
///
/// Each virtual rank advances its own clock by modeled durations; a
/// bulk-synchronous step then advances every rank to the maximum (stragglers
/// gate the step), which is exactly how component times compose in an SPMD
/// program with barriers between phases.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VirtualClock {
    now: f64,
    breakdown: TimeBreakdown,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by `dt` seconds attributed to component `c`.
    pub fn advance(&mut self, c: Component, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.now += dt;
        self.breakdown.record(c, dt);
    }

    /// Advance to absolute time `t` (no-op if already past), attributing
    /// the skipped interval to `c` — used to model barrier waits.
    pub fn advance_to(&mut self, c: Component, t: f64) {
        if t > self.now {
            let dt = t - self.now;
            self.now = t;
            self.breakdown.record(c, dt);
        }
    }

    /// Per-component accumulated time.
    pub fn breakdown(&self) -> &TimeBreakdown {
        &self.breakdown
    }
}

/// Synchronize a set of virtual rank clocks at a barrier: every clock jumps
/// to the maximum `now`, with waiting time attributed to `wait_component`.
/// Returns the barrier time.
pub fn barrier_sync(clocks: &mut [VirtualClock], wait_component: Component) -> f64 {
    let t = clocks.iter().map(VirtualClock::now).fold(0.0, f64::max);
    for c in clocks.iter_mut() {
        c.advance_to(wait_component, t);
    }
    t
}

/// Minimum / average / maximum of a per-rank metric — the vertical bars of
/// Figure 7 and the "Imbalance (%)" rows of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceStats {
    /// Minimum across ranks.
    pub min: f64,
    /// Mean across ranks.
    pub avg: f64,
    /// Maximum across ranks.
    pub max: f64,
}

impl ImbalanceStats {
    /// Compute stats over per-rank values. Panics on an empty slice.
    pub fn from_values(values: &[f64]) -> ImbalanceStats {
        assert!(!values.is_empty(), "imbalance stats need at least one rank");
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        ImbalanceStats { min, avg, max }
    }

    /// Load imbalance as the paper reports it: `(max/avg − 1) × 100` %.
    /// Zero for perfectly balanced work; 0 when avg is 0.
    pub fn imbalance_pct(&self) -> f64 {
        if self.avg <= 0.0 {
            0.0
        } else {
            (self.max / self.avg - 1.0) * 100.0
        }
    }

    /// Ratio max/min (∞ if min is 0 and max > 0, 1 if both 0).
    pub fn spread(&self) -> f64 {
        if self.min > 0.0 {
            self.max / self.min
        } else if self.max > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

impl fmt::Display for ImbalanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min={:.4} avg={:.4} max={:.4} (imb {:.1}%)",
            self.min,
            self.avg,
            self.max,
            self.imbalance_pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = TimeBreakdown::new();
        b.record(Component::Align, 2.0);
        b.record(Component::SpGemm, 1.0);
        b.record(Component::SparseOther, 0.5);
        assert_eq!(b.get(Component::Align), 2.0);
        assert_eq!(b.sparse_all(), 1.5);
        assert_eq!(b.total(), 3.5);
    }

    #[test]
    fn breakdown_add_and_max_combine() {
        let mut a = TimeBreakdown::new();
        a.record(Component::Align, 1.0);
        let mut b = TimeBreakdown::new();
        b.record(Component::Align, 3.0);
        b.record(Component::Io, 2.0);
        let sum = a + b;
        assert_eq!(sum.get(Component::Align), 4.0);
        assert_eq!(sum.get(Component::Io), 2.0);
        let mx = a.max_combine(&b);
        assert_eq!(mx.get(Component::Align), 3.0);
        assert_eq!(mx.get(Component::Io), 2.0);
    }

    #[test]
    fn clock_advances_and_attributes() {
        let mut c = VirtualClock::new();
        c.advance(Component::Io, 1.0);
        c.advance(Component::Align, 2.0);
        assert_eq!(c.now(), 3.0);
        assert_eq!(c.breakdown().get(Component::Io), 1.0);
        c.advance_to(Component::CommWait, 2.5); // already past: no-op
        assert_eq!(c.now(), 3.0);
        c.advance_to(Component::CommWait, 5.0);
        assert_eq!(c.now(), 5.0);
        assert_eq!(c.breakdown().get(Component::CommWait), 2.0);
    }

    #[test]
    fn barrier_lifts_all_clocks_to_max() {
        let mut clocks = vec![
            VirtualClock::new(),
            VirtualClock::new(),
            VirtualClock::new(),
        ];
        clocks[0].advance(Component::Align, 1.0);
        clocks[1].advance(Component::Align, 4.0);
        clocks[2].advance(Component::Align, 2.0);
        let t = barrier_sync(&mut clocks, Component::CommWait);
        assert_eq!(t, 4.0);
        for c in &clocks {
            assert_eq!(c.now(), 4.0);
        }
        assert_eq!(clocks[0].breakdown().get(Component::CommWait), 3.0);
        assert_eq!(clocks[1].breakdown().get(Component::CommWait), 0.0);
    }

    #[test]
    fn imbalance_stats_match_paper_definition() {
        let s = ImbalanceStats::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.avg, 2.0);
        assert_eq!(s.max, 3.0);
        assert!((s.imbalance_pct() - 50.0).abs() < 1e-12);
        assert_eq!(s.spread(), 3.0);
    }

    #[test]
    fn imbalance_degenerate_cases() {
        let z = ImbalanceStats::from_values(&[0.0, 0.0]);
        assert_eq!(z.imbalance_pct(), 0.0);
        assert_eq!(z.spread(), 1.0);
        let half = ImbalanceStats::from_values(&[0.0, 2.0]);
        assert_eq!(half.spread(), f64::INFINITY);
    }

    #[test]
    fn display_formats() {
        let mut b = TimeBreakdown::new();
        b.record(Component::Align, 1.25);
        let s = format!("{b}");
        assert!(s.contains("align=1.250s"));
        assert_eq!(format!("{}", TimeBreakdown::new()), "(empty)");
    }
}
