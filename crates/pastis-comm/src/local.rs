//! The single-rank communicator (`p = 1` fast path).
//!
//! Every collective degenerates to the identity; point-to-point messages to
//! self are queued in a local FIFO. This is the backend used by serial
//! reference runs that the distributed results are checked against.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::communicator::{CommError, CommStats, CommStatsSnapshot, Communicator, Payload};

/// A communicator containing exactly one rank.
#[derive(Default)]
pub struct SelfComm {
    queue: Arc<Mutex<VecDeque<Box<dyn Any + Send>>>>,
    stats: Arc<CommStats>,
}

impl SelfComm {
    /// Create a fresh single-rank communicator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Communicator for SelfComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn barrier(&self) {
        self.stats.barriers.fetch_add(1, Ordering::Relaxed);
    }

    fn broadcast<T: Payload>(&self, root: usize, value: T, nbytes: usize) -> T {
        assert_eq!(root, 0, "broadcast root out of range for SelfComm");
        self.stats.broadcasts.fetch_add(1, Ordering::Relaxed);
        self.stats.add_bytes(nbytes as u64);
        value
    }

    fn all_gather<T: Payload>(&self, value: T) -> Vec<T> {
        self.stats.all_gathers.fetch_add(1, Ordering::Relaxed);
        vec![value]
    }

    fn gather<T: Payload>(&self, root: usize, value: T) -> Option<Vec<T>> {
        assert_eq!(root, 0, "gather root out of range for SelfComm");
        self.stats.all_gathers.fetch_add(1, Ordering::Relaxed);
        Some(vec![value])
    }

    fn all_to_allv<T: Payload>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(parts.len(), 1, "all_to_allv part count mismatch");
        self.stats.all_to_allvs.fetch_add(1, Ordering::Relaxed);
        parts
    }

    fn send_to<T: Payload>(&self, dst: usize, value: T, nbytes: usize) {
        assert_eq!(dst, 0, "send_to destination out of range for SelfComm");
        self.stats.p2p_messages.fetch_add(1, Ordering::Relaxed);
        self.stats.add_bytes(nbytes as u64);
        self.queue.lock().push_back(Box::new(value));
    }

    fn recv_from<T: Payload>(&self, src: usize) -> T {
        assert_eq!(src, 0, "recv_from source out of range for SelfComm");
        let msg = self
            .queue
            .lock()
            .pop_front()
            .expect("recv_from: no message queued to self");
        *msg.downcast::<T>()
            .expect("recv_from: payload type mismatch")
    }

    fn recv_from_deadline<T: Payload>(
        &self,
        src: usize,
        timeout: Duration,
    ) -> Result<T, CommError> {
        assert_eq!(src, 0, "recv_from source out of range for SelfComm");
        // A message to self is either already queued or never will be: an
        // empty queue is an immediate typed timeout rather than a panic.
        match self.queue.lock().pop_front() {
            Some(msg) => Ok(*msg
                .downcast::<T>()
                .expect("recv_from: payload type mismatch")),
            None => Err(CommError::Timeout {
                op: "recv_from",
                rank: 0,
                peer: Some(0),
                waited_ms: timeout.as_millis() as u64,
            }),
        }
    }

    fn split(&self, _color: usize, _key: usize) -> Self {
        SelfComm::new()
    }

    fn stats(&self) -> CommStatsSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_are_identity() {
        let c = SelfComm::new();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert_eq!(c.broadcast(0, 5u32, 4), 5);
        assert_eq!(c.all_gather(5u32), vec![5]);
        assert_eq!(c.gather(0, 5u32), Some(vec![5]));
        assert_eq!(c.all_to_allv(vec![vec![1u8, 2]]), vec![vec![1, 2]]);
    }

    #[test]
    fn self_messaging_fifo() {
        let c = SelfComm::new();
        c.send_to(0, 1u8, 1);
        c.send_to(0, 2u8, 1);
        assert_eq!(c.recv_from::<u8>(0), 1);
        assert_eq!(c.recv_from::<u8>(0), 2);
    }

    #[test]
    fn split_yields_fresh_world() {
        let c = SelfComm::new();
        let s = c.split(9, 9);
        assert_eq!(s.size(), 1);
    }

    #[test]
    #[should_panic(expected = "no message queued")]
    fn recv_without_send_panics() {
        let c = SelfComm::new();
        let _: u8 = c.recv_from(0);
    }
}
