//! Latency–bandwidth (α–β) communication cost model and machine presets.
//!
//! Section VI-A of the paper analyzes the Blocked 2D Sparse SUMMA with the
//! classic α–β model and tree-algorithm collectives (their reference [23]):
//!
//! * plain SUMMA: `2α√p·log√p + 2βs√p·log√p`
//! * blocked variant: `2α(br·bc)√p·log√p + βs(br+bc)√p·log√p`
//!
//! where `s` is the nonzero payload of one `n/√p × n/√p` sub-matrix. This
//! module provides those formulas verbatim ([`AlphaBeta::summa_cost`],
//! [`AlphaBeta::blocked_summa_cost`]), generic collective costs used by the
//! performance-model plane, and [`MachineModel`] presets that translate
//! exact operation counts (DP cells, semiring products, bytes) into seconds.
//!
//! The Summit preset is calibrated so the *ratios* the paper reports emerge
//! (align:sparse ≈ 2:1 on the node, IO < 3%, cwait ≪ 1%); absolute seconds
//! are explicitly not a reproduction target — see EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// Latency–bandwidth parameters of a network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaBeta {
    /// Message startup latency α, in seconds.
    pub alpha: f64,
    /// Per-byte transfer time β, in seconds/byte (1 / bandwidth).
    pub beta: f64,
}

/// Which algorithm a collective is assumed to use when costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveAlgo {
    /// Binomial/binary tree (the paper's assumption for broadcasts).
    Tree,
    /// Flat sequential sends (worst case, used for sanity bounds).
    Flat,
}

fn log2_ceil(g: usize) -> f64 {
    if g <= 1 {
        0.0
    } else {
        (g as f64).log2().ceil()
    }
}

impl AlphaBeta {
    /// Create a model from latency (seconds) and bandwidth (bytes/second).
    pub fn from_latency_bandwidth(latency_s: f64, bandwidth_bps: f64) -> AlphaBeta {
        assert!(latency_s >= 0.0 && bandwidth_bps > 0.0);
        AlphaBeta {
            alpha: latency_s,
            beta: 1.0 / bandwidth_bps,
        }
    }

    /// Cost of a point-to-point message of `nbytes`.
    pub fn ptp(&self, nbytes: f64) -> f64 {
        self.alpha + self.beta * nbytes
    }

    /// Cost of broadcasting `nbytes` within a group of `g` ranks.
    pub fn broadcast(&self, nbytes: f64, g: usize, algo: CollectiveAlgo) -> f64 {
        match algo {
            CollectiveAlgo::Tree => log2_ceil(g) * (self.alpha + self.beta * nbytes),
            CollectiveAlgo::Flat => (g.saturating_sub(1)) as f64 * self.ptp(nbytes),
        }
    }

    /// Cost of an all-gather where each of `g` ranks contributes `nbytes`
    /// (recursive doubling).
    pub fn all_gather(&self, nbytes: f64, g: usize) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        log2_ceil(g) * self.alpha + self.beta * nbytes * (g as f64 - 1.0)
    }

    /// Cost of a personalized all-to-all where this rank exchanges
    /// `total_bytes` in aggregate with `g - 1` peers (pairwise exchange).
    pub fn all_to_allv(&self, total_bytes: f64, g: usize) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        (g as f64 - 1.0) * self.alpha + self.beta * total_bytes
    }

    /// Cost of an all-reduce of `nbytes` over `g` ranks
    /// (reduce-then-broadcast tree bound).
    pub fn all_reduce(&self, nbytes: f64, g: usize) -> f64 {
        2.0 * log2_ceil(g) * (self.alpha + self.beta * nbytes)
    }

    /// Communication cost of plain 2D Sparse SUMMA over `p` ranks where one
    /// sub-matrix carries `s_bytes` of payload: `2α√p·log√p + 2βs√p·log√p`
    /// (Section VI-A).
    pub fn summa_cost(&self, p: usize, s_bytes: f64) -> f64 {
        let sqrt_p = (p as f64).sqrt();
        let lg = log2_ceil(sqrt_p.round() as usize);
        2.0 * self.alpha * sqrt_p * lg + 2.0 * self.beta * s_bytes * sqrt_p * lg
    }

    /// Communication cost of the Blocked 2D Sparse SUMMA with row/column
    /// blocking factors `br × bc`:
    /// `2α(br·bc)√p·log√p + βs(br+bc)√p·log√p` (Section VI-A).
    ///
    /// With `br = bc = 1` this reduces to [`AlphaBeta::summa_cost`].
    pub fn blocked_summa_cost(&self, p: usize, s_bytes: f64, br: usize, bc: usize) -> f64 {
        assert!(br >= 1 && bc >= 1, "blocking factors must be positive");
        let sqrt_p = (p as f64).sqrt();
        let lg = log2_ceil(sqrt_p.round() as usize);
        2.0 * self.alpha * (br * bc) as f64 * sqrt_p * lg
            + self.beta * s_bytes * (br + bc) as f64 * sqrt_p * lg
    }
}

/// Per-node compute / IO rates plus the interconnect, translating exact
/// operation counts into modeled seconds.
///
/// The performance-model plane of PASTIS-RS partitions the *real* dataset
/// over `p` virtual ranks, counts each rank's DP cells, semiring products,
/// merged nonzeros and communicated bytes exactly, and converts them to time
/// through one of these models. The scaling *shape* therefore comes from the
/// true partitioned workload; only the unit conversion is synthetic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable preset name.
    pub name: String,
    /// Inter-node network.
    pub net: AlphaBeta,
    /// Collective algorithm assumption.
    pub algo: CollectiveAlgo,
    /// GPUs per node (Summit: 6 V100).
    pub gpus_per_node: usize,
    /// Sustained giga-cell-updates/second per GPU for batched
    /// Smith–Waterman (ADEPT-like kernel).
    pub gcups_per_gpu: f64,
    /// Fixed driver/packing overhead per alignment, seconds (host-side
    /// batching, transfers; amortized per pair).
    pub align_overhead_per_pair: f64,
    /// Parallel efficiency of each *additional* intra-rank alignment
    /// worker (the ADEPT-driver-analog pool): `t` workers deliver a
    /// `1 + (t-1)·e` speedup. Below 1 because workers share memory
    /// bandwidth and pay chunk-claim synchronization.
    pub align_pool_efficiency: f64,
    /// Parallel efficiency of each *additional* intra-rank SpGEMM worker
    /// (the row-partitioned Gustavson pool): `t` workers deliver a
    /// `1 + (t-1)·e` speedup on the product term. Lower than the
    /// alignment pool's efficiency — SpGEMM is memory-bound (hash-table
    /// probes, irregular B-row gathers), so extra workers contend for
    /// bandwidth sooner. Placeholder pending multi-core measurement by
    /// `pastis-bench`'s `kernel_spgemm` harness (the container this model
    /// was authored on exposes a single core).
    pub spgemm_pool_efficiency: f64,
    /// Single-thread speedup of the score-only vector kernel over the
    /// scalar kernel on this machine's CPUs (the SIMD lane factor;
    /// measured by `pastis-bench`'s `kernel_simd` harness). Multiplies
    /// the whole pool term in [`MachineModel::align_speedup`] — lanes and
    /// workers compose. `1.0` for machines whose alignment runs on GPUs
    /// (the lanes only accelerate the CPU path).
    pub simd_lane_speedup: f64,
    /// Fixed per-batch overhead, seconds: kernel launches, packing and
    /// device round-trips paid once per alignment batch (one batch per
    /// output block per node). Smaller batches utilize the GPUs worse —
    /// this is why Figure 5's alignment time grows 10–15% with the block
    /// count. Absolute (not rescaled by [`MachineModel::scaled`]).
    pub align_batch_overhead_s: f64,
    /// Semiring multiply-add products per second per node for the local
    /// hash-SpGEMM (all CPU cores of a node).
    pub spgemm_products_per_sec: f64,
    /// Nonzeros merged per second per node in SpAdd / output accumulation.
    pub merge_nnz_per_sec: f64,
    /// Input-stripe nonzeros traversed per second per node when a SUMMA
    /// stage walks its received sub-matrices (streaming CSR scans — much
    /// faster than the random-access merge above). This cost repeats per
    /// output block and carries the block-count growth of the sparse phase.
    pub stripe_nnz_per_sec: f64,
    /// Host-side handling cost per received point-to-point message,
    /// seconds (matching, unpacking). Each rank receives one sequence
    /// slice per peer, so this term grows with the node count — the reason
    /// the paper's cwait share rises in Table II. Absolute (not rescaled).
    pub p2p_handling_s: f64,
    /// Residues processed per second per node for k-mer matrix formation.
    pub kmer_residues_per_sec: f64,
    /// Per-node parallel filesystem bandwidth, bytes/second.
    pub io_bw_per_node: f64,
    /// Aggregate filesystem bandwidth cap across all nodes, bytes/second
    /// (GPFS saturates; this is why the paper's IO% creeps up with node
    /// count in Table II).
    pub io_bw_global_cap: f64,
    /// CPU cores per node (42 usable on Summit).
    pub cores_per_node: usize,
}

impl MachineModel {
    /// Summit (OLCF) preset: IBM AC922 nodes, 2×22-core POWER9, 6×V100,
    /// dual-rail EDR InfiniBand fat tree, GPFS (Alpine).
    ///
    /// Calibration notes:
    /// * peak alignment rate in the paper's production run is 176.3 TCUPs
    ///   over 20,184 GPUs ⇒ ≈ 8.7 GCUPS/GPU; sustained throughput is lower
    ///   due to batching/transfer overheads, captured by
    ///   `align_overhead_per_pair`.
    /// * the paper observes align:sparse node-time ratio of at most ≈ 2:1
    ///   (Section VI-C); `spgemm_products_per_sec` is set so synthetic
    ///   workloads land in that regime.
    pub fn summit() -> MachineModel {
        MachineModel {
            name: "summit".to_owned(),
            net: AlphaBeta::from_latency_bandwidth(1.5e-6, 23.0e9),
            algo: CollectiveAlgo::Tree,
            gpus_per_node: 6,
            gcups_per_gpu: 8.7,
            align_overhead_per_pair: 2.0e-7,
            align_pool_efficiency: 0.85,
            spgemm_pool_efficiency: 0.75,
            // Alignment runs on the V100s; CPU lanes don't enter.
            simd_lane_speedup: 1.0,
            align_batch_overhead_s: 2.0,
            spgemm_products_per_sec: 2.0e8,
            merge_nnz_per_sec: 6.0e8,
            stripe_nnz_per_sec: 1.2e10,
            p2p_handling_s: 2.0e-3,
            kmer_residues_per_sec: 2.0e9,
            io_bw_per_node: 4.0e9,
            // GPFS contention saturates the aggregate long before the
            // per-node sum (~120 nodes' worth) — this saturation is why
            // Table II's IO share *rises* with node count.
            io_bw_global_cap: 4.8e11,
            cores_per_node: 42,
        }
    }

    /// A deliberately modest commodity-cluster preset (used to show the
    /// DIAMOND-style baseline in its intended habitat).
    pub fn commodity() -> MachineModel {
        MachineModel {
            name: "commodity".to_owned(),
            net: AlphaBeta::from_latency_bandwidth(20.0e-6, 1.2e9),
            algo: CollectiveAlgo::Tree,
            gpus_per_node: 0,
            gcups_per_gpu: 0.0,
            align_overhead_per_pair: 5.0e-7,
            align_pool_efficiency: 0.80,
            spgemm_pool_efficiency: 0.70,
            // Measured by `kernel_simd` (results/kernel_simd.txt): the
            // runtime-selected backend (AVX2, 16 × i16 lanes) vs the serial
            // scalar kernel, one thread, 4000 pairs: 9.19×.
            simd_lane_speedup: 9.19,
            align_batch_overhead_s: 2.0,
            spgemm_products_per_sec: 1.0e8,
            merge_nnz_per_sec: 3.0e8,
            stripe_nnz_per_sec: 6.0e9,
            p2p_handling_s: 2.0e-3,
            kmer_residues_per_sec: 1.0e9,
            io_bw_per_node: 2.0e8,
            io_bw_global_cap: 5.0e10,
            cores_per_node: 32,
        }
    }

    /// A rescaled machine for miniature datasets: every *compute* and
    /// *filesystem* throughput is multiplied by `f`; the network is kept
    /// absolute. Rationale: miniature inputs shrink alignment work (pairs ×
    /// length²) by orders of magnitude more than broadcast volume (k-mer
    /// matrix nonzeros), so scaling bandwidth with compute would inflate
    /// communication far past its real share — on Summit the SUMMA β-term
    /// is ≈1% of the sparse phase (48.8G k-mer nonzeros × 12 B × (br+bc)/√p
    /// × log√p at 23 GB/s ≈ 10² s vs the 2.2 h sparse phase of Table IV).
    /// The block-count growth of the sparse phase is instead carried by the
    /// stripe-handling compute term, which scales with the rates.
    pub fn scaled(&self, f: f64) -> MachineModel {
        assert!(f > 0.0, "scale factor must be positive");
        MachineModel {
            name: format!("{}-x{f:.3e}", self.name),
            gcups_per_gpu: self.gcups_per_gpu * f,
            // Host-side per-pair driver overhead slows down with the rest
            // of the machine, keeping its share of alignment time (~17% on
            // real Summit) constant across scales.
            align_overhead_per_pair: self.align_overhead_per_pair / f,
            spgemm_products_per_sec: self.spgemm_products_per_sec * f,
            merge_nnz_per_sec: self.merge_nnz_per_sec * f,
            stripe_nnz_per_sec: self.stripe_nnz_per_sec * f,
            kmer_residues_per_sec: self.kmer_residues_per_sec * f,
            io_bw_per_node: self.io_bw_per_node * f,
            io_bw_global_cap: self.io_bw_global_cap * f,
            ..self.clone()
        }
    }

    /// Aggregate alignment rate of one node in cell updates per second.
    ///
    /// CPU-only machines (gpus_per_node = 0) fall back to a vectorized
    /// CPU-SW rate of 0.5 GCUPS/core (SeqAn-class striped SW).
    pub fn node_cups(&self) -> f64 {
        if self.gpus_per_node == 0 {
            0.5e9 * self.cores_per_node as f64
        } else {
            self.gcups_per_gpu * 1.0e9 * self.gpus_per_node as f64
        }
    }

    /// Modeled time for one node to align a batch totalling `cells` DP cell
    /// updates across `pairs` pairwise alignments.
    pub fn align_time(&self, cells: f64, pairs: f64) -> f64 {
        cells / self.node_cups() + pairs * self.align_overhead_per_pair
    }

    /// Speedup of the intra-rank alignment pool at `threads` workers
    /// (0 ⇒ one worker per core):
    /// `simd_lane_speedup · (1 + (t-1)·align_pool_efficiency)` — the SIMD
    /// lane factor applies per worker, so it multiplies the whole affine
    /// pool term.
    pub fn align_speedup(&self, threads: usize) -> f64 {
        let t = if threads == 0 {
            self.cores_per_node
        } else {
            threads
        };
        self.simd_lane_speedup * (1.0 + t.saturating_sub(1) as f64 * self.align_pool_efficiency)
    }

    /// [`align_time`](MachineModel::align_time) with the batch executed on
    /// an intra-rank pool of `threads` workers. The driver overhead
    /// parallelizes with the kernel: chunks are claimed and packed by the
    /// worker that runs them.
    pub fn align_time_parallel(&self, cells: f64, pairs: f64, threads: usize) -> f64 {
        self.align_time(cells, pairs) / self.align_speedup(threads)
    }

    /// Modeled time for one node to execute a local SpGEMM performing
    /// `products` semiring multiply-adds and merging `merged_nnz` outputs.
    pub fn spgemm_time(&self, products: f64, merged_nnz: f64) -> f64 {
        products / self.spgemm_products_per_sec + merged_nnz / self.merge_nnz_per_sec
    }

    /// Speedup of the intra-rank SpGEMM pool at `threads` workers
    /// (0 ⇒ one worker per core): `1 + (t-1)·spgemm_pool_efficiency`.
    pub fn spgemm_speedup(&self, threads: usize) -> f64 {
        let t = if threads == 0 {
            self.cores_per_node
        } else {
            threads
        };
        1.0 + t.saturating_sub(1) as f64 * self.spgemm_pool_efficiency
    }

    /// [`spgemm_time`](MachineModel::spgemm_time) with the row chunks
    /// executed on an intra-rank pool of `threads` workers. Only the
    /// product term parallelizes — the stage-accumulation merge
    /// (`merged_nnz`) stays on the calling thread, mirroring the real
    /// kernel where stitching and `spadd_into` are serial.
    pub fn spgemm_time_parallel(&self, products: f64, merged_nnz: f64, threads: usize) -> f64 {
        products / self.spgemm_products_per_sec / self.spgemm_speedup(threads)
            + merged_nnz / self.merge_nnz_per_sec
    }

    /// Modeled time for `nodes` nodes to collectively read or write
    /// `total_bytes` through the parallel filesystem.
    pub fn io_time(&self, total_bytes: f64, nodes: usize) -> f64 {
        let bw = (nodes as f64 * self.io_bw_per_node).min(self.io_bw_global_cap);
        total_bytes / bw
    }

    /// Modeled cost of broadcasting `nbytes` in a group of `g` nodes.
    pub fn broadcast_time(&self, nbytes: f64, g: usize) -> f64 {
        self.net.broadcast(nbytes, g, self.algo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> AlphaBeta {
        AlphaBeta::from_latency_bandwidth(1.0e-6, 1.0e9)
    }

    #[test]
    fn ptp_is_alpha_plus_beta() {
        let m = net();
        let t = m.ptp(1.0e9);
        assert!((t - (1.0e-6 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn tree_broadcast_scales_logarithmically() {
        let m = net();
        let t4 = m.broadcast(1000.0, 4, CollectiveAlgo::Tree);
        let t16 = m.broadcast(1000.0, 16, CollectiveAlgo::Tree);
        assert!((t16 / t4 - 2.0).abs() < 1e-9, "log2(16)/log2(4) = 2");
    }

    #[test]
    fn flat_broadcast_scales_linearly() {
        let m = net();
        let t2 = m.broadcast(1000.0, 2, CollectiveAlgo::Flat);
        let t5 = m.broadcast(1000.0, 5, CollectiveAlgo::Flat);
        assert!((t5 / t2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn trivial_groups_cost_nothing_extra() {
        let m = net();
        assert_eq!(m.broadcast(1e6, 1, CollectiveAlgo::Tree), 0.0);
        assert_eq!(m.all_gather(1e6, 1), 0.0);
        assert_eq!(m.all_to_allv(1e6, 1), 0.0);
    }

    #[test]
    fn blocked_summa_reduces_to_plain_at_1x1() {
        let m = net();
        for p in [4usize, 16, 64, 400] {
            let s = 3.5e7;
            let plain = m.summa_cost(p, s);
            let blocked = m.blocked_summa_cost(p, s, 1, 1);
            assert!(
                (plain - blocked).abs() < 1e-9 * plain.max(1.0),
                "p={p}: {plain} vs {blocked}"
            );
        }
    }

    #[test]
    fn blocking_increases_latency_term_quadratically() {
        // With β = 0 the cost is pure latency and must scale as br·bc.
        let m = AlphaBeta {
            alpha: 1.0e-6,
            beta: 0.0,
        };
        let c1 = m.blocked_summa_cost(16, 1e6, 1, 1);
        let c4 = m.blocked_summa_cost(16, 1e6, 2, 2);
        assert!((c4 / c1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn blocking_increases_bandwidth_term_linearly() {
        // With α = 0 the cost is pure bandwidth and must scale as (br+bc)/2.
        let m = AlphaBeta {
            alpha: 0.0,
            beta: 1.0e-9,
        };
        let c1 = m.blocked_summa_cost(16, 1e6, 1, 1);
        let c4 = m.blocked_summa_cost(16, 1e6, 4, 4);
        assert!((c4 / c1 - 4.0).abs() < 1e-9, "(4+4)/(1+1) = 4");
    }

    #[test]
    fn summit_preset_is_plausible() {
        let s = MachineModel::summit();
        assert_eq!(s.gpus_per_node, 6);
        // 6 GPUs × 8.7 GCUPS
        assert!((s.node_cups() - 52.2e9).abs() < 1e6);
        // IO saturates: 10,000 nodes can't exceed the global cap.
        let t_big = s.io_time(1.0e12, 10_000);
        let t_cap = 1.0e12 / s.io_bw_global_cap;
        assert!((t_big - t_cap).abs() < 1e-12);
    }

    #[test]
    fn align_time_includes_per_pair_overhead() {
        let s = MachineModel::summit();
        let kernel_only = s.align_time(1.0e9, 0.0);
        let with_pairs = s.align_time(1.0e9, 1.0e6);
        assert!(with_pairs > kernel_only);
    }

    #[test]
    fn align_pool_speedup_is_affine_in_workers() {
        let s = MachineModel::summit();
        assert_eq!(s.align_speedup(1), 1.0);
        assert!((s.align_speedup(4) - (1.0 + 3.0 * 0.85)).abs() < 1e-12);
        // 0 means one worker per core.
        assert_eq!(s.align_speedup(0), s.align_speedup(s.cores_per_node));
        // One worker is exactly the serial model.
        assert_eq!(s.align_time_parallel(1e9, 1e5, 1), s.align_time(1e9, 1e5));
        // t workers divide the serial time by the speedup.
        let serial = s.align_time(1e9, 1e5);
        let t8 = s.align_time_parallel(1e9, 1e5, 8);
        assert!((t8 - serial / s.align_speedup(8)).abs() < 1e-12);
    }

    #[test]
    fn spgemm_pool_speedup_parallelizes_products_only() {
        let s = MachineModel::summit();
        assert_eq!(s.spgemm_speedup(1), 1.0);
        assert!((s.spgemm_speedup(4) - (1.0 + 3.0 * s.spgemm_pool_efficiency)).abs() < 1e-12);
        // 0 means one worker per core.
        assert_eq!(s.spgemm_speedup(0), s.spgemm_speedup(s.cores_per_node));
        // One worker is exactly the serial model.
        assert_eq!(s.spgemm_time_parallel(1e9, 1e7, 1), s.spgemm_time(1e9, 1e7));
        // t workers divide only the product term; the merge term (the
        // serial stitch + spadd_into of the real kernel) is untouched.
        let t4 = s.spgemm_time_parallel(1e9, 1e7, 4);
        let want =
            1e9 / s.spgemm_products_per_sec / s.spgemm_speedup(4) + 1e7 / s.merge_nnz_per_sec;
        assert!((t4 - want).abs() < 1e-12);
        assert!(t4 < s.spgemm_time(1e9, 1e7));
        assert!(t4 > s.spgemm_time(1e9, 1e7) / s.spgemm_speedup(4));
    }

    #[test]
    fn simd_lane_speedup_multiplies_the_pool_term() {
        // Summit aligns on GPUs: the lane factor must be neutral.
        assert_eq!(MachineModel::summit().simd_lane_speedup, 1.0);
        // On a CPU machine the factor scales the whole affine term, so it
        // compounds with workers instead of only shifting the intercept.
        let c = MachineModel::commodity();
        let lanes = c.simd_lane_speedup;
        assert!(lanes > 1.0);
        assert!((c.align_speedup(1) - lanes).abs() < 1e-12);
        assert!((c.align_speedup(4) - lanes * (1.0 + 3.0 * c.align_pool_efficiency)).abs() < 1e-12);
        let scalar = MachineModel {
            simd_lane_speedup: 1.0,
            ..c.clone()
        };
        assert!(
            (c.align_time_parallel(1e9, 1e5, 4) * lanes - scalar.align_time_parallel(1e9, 1e5, 4))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn cpu_fallback_cups() {
        let c = MachineModel::commodity();
        assert!((c.node_cups() - 0.5e9 * 32.0).abs() < 1.0);
    }
}
