//! [`TracedComm`]: a telemetry-recording communicator wrapper.
//!
//! Wraps any [`Communicator`] and records one [`CommEvent`] per operation
//! into this rank's [`Recorder`] — op kind, payload bytes, peer count, and
//! the wall-clock seconds the calling rank spent inside the call (wait +
//! transfer). Forwarding is otherwise transparent, so the wrapper is
//! observation-only: a search run over `TracedComm<C>` produces exactly
//! the results of the same run over `C`.
//!
//! Byte accounting mirrors [`CommStats`](crate::communicator::CommStats)'
//! conventions so the telemetry agrees with the pre-existing counters (and,
//! on the virtual-time plane, with the α–β model's assumed volumes):
//! caller-supplied `nbytes` for broadcast and point-to-point,
//! `size_of::<T>() × size` for all-gather, sent-elements × `size_of::<T>()`
//! for all-to-allv.

use std::time::{Duration, Instant};

use pastis_trace::{CommOp, Recorder};

use crate::communicator::{CommError, CommStatsSnapshot, Communicator, Payload, ReduceOp};

/// A communicator that records per-operation telemetry into a [`Recorder`].
#[derive(Debug)]
pub struct TracedComm<C: Communicator> {
    inner: C,
    recorder: Recorder,
}

impl<C: Communicator> TracedComm<C> {
    /// Wrap `inner`, recording every operation into `recorder` (a disabled
    /// recorder makes this a zero-telemetry passthrough).
    pub fn new(inner: C, recorder: Recorder) -> TracedComm<C> {
        TracedComm { inner, recorder }
    }

    /// The recorder operations are logged to.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwrap into the underlying communicator.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Run `f`, then record it as one `op` event with the given traffic.
    fn traced<T>(&self, op: CommOp, bytes: u64, f: impl FnOnce(&C) -> T) -> T {
        if !self.recorder.is_enabled() {
            return f(&self.inner);
        }
        let start = Instant::now();
        let out = f(&self.inner);
        let peers = self.inner.size().saturating_sub(1);
        self.recorder
            .record_comm(op, bytes, peers, start.elapsed().as_secs_f64());
        out
    }

    /// Run `f`, then record it as one point-to-point `op` event against the
    /// concrete `peer` rank, so the critical-path extractor can pair the
    /// send with its matching receive into a cross-rank comm edge.
    fn traced_p2p<T>(&self, op: CommOp, bytes: u64, peer: usize, f: impl FnOnce(&C) -> T) -> T {
        if !self.recorder.is_enabled() {
            return f(&self.inner);
        }
        let start = Instant::now();
        let out = f(&self.inner);
        self.recorder
            .record_comm_p2p(op, bytes, peer, start.elapsed().as_secs_f64());
        out
    }
}

impl<C: Communicator> Communicator for TracedComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn barrier(&self) {
        self.traced(CommOp::Barrier, 0, |c| c.barrier());
    }

    fn broadcast<T: Payload>(&self, root: usize, value: T, nbytes: usize) -> T {
        self.traced(CommOp::Broadcast, nbytes as u64, |c| {
            c.broadcast(root, value, nbytes)
        })
    }

    fn all_gather<T: Payload>(&self, value: T) -> Vec<T> {
        let bytes = (std::mem::size_of::<T>() * self.inner.size()) as u64;
        self.traced(CommOp::AllGather, bytes, |c| c.all_gather(value))
    }

    fn gather<T: Payload>(&self, root: usize, value: T) -> Option<Vec<T>> {
        let bytes = std::mem::size_of::<T>() as u64;
        self.traced(CommOp::Gather, bytes, |c| c.gather(root, value))
    }

    fn all_to_allv<T: Payload>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let sent: usize = parts.iter().map(Vec::len).sum();
        let bytes = (sent * std::mem::size_of::<T>()) as u64;
        self.traced(CommOp::AllToAllV, bytes, |c| c.all_to_allv(parts))
    }

    fn all_reduce(&self, values: &[u64], op: ReduceOp) -> Vec<u64> {
        let bytes = std::mem::size_of_val(values) as u64;
        self.traced(CommOp::AllReduce, bytes, |c| c.all_reduce(values, op))
    }

    fn all_reduce_f64(&self, values: &[f64], op: ReduceOp) -> Vec<f64> {
        let bytes = std::mem::size_of_val(values) as u64;
        self.traced(CommOp::AllReduce, bytes, |c| c.all_reduce_f64(values, op))
    }

    fn all_reduce_with<T, F>(&self, value: T, fold: F) -> T
    where
        T: Payload,
        F: Fn(T, T) -> T,
    {
        let bytes = std::mem::size_of::<T>() as u64;
        self.traced(CommOp::AllReduce, bytes, |c| c.all_reduce_with(value, fold))
    }

    fn send_to<T: Payload>(&self, dst: usize, value: T, nbytes: usize) {
        // Non-blocking: the recorded wait is the enqueue cost, not the
        // transfer; the receiving side's RecvFrom event carries the wait.
        self.traced_p2p(CommOp::SendTo, nbytes as u64, dst, |c| {
            c.send_to(dst, value, nbytes)
        });
    }

    fn recv_from<T: Payload>(&self, src: usize) -> T {
        // Payload size is unknown on the receive side (type-erased mailbox);
        // bytes are accounted at the sender.
        self.traced_p2p(CommOp::RecvFrom, 0, src, |c| c.recv_from(src))
    }

    fn recv_from_deadline<T: Payload>(
        &self,
        src: usize,
        timeout: Duration,
    ) -> Result<T, CommError> {
        // A timed-out receive still spent wall time waiting; record it either
        // way so chaos runs account for the wasted wait.
        self.traced_p2p(CommOp::RecvFrom, 0, src, |c| {
            c.recv_from_deadline(src, timeout)
        })
    }

    fn barrier_deadline(&self, timeout: Duration) -> Result<(), CommError> {
        self.traced(CommOp::Barrier, 0, |c| c.barrier_deadline(timeout))
    }

    fn split(&self, color: usize, key: usize) -> Self {
        TracedComm {
            inner: self.inner.split(color, key),
            recorder: self.recorder.clone(),
        }
    }

    fn stats(&self) -> CommStatsSnapshot {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::SelfComm;
    use crate::threaded::run_threaded;
    use pastis_trace::TraceSession;
    use std::sync::Arc;

    #[test]
    fn records_ops_bytes_and_peers() {
        let session = TraceSession::new();
        let comm = TracedComm::new(SelfComm::new(), session.recorder(0));
        comm.broadcast(0, 7u32, 64);
        comm.all_gather(1u64);
        comm.all_to_allv(vec![vec![1u32, 2, 3]]);
        comm.barrier();
        let v = comm.all_reduce(&[1, 2], ReduceOp::Sum);
        assert_eq!(v, vec![1, 2]);

        let events = comm.recorder().snapshot_comms();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].op, CommOp::Broadcast);
        assert_eq!(events[0].bytes, 64);
        assert_eq!(events[0].peers, 0);
        assert_eq!(events[1].op, CommOp::AllGather);
        assert_eq!(events[1].bytes, 8);
        assert_eq!(events[2].op, CommOp::AllToAllV);
        assert_eq!(events[2].bytes, 12);
        assert_eq!(events[3].op, CommOp::Barrier);
        assert_eq!(events[4].op, CommOp::AllReduce);
        assert_eq!(events[4].bytes, 16);
    }

    #[test]
    fn disabled_recorder_is_pure_passthrough() {
        let comm = TracedComm::new(SelfComm::new(), Recorder::disabled());
        assert_eq!(comm.broadcast(0, 42u8, 1), 42);
        comm.barrier();
        assert!(comm.recorder().snapshot_comms().is_empty());
        // The inner CommStats still count as before.
        assert_eq!(comm.stats().broadcasts, 1);
    }

    #[test]
    fn threaded_ranks_record_matching_collectives() {
        let session = Arc::new(TraceSession::new());
        let sess = Arc::clone(&session);
        run_threaded(4, move |comm| {
            let owned = comm.split(0, comm.rank());
            let traced = TracedComm::new(owned, sess.recorder(comm.rank()));
            let xs = traced.all_gather(traced.rank() as u64);
            assert_eq!(xs, vec![0, 1, 2, 3]);
            traced.broadcast(0, 9u64, 24);
            traced.barrier();
        });
        let recs = session.recorders();
        assert_eq!(recs.len(), 4);
        for rec in recs {
            let events = rec.snapshot_comms();
            assert_eq!(events.len(), 3);
            assert_eq!(events[0].op, CommOp::AllGather);
            assert_eq!(events[0].bytes, 32); // 8 bytes × 4 ranks
            assert_eq!(events[0].peers, 3);
            assert_eq!(events[1].op, CommOp::Broadcast);
            assert_eq!(events[1].bytes, 24);
            assert_eq!(events[2].op, CommOp::Barrier);
        }
    }

    #[test]
    fn p2p_ops_record_the_concrete_peer() {
        let session = Arc::new(TraceSession::new());
        let sess = Arc::clone(&session);
        run_threaded(2, move |comm| {
            let traced = TracedComm::new(comm.split(0, comm.rank()), sess.recorder(comm.rank()));
            if traced.rank() == 0 {
                traced.send_to(1, 42u64, 8);
            } else {
                let v: u64 = traced.recv_from(0);
                assert_eq!(v, 42);
            }
            traced.barrier();
        });
        let recs = session.recorders();
        let e0 = recs[0].snapshot_comms();
        assert_eq!(e0[0].op, CommOp::SendTo);
        assert_eq!(e0[0].bytes, 8);
        assert_eq!(e0[0].peers, 1);
        assert_eq!(e0[0].peer, Some(1));
        let e1 = recs[1].snapshot_comms();
        assert_eq!(e1[0].op, CommOp::RecvFrom);
        assert_eq!(e1[0].peer, Some(0));
        // Collectives stay peer-less.
        assert_eq!(e0[1].op, CommOp::Barrier);
        assert_eq!(e0[1].peer, None);
    }

    #[test]
    fn split_propagates_the_recorder() {
        let session = TraceSession::new();
        let comm = TracedComm::new(SelfComm::new(), session.recorder(0));
        let sub = comm.split(0, 0);
        sub.barrier();
        // The sub-communicator logs into the same per-rank recorder.
        assert_eq!(comm.recorder().snapshot_comms().len(), 1);
    }

    #[test]
    fn traced_results_match_untraced() {
        let traced = run_threaded(3, |comm| {
            let session = TraceSession::new();
            let t = TracedComm::new(comm.split(0, comm.rank()), session.recorder(comm.rank()));
            let g = t.all_gather(t.rank() as u32);
            let r = t.all_reduce(&[t.rank() as u64 + 1], ReduceOp::Sum);
            (g, r)
        });
        let plain = run_threaded(3, |comm| {
            let g = comm.all_gather(comm.rank() as u32);
            let r = comm.all_reduce(&[comm.rank() as u64 + 1], ReduceOp::Sum);
            (g, r)
        });
        assert_eq!(traced, plain);
    }
}
