//! Message-passing substrate for PASTIS-RS.
//!
//! PASTIS (SC'22) runs as an SPMD MPI program on up to 3364 Summit nodes.
//! This crate provides the equivalent substrate for the Rust reproduction:
//!
//! * [`Communicator`] — an MPI-like SPMD interface (rank/size, point-to-point
//!   messages, and the collectives PASTIS relies on: broadcast, gather,
//!   all-gather, all-to-allv, reductions, barrier, and communicator splits).
//! * [`ThreadedComm`] — a real shared-memory implementation that runs `p`
//!   ranks as OS threads and actually moves data between them. It is used to
//!   validate the *determinism* claim of the paper: PASTIS produces identical
//!   results irrespective of the process count and blocking factors.
//! * [`SelfComm`] — the `p = 1` fast path.
//! * [`ProcessGrid`] — the 2D `√p × √p` grid used by Sparse SUMMA, with row
//!   and column sub-communicators.
//! * [`costmodel`] — the latency–bandwidth (α–β) communication model used by
//!   the paper's own analysis (Section VI-A), plus machine presets (Summit)
//!   so that experiments can be replayed at node counts far beyond the host.
//! * [`vclock`] — per-rank virtual clocks with component breakdowns
//!   (alignment / sparse / IO / communication-wait), the measurement
//!   mechanism described in Section VII of the paper.
//!
//! # Example
//!
//! ```
//! use pastis_comm::{run_threaded, Communicator};
//!
//! // Run a 4-rank SPMD section; every rank contributes its rank id and the
//! // all-gather returns the same vector on every rank.
//! let results = run_threaded(4, |comm| comm.all_gather(comm.rank() as u64));
//! for r in &results {
//!     assert_eq!(r, &vec![0, 1, 2, 3]);
//! }
//! ```

#![warn(missing_docs)]

pub mod communicator;
pub mod costmodel;
pub mod fault;
pub mod grid;
pub mod local;
pub mod threaded;
pub mod traced;
pub mod vclock;

pub use communicator::{CommError, CommStats, Communicator, ReduceOp};
pub use costmodel::{AlphaBeta, CollectiveAlgo, MachineModel};
pub use fault::{
    CrashFault, FaultPlan, FaultStats, FaultStatsSnapshot, FaultyComm, FaultyStore, StallFault,
    StoreFaultStats, StoreFaultStatsSnapshot,
};
pub use grid::ProcessGrid;
pub use local::SelfComm;
pub use threaded::{run_threaded, run_threaded_with, CommConfig, ThreadedComm};
pub use traced::TracedComm;
pub use vclock::{Component, ImbalanceStats, TimeBreakdown, VirtualClock};
