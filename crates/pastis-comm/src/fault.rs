//! Deterministic fault injection: [`FaultyComm`] wraps any [`Communicator`]
//! and perturbs it according to a seeded [`FaultPlan`].
//!
//! The paper's production runs (405M sequences over 3364 Summit nodes)
//! operate in a regime where message delays, dropped/corrupted transfers,
//! rank stalls, and outright rank deaths are routine. This module gives the
//! reproduction a *reproducible* chaos harness: every fault decision is a
//! pure function of `(plan.seed, home rank, per-rank op index, fault kind)`,
//! so a chaos run can be replayed bit-for-bit from its seed.
//!
//! Injected faults and how they surface:
//!
//! * **Delays** — the calling rank sleeps before the op. Timing shifts only;
//!   outputs are unchanged (this is what makes chaos convergence testable).
//! * **Drops** — point-to-point sends are preceded by a `Dropped` marker
//!   frame, modelling a lost message whose retransmission timeout fired.
//!   The receiver retries and counts a retry.
//! * **Corruption** — point-to-point sends are preceded by a `Garbled` frame
//!   whose CRC cannot validate. The receiver's CRC check rejects it and
//!   retries. (Payloads are type-erased clones, not byte buffers, so the
//!   CRC covers the frame header and stands in for a payload checksum.)
//! * **Stall** — one rank sleeps once, at one op index, for a configured
//!   time: a transient straggler.
//! * **Crash** — one rank panics with [`CommError::RankDead`] at one op
//!   index: a hard failure. Surviving ranks observe it as bounded-wait
//!   timeouts ([`CommError::Timeout`] / [`CommError::Closed`]).
//!
//! Damaged copies are always sent *before* the good frame ("retransmit
//! ahead"), so the retry counts are deterministic and the final payload
//! always arrives — chaos runs converge to the fault-free result, which the
//! chaos suite asserts bit-for-bit.
//!
//! Fault counters are mirrored into a [`Recorder`] (`fault.delays`,
//! `fault.drops`, `fault.corrupts`, `fault.crc_rejects`, `fault.retries`,
//! `fault.stalls`) so they appear in the metrics JSON next to the span and
//! comm telemetry.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use pastis_trace::{names, Recorder};

use crate::communicator::{CommError, CommStatsSnapshot, Communicator, Payload};

// ---------------------------------------------------------------------------
// Deterministic draws
// ---------------------------------------------------------------------------

/// SplitMix64 mixer: the standard finalizer used to derive independent
/// streams from a seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` keyed on (seed, rank, op index, fault kind).
fn unit_draw(seed: u64, rank: u64, op: u64, salt: u64) -> f64 {
    let mut h = splitmix64(seed ^ rank.wrapping_mul(0xA24B_AED4_963E_E407));
    h = splitmix64(h ^ op.wrapping_mul(0x9FB2_1C65_1E98_DF25));
    h = splitmix64(h ^ salt);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const SALT_DELAY: u64 = 1;
const SALT_DELAY_FRAC: u64 = 2;
const SALT_DROP: u64 = 3;
const SALT_CORRUPT: u64 = 4;
const SALT_SPILL_CORRUPT: u64 = 5;
const SALT_SPILL_CORRUPT_POS: u64 = 6;
const SALT_SPILL_DISK_FULL: u64 = 7;
const SALT_SPILL_SHORT: u64 = 8;
const SALT_SPILL_SHORT_FRAC: u64 = 9;
const SALT_SPILL_STALL: u64 = 10;
const SALT_SPILL_STALL_FRAC: u64 = 11;

// ---------------------------------------------------------------------------
// CRC framing
// ---------------------------------------------------------------------------

/// Bitwise CRC-32 (reflected, polynomial 0xEDB88320), the classic IEEE CRC.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Body of a point-to-point frame.
#[derive(Clone)]
enum FrameBody<T> {
    /// The real payload.
    Payload(T),
    /// An injected-corruption copy: bits damaged beyond recovery.
    Garbled,
    /// An injected-drop marker: models a message lost on the wire whose
    /// retransmission timeout fired at the receiver.
    Dropped,
}

impl<T> FrameBody<T> {
    fn tag(&self) -> u8 {
        match self {
            FrameBody::Payload(_) => 0,
            FrameBody::Garbled => 1,
            FrameBody::Dropped => 2,
        }
    }
}

/// A CRC-checked point-to-point frame. `FaultyComm` transports every
/// `send_to` payload inside one of these.
#[derive(Clone)]
struct Frame<T> {
    src: u32,
    dst: u32,
    seq: u64,
    crc: u32,
    body: FrameBody<T>,
}

/// CRC over the frame header plus body tag (payloads are type-erased clones,
/// so the header checksum stands in for a payload checksum).
fn frame_crc(src: u32, dst: u32, seq: u64, tag: u8) -> u32 {
    let mut buf = [0u8; 17];
    buf[0..4].copy_from_slice(&src.to_le_bytes());
    buf[4..8].copy_from_slice(&dst.to_le_bytes());
    buf[8..16].copy_from_slice(&seq.to_le_bytes());
    buf[16] = tag;
    crc32(&buf)
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

/// A transient stall: `rank` sleeps `millis` once, at op index `at_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallFault {
    /// The stalling (world) rank.
    pub rank: usize,
    /// The per-rank communicator-op index at which the stall fires.
    pub at_op: u64,
    /// Stall duration in milliseconds.
    pub millis: u64,
}

/// A hard crash: `rank` panics with [`CommError::RankDead`] at op `at_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// The crashing (world) rank.
    pub rank: usize,
    /// The per-rank communicator-op index at which the crash fires.
    pub at_op: u64,
}

/// A seeded, fully deterministic fault schedule.
///
/// Every decision is a pure function of `(seed, home rank, op index)`, so
/// two runs with the same plan inject byte-identical fault sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all probabilistic draws.
    pub seed: u64,
    /// Per-op probability of an injected delay.
    pub delay_p: f64,
    /// Maximum injected delay in microseconds (actual delay is a
    /// deterministic fraction of this).
    pub max_delay_us: u64,
    /// Per-message probability of an injected drop (p2p only).
    pub drop_p: f64,
    /// Per-message probability of an injected corruption (p2p only).
    pub corrupt_p: f64,
    /// Optional transient stall.
    pub stall: Option<StallFault>,
    /// Optional hard crash.
    pub crash: Option<CrashFault>,
    /// Per-spill-write probability of an injected single-byte corruption
    /// ([`FaultyStore`] only).
    pub spill_corrupt_p: f64,
    /// Per-spill-write probability of an injected disk-full failure
    /// ([`FaultyStore`] only).
    pub spill_disk_full_p: f64,
    /// Per-spill-write probability of an injected short (truncated) write
    /// ([`FaultyStore`] only).
    pub spill_short_p: f64,
    /// Per-spill-write probability of an injected stall
    /// ([`FaultyStore`] only).
    pub spill_stall_p: f64,
    /// Maximum injected spill-write stall in microseconds (actual stall is
    /// a deterministic fraction of this).
    pub spill_stall_us: u64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing. Wrapping a communicator with it is a
    /// strict no-op (pinned by the chaos proptest suite).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            delay_p: 0.0,
            max_delay_us: 0,
            drop_p: 0.0,
            corrupt_p: 0.0,
            stall: None,
            crash: None,
            spill_corrupt_p: 0.0,
            spill_disk_full_p: 0.0,
            spill_short_p: 0.0,
            spill_stall_p: 0.0,
            spill_stall_us: 0,
        }
    }

    /// A representative chaos preset: 20% delays up to 2 ms, 10% drops,
    /// 10% corruptions, no stall/crash, no spill faults.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay_p: 0.2,
            max_delay_us: 2000,
            drop_p: 0.1,
            corrupt_p: 0.1,
            ..FaultPlan::none()
        }
    }

    /// `true` when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        (self.delay_p <= 0.0 || self.max_delay_us == 0)
            && self.drop_p <= 0.0
            && self.corrupt_p <= 0.0
            && self.stall.is_none()
            && self.crash.is_none()
            && !self.has_spill_faults()
    }

    /// `true` when the plan can inject spill-write faults
    /// (the [`FaultyStore`] family).
    pub fn has_spill_faults(&self) -> bool {
        self.spill_corrupt_p > 0.0
            || self.spill_disk_full_p > 0.0
            || self.spill_short_p > 0.0
            || (self.spill_stall_p > 0.0 && self.spill_stall_us > 0)
    }

    /// Parse a plan from its compact CLI spec, e.g.
    /// `seed=42,delay=0.2:2000,drop=0.1,corrupt=0.1,stall=1@5:50,crash=2@40`.
    ///
    /// Fields: `seed=N`; `delay=P:MAX_US`; `drop=P`; `corrupt=P`;
    /// `stall=RANK@OP:MILLIS`; `crash=RANK@OP`. Omitted fields default to
    /// "never". The single word `chaos` (optionally `chaos:SEED`) expands to
    /// [`FaultPlan::chaos`].
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(FaultPlan::none());
        }
        if let Some(rest) = spec.strip_prefix("chaos") {
            let seed = match rest.strip_prefix(':') {
                None if rest.is_empty() => 0,
                Some(s) => s
                    .parse()
                    .map_err(|_| format!("bad chaos seed in fault plan: {s:?}"))?,
                _ => return Err(format!("bad fault plan spec: {spec:?}")),
            };
            return Ok(FaultPlan::chaos(seed));
        }
        let mut plan = FaultPlan::none();
        for field in spec.split(',') {
            let (key, val) = field
                .split_once('=')
                .ok_or_else(|| format!("bad fault plan field (want key=value): {field:?}"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = val
                        .parse()
                        .map_err(|_| format!("bad seed in fault plan: {val:?}"))?;
                }
                "delay" => {
                    let (p, us) = val
                        .split_once(':')
                        .ok_or_else(|| format!("bad delay (want P:MAX_US): {val:?}"))?;
                    plan.delay_p = parse_prob("delay", p)?;
                    plan.max_delay_us = us
                        .parse()
                        .map_err(|_| format!("bad delay microseconds: {us:?}"))?;
                }
                "drop" => plan.drop_p = parse_prob("drop", val)?,
                "corrupt" => plan.corrupt_p = parse_prob("corrupt", val)?,
                "spill_corrupt" => plan.spill_corrupt_p = parse_prob("spill_corrupt", val)?,
                "spill_disk_full" => plan.spill_disk_full_p = parse_prob("spill_disk_full", val)?,
                "spill_short" => plan.spill_short_p = parse_prob("spill_short", val)?,
                "spill_stall" => {
                    let (p, us) = val
                        .split_once(':')
                        .ok_or_else(|| format!("bad spill_stall (want P:MAX_US): {val:?}"))?;
                    plan.spill_stall_p = parse_prob("spill_stall", p)?;
                    plan.spill_stall_us = us
                        .parse()
                        .map_err(|_| format!("bad spill_stall microseconds: {us:?}"))?;
                }
                "stall" => {
                    let (rank, rest) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad stall (want RANK@OP:MILLIS): {val:?}"))?;
                    let (op, ms) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("bad stall (want RANK@OP:MILLIS): {val:?}"))?;
                    plan.stall = Some(StallFault {
                        rank: rank
                            .parse()
                            .map_err(|_| format!("bad stall rank: {rank:?}"))?,
                        at_op: op.parse().map_err(|_| format!("bad stall op: {op:?}"))?,
                        millis: ms
                            .parse()
                            .map_err(|_| format!("bad stall millis: {ms:?}"))?,
                    });
                }
                "crash" => {
                    let (rank, op) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad crash (want RANK@OP): {val:?}"))?;
                    plan.crash = Some(CrashFault {
                        rank: rank
                            .parse()
                            .map_err(|_| format!("bad crash rank: {rank:?}"))?,
                        at_op: op.parse().map_err(|_| format!("bad crash op: {op:?}"))?,
                    });
                }
                other => return Err(format!("unknown fault plan field: {other:?}")),
            }
        }
        Ok(plan)
    }

    /// The compact spec string [`FaultPlan::parse`] accepts;
    /// `parse(to_spec()) == self` for plans with exactly-representable
    /// probabilities.
    pub fn to_spec(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        if self.delay_p > 0.0 && self.max_delay_us > 0 {
            out.push_str(&format!(",delay={}:{}", self.delay_p, self.max_delay_us));
        }
        if self.drop_p > 0.0 {
            out.push_str(&format!(",drop={}", self.drop_p));
        }
        if self.corrupt_p > 0.0 {
            out.push_str(&format!(",corrupt={}", self.corrupt_p));
        }
        if let Some(s) = self.stall {
            out.push_str(&format!(",stall={}@{}:{}", s.rank, s.at_op, s.millis));
        }
        if let Some(c) = self.crash {
            out.push_str(&format!(",crash={}@{}", c.rank, c.at_op));
        }
        if self.spill_corrupt_p > 0.0 {
            out.push_str(&format!(",spill_corrupt={}", self.spill_corrupt_p));
        }
        if self.spill_disk_full_p > 0.0 {
            out.push_str(&format!(",spill_disk_full={}", self.spill_disk_full_p));
        }
        if self.spill_short_p > 0.0 {
            out.push_str(&format!(",spill_short={}", self.spill_short_p));
        }
        if self.spill_stall_p > 0.0 && self.spill_stall_us > 0 {
            out.push_str(&format!(
                ",spill_stall={}:{}",
                self.spill_stall_p, self.spill_stall_us
            ));
        }
        out
    }

    /// The injected delay (if any) for op `op` on `rank`.
    fn delay_for(&self, rank: usize, op: u64) -> Option<Duration> {
        if self.delay_p <= 0.0 || self.max_delay_us == 0 {
            return None;
        }
        let rank = rank as u64;
        if unit_draw(self.seed, rank, op, SALT_DELAY) >= self.delay_p {
            return None;
        }
        let frac = unit_draw(self.seed, rank, op, SALT_DELAY_FRAC);
        Some(Duration::from_micros(
            1 + (frac * self.max_delay_us as f64) as u64,
        ))
    }

    fn should_drop(&self, rank: usize, op: u64) -> bool {
        self.drop_p > 0.0 && unit_draw(self.seed, rank as u64, op, SALT_DROP) < self.drop_p
    }

    fn should_corrupt(&self, rank: usize, op: u64) -> bool {
        self.corrupt_p > 0.0 && unit_draw(self.seed, rank as u64, op, SALT_CORRUPT) < self.corrupt_p
    }
}

fn parse_prob(what: &str, s: &str) -> Result<f64, String> {
    let p: f64 = s
        .parse()
        .map_err(|_| format!("bad {what} probability: {s:?}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{what} probability out of [0,1]: {p}"));
    }
    Ok(p)
}

// ---------------------------------------------------------------------------
// Fault counters
// ---------------------------------------------------------------------------

/// Counters of injected faults and the recovery work they caused.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Injected delays executed.
    pub delays: AtomicU64,
    /// Injected transient stalls executed.
    pub stalls: AtomicU64,
    /// Drop markers sent (each models one lost message).
    pub drops: AtomicU64,
    /// Garbled frames sent (each models one corrupted message).
    pub corrupts: AtomicU64,
    /// Frames the receiver rejected on CRC mismatch.
    pub crc_rejects: AtomicU64,
    /// Extra receive attempts caused by rejected or dropped frames.
    pub retries: AtomicU64,
}

impl FaultStats {
    /// Snapshot into a plain struct.
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            delays: self.delays.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            corrupts: self.corrupts.load(Ordering::Relaxed),
            crc_rejects: self.crc_rejects.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Injected delays executed.
    pub delays: u64,
    /// Injected transient stalls executed.
    pub stalls: u64,
    /// Drop markers sent.
    pub drops: u64,
    /// Garbled frames sent.
    pub corrupts: u64,
    /// Frames rejected on CRC mismatch.
    pub crc_rejects: u64,
    /// Extra receive attempts.
    pub retries: u64,
}

impl FaultStatsSnapshot {
    /// `true` when no fault fired and no recovery work happened.
    pub fn is_clean(&self) -> bool {
        *self == FaultStatsSnapshot::default()
    }
}

// ---------------------------------------------------------------------------
// The wrapper
// ---------------------------------------------------------------------------

/// Maximum receive attempts per logical message before giving up with
/// [`CommError::Corrupt`]. Each send emits at most two damaged copies before
/// the good frame, so this bound is generous.
const MAX_RECV_ATTEMPTS: u32 = 16;

/// A communicator wrapper that deterministically injects faults from a
/// seeded [`FaultPlan`] (see the module docs for the fault taxonomy).
///
/// Stacking order with telemetry: wrap the fault layer *inside* the traced
/// layer — `TracedComm<FaultyComm<C>>` — so retransmitted frames do not
/// produce extra trace events and an empty plan leaves the trace
/// byte-identical.
pub struct FaultyComm<C: Communicator> {
    inner: C,
    plan: Arc<FaultPlan>,
    /// World rank at wrap time: fault decisions stay keyed on it across
    /// `split`, so a rank's schedule does not depend on communicator shape.
    home_rank: usize,
    /// Per-rank-thread op counter, shared across splits of the same rank.
    ops: Arc<AtomicU64>,
    /// Per-destination p2p sequence numbers (this communicator only).
    send_seq: Vec<AtomicU64>,
    stats: Arc<FaultStats>,
    recorder: Recorder,
}

impl<C: Communicator> FaultyComm<C> {
    /// Wrap `inner`, injecting faults per `plan`. Fault decisions are keyed
    /// on `inner.rank()` at wrap time (the home rank).
    pub fn new(inner: C, plan: FaultPlan) -> FaultyComm<C> {
        let home_rank = inner.rank();
        let size = inner.size();
        FaultyComm {
            inner,
            plan: Arc::new(plan),
            home_rank,
            ops: Arc::new(AtomicU64::new(0)),
            send_seq: (0..size).map(|_| AtomicU64::new(0)).collect(),
            stats: Arc::new(FaultStats::default()),
            recorder: Recorder::disabled(),
        }
    }

    /// Mirror fault counters into `recorder` (`fault.*` metric names).
    pub fn with_recorder(mut self, recorder: Recorder) -> FaultyComm<C> {
        self.recorder = recorder;
        self
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwrap into the underlying communicator.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the fault counters (shared across splits of this rank).
    pub fn fault_stats(&self) -> FaultStatsSnapshot {
        self.stats.snapshot()
    }

    fn bump(&self, ctr: &AtomicU64, name: &'static str) {
        ctr.fetch_add(1, Ordering::Relaxed);
        self.recorder.add_counter(name, 1.0);
    }

    /// Advance the op counter and apply crash/stall/delay for this op.
    /// Returns the op index (used to key p2p drop/corrupt draws).
    fn on_op(&self) -> u64 {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.plan.is_noop() {
            return op;
        }
        if let Some(c) = self.plan.crash {
            if c.rank == self.home_rank && op == c.at_op {
                let e = CommError::RankDead {
                    rank: self.home_rank,
                    at_op: op,
                };
                panic!("{e}");
            }
        }
        if let Some(s) = self.plan.stall {
            if s.rank == self.home_rank && op == s.at_op {
                self.bump(&self.stats.stalls, names::CTR_FAULT_STALLS);
                thread::sleep(Duration::from_millis(s.millis));
            }
        }
        if let Some(d) = self.plan.delay_for(self.home_rank, op) {
            self.bump(&self.stats.delays, names::CTR_FAULT_DELAYS);
            thread::sleep(d);
        }
        op
    }

    /// Receive frames from `src` until one validates; damaged and dropped
    /// frames count retries. `timeout` bounds each attempt.
    fn framed_recv<T: Payload>(
        &self,
        src: usize,
        timeout: Option<Duration>,
    ) -> Result<T, CommError> {
        let mut rejects = 0u32;
        for _ in 0..MAX_RECV_ATTEMPTS {
            let frame: Frame<T> = match timeout {
                None => self.inner.recv_from(src),
                Some(t) => self.inner.recv_from_deadline(src, t)?,
            };
            let expect = frame_crc(frame.src, frame.dst, frame.seq, frame.body.tag());
            if frame.crc != expect {
                rejects += 1;
                self.bump(&self.stats.crc_rejects, names::CTR_FAULT_CRC_REJECTS);
                self.bump(&self.stats.retries, names::CTR_FAULT_RETRIES);
                continue;
            }
            match frame.body {
                FrameBody::Payload(v) => return Ok(v),
                // A garbled body with a valid CRC is never produced, but a
                // defensive reject keeps the invariant "CRC-valid payloads
                // only" in one place.
                FrameBody::Garbled => {
                    rejects += 1;
                    self.bump(&self.stats.crc_rejects, names::CTR_FAULT_CRC_REJECTS);
                    self.bump(&self.stats.retries, names::CTR_FAULT_RETRIES);
                }
                FrameBody::Dropped => {
                    self.bump(&self.stats.retries, names::CTR_FAULT_RETRIES);
                }
            }
        }
        Err(CommError::Corrupt {
            op: "recv_from",
            rank: self.inner.rank(),
            src,
            rejects,
        })
    }
}

impl<C: Communicator> Communicator for FaultyComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn barrier(&self) {
        self.on_op();
        self.inner.barrier();
    }

    fn barrier_deadline(&self, timeout: Duration) -> Result<(), CommError> {
        self.on_op();
        self.inner.barrier_deadline(timeout)
    }

    fn broadcast<T: Payload>(&self, root: usize, value: T, nbytes: usize) -> T {
        self.on_op();
        self.inner.broadcast(root, value, nbytes)
    }

    fn all_gather<T: Payload>(&self, value: T) -> Vec<T> {
        self.on_op();
        self.inner.all_gather(value)
    }

    fn gather<T: Payload>(&self, root: usize, value: T) -> Option<Vec<T>> {
        self.on_op();
        self.inner.gather(root, value)
    }

    fn all_to_allv<T: Payload>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.on_op();
        self.inner.all_to_allv(parts)
    }

    fn send_to<T: Payload>(&self, dst: usize, value: T, nbytes: usize) {
        let op = self.on_op();
        let src = self.inner.rank() as u32;
        let dst32 = dst as u32;
        let seq = self.send_seq[dst].fetch_add(1, Ordering::Relaxed);
        // Damaged copies go out *before* the good frame, so delivery (and
        // therefore the final output) never depends on the fault draw.
        if self.plan.should_corrupt(self.home_rank, op) {
            self.bump(&self.stats.corrupts, names::CTR_FAULT_CORRUPTS);
            let frame = Frame::<T> {
                src,
                dst: dst32,
                seq,
                crc: !frame_crc(src, dst32, seq, 1),
                body: FrameBody::Garbled,
            };
            self.inner.send_to(dst, frame, 0);
        }
        if self.plan.should_drop(self.home_rank, op) {
            self.bump(&self.stats.drops, names::CTR_FAULT_DROPS);
            let frame = Frame::<T> {
                src,
                dst: dst32,
                seq,
                crc: frame_crc(src, dst32, seq, 2),
                body: FrameBody::Dropped,
            };
            self.inner.send_to(dst, frame, 0);
        }
        let frame = Frame {
            src,
            dst: dst32,
            seq,
            crc: frame_crc(src, dst32, seq, 0),
            body: FrameBody::Payload(value),
        };
        self.inner.send_to(dst, frame, nbytes);
    }

    fn recv_from<T: Payload>(&self, src: usize) -> T {
        self.on_op();
        match self.framed_recv(src, None) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    fn recv_from_deadline<T: Payload>(
        &self,
        src: usize,
        timeout: Duration,
    ) -> Result<T, CommError> {
        self.on_op();
        self.framed_recv(src, Some(timeout))
    }

    fn split(&self, color: usize, key: usize) -> Self {
        // The split itself is a collective (an op), and the child shares this
        // rank's op counter, plan, stats, and recorder: a rank's fault
        // schedule is one stream regardless of communicator shape.
        self.on_op();
        let inner = self.inner.split(color, key);
        let size = inner.size();
        FaultyComm {
            inner,
            plan: Arc::clone(&self.plan),
            home_rank: self.home_rank,
            ops: Arc::clone(&self.ops),
            send_seq: (0..size).map(|_| AtomicU64::new(0)).collect(),
            stats: Arc::clone(&self.stats),
            recorder: self.recorder.clone(),
        }
    }

    fn stats(&self) -> CommStatsSnapshot {
        self.inner.stats()
    }
}

// ---------------------------------------------------------------------------
// The spill-store wrapper
// ---------------------------------------------------------------------------

/// Counters of injected spill-write faults ([`FaultyStore`]).
#[derive(Debug, Default)]
pub struct StoreFaultStats {
    /// Single-byte corruptions injected into written shards.
    pub corrupts: AtomicU64,
    /// Writes failed with an injected disk-full error.
    pub disk_full: AtomicU64,
    /// Writes truncated by an injected short write.
    pub short_writes: AtomicU64,
    /// Injected write stalls executed.
    pub stalls: AtomicU64,
}

/// Plain-value snapshot of [`StoreFaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreFaultStatsSnapshot {
    /// Single-byte corruptions injected.
    pub corrupts: u64,
    /// Injected disk-full failures.
    pub disk_full: u64,
    /// Injected short writes.
    pub short_writes: u64,
    /// Injected stalls executed.
    pub stalls: u64,
}

impl StoreFaultStatsSnapshot {
    /// `true` when no spill fault fired.
    pub fn is_clean(&self) -> bool {
        *self == StoreFaultStatsSnapshot::default()
    }
}

impl StoreFaultStats {
    /// Snapshot into a plain struct.
    pub fn snapshot(&self) -> StoreFaultStatsSnapshot {
        StoreFaultStatsSnapshot {
            corrupts: self.corrupts.load(Ordering::Relaxed),
            disk_full: self.disk_full.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }
}

/// [`FaultyComm`]'s sibling for spill I/O: a file store that
/// deterministically injects disk-full, short-write, corruption, and stall
/// faults into atomic writes, per the `spill_*` fields of a [`FaultPlan`].
///
/// Fault decisions are keyed on `(seed, home rank, write index, kind)` via
/// the same splitmix64 draws as the communicator faults, but on an
/// independent op stream — a plan injects the same spill schedule whether
/// or not comm faults also fire. Reads are never perturbed: damage is
/// discovered the honest way, by the caller's CRC check on readback.
///
/// Injected damage is always *detectable*: a corrupted or truncated shard
/// fails its CRC frame on readback, and a disk-full write surfaces as an
/// `Err` the caller keeps the data in memory over. Counters are mirrored
/// into the [`Recorder`] as `fault.spill.*`.
pub struct FaultyStore {
    plan: Arc<FaultPlan>,
    home_rank: usize,
    writes: AtomicU64,
    stats: Arc<StoreFaultStats>,
    recorder: Recorder,
}

impl FaultyStore {
    /// A store injecting faults per `plan`, keyed on `home_rank`.
    pub fn new(plan: FaultPlan, home_rank: usize) -> FaultyStore {
        FaultyStore {
            plan: Arc::new(plan),
            home_rank,
            writes: AtomicU64::new(0),
            stats: Arc::new(StoreFaultStats::default()),
            recorder: Recorder::disabled(),
        }
    }

    /// Mirror spill-fault counters into `recorder` (`fault.spill.*`).
    pub fn with_recorder(mut self, recorder: Recorder) -> FaultyStore {
        self.recorder = recorder;
        self
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the spill-fault counters.
    pub fn fault_stats(&self) -> StoreFaultStatsSnapshot {
        self.stats.snapshot()
    }

    fn bump(&self, ctr: &AtomicU64, name: &'static str) {
        ctr.fetch_add(1, Ordering::Relaxed);
        self.recorder.add_counter(name, 1.0);
    }

    fn draw(&self, op: u64, salt: u64) -> f64 {
        unit_draw(self.plan.seed, self.home_rank as u64, op, salt)
    }

    /// Write `content` to `path` atomically (sibling `.tmp` + rename),
    /// applying the plan's spill faults to this write.
    ///
    /// # Errors
    ///
    /// Real I/O failures and injected disk-full failures, with the path in
    /// the message. An `Err` means nothing replaced `path`; the caller
    /// keeps its in-memory copy. Injected corruption and short writes
    /// *succeed* — the damage is caught by the caller's CRC on readback.
    pub fn write_atomic(&self, path: &Path, content: &str) -> Result<(), String> {
        let op = self.writes.fetch_add(1, Ordering::Relaxed);
        let mut bytes = content.as_bytes().to_vec();
        if !self.plan.has_spill_faults() {
            return write_file_atomic(path, &bytes);
        }
        if self.plan.spill_stall_p > 0.0
            && self.plan.spill_stall_us > 0
            && self.draw(op, SALT_SPILL_STALL) < self.plan.spill_stall_p
        {
            self.bump(&self.stats.stalls, names::CTR_FAULT_SPILL_STALLS);
            let frac = self.draw(op, SALT_SPILL_STALL_FRAC);
            thread::sleep(Duration::from_micros(
                1 + (frac * self.plan.spill_stall_us as f64) as u64,
            ));
        }
        if self.plan.spill_disk_full_p > 0.0
            && self.draw(op, SALT_SPILL_DISK_FULL) < self.plan.spill_disk_full_p
        {
            self.bump(&self.stats.disk_full, names::CTR_FAULT_SPILL_DISK_FULL);
            return Err(format!(
                "injected disk-full writing {} (spill write {op})",
                path.display()
            ));
        }
        if !bytes.is_empty()
            && self.plan.spill_short_p > 0.0
            && self.draw(op, SALT_SPILL_SHORT) < self.plan.spill_short_p
        {
            self.bump(
                &self.stats.short_writes,
                names::CTR_FAULT_SPILL_SHORT_WRITES,
            );
            let keep = (self.draw(op, SALT_SPILL_SHORT_FRAC) * bytes.len() as f64) as usize;
            bytes.truncate(keep.min(bytes.len().saturating_sub(1)));
        }
        if !bytes.is_empty()
            && self.plan.spill_corrupt_p > 0.0
            && self.draw(op, SALT_SPILL_CORRUPT) < self.plan.spill_corrupt_p
        {
            self.bump(&self.stats.corrupts, names::CTR_FAULT_SPILL_CORRUPTS);
            let pos = (self.draw(op, SALT_SPILL_CORRUPT_POS) * bytes.len() as f64) as usize;
            let pos = pos.min(bytes.len() - 1);
            bytes[pos] ^= 0x01;
        }
        write_file_atomic(path, &bytes)
    }

    /// Read a shard back. Never fault-injected: spilled damage is caught by
    /// the caller's CRC check, exactly like a real torn disk.
    ///
    /// # Errors
    ///
    /// Real I/O failures, with the path in the message.
    pub fn read_to_string(&self, path: &Path) -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))
    }
}

/// Write `bytes` to `path` via a sibling `.tmp` + rename, creating parent
/// directories. A killed process leaves the old file or a stray `.tmp`,
/// never a torn target.
fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let parent = path
        .parent()
        .ok_or_else(|| format!("spill path has no parent: {}", path.display()))?;
    std::fs::create_dir_all(parent).map_err(|e| format!("creating {}: {e}", parent.display()))?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("renaming {} -> {}: {e}", tmp.display(), path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::ReduceOp;
    use crate::local::SelfComm;
    use crate::threaded::{run_threaded, run_threaded_with, CommConfig, ThreadedComm};

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn unit_draw_is_deterministic_and_uniform_ish() {
        let a = unit_draw(42, 1, 7, SALT_DROP);
        let b = unit_draw(42, 1, 7, SALT_DROP);
        assert_eq!(a, b);
        assert!(unit_draw(42, 1, 7, SALT_CORRUPT) != a);
        let mean: f64 = (0..1000)
            .map(|op| unit_draw(9, 0, op, SALT_DELAY))
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn spec_round_trip() {
        let plans = [
            FaultPlan::none(),
            FaultPlan::chaos(7),
            FaultPlan {
                seed: 42,
                delay_p: 0.25,
                max_delay_us: 1500,
                drop_p: 0.125,
                corrupt_p: 0.5,
                stall: Some(StallFault {
                    rank: 1,
                    at_op: 5,
                    millis: 50,
                }),
                crash: Some(CrashFault { rank: 2, at_op: 40 }),
                ..FaultPlan::none()
            },
            FaultPlan {
                seed: 8,
                spill_corrupt_p: 0.5,
                spill_disk_full_p: 0.25,
                spill_short_p: 0.125,
                spill_stall_p: 0.5,
                spill_stall_us: 300,
                ..FaultPlan::none()
            },
        ];
        for p in plans {
            assert_eq!(
                FaultPlan::parse(&p.to_spec()).unwrap(),
                p,
                "spec: {}",
                p.to_spec()
            );
        }
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("chaos:9").unwrap(), FaultPlan::chaos(9));
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("stall=1@2").is_err());
        assert!(FaultPlan::parse("spill_corrupt=2.0").is_err());
        assert!(FaultPlan::parse("spill_stall=0.5").is_err());
    }

    #[test]
    fn empty_plan_is_strict_noop() {
        let plain = run_threaded(4, |c| {
            let g = c.all_gather(c.rank() as u64);
            c.send_to((c.rank() + 1) % 4, c.rank() as u32, 4);
            let r = c.recv_from::<u32>((c.rank() + 3) % 4);
            let s = c.all_reduce(&[c.rank() as u64], ReduceOp::Sum);
            (g, r, s, c.stats())
        });
        let faulty = run_threaded(4, |c| {
            let f = FaultyComm::new(c.split(0, c.rank()), FaultPlan::none());
            let g = f.all_gather(f.rank() as u64);
            f.send_to((f.rank() + 1) % 4, f.rank() as u32, 4);
            let r = f.recv_from::<u32>((f.rank() + 3) % 4);
            let s = f.all_reduce(&[f.rank() as u64], ReduceOp::Sum);
            assert!(f.fault_stats().is_clean());
            (g, r, s, f.stats())
        });
        for (p, f) in plain.iter().zip(&faulty) {
            assert_eq!(p.0, f.0);
            assert_eq!(p.1, f.1);
            assert_eq!(p.2, f.2);
            // Same message/byte counters: no hidden extra frames.
            assert_eq!(p.3.p2p_messages, f.3.p2p_messages);
            assert_eq!(p.3.bytes, f.3.bytes);
        }
    }

    /// An exchange mixing collectives and p2p, returning rank-visible data.
    fn workload<C: Communicator>(c: &C) -> (Vec<u64>, Vec<u32>, Vec<u64>) {
        let p = c.size();
        let g = c.all_gather(c.rank() as u64 * 3 + 1);
        for dst in 0..p {
            c.send_to(dst, (c.rank() * 100 + dst) as u32, 4);
        }
        let recvd: Vec<u32> = (0..p).map(|src| c.recv_from::<u32>(src)).collect();
        let s = c.all_reduce(&[c.rank() as u64 + 7], ReduceOp::Sum);
        (g, recvd, s)
    }

    #[test]
    fn chaos_plans_converge_to_fault_free_results() {
        let baseline = run_threaded(4, workload);
        for seed in [1u64, 2, 3] {
            let plan = FaultPlan {
                // Certain drops + corruption exercise the retry path on
                // every message.
                seed,
                delay_p: 0.3,
                max_delay_us: 500,
                drop_p: 1.0,
                corrupt_p: 1.0,
                stall: Some(StallFault {
                    rank: 1,
                    at_op: 3,
                    millis: 5,
                }),
                ..FaultPlan::none()
            };
            let out = run_threaded(4, move |c| {
                let f = FaultyComm::new(c.split(0, c.rank()), plan.clone());
                let r = workload(&f);
                (r, f.fault_stats())
            });
            for (rank, ((r, fs), base)) in out.iter().zip(&baseline).enumerate() {
                assert_eq!(r, base, "seed {seed} rank {rank} diverged");
                assert_eq!(fs.drops, 4, "every send drop-injected");
                assert_eq!(fs.corrupts, 4);
                assert_eq!(fs.crc_rejects, 4);
                assert_eq!(fs.retries, 8);
            }
            assert!(out[1].1.stalls == 1, "rank 1 stalls once");
        }
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = |seed: u64| {
            run_threaded(4, move |c| {
                let f = FaultyComm::new(c.split(0, c.rank()), FaultPlan::chaos(seed));
                workload(&f);
                f.fault_stats()
            })
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds give different schedules");
    }

    #[test]
    fn f64_all_reduce_is_bit_deterministic_under_delays() {
        // Magnitudes chosen so that any reordering of the fold changes the
        // result bits: 1e16 + 1 - 1e16 is 0.0 or 1.0 depending on order.
        let vals = [1e16, 1.0, -1e16, 3.5];
        let baseline = run_threaded(4, move |c| {
            c.all_reduce_f64(&[vals[c.rank()], vals[3 - c.rank()]], ReduceOp::Sum)
        });
        for seed in [5u64, 6, 7, 8] {
            let plan = FaultPlan {
                seed,
                delay_p: 1.0,
                max_delay_us: 3000,
                ..FaultPlan::none()
            };
            let out = run_threaded(4, move |c| {
                let f = FaultyComm::new(c.split(0, c.rank()), plan.clone());
                f.all_reduce_f64(&[vals[f.rank()], vals[3 - f.rank()]], ReduceOp::Sum)
            });
            for (got, want) in out.iter().zip(&baseline) {
                let got_bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
                let want_bits: Vec<u64> = want.iter().map(|x| x.to_bits()).collect();
                assert_eq!(
                    got_bits, want_bits,
                    "seed {seed}: f64 reduction not bit-stable"
                );
            }
        }
    }

    #[test]
    fn injected_crash_surfaces_as_timeout_on_survivor() {
        let handles = ThreadedComm::world_with(2, CommConfig::bounded(Duration::from_millis(50)));
        let plan = FaultPlan {
            crash: Some(CrashFault { rank: 1, at_op: 0 }),
            ..FaultPlan::none()
        };
        let joins: Vec<_> = handles
            .into_iter()
            .map(|c| {
                let plan = plan.clone();
                thread::spawn(move || {
                    let f = FaultyComm::new(c, plan);
                    f.barrier_deadline(Duration::from_millis(50))
                })
            })
            .collect();
        let mut results = joins.into_iter().map(|j| j.join());
        let survivor = results.next().unwrap().expect("rank 0 must not panic");
        assert!(matches!(survivor, Err(CommError::Timeout { .. })));
        let dead = results.next().unwrap();
        let msg = dead
            .expect_err("rank 1 must crash")
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected crash: rank 1"), "got: {msg}");
    }

    #[test]
    fn works_on_self_comm() {
        let f = FaultyComm::new(SelfComm::new(), FaultPlan::chaos(3));
        f.send_to(0, 42u8, 1);
        assert_eq!(f.recv_from::<u8>(0), 42);
        assert_eq!(f.all_gather(1u8), vec![1]);
        let fs = f.fault_stats();
        // chaos(3) injects on some ops; whatever fired, delivery succeeded.
        assert_eq!(fs.crc_rejects, fs.corrupts);
    }

    #[test]
    fn chaos_under_traced_wrapper_converges() {
        use crate::traced::TracedComm;
        let baseline = run_threaded(4, workload);
        let out = run_threaded(4, |c| {
            let f = FaultyComm::new(c.split(0, c.rank()), FaultPlan::chaos(99));
            let t = TracedComm::new(f, pastis_trace::Recorder::disabled());
            workload(&t)
        });
        assert_eq!(out, baseline);
    }

    #[test]
    fn run_threaded_with_unbounded_still_works() {
        let out = run_threaded_with(2, CommConfig::unbounded(), |c| c.all_gather(c.rank()));
        assert_eq!(out[0], vec![0, 1]);
    }

    fn store_test_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pastis-store-{tag}-{}", std::process::id()))
    }

    #[test]
    fn clean_store_writes_faithfully_and_atomically() {
        let dir = store_test_dir("clean");
        let _ = std::fs::remove_dir_all(&dir);
        let store = FaultyStore::new(FaultPlan::none(), 0);
        let path = dir.join("nested/shard.spill");
        store.write_atomic(&path, "payload\n").unwrap();
        assert_eq!(store.read_to_string(&path).unwrap(), "payload\n");
        assert!(store.fault_stats().is_clean());
        // No stray tmp left behind.
        assert!(!dir.join("nested/shard.spill.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_faults_are_deterministic_and_detectable() {
        let dir = store_test_dir("faulty");
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan {
            seed: 13,
            spill_corrupt_p: 0.5,
            spill_disk_full_p: 0.25,
            spill_short_p: 0.25,
            ..FaultPlan::none()
        };
        let run = |tag: &str| {
            let store = FaultyStore::new(plan.clone(), 2);
            let mut outcomes = Vec::new();
            for i in 0..64 {
                let path = dir.join(format!("{tag}/shard{i}.spill"));
                let content = format!("shard {i} body body body\n");
                match store.write_atomic(&path, &content) {
                    Err(_) => outcomes.push("disk_full".to_string()),
                    Ok(()) => {
                        let back = store.read_to_string(&path).unwrap();
                        outcomes.push(if back == content {
                            "intact".into()
                        } else {
                            "damaged".into()
                        });
                    }
                }
            }
            (outcomes, store.fault_stats())
        };
        let (a, sa) = run("a");
        let (b, sb) = run("b");
        assert_eq!(a, b, "spill fault schedule must be reproducible");
        assert_eq!(sa, sb);
        // With these probabilities over 64 writes, every kind fires.
        assert!(sa.corrupts > 0 && sa.disk_full > 0 && sa.short_writes > 0);
        // Every non-failed damaged write is visibly damaged (CRC would
        // catch it); intact writes round-trip exactly.
        assert!(a.iter().any(|o| o == "damaged"));
        assert!(a.iter().any(|o| o == "intact"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_faults_ride_an_independent_op_stream() {
        // The same plan drives FaultyComm draws and FaultyStore draws from
        // disjoint salts, so comm traffic cannot shift the spill schedule.
        let plan = FaultPlan {
            seed: 5,
            spill_disk_full_p: 0.5,
            ..FaultPlan::none()
        };
        let dir = store_test_dir("stream");
        let _ = std::fs::remove_dir_all(&dir);
        let schedule = |with_comm: bool| {
            let store = FaultyStore::new(plan.clone(), 0);
            if with_comm {
                let f = FaultyComm::new(SelfComm::new(), plan.clone());
                f.send_to(0, 1u8, 1);
                let _ = f.recv_from::<u8>(0);
            }
            (0..32)
                .map(|i| {
                    store
                        .write_atomic(&dir.join(format!("s{i}.spill")), "x\n")
                        .is_ok()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(schedule(false), schedule(true));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
