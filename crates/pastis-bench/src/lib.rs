//! Shared infrastructure for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md for the index). The
//! binaries run real miniature datasets through the functional pipeline
//! and replay them at Summit node counts through the performance model;
//! this module holds what they share: deterministic datasets, machine
//! calibration, block-count factoring, and table formatting.
//!
//! Dataset scale mapping (paper → reproduction, factor 10⁴):
//! 20M → 2,000 · 28M → 2,800 · 40M → 4,000 · 50M → 5,000 · 56M → 5,600 ·
//! 80M → 8,000 · 112M → 11,200 · 405M → 20,000 (production; memory-capped).

#![warn(missing_docs)]

pub mod ledger;

use pastis_comm::MachineModel;
use pastis_core::{simulate, ScaleConfig, SearchParams};
use pastis_seqio::{SeqStore, SyntheticConfig, SyntheticDataset};

/// Generate the standard benchmark dataset at `n` sequences, Metaclust-like
/// (log-normal lengths, planted families, 30% singletons), deterministic in
/// `n` and the fixed experiment seed.
pub fn bench_dataset(n: usize) -> SyntheticDataset {
    SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: n,
        mean_len: 180.0,
        len_sigma: 0.4,
        mean_family_size: 8.0,
        singleton_fraction: 0.3,
        divergence: 0.10,
        indel_prob: 0.015,
        seed: 0x5C22,
        ..SyntheticConfig::default()
    })
}

/// Experiment-wide default search parameters: the paper's production
/// settings with `k` shortened to 5 so the 10⁴×-smaller sequences retain
/// comparable k-mer hit statistics.
pub fn bench_params() -> SearchParams {
    SearchParams {
        k: 5,
        ..SearchParams::default()
    }
}

/// Factor a "number of blocks" into the `br × bc` pair closest to square,
/// matching the paper's usage (e.g. its production run reports "a total of
/// 400 blocks with a blocking factor of 20 × 20").
pub fn factor_blocks(total: usize) -> (usize, usize) {
    assert!(total > 0);
    let mut best = (total, 1);
    for d in 1..=total {
        if total % d == 0 {
            let (a, b) = (total / d, d);
            if a >= b && a - b < best.0 - best.1 {
                best = (a, b);
            }
        }
    }
    best
}

/// Calibrate a Summit-derived machine for a miniature dataset:
///
/// 1. uniformly rescale all throughputs so the modeled alignment phase of
///    the reference configuration lasts `target_align_s` seconds (putting
///    the replay in the paper's hours-scale regime rather than the
///    microsecond regime where latency artifacts dominate), then
/// 2. rescale the sparse-compute rates so the node-level align:sparse
///    ratio matches `align_sparse_ratio` (the paper observes "no more than
///    2:1", Section VI-C).
pub fn calibrated_summit(
    store: &SeqStore,
    params: &SearchParams,
    nodes: usize,
    target_align_s: f64,
    align_sparse_ratio: f64,
) -> MachineModel {
    calibrated_summit_anchored(
        store,
        params,
        nodes,
        target_align_s,
        align_sparse_ratio,
        None,
    )
}

/// [`calibrated_summit`] plus an optional third anchor: choose the
/// stripe-handling rate so that at `anchor_blocks` total blocks the sparse
/// phase is `mult_growth ×` its unblocked time. Figure 5 reports a 1.40–
/// 1.45× multiplication increase at high block counts; anchoring that one
/// published point fixes the handling share, and every other configuration
/// in a sweep is then *predicted* by the model.
pub fn calibrated_summit_anchored(
    store: &SeqStore,
    params: &SearchParams,
    nodes: usize,
    target_align_s: f64,
    align_sparse_ratio: f64,
    mult_anchor: Option<(usize, f64)>,
) -> MachineModel {
    let sim = |machine: &MachineModel, prm: &SearchParams| {
        simulate(
            store,
            prm,
            &ScaleConfig {
                nodes,
                machine: machine.clone(),
                contention: Default::default(),
                sample_pairs: 0,
                fidelity: pastis_core::perfmodel::TimeFidelity::Structural,
                align_threads: 1,
                spgemm_threads: 1,
            },
        )
    };
    // Probe with the per-batch device overhead zeroed: it is an absolute
    // cost (not rescaled with the rates), so it must not leak into the
    // kernel-rate scale factor.
    let mut probe_machine = MachineModel::summit();
    probe_machine.align_batch_overhead_s = 0.0;
    let probe = sim(&probe_machine, params);
    let f = (probe.align_s / target_align_s).max(1e-30);
    let mut machine = MachineModel::summit().scaled(f);

    for _outer in 0..3 {
        // Fixed-point pass on the sparse-compute rates: the sparse phase
        // also contains a communication term the rates cannot move, so one
        // multiplicative correction under-shoots; a few iterations converge
        // whenever the comm floor is below the target.
        for _ in 0..6 {
            let probe = sim(&machine, params);
            let want_sparse = probe.align_s / align_sparse_ratio;
            let have_sparse = probe.sparse_s.max(1e-30);
            let adjust = (have_sparse / want_sparse).clamp(1e-3, 1e3);
            if (adjust - 1.0).abs() < 0.02 {
                break;
            }
            machine.spgemm_products_per_sec *= adjust;
            machine.merge_nnz_per_sec *= adjust;
            machine.stripe_nnz_per_sec *= adjust;
            machine.kmer_residues_per_sec *= adjust;
        }
        let Some((anchor_blocks, mult_growth)) = mult_anchor else {
            break;
        };
        let (br, bc) = factor_blocks(anchor_blocks);
        let base = sim(&machine, params);
        let at_anchor = sim(&machine, &params.clone().with_blocking(br, bc));
        let growth = at_anchor.sparse_s / base.sparse_s.max(1e-30);
        if (growth / mult_growth - 1.0).abs() < 0.03 {
            break;
        }
        // More handling (lower stripe rate) → more growth.
        let step = (growth / mult_growth).powf(1.5).clamp(0.2, 5.0);
        machine.stripe_nnz_per_sec *= step;
    }
    machine
}

/// A `ScaleConfig` around a calibrated machine.
pub fn scale_config(machine: &MachineModel, nodes: usize) -> ScaleConfig {
    ScaleConfig {
        nodes,
        machine: machine.clone(),
        contention: Default::default(),
        sample_pairs: 200,
        fidelity: pastis_core::perfmodel::TimeFidelity::Structural,
        align_threads: 1,
        spgemm_threads: 1,
    }
}

/// Print a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format seconds compactly (s / min / h).
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.2}h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{:.1}s", s)
    }
}

/// Format a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factoring_is_near_square_and_exact() {
        assert_eq!(factor_blocks(1), (1, 1));
        assert_eq!(factor_blocks(4), (2, 2));
        assert_eq!(factor_blocks(10), (5, 2));
        assert_eq!(factor_blocks(20), (5, 4));
        assert_eq!(factor_blocks(30), (6, 5));
        assert_eq!(factor_blocks(40), (8, 5));
        assert_eq!(factor_blocks(50), (10, 5));
        assert_eq!(factor_blocks(400), (20, 20));
        assert_eq!(factor_blocks(7), (7, 1));
        for b in 1..=60 {
            let (r, c) = factor_blocks(b);
            assert_eq!(r * c, b);
            assert!(r >= c);
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = bench_dataset(100);
        let b = bench_dataset(100);
        assert_eq!(a.store, b.store);
    }

    #[test]
    fn calibration_hits_targets() {
        let ds = bench_dataset(300);
        let params = bench_params().with_blocking(4, 4);
        let machine = calibrated_summit(&ds.store, &params, 16, 100.0, 2.0);
        let r = simulate(&ds.store, &params, &scale_config(&machine, 16));
        // The kernel-rate target excludes the absolute per-batch device
        // overhead (16 blocks x align_batch_overhead_s on top).
        let kernel_align = r.align_s - 16.0 * machine.align_batch_overhead_s;
        assert!(
            (kernel_align / 100.0 - 1.0).abs() < 0.1,
            "kernel align_s = {kernel_align} (target 100)"
        );
        let ratio = r.align_s / r.sparse_s;
        assert!(
            (1.2..3.0).contains(&ratio),
            "align:sparse = {ratio} (target 2)"
        );
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(30.0), "30.0s");
        assert_eq!(fmt_secs(120.0), "2.0m");
        assert_eq!(fmt_secs(7200.0), "2.00h");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(7), "7");
    }
}
