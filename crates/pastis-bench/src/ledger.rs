//! The perf-regression ledger: schema-versioned benchmark timings,
//! committed to the repo and diffed by CI.
//!
//! Every PR that touches a hot path should answer "did anything get
//! slower?" with data, not vibes. The `bench_ledger` binary measures a
//! fixed set of kernel and end-to-end workloads and writes them as a
//! [`BenchLedger`] JSON document; `bench_compare` diffs a freshly
//! measured ledger against the committed baseline and exits non-zero
//! when any entry regressed past the threshold (or silently vanished —
//! a renamed benchmark must rename its baseline entry too).
//!
//! Entries record best-of-reps wall seconds (the minimum is the
//! standard noise-robust choice for micro-benchmarks) plus free-form
//! numeric metadata (dataset size, reps, throughput) for human reading.
//! Comparison only ever looks at `seconds`.

use std::collections::BTreeMap;

use pastis_trace::json::{parse, JsonValue, JsonWriter};

/// Version tag on the ledger document. Bump on breaking layout changes;
/// `from_json` rejects versions it does not understand.
pub const BENCH_LEDGER_SCHEMA_VERSION: u32 = 1;

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable entry id, e.g. `kernel/spgemm_hash` or `e2e/search_serial`.
    pub name: String,
    /// Entry class: `kernel` (one hot loop) or `e2e` (a whole pipeline).
    pub kind: String,
    /// Best-of-reps wall seconds — the compared quantity.
    pub seconds: f64,
    /// Free-form numeric context (dataset size, reps, throughput...).
    pub meta: BTreeMap<String, f64>,
}

/// A schema-versioned set of benchmark measurements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchLedger {
    /// Measurements, in emission order.
    pub entries: Vec<BenchEntry>,
}

impl BenchLedger {
    /// An empty ledger.
    pub fn new() -> BenchLedger {
        BenchLedger::default()
    }

    /// Append a measurement.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        kind: impl Into<String>,
        seconds: f64,
        meta: &[(&str, f64)],
    ) {
        self.entries.push(BenchEntry {
            name: name.into(),
            kind: kind.into(),
            seconds,
            meta: meta.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        });
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Serialize to the committed JSON form (deterministic key order).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("schema", BENCH_LEDGER_SCHEMA_VERSION as u64)
            .key("entries")
            .begin_array();
        for e in &self.entries {
            w.begin_object()
                .field_str("name", &e.name)
                .field_str("kind", &e.kind)
                .field_f64("seconds", e.seconds)
                .key("meta")
                .begin_object();
            for (k, v) in &e.meta {
                w.field_f64(k, *v);
            }
            w.end_object().end_object();
        }
        w.end_array().end_object();
        w.finish()
    }

    /// Parse a ledger document, validating the schema version and entry
    /// structure (names must be unique and seconds finite/non-negative).
    pub fn from_json(text: &str) -> Result<BenchLedger, String> {
        let v = parse(text)?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or("ledger missing schema version")?;
        if schema != BENCH_LEDGER_SCHEMA_VERSION as u64 {
            return Err(format!(
                "unsupported ledger schema {schema} (supported: {BENCH_LEDGER_SCHEMA_VERSION})"
            ));
        }
        let entries = v
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or("ledger missing entries array")?;
        let mut out = BenchLedger::new();
        for e in entries {
            let name = e
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("entry missing name")?;
            if out.get(name).is_some() {
                return Err(format!("duplicate ledger entry '{name}'"));
            }
            let kind = e
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("entry '{name}' missing kind"))?;
            let seconds = e
                .get("seconds")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("entry '{name}' missing seconds"))?;
            if !seconds.is_finite() || seconds < 0.0 {
                return Err(format!("entry '{name}' has invalid seconds {seconds}"));
            }
            let mut meta = BTreeMap::new();
            if let Some(JsonValue::Object(m)) = e.get("meta") {
                for (k, mv) in m {
                    meta.insert(
                        k.clone(),
                        mv.as_f64()
                            .ok_or_else(|| format!("entry '{name}' meta '{k}' not numeric"))?,
                    );
                }
            }
            out.entries.push(BenchEntry {
                name: name.to_owned(),
                kind: kind.to_owned(),
                seconds,
                meta,
            });
        }
        Ok(out)
    }
}

/// One entry whose timing moved past the comparison threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Entry name.
    pub name: String,
    /// Baseline seconds.
    pub old_s: f64,
    /// Current seconds.
    pub new_s: f64,
    /// `new_s / old_s` (∞ when the baseline is 0).
    pub ratio: f64,
}

/// The outcome of diffing a current ledger against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerDiff {
    /// Entries slower than `threshold ×` baseline — the CI failures.
    pub regressions: Vec<Regression>,
    /// Entries faster than `baseline / threshold` (informational).
    pub improvements: Vec<Regression>,
    /// Baseline entries absent from the current ledger — also failures
    /// (a removed benchmark must remove its baseline entry).
    pub missing: Vec<String>,
    /// Current entries absent from the baseline (informational; commit
    /// the refreshed ledger to start tracking them).
    pub added: Vec<String>,
}

impl LedgerDiff {
    /// `true` when CI should pass: nothing regressed, nothing vanished.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Diff `current` against `baseline`. An entry regresses when
/// `new > old × (1 + threshold_pct/100)`; improvements are the
/// symmetric opposite. `threshold_pct` must be non-negative.
pub fn compare(baseline: &BenchLedger, current: &BenchLedger, threshold_pct: f64) -> LedgerDiff {
    assert!(threshold_pct >= 0.0, "threshold must be non-negative");
    let factor = 1.0 + threshold_pct / 100.0;
    let mut diff = LedgerDiff::default();
    for old in &baseline.entries {
        let Some(new) = current.get(&old.name) else {
            diff.missing.push(old.name.clone());
            continue;
        };
        let ratio = if old.seconds > 0.0 {
            new.seconds / old.seconds
        } else if new.seconds > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let r = Regression {
            name: old.name.clone(),
            old_s: old.seconds,
            new_s: new.seconds,
            ratio,
        };
        if ratio > factor {
            diff.regressions.push(r);
        } else if ratio < 1.0 / factor {
            diff.improvements.push(r);
        }
    }
    for new in &current.entries {
        if baseline.get(&new.name).is_none() {
            diff.added.push(new.name.clone());
        }
    }
    diff
}

/// Render a diff as the text block `bench_compare` prints.
pub fn render_diff(diff: &LedgerDiff, threshold_pct: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in &diff.regressions {
        let _ = writeln!(
            out,
            "REGRESSION  {:<28} {:.4}s -> {:.4}s ({:.2}x, threshold {:.0}%)",
            r.name, r.old_s, r.new_s, r.ratio, threshold_pct
        );
    }
    for name in &diff.missing {
        let _ = writeln!(
            out,
            "MISSING     {name} (present in baseline, not measured)"
        );
    }
    for r in &diff.improvements {
        let _ = writeln!(
            out,
            "improved    {:<28} {:.4}s -> {:.4}s ({:.2}x)",
            r.name, r.old_s, r.new_s, r.ratio
        );
    }
    for name in &diff.added {
        let _ = writeln!(out, "added       {name} (not in baseline)");
    }
    if out.is_empty() {
        out.push_str("no entries moved past the threshold\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(pairs: &[(&str, f64)]) -> BenchLedger {
        let mut l = BenchLedger::new();
        for (name, s) in pairs {
            l.push(*name, "kernel", *s, &[("reps", 3.0)]);
        }
        l
    }

    #[test]
    fn round_trips_through_json() {
        let mut l = BenchLedger::new();
        l.push("kernel/spgemm_hash", "kernel", 0.125, &[("n", 600.0)]);
        l.push("e2e/search_serial", "e2e", 1.5, &[]);
        let back = BenchLedger::from_json(&l.to_json()).unwrap();
        assert_eq!(l, back);
        // Serialization is deterministic.
        assert_eq!(l.to_json(), back.to_json());
    }

    #[test]
    fn injected_2x_regression_is_caught() {
        let base = ledger(&[("a", 1.0), ("b", 0.5)]);
        let mut cur = ledger(&[("a", 1.0)]);
        cur.push("b", "kernel", 1.0, &[]); // 2× slower
        let diff = compare(&base, &cur, 10.0);
        assert!(!diff.is_clean());
        assert_eq!(diff.regressions.len(), 1);
        assert_eq!(diff.regressions[0].name, "b");
        assert!((diff.regressions[0].ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_tolerates_noise() {
        let base = ledger(&[("a", 1.0)]);
        let cur = ledger(&[("a", 1.09)]); // +9% < 10% threshold
        assert!(compare(&base, &cur, 10.0).is_clean());
        let cur = ledger(&[("a", 1.11)]); // +11% > 10%
        assert!(!compare(&base, &cur, 10.0).is_clean());
    }

    #[test]
    fn missing_entries_fail_added_entries_inform() {
        let base = ledger(&[("a", 1.0), ("gone", 1.0)]);
        let cur = ledger(&[("a", 1.0), ("new", 1.0)]);
        let diff = compare(&base, &cur, 10.0);
        assert_eq!(diff.missing, vec!["gone"]);
        assert_eq!(diff.added, vec!["new"]);
        assert!(!diff.is_clean(), "a vanished benchmark must fail CI");
    }

    #[test]
    fn improvements_are_reported_not_failed() {
        let base = ledger(&[("a", 1.0)]);
        let cur = ledger(&[("a", 0.5)]);
        let diff = compare(&base, &cur, 10.0);
        assert!(diff.is_clean());
        assert_eq!(diff.improvements.len(), 1);
        let text = render_diff(&diff, 10.0);
        assert!(text.contains("improved"));
    }

    #[test]
    fn bad_documents_are_rejected() {
        assert!(BenchLedger::from_json("{}").is_err());
        assert!(BenchLedger::from_json(r#"{"schema":99,"entries":[]}"#).is_err());
        let dup = r#"{"schema":1,"entries":[
            {"name":"a","kind":"kernel","seconds":1.0,"meta":{}},
            {"name":"a","kind":"kernel","seconds":2.0,"meta":{}}]}"#;
        assert!(BenchLedger::from_json(dup).is_err());
        let neg =
            r#"{"schema":1,"entries":[{"name":"a","kind":"kernel","seconds":-1.0,"meta":{}}]}"#;
        assert!(BenchLedger::from_json(neg).is_err());
    }
}
