//! Table II — "Sequence communication wait (cwait) and IO time percentage
//! in overall runtime" over the strong-scaling sweep.
//!
//! Paper values: cwait 0.14→0.27% (index) and 0.14→0.31% (triangular) as
//! nodes grow 49→400; IO 0.68→1.98% and 1.37→2.77%. The sum stays below
//! 3%: "PASTIS only uses IO at the beginning and at the end". The *rise*
//! with node count is the shared-filesystem saturation plus the shrinking
//! denominator (compute scales, IO doesn't).
//!
//! Reproduction: same sweep as fig8_strong_scaling. The cwait and IO
//! seconds are read back from the *telemetry* of a traced virtual-time
//! replay ([`pastis_core::simulate_traced`]) — the table is generated from
//! the same recorder/exporter path a real run's `--metrics-json` uses, not
//! from the model's internal fields (which the telemetry must, and does,
//! agree with).

use pastis_bench::*;
use pastis_core::{simulate_traced, LoadBalance};
use pastis_trace::{ClusterReport, Component, TraceSession};

fn main() {
    let ds = bench_dataset(5000);
    let nodes_list = [49usize, 81, 100, 144, 196, 289, 400];
    let reference = bench_params().with_blocking(8, 8);
    let machine = calibrated_summit(&ds.store, &reference, nodes_list[0], 2000.0, 2.0);

    println!(
        "Table II: cwait%% and IO%% of overall runtime ({} seqs, 8x8 blocking)",
        ds.store.len()
    );
    rule(66);
    println!(
        "{:>6} | {:>10} {:>8} | {:>10} {:>8}",
        "", "index-based", "", "triangularity", ""
    );
    println!(
        "{:>6} | {:>10} {:>8} | {:>10} {:>8}",
        "nodes", "cwait%", "IO%", "cwait%", "IO%"
    );
    rule(66);
    for &nodes in &nodes_list {
        let mut cols = Vec::new();
        for scheme in [LoadBalance::IndexBased, LoadBalance::Triangular] {
            let params = reference.clone().with_load_balance(scheme);
            let session = TraceSession::virtual_time();
            // The production schedule double-buffers the SUMMA broadcasts
            // (`--overlap`), hiding most of the already-small sequence
            // wait behind local SpGEMM compute.
            let mut cfg = scale_config(&machine, nodes);
            cfg.contention.comm_overlap_efficiency = 0.9;
            let r = simulate_traced(&ds.store, &params, &cfg, &session);
            // Read the component seconds back out of the telemetry (the
            // slowest rank's, as a wall-clock share) through the cluster
            // aggregator — the same merge path `pastis analyze` uses on a
            // real run's `--metrics-json` files.
            let cluster = ClusterReport::from_session(&session);
            let cwait = cluster
                .component(Component::CommWait)
                .map_or(0.0, |s| s.max);
            let io = cluster.component(Component::Io).map_or(0.0, |s| s.max);
            let total = r.total_with_pb;
            cols.push((100.0 * cwait / total, 100.0 * io / total));
        }
        println!(
            "{:>6} | {:>10.2} {:>8.2} | {:>10.2} {:>8.2}",
            nodes, cols[0].0, cols[0].1, cols[1].0, cols[1].1
        );
    }
    rule(66);
    println!(
        "paper: cwait 0.14-0.31%, IO 0.68-2.77%, both rising with node count;\n\
         combined always < 3% of the runtime. Replayed with the overlapped\n\
         broadcast schedule (comm_overlap_efficiency = 0.9), which hides most\n\
         of the remaining cwait behind local SpGEMM compute — hence the\n\
         sub-paper percentages; the rise with node count survives overlap."
    );
}
