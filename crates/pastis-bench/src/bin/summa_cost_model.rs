//! Section VI-A — the Blocked 2D Sparse SUMMA communication-cost analysis.
//!
//! The paper derives:
//!   plain:   2α√p·log√p + 2βs√p·log√p
//!   blocked: 2α(br·bc)√p·log√p + βs(br+bc)√p·log√p
//!
//! This binary (a) prints the analytic cost surface for Summit's α/β over
//! the paper's configuration ranges and (b) cross-checks the formula
//! against the *counted* broadcast traffic of the real threaded SUMMA
//! implementation (message counts from the communicator's statistics).

use pastis_bench::*;
use pastis_comm::{run_threaded, Communicator, MachineModel, ProcessGrid};
use pastis_sparse::{BlockedSumma, PlusTimes, SpGemmPool, Triples};

fn main() {
    let net = MachineModel::summit().net;
    println!("analytic Blocked 2D Sparse SUMMA communication cost (Summit α/β)");
    println!("sub-matrix payload s = 100 MB\n");
    rule(72);
    println!(
        "{:>6} | {:>10} {:>10} {:>10} {:>10} {:>10}",
        "p", "1x1", "5x2", "8x8", "20x20", "blocked/plain(8x8)"
    );
    rule(72);
    let s_bytes = 100.0e6;
    for p in [49usize, 100, 400, 1024, 3364] {
        let plain = net.summa_cost(p, s_bytes);
        let c52 = net.blocked_summa_cost(p, s_bytes, 5, 2);
        let c88 = net.blocked_summa_cost(p, s_bytes, 8, 8);
        let c2020 = net.blocked_summa_cost(p, s_bytes, 20, 20);
        println!(
            "{:>6} | {:>9.2}s {:>9.2}s {:>9.2}s {:>9.2}s {:>10.1}",
            p,
            plain,
            c52,
            c88,
            c2020,
            c88 / plain
        );
    }
    rule(72);
    println!(
        "the blocked variant multiplies the latency term by br·bc and the bandwidth\n\
         term by (br+bc)/2 — the price paid for the bounded memory footprint.\n"
    );

    // --- Cross-check against the real threaded implementation: count the
    // broadcasts issued by a Blocked SUMMA on p = 4 ranks and compare with
    // the formula's message-count prediction.
    // The counts are taken from the *overlapped* (double-buffered) path —
    // prefetching moves when a broadcast is posted, never how many are
    // posted, so the α-term is schedule-invariant.
    println!("cross-check vs the threaded implementation (p = 4, overlapped, counted broadcasts):");
    rule(64);
    println!(
        "{:>7} | {:>16} {:>16} {:>8}",
        "br x bc", "bcasts counted", "2·br·bc·√p", "match"
    );
    rule(64);
    for (br, bc) in [(1usize, 1usize), (2, 2), (3, 2), (4, 4)] {
        let counted = run_threaded(4, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            let t = if c.rank() == 0 {
                let mut t = Triples::new(24, 24);
                for i in 0..24u32 {
                    t.push(i, (i * 7 + 3) % 24, 1.0f64);
                    t.push(i, (i * 5 + 1) % 24, 2.0);
                }
                t
            } else {
                Triples::new(24, 24)
            };
            let t2 = t.clone();
            let bs = BlockedSumma::from_triples(&grid, t, t2, br, bc, |_, _| {}, |_, _| {});
            let before = grid.row_comm().stats().broadcasts + grid.col_comm().stats().broadcasts;
            let pool = SpGemmPool::serial();
            for r in 0..br {
                for cc in 0..bc {
                    let _ = bs.multiply_block_overlapped(
                        &grid,
                        &PlusTimes::<f64>::new(),
                        r,
                        cc,
                        &pool,
                        true,
                    );
                }
            }
            let after = grid.row_comm().stats().broadcasts + grid.col_comm().stats().broadcasts;
            after - before
        });
        // Every rank participates in 2·√p broadcasts per output block
        // (√p stages × two input sides), for br·bc blocks.
        let q = 2; // √4
        let predicted = (2 * q * br * bc) as u64;
        let ok = counted.iter().all(|&c| c == predicted);
        println!(
            "{:>3} x {:<3} | {:>16} {:>16} {:>8}",
            br,
            bc,
            counted[0],
            predicted,
            if ok { "yes" } else { "NO" }
        );
        assert!(ok, "formula/implementation mismatch");
    }
    rule(64);
    println!("message counts match the α-term of the Section VI-A analysis exactly.");
}
