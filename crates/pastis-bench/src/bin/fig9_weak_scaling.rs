//! Figure 9 + Table III — weak scaling.
//!
//! Paper setup: node counts {25, 49, 100, 196, 400, 784} with sequence
//! counts {20M, 28M, 40M, 56M, 80M, 112M} — sequences grow as √x when
//! nodes grow as x, because alignments (and SpGEMM flops) grow
//! quadratically with the sequence count. Index-based balancing.
//! Published results: alignment counts 13.5B → 452.4B (Table III);
//! alignment scales best; every component except IO scales well; overall
//! weak-scaling efficiency stays above 80%.
//!
//! Reproduction: 10⁴× scale-down of the sequence counts, same node
//! counts, same √x rule.

use pastis_bench::*;
use pastis_core::{simulate, LoadBalance};
use pastis_seqio::{SyntheticConfig, SyntheticDataset};

/// Weak-scaling dataset: like [`bench_dataset`] but with homolog density
/// growing linearly in `n`, as in real metagenome collections — Table III
/// shows alignments growing quadratically (13.5B → 452.4B for 5.6× the
/// sequences), i.e. pairs-per-sequence grows ∝ n. A fixed family size
/// would give only linear pair growth and fake super-linear weak scaling.
fn weak_dataset(n: usize, n0: usize) -> SyntheticDataset {
    SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: n,
        mean_len: 180.0,
        len_sigma: 0.4,
        mean_family_size: 8.0 * n as f64 / n0 as f64,
        singleton_fraction: 0.3,
        divergence: 0.10,
        indel_prob: 0.015,
        seed: 0x5C22,
        ..SyntheticConfig::default()
    })
}

fn main() {
    let sweep: [(usize, usize); 6] = [
        (25, 2000),
        (49, 2800),
        (100, 4000),
        (196, 5600),
        (400, 8000),
        (784, 11200),
    ];
    let n0 = sweep[0].1;
    let reference = bench_params()
        .with_blocking(8, 8)
        .with_load_balance(LoadBalance::IndexBased);
    // Calibrate on the first sweep point.
    let ds0 = weak_dataset(n0, n0);
    let machine = calibrated_summit(&ds0.store, &reference, sweep[0].0, 2000.0, 2.0);

    println!("Figure 9 / Table III: weak scaling (index-based, 8x8 blocking)");
    rule(110);
    println!(
        "{:>6} {:>7} | {:>13} | {:>10} {:>7} | {:>10} {:>10} {:>9} | {:>8}",
        "nodes",
        "#seqs",
        "#aligns",
        "total(s)",
        "eff%",
        "align(s)",
        "sparse(s)",
        "io(s)",
        "cwait(s)"
    );
    rule(110);
    let mut base_total: Option<f64> = None;
    for &(nodes, nseqs) in &sweep {
        let ds = weak_dataset(nseqs, n0);
        let r = simulate(&ds.store, &reference, &scale_config(&machine, nodes));
        let total = r.total_with_pb;
        let t0 = *base_total.get_or_insert(total);
        // Weak-scaling efficiency: constant time is ideal (work/node is
        // constant by construction of the sweep).
        let eff = 100.0 * t0 / total;
        println!(
            "{:>6} {:>7} | {:>13} | {:>10.1} {:>7.1} | {:>10.1} {:>10.1} {:>9.2} | {:>8.2}",
            nodes,
            nseqs,
            fmt_count(r.aligned_pairs),
            total,
            eff,
            r.align_s,
            r.sparse_s,
            r.io_read_s + r.io_write_s,
            r.cwait_s
        );
    }
    rule(110);
    println!(
        "paper (10⁴× larger): #aligns 13.5B → 452.4B over the same node counts; alignment\n\
         scales best; IO erratic but negligible; overall efficiency stays above 80%."
    );
    println!(
        "\nnote: the √x sequence rule assumes alignments grow quadratically; Table III's\n\
         measured growth (13.5B at 25 nodes → 452.4B at 784 nodes = 33.5× for 5.6× the\n\
         sequences) confirms it (5.6² = 31.4)."
    );
}
