//! Table IV — the production run: 405M proteins on 3364 Summit nodes.
//!
//! Paper: 58×58 process grid, 20×20 blocking (400 blocks), triangularity-
//! based balancing, pre-blocking on, k=6, ANI 0.30, coverage 0.70, common
//! k-mer threshold 2. Results: 95.9T discovered candidates, 8.6T performed
//! alignments (8.9%), 1.05T similar pairs (12.3%), 3.44 h, 690.6M
//! alignments/s, 176.3 TCUPs, align 2.62 h / SpGEMM 2.06 h / sparse (all)
//! 2.22 h / IO 12 min / cwait 0.2 min; imbalance 7.1% (align), 3.1%
//! (sparse).
//!
//! Reproduction: 20,000 sequences (≈2×10⁴× scale-down) replayed on 3364
//! virtual nodes with the same grid, blocking, scheme and thresholds; the
//! funnel fractions (aligned/discovered, similar/aligned) are *measured*
//! on the real synthetic data.

use pastis_bench::*;
use pastis_core::{simulate, LoadBalance};

fn row(label: &str, ours: String, paper: &str) {
    println!("{label:<34} {ours:>24} {paper:>24}");
}

fn main() {
    let ds = bench_dataset(20_000);
    let nodes = 3364; // 58 x 58
    let params = bench_params()
        .with_blocking(20, 20)
        .with_load_balance(LoadBalance::Triangular)
        .with_pre_blocking(true);
    let machine = calibrated_summit_anchored(
        &ds.store,
        &bench_params()
            .with_blocking(20, 20)
            .with_load_balance(LoadBalance::Triangular),
        nodes,
        // Align target: the paper's 2.62 h is the *contended* component
        // (pre-blocking on, ×1.13); the uncontended target is 2.32 h.
        2.62 / 1.13 * 3600.0,
        // Sparse(all) target 2.22 h is also contended (×1.60 at 400
        // blocks): uncontended ≈ 1.39 h, giving ratio 2.32 : 1.39.
        2.32 / 1.39,
        None,
    );
    let r = simulate(&ds.store, &params, &scale_config(&machine, nodes));

    println!("Table IV analog: production-scale replay");
    rule(84);
    row("", "reproduction".into(), "paper");
    rule(84);
    row("system", "virtual Summit".into(), "Summit at OLCF");
    row("nodes", nodes.to_string(), "3364");
    row("process grid", "58 x 58".into(), "58 x 58");
    row(
        "input sequences",
        fmt_count(ds.store.len() as u64),
        "404,999,880",
    );
    row("blocking factor", "20 x 20".into(), "20 x 20");
    row("load balancing", "triangularity".into(), "triangularity");
    row("pre-blocking", "enabled".into(), "enabled");
    rule(84);
    row(
        "discovered candidates",
        fmt_count(r.candidates),
        "95,855,955,765,012",
    );
    row(
        "performed alignments",
        format!(
            "{} ({:.1}%)",
            fmt_count(r.aligned_pairs),
            100.0 * r.aligned_pairs as f64 / r.candidates as f64
        ),
        "8.55T (8.9%)",
    );
    row(
        "similar pairs",
        format!(
            "{} ({:.1}%)",
            fmt_count(r.similar_pairs),
            100.0 * r.similar_pairs as f64 / r.aligned_pairs.max(1) as f64
        ),
        "1.05T (12.3%)",
    );
    let n = ds.store.len() as f64;
    row("search space", format!("{:.1e}", n * n), "1.6e17");
    row(
        "alignment space",
        format!("{:.1e}", r.aligned_pairs as f64 / (n * n)),
        "5.2e-5",
    );
    rule(84);
    row("runtime", fmt_secs(r.total_with_pb), "3.44 h");
    row(
        "alignments per second",
        format!("{:.3e}", r.alignments_per_sec()),
        "6.906e8",
    );
    row(
        "cell updates per second",
        format!("{:.3e}", r.cups()),
        "1.763e14 (peak)",
    );
    rule(84);
    row("align", fmt_secs(r.align_pb_s), "2.62 h");
    row("sparse (all)", fmt_secs(r.sparse_pb_s), "2.22 h");
    row("IO", fmt_secs(r.io_read_s + r.io_write_s), "12.0 min");
    row("communication wait", fmt_secs(r.cwait_s), "0.2 min");
    rule(84);
    row(
        "imbalance: alignment",
        format!("{:.1}%", r.align_time_imbalance.imbalance_pct()),
        "7.1%",
    );
    row(
        "imbalance: sparse",
        format!("{:.1}%", r.sparse_time_imbalance.imbalance_pct()),
        "3.1%",
    );
    rule(84);
    println!(
        "\nabsolute counters are ~2x10⁴ x smaller by construction; the funnel fractions\n\
         (aligned/discovered, similar/aligned), the component breakdown and the imbalance\n\
         percentages are the reproduction targets."
    );
}
