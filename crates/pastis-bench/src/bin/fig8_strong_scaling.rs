//! Figure 8 — strong scaling on {49, 81, 100, 144, 196, 289, 400} nodes.
//!
//! Paper setup: 50M sequences, 8×8 blocking, pre-blocking enabled, both
//! load-balancing schemes. Published results to reproduce in shape:
//!   * overall parallel efficiency at 400 nodes: 66% (index) / 76%
//!     (triangular — wins by avoiding sparse work);
//!   * align component scales best: 78% / 87% efficiency;
//!   * sparse component ≈ 60% for both schemes;
//!   * the full overlap matrix holds 1.99T elements (index) vs 1.12T
//!     (triangular) — the 56% sparse-work saving.
//!
//! Reproduction: 5,000 sequences (10⁴× scale-down of 50M), calibrated
//! miniature Summit, same node counts, same blocking.

use pastis_bench::*;
use pastis_core::{simulate, LoadBalance};

fn main() {
    let ds = bench_dataset(5000);
    let nodes_list = [49usize, 81, 100, 144, 196, 289, 400];
    let base_nodes = nodes_list[0];
    let reference = bench_params().with_blocking(8, 8);
    let machine = calibrated_summit(&ds.store, &reference, base_nodes, 2000.0, 2.0);

    println!(
        "Figure 8: strong scaling, {} seqs, 8x8 blocking, pre-blocking on",
        ds.store.len()
    );

    for scheme in [LoadBalance::IndexBased, LoadBalance::Triangular] {
        let name = match scheme {
            LoadBalance::IndexBased => "index-based",
            LoadBalance::Triangular => "triangularity-based",
        };
        println!("\n[{name}]");
        rule(108);
        println!(
            "{:>6} | {:>10} {:>7} | {:>10} {:>7} | {:>10} {:>7} | {:>9} {:>9} | {:>12}",
            "nodes",
            "total(s)",
            "eff%",
            "align(s)",
            "eff%",
            "sparse(s)",
            "eff%",
            "io(s)",
            "cwait(s)",
            "candidates"
        );
        rule(108);
        let mut base: Option<(f64, f64, f64)> = None;
        for &nodes in &nodes_list {
            let params = reference.clone().with_load_balance(scheme);
            let r = simulate(&ds.store, &params, &scale_config(&machine, nodes));
            let total = r.total_with_pb;
            let (t0, a0, s0) = *base.get_or_insert((total, r.align_s, r.sparse_s));
            let eff = |t0: f64, t: f64| 100.0 * (t0 * base_nodes as f64) / (t * nodes as f64);
            println!(
                "{:>6} | {:>10.1} {:>7.1} | {:>10.1} {:>7.1} | {:>10.1} {:>7.1} | {:>9.2} {:>9.3} | {:>12}",
                nodes,
                total,
                eff(t0, total),
                r.align_s,
                eff(a0, r.align_s),
                r.sparse_s,
                eff(s0, r.sparse_s),
                r.io_read_s + r.io_write_s,
                r.cwait_s,
                fmt_count(r.candidates)
            );
        }
        rule(108);
    }

    // The overlap-matrix size contrast of the paper's setup paragraph.
    let idx = simulate(
        &ds.store,
        &reference.clone().with_load_balance(LoadBalance::IndexBased),
        &scale_config(&machine, base_nodes),
    );
    let tri = simulate(
        &ds.store,
        &reference.clone().with_load_balance(LoadBalance::Triangular),
        &scale_config(&machine, base_nodes),
    );
    println!(
        "\noverlap matrix elements computed: {} (index) vs {} (triangular) — ratio {:.2} \
         (paper: 1.99T vs 1.12T, ratio 1.78)",
        fmt_count(idx.candidates),
        fmt_count(tri.candidates),
        idx.candidates as f64 / tri.candidates as f64
    );
    println!(
        "aligned pairs (identical for both schemes): {} (paper: 86.5B)",
        fmt_count(idx.aligned_pairs)
    );
    println!(
        "\npaper at 400 nodes: overall efficiency 66% (index) / 76% (tri); align 78% / 87%;\n\
         sparse ≈60% for both."
    );
}
