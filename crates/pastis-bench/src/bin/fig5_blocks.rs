//! Figure 5 — "The effect of increasing number of blocks on the runtime of
//! sparse and alignment components."
//!
//! Paper setup: 20M sequences, 100 Summit nodes, block counts swept from 1
//! upward. Findings to reproduce in *shape*: relative to the unblocked
//! search, alignment time grows ~10–15%, multiplication time ~40–45%, and
//! total runtime ~30% at high block counts; the unblocked search cannot
//! run on fewer nodes (memory), which blocking fixes.
//!
//! Reproduction: 12,000 sequences, 25 virtual nodes (scaled down from
//! 100 so each rank still holds statistically meaningful per-block pair
//! batches — see EXPERIMENTS.md), calibrated miniature-Summit machine with
//! the stripe-handling rate anchored to the figure's reported 1.42×
//! multiplication growth at 50 blocks; every other point is predicted.
//! Index-based balancing (the scheme that computes every block, matching
//! the figure's "multiplication" series), pre-blocking off so components
//! are separable.

use pastis_bench::*;
use pastis_core::{blocking_for_budget, simulate, LoadBalance};

fn main() {
    let ds = bench_dataset(12_000);
    let params_ref = bench_params()
        .with_blocking(1, 1)
        .with_load_balance(LoadBalance::IndexBased);
    let nodes = 25;
    let machine =
        calibrated_summit_anchored(&ds.store, &params_ref, nodes, 600.0, 2.0, Some((50, 1.42)));

    println!("Figure 5: component runtime vs number of blocks");
    println!(
        "dataset: {} seqs ({} residues) on {} virtual nodes, machine {}",
        ds.store.len(),
        ds.store.total_residues(),
        nodes,
        machine.name
    );
    rule(86);
    println!(
        "{:>7} {:>9} | {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8}",
        "blocks", "br x bc", "align(s)", "sparse(s)", "total(s)", "align x", "mult x", "total x"
    );
    rule(86);

    let mut base: Option<(f64, f64, f64)> = None;
    // Peak memory proxy: the largest per-rank candidate block.
    let mut peaks: Vec<(usize, u64)> = Vec::new();
    for blocks in [1usize, 2, 5, 10, 20, 30, 40, 50] {
        let (br, bc) = factor_blocks(blocks);
        let params = bench_params()
            .with_blocking(br, bc)
            .with_load_balance(LoadBalance::IndexBased);
        let r = simulate(&ds.store, &params, &scale_config(&machine, nodes));
        let total = r.total_without_pb;
        let (a0, s0, t0) = *base.get_or_insert((r.align_s, r.sparse_s, total));
        println!(
            "{:>7} {:>4} x {:<4} | {:>10.1} {:>10.1} {:>10.1} | {:>8.2} {:>8.2} {:>8.2}",
            blocks,
            br,
            bc,
            r.align_s,
            r.sparse_s,
            total,
            r.align_s / a0,
            r.sparse_s / s0,
            total / t0
        );
        // Memory bound: peak candidates in flight shrinks ~1/blocks.
        peaks.push((blocks, r.candidates / (br * bc) as u64));
    }
    rule(86);
    println!(
        "paper (20M seqs / 100 nodes): align +10-15%, multiplication +40-45%, total ~+30%\n\
         at high block counts; 1-block search infeasible on fewer nodes (memory)."
    );
    println!("\npeak in-flight candidates per block (the memory the blocking bounds):");
    for (b, peak) in peaks {
        println!("  {:>3} blocks: ~{}", b, fmt_count(peak));
    }

    // The sweep in reverse: given a per-rank memory budget, how many
    // blocks does the cost model choose, and what does the extra blocking
    // cost in runtime? This is the planning face of the runtime
    // `--mem-budget` accountant: the model picks a blocking that avoids
    // spills entirely, where the accountant spills to survive a blocking
    // that does not fit.
    let unblocked = simulate(&ds.store, &params_ref, &scale_config(&machine, nodes));
    let peak = unblocked.memory.total_bytes();
    let floor = unblocked.memory.inputs_bytes + unblocked.memory.sequences_bytes;
    println!("\nblocks chosen to fit a per-rank budget (model-side --mem-budget):");
    println!(
        "unblocked peak {:.2} MB, blocking-invariant floor {:.2} MB",
        peak / 1e6,
        floor / 1e6
    );
    rule(66);
    println!(
        "{:>12} | {:>9} | {:>12} | {:>10} | {:>8}",
        "budget", "br x bc", "peak fits", "total(s)", "total x"
    );
    rule(66);
    for frac in [1.0, 0.8, 0.6, 0.45, 0.35] {
        let budget = peak * frac;
        match blocking_for_budget(
            &ds.store,
            &params_ref,
            &scale_config(&machine, nodes),
            budget,
            64,
        ) {
            Some((br, bc, r)) => println!(
                "{:>9.2} MB | {:>4} x {:<4} | {:>9.2} MB | {:>10.1} | {:>8.2}",
                budget / 1e6,
                br,
                bc,
                r.memory.total_bytes() / 1e6,
                r.total_without_pb,
                r.total_without_pb / unblocked.total_without_pb
            ),
            None => println!(
                "{:>9.2} MB | {:>9} | {:>12} | {:>10} | {:>8}",
                budget / 1e6,
                "-",
                "below floor",
                "-",
                "-"
            ),
        }
    }
    rule(66);
    println!(
        "the model trades ~{:.0}% runtime for a peak bounded at 35% of the unblocked\n\
         need — Figure 5's \"could not be performed on fewer nodes\" note, inverted.",
        (blocking_for_budget(
            &ds.store,
            &params_ref,
            &scale_config(&machine, nodes),
            peak * 0.35,
            64
        )
        .map(|(_, _, r)| r.total_without_pb / unblocked.total_without_pb)
        .unwrap_or(1.0)
            - 1.0)
            * 100.0
    );
}
