//! Emit the perf-regression ledger (`BENCH_pr10.json`).
//!
//! Measures a fixed set of kernel and end-to-end workloads — the hot
//! paths every PR is most likely to disturb — and writes them as a
//! schema-versioned [`BenchLedger`] document. CI re-runs this binary and
//! diffs the fresh ledger against the committed baseline with
//! `bench_compare`; refresh the committed file whenever a deliberate
//! perf change moves an entry.
//!
//! All timings are best-of-`reps` wall seconds on deterministic
//! synthetic datasets, so entry-to-entry ratios are stable even though
//! absolute numbers vary by host.
//!
//! Usage: `bench_ledger [n_seqs] [reps] [out.json]`
//! (defaults 800, 3, `results/BENCH_pr10.json`).

use std::collections::HashMap;
use std::time::Instant;

use pastis_align::matrices::Blosum62;
use pastis_align::sw::{sw_score_only, GapPenalties};
use pastis_bench::ledger::BenchLedger;
use pastis_bench::{bench_dataset, bench_params};
use pastis_core::kmer::distinct_kmers;
use pastis_core::pipeline::run_search_serial;
use pastis_seqio::ReducedAlphabet;
use pastis_sparse::{spgemm_hash, spgemm_heap, CsrMatrix, PlusTimes, Triples};

/// splitmix64: deterministic pair sampling without a rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Best-of-`reps` wall seconds of `f`.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    best
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_seqs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(800);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let out_path = args
        .next()
        .unwrap_or_else(|| "results/BENCH_pr10.json".to_owned());

    let ds = bench_dataset(n_seqs);
    let mut ledger = BenchLedger::new();

    // kernel/kmer_matrix: sequences → sparse k-mer indicator matrix, the
    // paper's production k = 6 (the pipeline's first compute phase).
    let kmer_s = best_of(reps, || {
        pastis_core::kmer_matrix_triples(&ds.store, 0, ds.store.len(), 6, ReducedAlphabet::Full20)
    });
    ledger.push(
        "kernel/kmer_matrix",
        "kernel",
        kmer_s,
        &[("n_seqs", n_seqs as f64), ("reps", reps as f64)],
    );

    // kernel/spgemm_{hash,heap}: C = A·Aᵀ on the same k-mer matrix —
    // exactly what every SUMMA stage multiplies (kernel_spgemm's shape).
    let mut cols: HashMap<u32, u32> = HashMap::new();
    let mut entries: Vec<(u32, u32, f64)> = Vec::new();
    for i in 0..ds.store.len() {
        for (kmer, _pos) in distinct_kmers(ds.store.seq(i), 6, ReducedAlphabet::Full20) {
            let next = cols.len() as u32;
            let c = *cols.entry(kmer).or_insert(next);
            entries.push((i as u32, c, 1.0));
        }
    }
    let a = CsrMatrix::from_triples_combining(
        Triples::from_entries(ds.store.len(), cols.len(), entries),
        |_, _| {},
    );
    let at = a.transpose();
    let sr = PlusTimes::new();
    let (_, stats) = spgemm_hash(&sr, &a, &at);
    let hash_s = best_of(reps, || spgemm_hash(&sr, &a, &at));
    ledger.push(
        "kernel/spgemm_hash",
        "kernel",
        hash_s,
        &[
            ("n_seqs", n_seqs as f64),
            ("nnz", a.nnz() as f64),
            ("products", stats.products as f64),
            ("reps", reps as f64),
        ],
    );
    let heap_s = best_of(reps, || spgemm_heap(&sr, &a, &at));
    ledger.push(
        "kernel/spgemm_heap",
        "kernel",
        heap_s,
        &[
            ("n_seqs", n_seqs as f64),
            ("products", stats.products as f64),
            ("reps", reps as f64),
        ],
    );

    // kernel/align_score: serial score-only Smith-Waterman over a fixed
    // random pair sample (the inner loop of the align phase).
    let n_pairs = 1000;
    let mut state = 0x5C22u64;
    let pairs: Vec<(u32, u32)> = (0..n_pairs)
        .map(|_| {
            (
                (splitmix64(&mut state) % ds.store.len() as u64) as u32,
                (splitmix64(&mut state) % ds.store.len() as u64) as u32,
            )
        })
        .collect();
    let gaps = GapPenalties::pastis_defaults();
    let cells: u64 = pairs
        .iter()
        .map(|&(q, r)| {
            ds.store.seq(q as usize).len() as u64 * ds.store.seq(r as usize).len() as u64
        })
        .sum();
    let align_s = best_of(reps, || {
        pairs
            .iter()
            .map(|&(q, r)| {
                sw_score_only(
                    ds.store.seq(q as usize),
                    ds.store.seq(r as usize),
                    &Blosum62,
                    gaps,
                )
                .0 as i64
            })
            .sum::<i64>()
    });
    ledger.push(
        "kernel/align_score",
        "kernel",
        align_s,
        &[
            ("n_pairs", n_pairs as f64),
            ("cells", cells as f64),
            ("reps", reps as f64),
        ],
    );

    // e2e/search_serial: the whole pipeline (k-mer matrix → SpGEMM →
    // align → output) on a smaller set, single rank.
    let e2e_n = (n_seqs / 2).max(100);
    let e2e_ds = bench_dataset(e2e_n);
    let params = bench_params();
    let e2e_s = best_of(reps, || run_search_serial(&e2e_ds.store, &params).unwrap());
    ledger.push(
        "e2e/search_serial",
        "e2e",
        e2e_s,
        &[("n_seqs", e2e_n as f64), ("reps", reps as f64)],
    );

    // e2e/search_tuned: the pipeline on a 2-thread unified pool with the
    // self-tuning loop closed (`--tune auto`: cost-model seed + telemetry
    // re-splits between stages). The delta against e2e/search_serial
    // bundles the pool and the tuner; the ledger tracks that it stays flat.
    let tuned_params = bench_params()
        .with_blocking(2, 2)
        .with_threads(2)
        .with_tune(pastis_core::TunePolicy::Auto);
    let tuned_s = best_of(reps, || {
        run_search_serial(&e2e_ds.store, &tuned_params).unwrap()
    });
    ledger.push(
        "e2e/search_tuned",
        "e2e",
        tuned_s,
        &[("n_seqs", e2e_n as f64), ("reps", reps as f64)],
    );

    // e2e/search_budgeted: the same pipeline blocked 3x3 under a hard
    // memory budget at 3/4 of its own unconstrained peak, so completed
    // output blocks and index stripes spill through the accountant and
    // stream back at assembly. The delta against e2e/search_serial is
    // the spill overhead the ledger tracks.
    let budgeted_params = bench_params().with_blocking(3, 3);
    let spill = std::env::temp_dir().join(format!("pastis-bench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    let high = run_search_serial(
        &e2e_ds.store,
        &budgeted_params
            .clone()
            .with_mem_budget(1 << 30)
            .with_spill_dir(&spill),
    )
    .expect("loose budget cannot fail")
    .mem_high_water
    .expect("budgeted runs report their high water");
    let budget = high * 3 / 4;
    let budgeted_params = budgeted_params
        .with_mem_budget(budget)
        .with_spill_dir(&spill);
    let budgeted_s = best_of(reps, || {
        let _ = std::fs::remove_dir_all(&spill);
        run_search_serial(&e2e_ds.store, &budgeted_params).unwrap()
    });
    let _ = std::fs::remove_dir_all(&spill);
    ledger.push(
        "e2e/search_budgeted",
        "e2e",
        budgeted_s,
        &[
            ("n_seqs", e2e_n as f64),
            ("budget_bytes", budget as f64),
            ("reps", reps as f64),
        ],
    );

    // e2e/serve: the query-serving path — persisted index opened once,
    // the reference set streamed back as queries through admission
    // batching, cache, stripe loads, SpGEMM, and alignment. The delta
    // against e2e/search_serial is the serving-layer overhead.
    let idx_dir = std::env::temp_dir().join(format!("pastis-bench-idx-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&idx_dir);
    pastis_core::build_index(
        &e2e_ds.store,
        &pastis_core::IndexBuildConfig {
            k: params.k,
            alphabet: params.alphabet,
            substitute_kmers: params.substitute_kmers,
            stripe_cols: 256,
            mem_budget: None,
        },
        &idx_dir,
        &pastis_trace::Recorder::disabled(),
    )
    .expect("index build");
    let serve_cfg = pastis_core::ServeConfig {
        params: params.clone(),
        max_batch: 0, // cost-model sizing, as the CLI default
        max_wait_us: 1_000_000,
        cache_entries: 1024,
    };
    let serve_s = best_of(reps, || {
        let idx = pastis_core::PersistedIndex::open(&idx_dir).expect("open index");
        pastis_core::serve_queries(&idx, &e2e_ds.store, &serve_cfg).unwrap()
    });
    let _ = std::fs::remove_dir_all(&idx_dir);
    ledger.push(
        "e2e/serve",
        "e2e",
        serve_s,
        &[("n_seqs", e2e_n as f64), ("reps", reps as f64)],
    );

    let json = ledger.to_json();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write ledger");
    for e in &ledger.entries {
        println!("{:<22} {:>10.4}s  ({})", e.name, e.seconds, e.kind);
    }
    println!("wrote {} entries to {out_path}", ledger.entries.len());
}
