//! Local SpGEMM kernel gate: hash vs heap vs the row-partitioned parallel
//! kernel, on the paper's own workload shape (`C = A·Aᵀ` over a
//! sequences-by-k-mers matrix).
//!
//! Prints a side-by-side throughput table and **fails (exit 1)** if
//! * any kernel/thread-count combination diverges bit-for-bit from the
//!   serial hash kernel (the determinism contract), or
//! * auto kernel selection is slower than always-hash (the selection
//!   heuristic must never cost anything), or
//! * on a multi-core host, the parallel kernel at ≥2 threads is slower
//!   than the serial hash kernel.
//!
//! On a single-core host (`available_parallelism() == 1`) the wall-clock
//! speedup gate is relaxed to an oversubscription-overhead bound — extra
//! workers cannot beat serial without extra cores — while the bit-identity
//! and auto-vs-hash gates stay hard. The printed table records whichever
//! regime it measured; never quote the 1-core numbers as parallel speedup.
//!
//! Usage: `kernel_spgemm [n_seqs] [reps]` (defaults 1200, 3).

use std::collections::HashMap;
use std::time::Instant;

use pastis_bench::{bench_dataset, fmt_count, rule};
use pastis_core::kmer::distinct_kmers;
use pastis_seqio::ReducedAlphabet;
use pastis_sparse::{
    spgemm_hash, spgemm_heap, CsrMatrix, PlusTimes, SpGemmKind, SpGemmPool, Triples,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_seqs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1200);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    // The overlap workload: A is the sequences-by-k-mers indicator matrix
    // of a synthetic protein set (k = 6, the paper's production k), and
    // the product is A·Aᵀ — exactly what every SUMMA stage multiplies.
    let ds = bench_dataset(n_seqs);
    let mut cols: HashMap<u32, u32> = HashMap::new();
    let mut entries: Vec<(u32, u32, f64)> = Vec::new();
    for i in 0..ds.store.len() {
        for (kmer, _pos) in distinct_kmers(ds.store.seq(i), 6, ReducedAlphabet::Full20) {
            let next = cols.len() as u32;
            let c = *cols.entry(kmer).or_insert(next);
            entries.push((i as u32, c, 1.0));
        }
    }
    let ncols = cols.len();
    let a = CsrMatrix::from_triples_combining(
        Triples::from_entries(ds.store.len(), ncols, entries),
        |_, _| {},
    );
    let at = a.transpose();
    let sr = PlusTimes::new();

    // Serial hash reference: the baseline every variant must match
    // bit-for-bit and the clock every gate compares against.
    let (reference, ref_stats) = spgemm_hash(&sr, &a, &at);
    let mut hash_best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = spgemm_hash(&sr, &a, &at);
        hash_best = hash_best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    let products = ref_stats.products;

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "local SpGEMM kernels: {} x {} k-mer matrix, {} nnz, {} products, best of {reps} reps, {cores} core(s)",
        a.nrows(),
        ncols,
        fmt_count(a.nnz() as u64),
        fmt_count(products),
    );
    rule(78);
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>12}",
        "kernel", "threads", "seconds", "Mprod/s", "vs hash/1"
    );
    rule(78);
    println!(
        "{:<22} {:>8} {:>12.4} {:>12.1} {:>12}",
        "hash (serial)",
        1,
        hash_best,
        products as f64 / hash_best / 1e6,
        "1.00x"
    );

    let bench = |label: &str, kind: SpGemmKind, threads: usize| -> f64 {
        let pool = SpGemmPool::new(threads).with_kind(kind);
        let (got, _) = pool.multiply(&sr, &a, &at);
        assert_eq!(
            got.to_triples().to_sorted_tuples(),
            reference.to_triples().to_sorted_tuples(),
            "{label} diverged from serial hash — determinism bug"
        );
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = pool.multiply(&sr, &a, &at);
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }
        println!(
            "{:<22} {:>8} {:>12.4} {:>12.1} {:>11.2}x",
            label,
            threads,
            best,
            products as f64 / best / 1e6,
            hash_best / best
        );
        best
    };

    let mut heap_best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = spgemm_heap(&sr, &a, &at);
        heap_best = heap_best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    let (heap_out, _) = spgemm_heap(&sr, &a, &at);
    assert_eq!(
        heap_out.to_triples().to_sorted_tuples(),
        reference.to_triples().to_sorted_tuples(),
        "heap diverged from serial hash — determinism bug"
    );
    println!(
        "{:<22} {:>8} {:>12.4} {:>12.1} {:>11.2}x",
        "heap (serial)",
        1,
        heap_best,
        products as f64 / heap_best / 1e6,
        hash_best / heap_best
    );

    let auto_best = bench("auto (selected)", SpGemmKind::Auto, 1);
    let par2 = bench("parallel", SpGemmKind::Parallel, 2);
    let par4 = bench("parallel", SpGemmKind::Parallel, 4);
    rule(78);

    let mut failed = false;
    // Gate 1 (bit-identity) already enforced by the asserts above.
    // Gate 2: auto selection must never lose to always-hash (10% noise
    // tolerance — the policy itself costs two field reads).
    if auto_best > hash_best * 1.10 {
        eprintln!(
            "FAIL: auto kernel selection is {:.2}x slower than always-hash",
            auto_best / hash_best
        );
        failed = true;
    } else {
        println!(
            "PASS: auto selection within noise of always-hash ({:.2}x)",
            hash_best / auto_best
        );
    }
    // Gate 3: the parallel kernel vs serial. Target is >1.5x at 4
    // threads on a multi-core host; a single-core host cannot exhibit
    // wall-clock speedup, so there the gate only bounds oversubscription
    // overhead (the chunk-claim loop plus thread spawn must stay cheap).
    let (s2, s4) = (hash_best / par2, hash_best / par4);
    if cores >= 2 {
        if s2 < 1.0 || s4 < 1.0 {
            eprintln!("FAIL: parallel kernel loses to serial on {cores} cores ({s2:.2}x @2t, {s4:.2}x @4t)");
            failed = true;
        } else {
            println!(
                "PASS: parallel kernel beats serial ({s2:.2}x @2t, {s4:.2}x @4t; target 1.5x @4t)"
            );
        }
    } else if s4 < 0.5 {
        eprintln!("FAIL: parallel kernel overhead exceeds 2x on a single core ({s4:.2}x @4t)");
        failed = true;
    } else {
        println!(
            "PASS (1-core host): speedup gate relaxed to overhead bound ({s2:.2}x @2t, {s4:.2}x @4t); rerun on a multi-core runner for the 1.5x target"
        );
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: all kernels bit-identical to serial hash");
}
