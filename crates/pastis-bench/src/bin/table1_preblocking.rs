//! Table I — "The effect of pre-blocking for index- and triangularity-based
//! load balancing methods."
//!
//! Paper setup (Section VI-C validation scale): block counts
//! {10,20,30,40,50}, both schemes, with and without pre-blocking. Key
//! numbers to reproduce in shape:
//!   * pre-blocking inflates align ~1.1× and sparse ~1.1–1.6× (contention),
//!   * yet total drops to ~0.70× (index) / ~0.80× (triangular),
//!   * hiding efficiency ≈ 95–98% (index) vs ≈ 78–89% (triangular) — the
//!     triangular scheme's imbalance hurts the overlap.
//!
//! Reproduction: 12,000 sequences on 64 virtual nodes, calibrated
//! miniature Summit; the contention factors are the model's (documented)
//! stand-in for measured CPU sharing, the efficiency column *emerges* from
//! the per-rank block schedule.

use pastis_bench::*;
use pastis_core::{simulate, LoadBalance};

fn main() {
    let ds = bench_dataset(12_000);
    let nodes = 64;
    // Calibration anchored to the table's own published reference row
    // (index-based, 10 blocks): align:sparse ≈ 627:582 ≈ 1.08, and sparse
    // nearly flat from 10 to 50 blocks (582 → 596, ×1.024).
    let reference = bench_params().with_blocking(5, 2);
    let machine =
        calibrated_summit_anchored(&ds.store, &reference, nodes, 600.0, 1.08, Some((50, 1.024)));

    println!(
        "Table I: pre-blocking effect ({} seqs, {} virtual nodes)",
        ds.store.len(),
        nodes
    );
    rule(118);
    println!(
        "{:<14} {:>6} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6} {:>6} | {:>6}",
        "load balancing",
        "blocks",
        "align",
        "sparse",
        "sum",
        "total",
        "align",
        "sparse",
        "sum",
        "total",
        "align",
        "sparse",
        "total",
        "eff%"
    );
    println!(
        "{:<14} {:>6} | {:>35} | {:>35} | {:>20} |",
        "", "", "time w/o pre-blocking (s)", "time w/ pre-blocking (s)", "normalized"
    );
    rule(118);

    for scheme in [LoadBalance::IndexBased, LoadBalance::Triangular] {
        let name = match scheme {
            LoadBalance::IndexBased => "index-based",
            LoadBalance::Triangular => "triangularity",
        };
        for blocks in [10usize, 20, 30, 40, 50] {
            let (br, bc) = factor_blocks(blocks);
            let params = bench_params()
                .with_blocking(br, bc)
                .with_load_balance(scheme);
            let r = simulate(&ds.store, &params, &scale_config(&machine, nodes));
            // Columns as in the paper: align/sparse/sum/total without,
            // then with pre-blocking ("sum" w/ = obtained overlapped
            // region), normalized ratios, and hiding efficiency.
            let (a0, s0) = (r.align_s, r.sparse_s);
            let sum0 = a0 + s0;
            let total0 = r.total_without_pb;
            let (a1, s1) = (r.align_pb_s, r.sparse_pb_s);
            let sum1 = r.region_pb_s;
            let total1 = r.total_with_pb;
            println!(
                "{:<14} {:>6} | {:>8.0} {:>8.0} {:>8.0} {:>8.0} | {:>8.0} {:>8.0} {:>8.0} {:>8.0} | {:>6.2} {:>6.2} {:>6.2} | {:>6.1}",
                name,
                blocks,
                a0,
                s0,
                sum0,
                total0,
                a1,
                s1,
                sum1,
                total1,
                a1 / a0,
                s1 / s0,
                total1 / total0,
                100.0 * r.pb_efficiency
            );
        }
        rule(118);
    }
    println!(
        "paper: normalized align ≈1.13-1.15 / sparse ≈1.14-1.57 / total ≈0.70 (index) and\n\
         0.80-0.81 (triangular); efficiency ≈94.8-97.6% (index) vs 78.0-88.7% (triangular)."
    );
}
