//! Overlap gate: double-buffered SUMMA broadcasts + the unified
//! work-stealing pool vs the phased legacy schedule.
//!
//! Three gates, **fails (exit 1)** on any violation:
//! * **Bit-identity** — the similarity graph's TSV bytes are identical
//!   with overlap on or off, for every unified-pool size, on a real
//!   4-rank threaded grid (the determinism contract).
//! * **Modeled overlap** — in the virtual-time cost model, raising
//!   `comm_overlap_efficiency` from 0 (phased) to 0.9 must shrink both
//!   the end-to-end time and the unhidden broadcast wait while leaving
//!   every work counter and modeled byte count untouched.
//! * **Measured overhead** — the overlapped schedule's wall clock must
//!   stay within noise of the phased run on a multi-core host. A
//!   single-core host (`available_parallelism() == 1`) cannot overlap
//!   comm with compute for real, so there the gate only bounds the
//!   double-buffering overhead (one scoped thread per stage); the
//!   bit-identity and modeled gates stay hard.
//!
//! Usage: `kernel_overlap [n_seqs] [reps]` (defaults 300, 3).

use std::time::Instant;

use pastis_bench::*;
use pastis_comm::{run_threaded, Communicator, ProcessGrid};
use pastis_core::{run_search, simulate, SearchParams};

fn tsv_and_secs(store: &pastis_seqio::SeqStore, prm: &SearchParams) -> (Vec<u8>, f64) {
    let store = store.clone();
    let prm = prm.clone();
    let t0 = Instant::now();
    let outs = run_threaded(4, move |c| {
        let grid = ProcessGrid::square(c.split(0, c.rank()));
        let res = run_search(&grid, &store, &prm).unwrap();
        let graph = res.gather_graph(grid.world());
        (grid.world().rank(), graph)
    });
    let secs = t0.elapsed().as_secs_f64();
    let graph = outs
        .into_iter()
        .find(|(rank, _)| *rank == 0)
        .expect("rank 0 missing")
        .1;
    let mut bytes = Vec::new();
    for l in graph.to_tsv_lines() {
        bytes.extend_from_slice(l.as_bytes());
        bytes.push(b'\n');
    }
    (bytes, secs)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_seqs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let ds = bench_dataset(n_seqs);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let base = bench_params().with_blocking(2, 2).with_pre_blocking(true);

    println!(
        "SUMMA overlap gate: {} seqs, 2x2 blocking, 4 ranks, best of {reps} reps, {cores} core(s)",
        ds.store.len()
    );
    rule(72);

    // --- Gate 1: bit-identity across the overlap switch and pool sizes.
    let (reference, mut phased_best) = tsv_and_secs(&ds.store, &base);
    assert!(!reference.is_empty(), "phased reference found no edges");
    println!("{:<44} {:>10} {:>10}", "schedule", "seconds", "identical");
    rule(72);
    println!(
        "{:<44} {:>10.3} {:>10}",
        "phased (legacy split)", phased_best, "ref"
    );
    let mut failed = false;
    let mut overlap_best = f64::INFINITY;
    for _ in 1..reps {
        let (_, s) = tsv_and_secs(&ds.store, &base);
        phased_best = phased_best.min(s);
    }
    for threads in [1usize, 2, 4] {
        for overlap in [false, true] {
            let prm = base.clone().with_threads(threads).with_overlap(overlap);
            let label = format!(
                "pool threads={threads} overlap={}",
                if overlap { "on" } else { "off" }
            );
            let (bytes, mut best) = tsv_and_secs(&ds.store, &prm);
            let identical = bytes == reference;
            for _ in 1..reps {
                let (_, s) = tsv_and_secs(&ds.store, &prm);
                best = best.min(s);
            }
            if threads == 4 && overlap {
                overlap_best = best;
            }
            println!(
                "{:<44} {:>10.3} {:>10}",
                label,
                best,
                if identical { "yes" } else { "NO" }
            );
            if !identical {
                eprintln!("FAIL: {label} diverged from the phased run — determinism bug");
                failed = true;
            }
        }
    }
    rule(72);

    // --- Gate 2: the virtual-time cost model. Overlap is a *schedule*
    // change: seconds shrink, work counters and modeled wire bytes do not.
    let model_params = bench_params().with_blocking(8, 8);
    let machine = calibrated_summit(&ds.store, &model_params, 49, 2000.0, 2.0);
    let phased_cfg = scale_config(&machine, 49);
    let mut overlap_cfg = scale_config(&machine, 49);
    overlap_cfg.contention.comm_overlap_efficiency = 0.9;
    let p = simulate(&ds.store, &model_params, &phased_cfg);
    let o = simulate(&ds.store, &model_params, &overlap_cfg);
    println!("virtual-time model (49 nodes, 8x8 blocking): eff=0.0 vs eff=0.9");
    println!(
        "  total {:>9.2}s -> {:>9.2}s   cwait {:>8.4}s -> {:>8.4}s",
        p.total_with_pb, o.total_with_pb, p.cwait_s, o.cwait_s
    );
    if o.total_with_pb > p.total_with_pb || o.cwait_s >= p.cwait_s {
        eprintln!("FAIL: modeled overlap did not shrink runtime/cwait");
        failed = true;
    } else if (o.aligned_pairs, o.cells, o.products, o.modeled_bcast_bytes)
        != (p.aligned_pairs, p.cells, p.products, p.modeled_bcast_bytes)
    {
        eprintln!("FAIL: modeled overlap perturbed work counters or wire bytes");
        failed = true;
    } else {
        println!("PASS: modeled overlap hides broadcast wait without touching work counters");
    }

    // --- Gate 3: measured overhead of the overlapped schedule.
    let ratio = overlap_best / phased_best;
    if cores >= 2 {
        if ratio > 1.5 {
            eprintln!(
                "FAIL: overlapped schedule is {ratio:.2}x the phased wall clock on {cores} cores"
            );
            failed = true;
        } else {
            println!("PASS: overlapped schedule within noise of phased ({ratio:.2}x wall clock)");
        }
    } else if ratio > 2.5 {
        eprintln!("FAIL: double-buffering overhead exceeds 2.5x on a single core ({ratio:.2}x)");
        failed = true;
    } else {
        println!(
            "PASS (1-core host): overhead bound only ({ratio:.2}x); rerun on a multi-core runner to measure real overlap"
        );
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: overlap on/off bit-identical for every pool size");
}
