//! Figure 7 — "Comparison of two load balancing schemes on 64 processes."
//!
//! Paper setup: 20M sequences, 64 Summit nodes, block counts
//! {1,5,10,15,20,25,30}; four panels:
//!   (a) min/avg/max aligned pairs per process — index-based balances
//!       better at every block count;
//!   (b) min/avg/max DP-matrix cells per process — same conclusion;
//!   (c) min/avg/max alignment seconds per process;
//!   (d) total + sparse runtime — index-based wins at blocks {5,10,15,20},
//!       triangularity-based wins elsewhere by avoiding sparse work.
//!
//! Reproduction: 12,000 sequences, 64 virtual nodes, calibrated miniature
//! Summit, pre-blocking off (as in the paper's Section VI-B experiments).
//! The per-process pair/cell/second distributions are read back from the
//! *telemetry* of a traced replay (per-rank counters and component
//! seconds), so the figure exercises the same path a real run's
//! `--metrics-json` feeds.

use pastis_bench::*;
use pastis_comm::ImbalanceStats;
use pastis_core::{simulate_traced, LoadBalance};
use pastis_trace::{names, ClusterReport, Component, TraceSession};

fn fmt_imb(s: &ImbalanceStats) -> String {
    format!(
        "{:>9.0}/{:>9.0}/{:>9.0} σ{:>8.0} ({:>4.2}x)",
        s.min,
        s.avg,
        s.max,
        s.stddev,
        s.imbalance_factor()
    )
}

fn main() {
    let ds = bench_dataset(12_000);
    let nodes = 64;
    let params_ref = bench_params().with_blocking(1, 1);
    let machine =
        calibrated_summit_anchored(&ds.store, &params_ref, nodes, 600.0, 2.0, Some((30, 1.35)));
    let blocks = [1usize, 5, 10, 15, 20, 25, 30];
    let schemes = [LoadBalance::IndexBased, LoadBalance::Triangular];

    println!(
        "Figure 7: load-balancing schemes on {nodes} processes ({} seqs)",
        ds.store.len()
    );

    // Simulate each (blocks, scheme) configuration once, with telemetry;
    // all four panels read from the same reports + cluster aggregations
    // (the merge path `pastis analyze` applies to real metrics files).
    let reports: Vec<Vec<(pastis_core::ScaleReport, ClusterReport)>> = blocks
        .iter()
        .map(|&b| {
            let (br, bc) = factor_blocks(b);
            schemes
                .iter()
                .map(|&scheme| {
                    let params = bench_params()
                        .with_blocking(br, bc)
                        .with_load_balance(scheme);
                    let session = TraceSession::virtual_time();
                    let r = simulate_traced(
                        &ds.store,
                        &params,
                        &scale_config(&machine, nodes),
                        &session,
                    );
                    (r, ClusterReport::from_session(&session))
                })
                .collect()
        })
        .collect();

    for (panel, title) in [
        ("7a", "aligned pairs per process (min/avg/max)"),
        ("7b", "DP cells per process (min/avg/max)"),
        ("7c", "alignment seconds per process (min/avg/max)"),
    ] {
        println!("\n[{panel}] {title}");
        rule(100);
        println!(
            "{:>7} | {:>42} | {:>42}",
            "blocks", "index-based", "triangularity-based"
        );
        rule(100);
        for (bi, &b) in blocks.iter().enumerate() {
            let mut cells = Vec::new();
            for (_, cluster) in reports[bi].iter().take(schemes.len()) {
                let s = match panel {
                    "7a" => cluster.counter(names::CTR_ALIGNED_PAIRS),
                    "7b" => cluster.counter(names::CTR_CELLS),
                    _ => cluster.component(Component::Align),
                }
                .expect("traced replay records per-rank telemetry");
                cells.push(fmt_imb(&s));
            }
            println!("{b:>7} | {:>42} | {:>42}", cells[0], cells[1]);
        }
    }

    println!("\n[7d] total and sparse runtime (seconds)");
    rule(92);
    println!(
        "{:>7} | {:>12} {:>12} | {:>12} {:>12} | {:>10}",
        "blocks", "idx total", "idx sparse", "tri total", "tri sparse", "winner"
    );
    rule(92);
    for (bi, &b) in blocks.iter().enumerate() {
        let idx = &reports[bi][0].0;
        let tri = &reports[bi][1].0;
        let winner = if idx.total_without_pb < tri.total_without_pb {
            "index"
        } else {
            "triangular"
        };
        println!(
            "{b:>7} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1} | {:>10}",
            idx.total_without_pb, idx.sparse_s, tri.total_without_pb, tri.sparse_s, winner
        );
    }
    rule(92);
    println!(
        "paper: index-based wins at block counts {{5,10,15,20}}; triangularity-based wins\n\
         elsewhere by avoiding ~half the sparse computation despite worse alignment balance;\n\
         triangular imbalance improves as block count grows (partial-block share shrinks)."
    );
}
