//! SIMD lane-backend gate for the score-only alignment kernel.
//!
//! Runs the same score-only batch through the serial scalar reference and
//! through every lane backend compiled into this build (portable scalar
//! lanes, SSE2/AVX2 on x86_64, NEON on aarch64), prints a side-by-side
//! GCUPS table, and **fails (exit 1) if the backend that runtime feature
//! detection would select is slower than the serial scalar kernel** — the
//! CI guard against re-introducing the software-lockstep regression the
//! real vector backends replaced.
//!
//! The `lane speedup` line for the detected backend is the measured value
//! behind `MachineModel::commodity().simd_lane_speedup`.
//!
//! Usage: `kernel_simd [n_pairs] [reps]` (defaults 4000, 5).

use std::time::Instant;

use pastis_align::matrices::Blosum62;
use pastis_align::parallel::AlignPool;
use pastis_align::simd::SimdBackend;
use pastis_align::sw::{sw_score_only, GapPenalties};
use pastis_bench::{bench_dataset, fmt_count, rule};

/// splitmix64: deterministic pair sampling without a rand dependency
/// (rand is a dev-dependency of this crate, unavailable to binaries).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_pairs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4000);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    let ds = bench_dataset(1500);
    let seqs: Vec<Vec<u8>> = (0..ds.store.len())
        .map(|i| ds.store.seq(i).to_vec())
        .collect();
    let mut state = 0x5C22u64;
    let tasks: Vec<pastis_align::AlignTask> = (0..n_pairs)
        .map(|_| pastis_align::AlignTask {
            query: (splitmix64(&mut state) % seqs.len() as u64) as u32,
            reference: (splitmix64(&mut state) % seqs.len() as u64) as u32,
            seed_q: 0,
            seed_r: 0,
        })
        .collect();
    let gaps = GapPenalties::pastis_defaults();
    let lookup = |id: u32| -> &[u8] { &seqs[id as usize] };

    // Serial scalar reference (the i32 kernel the lanes must match and beat).
    let reference: Vec<i32> = tasks
        .iter()
        .map(|t| sw_score_only(lookup(t.query), lookup(t.reference), &Blosum62, gaps).0)
        .collect();
    let mut scalar_best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let scores: i64 = tasks
            .iter()
            .map(|t| sw_score_only(lookup(t.query), lookup(t.reference), &Blosum62, gaps).0 as i64)
            .sum();
        scalar_best = scalar_best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(scores);
    }
    let cells: u64 = tasks
        .iter()
        .map(|t| lookup(t.query).len() as u64 * lookup(t.reference).len() as u64)
        .sum();

    let detected = SimdBackend::detect();
    println!(
        "score-only kernel backends: {n_pairs} pairs, {} cells, best of {reps} reps, 1 thread",
        fmt_count(cells)
    );
    rule(78);
    println!(
        "{:<18} {:>6} {:>12} {:>10} {:>12} {:>12}",
        "backend", "lanes", "seconds", "GCUPS", "vs scalar", "promotions"
    );
    rule(78);
    let scalar_gcups = cells as f64 / scalar_best / 1e9;
    println!(
        "{:<18} {:>6} {:>12.4} {:>10.3} {:>12} {:>12}",
        "serial scalar", 1, scalar_best, scalar_gcups, "1.00x", 0
    );

    let mut detected_speedup = 0.0f64;
    for backend in SimdBackend::available() {
        let pool = AlignPool::new(1).with_simd(backend);
        let (results, stats) = pool.run_score_only(&tasks, lookup, &Blosum62, gaps);
        let got: Vec<i32> = results.iter().map(|r| r.score).collect();
        assert_eq!(
            got, reference,
            "{backend} diverged from scalar — kernel bug"
        );
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = pool.run_score_only(&tasks, lookup, &Blosum62, gaps);
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }
        let speedup = scalar_best / best;
        let mark = if backend == detected {
            "  <- selected"
        } else {
            ""
        };
        println!(
            "{:<18} {:>6} {:>12.4} {:>10.3} {:>11.2}x {:>12}{mark}",
            format!("lanes/{backend}"),
            backend.lanes(),
            best,
            cells as f64 / best / 1e9,
            speedup,
            stats.lane_promotions
        );
        if backend == detected {
            detected_speedup = speedup;
        }
    }
    rule(78);
    println!(
        "detected backend: {detected} ({} x i16 lanes), lane speedup {detected_speedup:.2}x over serial scalar",
        detected.lanes()
    );

    if detected_speedup < 1.0 {
        eprintln!(
            "FAIL: runtime-selected backend {detected} is {detected_speedup:.2}x scalar (< 1.00x)"
        );
        std::process::exit(1);
    }
    println!("PASS: runtime-selected backend is not slower than serial scalar");
}
