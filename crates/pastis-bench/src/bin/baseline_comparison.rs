//! Section VIII-C — PASTIS vs the distributed state of the art.
//!
//! The paper's comparison is architectural: MMseqs2 could not finish 50M
//! sequences on 64 Cori nodes in 6 h (replicated index + IO overheads);
//! DIAMOND completed 281M×39M on 520 nodes at 1.2M alignments/s, which
//! PASTIS beats by 575× in rate, 15× in search space, and 24.8× in
//! alignments per unit of search space (sensitivity).
//!
//! Reproduction (everything measured, same host, same miniature dataset):
//! * the three architectures run the same many-against-many search;
//! * the replication / spill / distribution properties are measured
//!   directly (per-rank memory, intermediate bytes, peak block sizes);
//! * throughput ratios are reported from wall time;
//! * PASTIS's blocking-invariance is contrasted with the capped
//!   DIAMOND-style chunking dependence.

use pastis_baselines::diamond_like::{run_diamond_like, DiamondLikeConfig};
use pastis_baselines::mmseqs_like::{run_mmseqs_like, MmseqsLikeConfig, SplitMode};
use pastis_bench::*;
use pastis_core::pipeline::run_search_serial;
use pastis_core::LoadBalance;

fn main() {
    let ds = bench_dataset(1500);
    let n = ds.store.len();
    println!(
        "Section VIII-C analog: three architectures, one dataset ({n} seqs, {} residues)\n",
        ds.store.total_residues()
    );

    // --- PASTIS (functional pipeline, serial host; blocked + triangular
    // as in the production run).
    let params = bench_params()
        .with_blocking(4, 4)
        .with_load_balance(LoadBalance::Triangular)
        .with_pre_blocking(true);
    let pastis = run_search_serial(&ds.store, &params).expect("pastis failed");

    // --- MMseqs2-style (4 simulated ranks, target split).
    let mm_cfg = MmseqsLikeConfig {
        k: params.k,
        min_shared_kmers: params.common_kmer_threshold,
        ani_threshold: params.ani_threshold,
        coverage_threshold: params.coverage_threshold,
        mode: SplitMode::TargetSplit,
        ..MmseqsLikeConfig::default()
    };
    let mm = run_mmseqs_like(&ds.store, &mm_cfg, 4);

    // --- DIAMOND-style (4x4 work packages, uncapped for comparability).
    let dm_cfg = DiamondLikeConfig {
        k: params.k,
        min_shared_kmers: params.common_kmer_threshold,
        ani_threshold: params.ani_threshold,
        coverage_threshold: params.coverage_threshold,
        query_chunks: 4,
        ref_chunks: 4,
        max_candidates_per_query: usize::MAX,
        ..DiamondLikeConfig::default()
    };
    let dm = run_diamond_like(&ds.store, &dm_cfg);

    rule(96);
    println!(
        "{:<28} {:>20} {:>20} {:>20}",
        "", "PASTIS-RS", "MMseqs2-style", "DIAMOND-style"
    );
    rule(96);
    println!(
        "{:<28} {:>20} {:>20} {:>20}",
        "edges found",
        pastis.graph.n_edges(),
        mm.graph.n_edges(),
        dm.graph.n_edges()
    );
    println!(
        "{:<28} {:>20} {:>20} {:>20}",
        "pairs aligned", pastis.stats.aligned_pairs, mm.aligned_pairs, dm.aligned_pairs
    );
    println!(
        "{:<28} {:>20} {:>20} {:>20}",
        "wall seconds",
        format!("{:.2}", pastis.wall_seconds),
        format!("{:.2}", mm.wall_seconds),
        format!("{:.2}", dm.wall_seconds)
    );
    println!(
        "{:<28} {:>20} {:>20} {:>20}",
        "alignments/second",
        format!(
            "{:.0}",
            pastis.stats.aligned_pairs as f64 / pastis.wall_seconds
        ),
        format!("{:.0}", mm.aligned_pairs as f64 / mm.wall_seconds),
        format!("{:.0}", dm.aligned_pairs as f64 / dm.wall_seconds)
    );
    // Architectural memory/IO properties.
    let pastis_peak_block = pastis
        .per_block
        .iter()
        .map(|b| b.candidates)
        .max()
        .unwrap_or(0);
    println!(
        "{:<28} {:>20} {:>20} {:>20}",
        "peak in-memory candidates",
        format!("{} (1 block)", fmt_count(pastis_peak_block)),
        format!("{}", fmt_count(pastis.stats.candidates)),
        "bounded/package"
    );
    println!(
        "{:<28} {:>20} {:>20} {:>20}",
        "replicated bytes/rank",
        "none (2D dist.)",
        &fmt_count(mm.index_bytes_per_rank),
        "none"
    );
    println!(
        "{:<28} {:>20} {:>20} {:>20}",
        "intermediate spill bytes",
        "0",
        "0",
        &fmt_count(dm.spilled_bytes)
    );
    rule(96);

    // Determinism contrast (the paper's quotation of DIAMOND's manual).
    println!("\nblocking/chunking invariance:");
    let p2 = run_search_serial(&ds.store, &params.clone().with_blocking(7, 3)).unwrap();
    println!(
        "  PASTIS 4x4 vs 7x3 blocking: {}",
        if p2.graph.edges() == pastis.graph.edges() {
            "IDENTICAL results"
        } else {
            "DIFFERENT results (bug!)"
        }
    );
    let dm_capped = |rc: usize| {
        run_diamond_like(
            &ds.store,
            &DiamondLikeConfig {
                ref_chunks: rc,
                max_candidates_per_query: 8,
                ..dm_cfg.clone()
            },
        )
    };
    let d1 = dm_capped(1);
    let d8 = dm_capped(8);
    println!(
        "  capped DIAMOND-style, 1 vs 8 ref chunks: {} vs {} edges ({})",
        d1.graph.n_edges(),
        d8.graph.n_edges(),
        if d1.graph.edges() == d8.graph.edges() {
            "identical"
        } else {
            "block-size-dependent, as its manual warns"
        }
    );

    println!(
        "\npaper: PASTIS 690.6M aligns/s vs DIAMOND 1.2M aligns/s (575x), search space 15x,\n\
         alignments per unit search space 24.8x; MMseqs2 DNF at 50M seqs / 64 nodes / 6 h."
    );
}
