//! Diff a freshly measured bench ledger against the committed baseline.
//!
//! Exits non-zero when any entry regressed past the threshold or any
//! baseline entry is missing from the current ledger; improvements and
//! newly added entries are reported but never fail. This is the CI side
//! of the perf-regression ledger (see `pastis_bench::ledger`).
//!
//! Usage: `bench_compare <baseline.json> <current.json> [threshold_pct]`
//! (threshold defaults to 10, i.e. fail on >10% slowdowns).

use pastis_bench::ledger::{compare, render_diff, BenchLedger};

fn load(path: &str) -> BenchLedger {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    BenchLedger::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.len() > 3 {
        eprintln!("usage: bench_compare <baseline.json> <current.json> [threshold_pct]");
        std::process::exit(2);
    }
    let threshold: f64 = args.get(2).map_or(10.0, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: bad threshold '{s}'");
            std::process::exit(2);
        })
    });
    if threshold < 0.0 {
        eprintln!("error: threshold must be non-negative");
        std::process::exit(2);
    }

    let baseline = load(&args[0]);
    let current = load(&args[1]);
    let diff = compare(&baseline, &current, threshold);
    print!("{}", render_diff(&diff, threshold));
    if diff.is_clean() {
        println!(
            "PASS: {} entries within {threshold}% of baseline",
            baseline.entries.len()
        );
    } else {
        eprintln!(
            "FAIL: {} regression(s), {} missing entr(y/ies)",
            diff.regressions.len(),
            diff.missing.len()
        );
        std::process::exit(1);
    }
}
