//! The memory motivation (Sections V-B and VI-A) — not a numbered figure,
//! but the paper's central argument for the Blocked 2D Sparse SUMMA:
//!
//! * "For a modest dataset containing 20 million sequences, one usually
//!   needs to store hundreds of billions candidate alignments … The memory
//!   required … can quickly exceed the amount of memory found on a node."
//! * "the method to discover candidate alignments uses a parallel SpGEMM,
//!   which usually needs much more intermediate memory than the actual
//!   storage required by the found candidates" (the compression factor).
//! * Figure 5's setup note: "this search could not be performed on fewer
//!   nodes using only one block, which indicates the severity of the
//!   memory required."
//!
//! This binary reports the modeled per-rank peak memory across block
//! counts and node counts, its composition, and the minimum node count at
//! which the unblocked search fits a fixed per-rank budget vs the blocked
//! one.

use pastis_bench::*;
use pastis_core::{blocking_for_budget, simulate, LoadBalance};

fn main() {
    let ds = bench_dataset(12_000);
    let reference = bench_params()
        .with_blocking(1, 1)
        .with_load_balance(LoadBalance::IndexBased);
    let machine = calibrated_summit(&ds.store, &reference, 25, 600.0, 2.0);

    println!(
        "per-rank peak memory vs block count ({} seqs, 25 virtual nodes)",
        ds.store.len()
    );
    rule(100);
    println!(
        "{:>7} | {:>12} {:>12} {:>12} {:>12} {:>12} | {:>10}",
        "blocks", "inputs", "sequences", "recv", "intermed.", "out block", "total"
    );
    rule(100);
    let fmt_mb = |b: f64| format!("{:.2} MB", b / 1.0e6);
    let mut unblocked_total = 0.0;
    for blocks in [1usize, 2, 5, 10, 20, 50] {
        let (br, bc) = factor_blocks(blocks);
        let params = bench_params().with_blocking(br, bc);
        let r = simulate(&ds.store, &params, &scale_config(&machine, 25));
        let m = r.memory;
        if blocks == 1 {
            unblocked_total = m.total_bytes();
        }
        println!(
            "{:>7} | {:>12} {:>12} {:>12} {:>12} {:>12} | {:>10}",
            blocks,
            fmt_mb(m.inputs_bytes),
            fmt_mb(m.sequences_bytes),
            fmt_mb(m.recv_bytes),
            fmt_mb(m.intermediate_bytes),
            fmt_mb(m.output_block_bytes),
            fmt_mb(m.total_bytes())
        );
    }
    rule(100);

    // The compression-factor observation: intermediate vs output storage.
    let r1 = simulate(
        &ds.store,
        &bench_params().with_blocking(1, 1),
        &scale_config(&machine, 25),
    );
    println!(
        "\ncompression factor (intermediate products per output nonzero): {:.2}",
        r1.products as f64 / r1.candidates.max(1) as f64
    );
    println!(
        "SpGEMM intermediate memory is {:.1}x the stored candidate block (Section V-B).",
        r1.memory.intermediate_bytes / r1.memory.output_block_bytes.max(1.0)
    );

    // Minimum nodes to fit a fixed per-rank budget, unblocked vs blocked —
    // the Figure 5 setup note, quantified.
    let budget = unblocked_total * 0.35; // a node smaller than the 1-block/25-node need
    println!(
        "\nminimum virtual nodes to fit a {:.1} MB per-rank budget:",
        budget / 1e6
    );
    for (label, blocks) in [("1 block", 1usize), ("25 blocks", 25)] {
        let (br, bc) = factor_blocks(blocks);
        let fit = [4usize, 9, 16, 25, 49, 100, 196, 400]
            .into_iter()
            .find(|&nodes| {
                let r = simulate(
                    &ds.store,
                    &bench_params().with_blocking(br, bc),
                    &scale_config(&machine, nodes),
                );
                r.memory.total_bytes() <= budget
            });
        match fit {
            Some(nodes) => println!("  {label:>10}: {nodes} nodes"),
            None => println!("  {label:>10}: does not fit at any tested node count"),
        }
    }
    println!(
        "\npaper: the 20M-sequence search needed all 100 nodes with one block; blocking\n\
         lets the same search run on far fewer nodes by bounding the in-flight output."
    );

    // The dual question, answered by the cost model's budget planner: at a
    // *fixed* node count, which blocking fits a given per-rank budget?
    // (The runtime pairs this with the `--mem-budget` accountant, which
    // spills to disk when the chosen blocking still overshoots.)
    let floor = r1.memory.inputs_bytes + r1.memory.sequences_bytes;
    println!("\nblocks chosen to fit a per-rank budget at 25 nodes:");
    for frac in [0.9, 0.6, 0.4] {
        let budget = unblocked_total * frac;
        match blocking_for_budget(
            &ds.store,
            &bench_params(),
            &scale_config(&machine, 25),
            budget,
            64,
        ) {
            Some((br, bc, r)) => println!(
                "  {:>7.2} MB budget: {br} x {bc} blocks (peak {:.2} MB)",
                budget / 1e6,
                r.memory.total_bytes() / 1e6
            ),
            None => println!("  {:>7.2} MB budget: no blocking fits", budget / 1e6),
        }
    }
    println!(
        "  blocking-invariant floor (inputs + sequences): {:.2} MB —\n\
         below it only the runtime accountant's disk spill helps.",
        floor / 1e6
    );
}
