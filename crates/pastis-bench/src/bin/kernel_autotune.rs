//! Self-tuning gate: `--tune auto` vs hand-tuned fixed engine splits.
//!
//! Runs the full 4-rank search with a unified pool under (a) no tuning,
//! (b) every hand-tuned `fixed:` split of the pool, and (c) `--tune auto`
//! (cost-model seed + live telemetry re-splits). Three gates, **fails
//! (exit 1)** on any violation:
//!
//! * **Bit-identity** (hard) — the similarity graph's TSV bytes are
//!   identical across off / every fixed split / auto. Tuning moves only
//!   schedule-invariant knobs, so any divergence is a determinism bug.
//! * **Activity** (hard) — the auto run must actually close the loop:
//!   every rank records at least one `tune.decide` evaluation and the
//!   seeded engine caps (`tune.*` counters in the telemetry registry).
//! * **Competitiveness** — auto's wall clock stays within 1.10x of the
//!   best hand-tuned fixed split on a multi-core host. A single-core host
//!   (`available_parallelism() == 1`) serializes every split identically,
//!   so there the gate only bounds tuner overhead (the decision loop is a
//!   handful of integer all-reduces per block); bit-identity and activity
//!   stay hard. Never quote 1-core numbers as tuning speedup.
//!
//! Usage: `kernel_autotune [n_seqs] [reps]` (defaults 300, 3).

use std::time::Instant;

use pastis_bench::{bench_dataset, bench_params, rule};
use pastis_comm::{run_threaded, Communicator, ProcessGrid};
use pastis_core::{run_search_traced, FixedSpec, SearchParams, TunePolicy};
use pastis_trace::{names, Recorder, TraceSession};

const RANKS: usize = 4;

/// One full threaded-grid search; returns the rank-0 TSV bytes, the wall
/// clock, and the summed `tune.decisions` / `tune.resplits` counters.
fn run_cfg(store: &pastis_seqio::SeqStore, prm: &SearchParams) -> (Vec<u8>, f64, f64, f64) {
    let session = TraceSession::new();
    let recs: Vec<Recorder> = (0..RANKS).map(|r| session.recorder(r)).collect();
    let store = store.clone();
    let prm = prm.clone();
    let run_recs = recs.clone();
    let t0 = Instant::now();
    let outs = run_threaded(RANKS, move |c| {
        let rec = run_recs[c.rank()].clone();
        let grid = ProcessGrid::square(c.split(0, c.rank()));
        let res = run_search_traced(&grid, &store, &prm, &rec).unwrap();
        let graph = res.gather_graph(grid.world());
        (grid.world().rank(), graph)
    });
    let secs = t0.elapsed().as_secs_f64();
    let graph = outs
        .into_iter()
        .find(|(rank, _)| *rank == 0)
        .expect("rank 0 missing")
        .1;
    let mut bytes = Vec::new();
    for l in graph.to_tsv_lines() {
        bytes.extend_from_slice(l.as_bytes());
        bytes.push(b'\n');
    }
    let (mut decisions, mut resplits) = (0.0, 0.0);
    let mut ranks_deciding = 0usize;
    for rec in &recs {
        let ctr = rec.counters();
        let d = ctr.get(names::CTR_TUNE_DECISIONS).copied().unwrap_or(0.0);
        decisions += d;
        resplits += ctr.get(names::CTR_TUNE_RESPLITS).copied().unwrap_or(0.0);
        if d > 0.0 {
            ranks_deciding += 1;
        }
    }
    // The decision protocol is collective: if any rank decided, all did.
    assert!(
        ranks_deciding == 0 || ranks_deciding == RANKS,
        "tune.decide ran on {ranks_deciding}/{RANKS} ranks — collective protocol broken"
    );
    (bytes, secs, decisions, resplits)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_seqs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let ds = bench_dataset(n_seqs);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // 4x4 blocking gives the between-stage tuner 16 decision points;
    // pre-blocking exercises the lookahead knob.
    let threads = 4usize;
    let base = bench_params()
        .with_blocking(4, 4)
        .with_pre_blocking(true)
        .with_threads(threads);

    println!(
        "self-tuning gate: {} seqs, 4x4 blocking, {RANKS} ranks, pool of {threads}, best of {reps} reps, {cores} core(s)",
        ds.store.len()
    );
    rule(76);
    println!(
        "{:<34} {:>9} {:>9} {:>9} {:>10}",
        "policy", "seconds", "decide", "resplit", "identical"
    );
    rule(76);

    // Reference: tuning off entirely.
    let (reference, mut off_best, _, _) = run_cfg(&ds.store, &base);
    assert!(!reference.is_empty(), "untuned reference found no edges");
    for _ in 1..reps {
        let (_, s, _, _) = run_cfg(&ds.store, &base);
        off_best = off_best.min(s);
    }
    println!(
        "{:<34} {:>9.3} {:>9} {:>9} {:>10}",
        "off", off_best, "-", "-", "ref"
    );

    let mut failed = false;

    // The hand-tuned grid: every fixed split of a 4-thread pool. The
    // tuner must land within 10% of the best of these.
    let mut fixed_best = f64::INFINITY;
    let mut fixed_best_label = String::new();
    for (sp, al) in [(1usize, 3usize), (2, 2), (3, 1)] {
        let prm = base.clone().with_tune(TunePolicy::Fixed(FixedSpec {
            spgemm_cap: Some(sp),
            align_cap: Some(al),
            batch: None,
            lookahead: None,
        }));
        let label = format!("fixed:spgemm={sp},align={al}");
        let (bytes, mut best, _, _) = run_cfg(&ds.store, &prm);
        let identical = bytes == reference;
        for _ in 1..reps {
            let (_, s, _, _) = run_cfg(&ds.store, &prm);
            best = best.min(s);
        }
        if best < fixed_best {
            fixed_best = best;
            fixed_best_label = label.clone();
        }
        println!(
            "{:<34} {:>9.3} {:>9} {:>9} {:>10}",
            label,
            best,
            "-",
            "-",
            if identical { "yes" } else { "NO" }
        );
        if !identical {
            eprintln!("FAIL: {label} diverged from the untuned run — determinism bug");
            failed = true;
        }
    }

    // The tuner itself.
    let auto = base.clone().with_tune(TunePolicy::Auto);
    let (bytes, mut auto_best, mut decisions, mut resplits) = run_cfg(&ds.store, &auto);
    let identical = bytes == reference;
    for _ in 1..reps {
        let (_, s, d, r) = run_cfg(&ds.store, &auto);
        auto_best = auto_best.min(s);
        decisions = decisions.max(d);
        resplits = resplits.max(r);
    }
    println!(
        "{:<34} {:>9.3} {:>9} {:>9} {:>10}",
        "auto",
        auto_best,
        decisions,
        resplits,
        if identical { "yes" } else { "NO" }
    );
    rule(76);
    if !identical {
        eprintln!("FAIL: --tune auto diverged from the untuned run — determinism bug");
        failed = true;
    }

    // Gate 2: the loop must actually close — every rank must evaluate the
    // collective decision at least once per run (run_cfg already asserted
    // all-or-none across ranks).
    if decisions < RANKS as f64 {
        eprintln!("FAIL: --tune auto recorded {decisions} tune.decide evaluations (< {RANKS})");
        failed = true;
    } else {
        println!(
            "PASS: tuning loop closed ({} decisions, {} re-splits across {RANKS} ranks)",
            decisions, resplits
        );
    }

    // Gate 3: competitiveness against the hand-tuned grid.
    let ratio = auto_best / fixed_best;
    if cores >= 2 {
        if ratio > 1.10 {
            eprintln!(
                "FAIL: --tune auto is {ratio:.2}x the best fixed split ({fixed_best_label}) on {cores} cores"
            );
            failed = true;
        } else {
            println!(
                "PASS: auto within 10% of the best hand-tuned split ({ratio:.2}x vs {fixed_best_label})"
            );
        }
    } else if ratio > 1.5 {
        eprintln!("FAIL: tuner overhead exceeds 1.5x on a single core ({ratio:.2}x)");
        failed = true;
    } else {
        println!(
            "PASS (1-core host): overhead bound only ({ratio:.2}x vs {fixed_best_label}); rerun on a multi-core runner for the 1.10x gate"
        );
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: off / every fixed split / auto all bit-identical");
}
