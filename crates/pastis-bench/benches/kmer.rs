//! Criterion benches for k-mer matrix construction: exact extraction,
//! reduced alphabets, and the substitute-k-mer expansion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pastis_bench::bench_dataset;
use pastis_core::kmer::kmer_matrix_triples;
use pastis_core::subkmers::kmer_matrix_triples_with_substitutes;
use pastis_seqio::ReducedAlphabet;

fn bench_kmer_matrix(c: &mut Criterion) {
    let ds = bench_dataset(500);
    let residues = ds.store.total_residues() as u64;
    let mut group = c.benchmark_group("kmer_matrix");
    group.sample_size(20);
    group.throughput(Throughput::Elements(residues));
    for (label, alphabet) in [
        ("full20_k6", ReducedAlphabet::Full20),
        ("murphy10_k6", ReducedAlphabet::Murphy10),
        ("dayhoff6_k6", ReducedAlphabet::Dayhoff6),
    ] {
        group.bench_with_input(BenchmarkId::new(label, residues), &alphabet, |b, &a| {
            b.iter(|| kmer_matrix_triples(&ds.store, 0, ds.store.len(), 6, a))
        });
    }
    group.finish();
}

fn bench_substitute_kmers(c: &mut Criterion) {
    let ds = bench_dataset(100);
    let mut group = c.benchmark_group("substitute_kmers");
    group.sample_size(10);
    for &m in &[0usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("m_nearest", m), &m, |b, &m| {
            b.iter(|| {
                kmer_matrix_triples_with_substitutes(
                    &ds.store,
                    0,
                    ds.store.len(),
                    6,
                    ReducedAlphabet::Full20,
                    m,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmer_matrix, bench_substitute_kmers);
criterion_main!(benches);
