//! Criterion benches for the end-to-end pipeline: serial vs threaded SPMD,
//! blocked vs unblocked, and the two load-balancing schemes — ablations of
//! the design choices DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pastis_bench::{bench_dataset, bench_params};
use pastis_comm::{run_threaded, Communicator, ProcessGrid};
use pastis_core::pipeline::{run_search, run_search_serial};
use pastis_core::LoadBalance;

fn bench_blocking_ablation(c: &mut Criterion) {
    let ds = bench_dataset(300);
    let mut group = c.benchmark_group("pipeline_blocking");
    group.sample_size(10);
    for &(br, bc) in &[(1usize, 1usize), (2, 2), (4, 4)] {
        let params = bench_params().with_blocking(br, bc);
        group.bench_with_input(
            BenchmarkId::new("serial", format!("{br}x{bc}")),
            &params,
            |b, p| b.iter(|| run_search_serial(&ds.store, p).unwrap()),
        );
    }
    group.finish();
}

fn bench_scheme_ablation(c: &mut Criterion) {
    let ds = bench_dataset(300);
    let mut group = c.benchmark_group("pipeline_scheme");
    group.sample_size(10);
    for (label, lb) in [
        ("index", LoadBalance::IndexBased),
        ("triangular", LoadBalance::Triangular),
    ] {
        let params = bench_params().with_blocking(3, 3).with_load_balance(lb);
        group.bench_function(BenchmarkId::new("serial_3x3", label), |b| {
            b.iter(|| run_search_serial(&ds.store, &params).unwrap())
        });
    }
    group.finish();
}

fn bench_preblocking_ablation(c: &mut Criterion) {
    let ds = bench_dataset(300);
    let mut group = c.benchmark_group("pipeline_preblocking");
    group.sample_size(10);
    for (label, pb) in [("off", false), ("on", true)] {
        let params = bench_params().with_blocking(4, 4).with_pre_blocking(pb);
        group.bench_function(BenchmarkId::new("serial_4x4", label), |b| {
            b.iter(|| run_search_serial(&ds.store, &params).unwrap())
        });
    }
    group.finish();
}

fn bench_threaded_spmd(c: &mut Criterion) {
    let ds = bench_dataset(200);
    let mut group = c.benchmark_group("pipeline_spmd");
    group.sample_size(10);
    for &p in &[1usize, 4] {
        let store = ds.store.clone();
        group.bench_with_input(BenchmarkId::new("ranks", p), &p, |b, &p| {
            b.iter(|| {
                let store = store.clone();
                run_threaded(p, move |comm| {
                    let grid = ProcessGrid::square(comm.split(0, comm.rank()));
                    run_search(&grid, &store, &bench_params()).unwrap().stats
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_blocking_ablation,
    bench_scheme_ablation,
    bench_preblocking_ablation,
    bench_threaded_spmd
);
criterion_main!(benches);
