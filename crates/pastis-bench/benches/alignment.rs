//! Criterion benches for the alignment kernels: full Smith–Waterman
//! throughput (CUPS) by sequence length, traceback overhead, the
//! banded/x-drop variants, and the batch engine — serial driver vs the
//! worker pool vs multilane dispatch over synthetic length distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pastis_align::banded::{sw_banded, sw_xdrop};
use pastis_align::batch::{AlignTask, BatchAligner};
use pastis_align::matrices::Blosum62;
use pastis_align::parallel::AlignPool;
use pastis_align::simd::SimdBackend;
use pastis_align::sw::{sw_align, sw_score_only, GapPenalties};
use pastis_seqio::{SyntheticConfig, SyntheticDataset};
use pastis_trace::TraceSession;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_protein(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0..20u8)).collect()
}

fn bench_sw_by_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("smith_waterman");
    group.sample_size(20);
    let gaps = GapPenalties::pastis_defaults();
    for &len in &[64usize, 256, 512] {
        let q = random_protein(len, 1);
        let r = random_protein(len, 2);
        group.throughput(Throughput::Elements((len * len) as u64)); // cells
        group.bench_with_input(BenchmarkId::new("score_only", len), &len, |b, _| {
            b.iter(|| sw_score_only(&q, &r, &Blosum62, gaps))
        });
        group.bench_with_input(BenchmarkId::new("with_traceback", len), &len, |b, _| {
            b.iter(|| sw_align(&q, &r, &Blosum62, gaps))
        });
    }
    group.finish();
}

fn bench_bounded_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounded_kernels");
    group.sample_size(20);
    let gaps = GapPenalties::pastis_defaults();
    let q = random_protein(512, 3);
    let r = {
        // Homologous pair: copy with scattered substitutions.
        let mut r = q.clone();
        let mut rng = StdRng::seed_from_u64(4);
        for x in r.iter_mut() {
            if rng.gen_bool(0.15) {
                *x = rng.gen_range(0..20);
            }
        }
        r
    };
    for &w in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("banded", w), &w, |b, &w| {
            b.iter(|| sw_banded(&q, &r, &Blosum62, gaps, 0, 0, w))
        });
    }
    group.bench_function("xdrop_20", |b| {
        b.iter(|| sw_xdrop(&q, &r, &Blosum62, 0, 0, 20))
    });
    group.bench_function("full_reference", |b| {
        b.iter(|| sw_score_only(&q, &r, &Blosum62, gaps))
    });
    group.finish();
}

/// A batch of tasks over a synthetic protein dataset with the given mean
/// length (family structure gives the realistic ragged distribution the
/// length-bucketing packer is designed for).
fn synth_batch(mean_len: f64, n_pairs: usize) -> (Vec<Vec<u8>>, Vec<AlignTask>) {
    let ds = SyntheticDataset::generate(&SyntheticConfig {
        mean_len,
        ..SyntheticConfig::small(200, 99)
    });
    let seqs: Vec<Vec<u8>> = (0..ds.store.len())
        .map(|i| ds.store.seq(i).to_vec())
        .collect();
    let mut rng = StdRng::seed_from_u64(7);
    let tasks = (0..n_pairs)
        .map(|_| AlignTask {
            query: rng.gen_range(0..seqs.len() as u32),
            reference: rng.gen_range(0..seqs.len() as u32),
            seed_q: 0,
            seed_r: 0,
        })
        .collect();
    (seqs, tasks)
}

/// Serial driver vs the worker pool at 2/4 threads, traceback kernel:
/// the acceptance target is ≥2× CUPs at 4 threads over serial scalar on
/// ≥1000 pairs.
fn bench_batch_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_parallel");
    group.sample_size(10);
    let gaps = GapPenalties::pastis_defaults();
    let aligner = BatchAligner::new(Blosum62, gaps);
    for &mean_len in &[60.0f64, 150.0] {
        let (seqs, tasks) = synth_batch(mean_len, 1000);
        let cells = BatchAligner::<Blosum62>::batch_cells(&tasks, |id| seqs[id as usize].len());
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(
            BenchmarkId::new("serial", mean_len as usize),
            &mean_len,
            |b, _| b.iter(|| aligner.run_batch(&tasks, |id| &seqs[id as usize])),
        );
        for &t in &[2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("pool_t{t}"), mean_len as usize),
                &mean_len,
                |b, _| b.iter(|| aligner.run_batch_parallel(&tasks, |id| &seqs[id as usize], t)),
            );
        }
    }
    group.finish();
}

/// Scalar score-only vs every compiled lane backend, side by side: the
/// serial reference kernel, then each of `SimdBackend::available()`
/// (portable scalar lanes, SSE2, AVX2/NEON where compiled) on the pool at
/// 1 and 4 threads. The `kernel_simd` bin turns the same comparison into
/// a CI gate (runtime-selected backend must not be slower than scalar).
fn bench_batch_multilane(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_multilane");
    group.sample_size(10);
    let gaps = GapPenalties::pastis_defaults();
    for &mean_len in &[60.0f64, 150.0] {
        let (seqs, tasks) = synth_batch(mean_len, 1000);
        let cells = BatchAligner::<Blosum62>::batch_cells(&tasks, |id| seqs[id as usize].len());
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(
            BenchmarkId::new("scalar_score_only", mean_len as usize),
            &mean_len,
            |b, _| {
                b.iter(|| {
                    tasks
                        .iter()
                        .map(|t| {
                            sw_score_only(
                                &seqs[t.query as usize],
                                &seqs[t.reference as usize],
                                &Blosum62,
                                gaps,
                            )
                            .0
                        })
                        .sum::<i32>()
                })
            },
        );
        for backend in SimdBackend::available() {
            for &t in &[1usize, 4] {
                group.bench_with_input(
                    BenchmarkId::new(format!("lanes_{backend}_t{t}"), mean_len as usize),
                    &mean_len,
                    |b, _| {
                        b.iter(|| {
                            AlignPool::new(t).with_simd(backend).run_score_only(
                                &tasks,
                                |id| &seqs[id as usize],
                                &Blosum62,
                                gaps,
                            )
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

/// Telemetry overhead on the batch engine: the same pool run with the
/// recorder disabled vs attached to a live session (including session
/// setup, span recording, and counter merging — the full `--trace-out`
/// cost). Acceptance budget: traced ≤ 5% slower than untraced.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let gaps = GapPenalties::pastis_defaults();
    let (seqs, tasks) = synth_batch(150.0, 1000);
    let cells = BatchAligner::<Blosum62>::batch_cells(&tasks, |id| seqs[id as usize].len());
    group.throughput(Throughput::Elements(cells));
    for &t in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("untraced", t), &t, |b, &t| {
            b.iter(|| {
                AlignPool::new(t).run_traceback(&tasks, |id| &seqs[id as usize], &Blosum62, gaps)
            })
        });
        group.bench_with_input(BenchmarkId::new("traced", t), &t, |b, &t| {
            b.iter(|| {
                let session = TraceSession::new();
                let pool = AlignPool::new(t).with_recorder(session.recorder(0));
                pool.run_traceback(&tasks, |id| &seqs[id as usize], &Blosum62, gaps)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sw_by_length,
    bench_bounded_kernels,
    bench_batch_parallel,
    bench_batch_multilane,
    bench_telemetry_overhead
);
criterion_main!(benches);
