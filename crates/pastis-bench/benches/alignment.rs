//! Criterion benches for the alignment kernels: full Smith–Waterman
//! throughput (CUPS) by sequence length, traceback overhead, and the
//! banded/x-drop variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pastis_align::banded::{sw_banded, sw_xdrop};
use pastis_align::matrices::Blosum62;
use pastis_align::sw::{sw_align, sw_score_only, GapPenalties};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_protein(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0..20u8)).collect()
}

fn bench_sw_by_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("smith_waterman");
    group.sample_size(20);
    let gaps = GapPenalties::pastis_defaults();
    for &len in &[64usize, 256, 512] {
        let q = random_protein(len, 1);
        let r = random_protein(len, 2);
        group.throughput(Throughput::Elements((len * len) as u64)); // cells
        group.bench_with_input(BenchmarkId::new("score_only", len), &len, |b, _| {
            b.iter(|| sw_score_only(&q, &r, &Blosum62, gaps))
        });
        group.bench_with_input(BenchmarkId::new("with_traceback", len), &len, |b, _| {
            b.iter(|| sw_align(&q, &r, &Blosum62, gaps))
        });
    }
    group.finish();
}

fn bench_bounded_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounded_kernels");
    group.sample_size(20);
    let gaps = GapPenalties::pastis_defaults();
    let q = random_protein(512, 3);
    let r = {
        // Homologous pair: copy with scattered substitutions.
        let mut r = q.clone();
        let mut rng = StdRng::seed_from_u64(4);
        for x in r.iter_mut() {
            if rng.gen_bool(0.15) {
                *x = rng.gen_range(0..20);
            }
        }
        r
    };
    for &w in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("banded", w), &w, |b, &w| {
            b.iter(|| sw_banded(&q, &r, &Blosum62, gaps, 0, 0, w))
        });
    }
    group.bench_function("xdrop_20", |b| {
        b.iter(|| sw_xdrop(&q, &r, &Blosum62, 0, 0, 20))
    });
    group.bench_function("full_reference", |b| {
        b.iter(|| sw_score_only(&q, &r, &Blosum62, gaps))
    });
    group.finish();
}

criterion_group!(benches, bench_sw_by_length, bench_bounded_kernels);
criterion_main!(benches);
