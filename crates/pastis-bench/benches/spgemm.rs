//! Criterion benches for the semiring SpGEMM kernels: hash vs heap
//! accumulators across compression-factor regimes, the row-partitioned
//! parallel kernel across worker counts, plus the overlap semiring — the
//! local kernel inside every SUMMA stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pastis_core::overlap::OverlapSemiring;
use pastis_sparse::{spgemm_hash, spgemm_heap, spgemm_parallel, CsrMatrix, PlusTimes, Triples};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(nrows: usize, ncols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Triples::new(nrows, ncols);
    for i in 0..nrows {
        let mut cols = std::collections::HashSet::new();
        while cols.len() < nnz_per_row.min(ncols) {
            cols.insert(rng.gen_range(0..ncols) as u32);
        }
        for c in cols {
            t.push(i as u32, c, rng.gen_range(-1.0..1.0));
        }
    }
    CsrMatrix::from_triples(t)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_kernels");
    group.sample_size(20);
    // Compression factor rises with density: more products merge per
    // output nonzero (the genomics regime is cf 1-10, Section V-B).
    for &density in &[4usize, 16, 48] {
        let a = random_matrix(512, 512, density, 1);
        let b = random_matrix(512, 512, density, 2);
        group.bench_with_input(BenchmarkId::new("hash", density), &density, |bch, _| {
            bch.iter(|| spgemm_hash(&PlusTimes::<f64>::new(), &a, &b))
        });
        group.bench_with_input(BenchmarkId::new("heap", density), &density, |bch, _| {
            bch.iter(|| spgemm_heap(&PlusTimes::<f64>::new(), &a, &b))
        });
    }
    group.finish();
}

fn bench_parallel_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_parallel");
    group.sample_size(20);
    let a = random_matrix(512, 512, 16, 1);
    let b = random_matrix(512, 512, 16, 2);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bch, &t| {
            bch.iter(|| spgemm_parallel(&PlusTimes::<f64>::new(), &a, &b, t))
        });
    }
    group.finish();
}

fn bench_overlap_semiring(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap_semiring");
    group.sample_size(20);
    // Sequences-by-kmers-like structure: tall, hypersparse columns.
    let mut rng = StdRng::seed_from_u64(7);
    let mut t = Triples::new(1000, 20_000);
    for i in 0..1000u32 {
        for _ in 0..60 {
            t.push(i, rng.gen_range(0..20_000) as u32, rng.gen_range(0..200u32));
        }
    }
    t.combine_duplicates(|a, b| *a = (*a).min(b));
    let a = CsrMatrix::from_triples(t);
    let at = a.transpose();
    group.bench_function("a_at_overlap", |bch| {
        bch.iter(|| spgemm_hash(&OverlapSemiring, &a, &at))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_parallel_kernel,
    bench_overlap_semiring
);
criterion_main!(benches);
