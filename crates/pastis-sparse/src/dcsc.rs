//! Compressed and doubly-compressed sparse column storage.
//!
//! CombBLAS stores local blocks in CSC and switches to DCSC (Buluç &
//! Gilbert, IPDPS'08 — the paper's reference [19]) when blocks become
//! *hypersparse*: after 2D partitioning over `√p × √p` ranks a block often
//! has far fewer nonzeros than columns, so the O(ncols) column-pointer
//! array of CSC dominates memory. DCSC stores pointers only for the
//! `nzc ≤ nnz` non-empty columns.

use crate::csr::CsrMatrix;
use crate::triples::{Index, Triples};

/// Compressed sparse column storage with sorted, duplicate-free columns.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowind: Vec<Index>,
    vals: Vec<T>,
}

impl<T: Clone> CscMatrix<T> {
    /// Build from triples, folding duplicate coordinates with `combine`.
    pub fn from_triples_combining(
        mut t: Triples<T>,
        mut combine: impl FnMut(&mut T, T),
    ) -> CscMatrix<T> {
        t.combine_duplicates(&mut combine);
        t.sort_col_major();
        let (nrows, ncols) = (t.nrows(), t.ncols());
        let mut colptr = vec![0usize; ncols + 1];
        for e in &t.entries {
            colptr[e.col as usize + 1] += 1;
        }
        for j in 0..ncols {
            colptr[j + 1] += colptr[j];
        }
        let mut rowind = Vec::with_capacity(t.entries.len());
        let mut vals = Vec::with_capacity(t.entries.len());
        for e in t.entries {
            rowind.push(e.row);
            vals.push(e.val);
        }
        CscMatrix {
            nrows,
            ncols,
            colptr,
            rowind,
            vals,
        }
    }

    /// Build from triples; panics on duplicate coordinates.
    pub fn from_triples(t: Triples<T>) -> CscMatrix<T> {
        Self::from_triples_combining(t, |_, _| panic!("duplicate coordinate in from_triples"))
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// Row indices and values of column `j`.
    pub fn col(&self, j: usize) -> (&[Index], &[T]) {
        let (s, e) = (self.colptr[j], self.colptr[j + 1]);
        (&self.rowind[s..e], &self.vals[s..e])
    }

    /// Convert to triples.
    pub fn to_triples(&self) -> Triples<T> {
        let mut t = Triples::new(self.nrows, self.ncols);
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, v) in rows.iter().zip(vals) {
                t.push(i, j as Index, v.clone());
            }
        }
        t
    }

    /// Convert to CSR.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        CsrMatrix::from_triples(self.to_triples())
    }
}

/// Doubly compressed sparse column storage: column pointers exist only for
/// non-empty columns (`jc` holds their indices).
#[derive(Debug, Clone, PartialEq)]
pub struct DcscMatrix<T> {
    nrows: usize,
    ncols: usize,
    /// Indices of non-empty columns, ascending.
    jc: Vec<Index>,
    /// `cp[k]..cp[k+1]` is the extent of column `jc[k]` in `ir`/`num`.
    cp: Vec<usize>,
    /// Row indices, sorted within each column.
    ir: Vec<Index>,
    /// Values.
    num: Vec<T>,
}

impl<T: Clone> DcscMatrix<T> {
    /// Build from triples, folding duplicate coordinates with `combine`.
    pub fn from_triples_combining(
        mut t: Triples<T>,
        mut combine: impl FnMut(&mut T, T),
    ) -> DcscMatrix<T> {
        t.combine_duplicates(&mut combine);
        t.sort_col_major();
        let (nrows, ncols) = (t.nrows(), t.ncols());
        let mut jc: Vec<Index> = Vec::new();
        let mut cp: Vec<usize> = vec![0];
        let mut ir: Vec<Index> = Vec::with_capacity(t.entries.len());
        let mut num: Vec<T> = Vec::with_capacity(t.entries.len());
        for e in t.entries {
            if jc.last() != Some(&e.col) {
                if !jc.is_empty() {
                    cp.push(ir.len());
                }
                jc.push(e.col);
            }
            ir.push(e.row);
            num.push(e.val);
        }
        cp.push(ir.len());
        if jc.is_empty() {
            cp = vec![0];
        }
        DcscMatrix {
            nrows,
            ncols,
            jc,
            cp,
            ir,
            num,
        }
    }

    /// Build from triples; panics on duplicates.
    pub fn from_triples(t: Triples<T>) -> DcscMatrix<T> {
        Self::from_triples_combining(t, |_, _| panic!("duplicate coordinate in from_triples"))
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (logical dimension, not stored columns).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.ir.len()
    }

    /// Number of non-empty columns (`nzc`).
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    /// Whether the matrix is hypersparse (`nnz < ncols`), the regime DCSC
    /// is designed for.
    pub fn is_hypersparse(&self) -> bool {
        self.nnz() < self.ncols
    }

    /// Iterate `(col, rows, vals)` over non-empty columns in ascending
    /// column order.
    pub fn iter_cols(&self) -> impl Iterator<Item = (Index, &[Index], &[T])> + '_ {
        (0..self.jc.len()).map(move |k| {
            let (s, e) = (self.cp[k], self.cp[k + 1]);
            (self.jc[k], &self.ir[s..e], &self.num[s..e])
        })
    }

    /// Row indices and values of column `j` (empty slices if `j` stores
    /// nothing). O(log nzc).
    pub fn col(&self, j: usize) -> (&[Index], &[T]) {
        match self.jc.binary_search(&(j as Index)) {
            Ok(k) => {
                let (s, e) = (self.cp[k], self.cp[k + 1]);
                (&self.ir[s..e], &self.num[s..e])
            }
            Err(_) => (&[], &[]),
        }
    }

    /// Convert to triples.
    pub fn to_triples(&self) -> Triples<T> {
        let mut t = Triples::new(self.nrows, self.ncols);
        for (j, rows, vals) in self.iter_cols() {
            for (&i, v) in rows.iter().zip(vals) {
                t.push(i, j, v.clone());
            }
        }
        t
    }

    /// Memory footprint in bytes: `O(nnz + nzc)`, independent of `ncols` —
    /// the whole point of double compression.
    pub fn payload_bytes(&self) -> usize {
        self.jc.len() * std::mem::size_of::<Index>()
            + self.cp.len() * std::mem::size_of::<usize>()
            + self.ir.len() * std::mem::size_of::<Index>()
            + self.num.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_triples() -> Triples<i32> {
        // 4x6, columns 1 and 4 non-empty.
        Triples::from_entries(4, 6, vec![(0, 1, 10), (3, 1, 11), (2, 4, 12)])
    }

    #[test]
    fn csc_roundtrip_and_access() {
        let m = CscMatrix::from_triples(sample_triples());
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(1).0, &[0, 3]);
        assert_eq!(m.col(0).0, &[] as &[Index]);
        let back = CscMatrix::from_triples(m.to_triples());
        assert_eq!(m, back);
    }

    #[test]
    fn csc_to_csr_agrees() {
        let m = CscMatrix::from_triples(sample_triples());
        let csr = m.to_csr();
        assert_eq!(csr.get(3, 1), Some(&11));
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn dcsc_structure() {
        let m = DcscMatrix::from_triples(sample_triples());
        assert_eq!(m.nzc(), 2);
        assert_eq!(m.nnz(), 3);
        assert!(m.is_hypersparse()); // 3 < 6
        assert_eq!(m.col(1).0, &[0, 3]);
        assert_eq!(m.col(4).0, &[2]);
        assert_eq!(m.col(0).0, &[] as &[Index]);
    }

    #[test]
    fn dcsc_roundtrip() {
        let m = DcscMatrix::from_triples(sample_triples());
        let back = DcscMatrix::from_triples(m.to_triples());
        assert_eq!(m, back);
    }

    #[test]
    fn dcsc_iter_cols_ascending() {
        let m = DcscMatrix::from_triples(sample_triples());
        let cols: Vec<Index> = m.iter_cols().map(|(j, _, _)| j).collect();
        assert_eq!(cols, vec![1, 4]);
    }

    #[test]
    fn dcsc_empty() {
        let m: DcscMatrix<i32> = DcscMatrix::from_triples(Triples::new(3, 1000));
        assert_eq!(m.nzc(), 0);
        assert_eq!(m.nnz(), 0);
        assert!(m.is_hypersparse());
        assert_eq!(m.col(500).0.len(), 0);
    }

    #[test]
    fn dcsc_beats_csc_memory_when_hypersparse() {
        // 2 nonzeros in a 10 x 100_000 matrix.
        let t = Triples::from_entries(10, 100_000, vec![(0, 5, 1u64), (9, 99_999, 2)]);
        let dcsc = DcscMatrix::from_triples(t.clone());
        // CSC column pointer array alone: (ncols + 1) * 8 bytes.
        let csc_colptr_bytes = (100_000 + 1) * std::mem::size_of::<usize>();
        assert!(dcsc.payload_bytes() < csc_colptr_bytes / 100);
    }

    #[test]
    fn dcsc_duplicates_combined() {
        let t = Triples::from_entries(2, 2, vec![(0, 0, 1u32), (0, 0, 5)]);
        let m = DcscMatrix::from_triples_combining(t, |a, b| *a += b);
        assert_eq!(m.col(0).1, &[6]);
    }

    #[test]
    fn dense_matrix_not_hypersparse() {
        let t = Triples::from_entries(2, 2, vec![(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]);
        let m = DcscMatrix::from_triples(t);
        assert!(!m.is_hypersparse());
        assert_eq!(m.nzc(), 2);
    }
}
