//! Intra-rank parallel SpGEMM — the sparse analog of the alignment side's
//! `AlignPool` (PR 1), bringing the local kernels up to the multithreaded
//! CombBLAS kernels the paper inherits (Nagasaka et al., ICPP'18).
//!
//! Two layers:
//!
//! * [`run_units`] — the deterministic chunk-claim primitive: `n_units`
//!   independent work units are claimed from a shared atomic counter by
//!   `t` scoped threads (the calling thread is worker 0, so a pool of `t`
//!   occupies exactly `t` OS threads — important under pre-blocking, where
//!   a concurrent sparse thread already owns the communicator), and the
//!   results are re-assembled **in unit order**. Reused by the baselines'
//!   candidate-discovery loops.
//! * [`spgemm_parallel`] — Gustavson's algorithm row-partitioned into
//!   fixed-size chunks executed through [`run_units`]. Every chunk runs
//!   the *same* per-row hash-accumulator kernel as [`crate::spgemm_hash`]
//!   (literally the same function), and chunks are stitched back in
//!   ascending row order, so the output — values *and* combine order — is
//!   bit-identical to the serial kernel for any thread count and any
//!   semiring, including non-commutative ones.
//!
//! [`SpGemmPool`] wraps kernel selection ([`SpGemmKind`]) around them: the
//! `auto` policy picks the parallel kernel when the pool has >1 worker and
//! enough rows to amortize chunk claims, and otherwise chooses between the
//! serial hash and heap kernels by merge fan-in. The average number of
//! B-rows merged per output row is an upper bound on the compression
//! factor (each sorted B row contributes a column at most once), so a low
//! fan-in bound means a low compression factor — the regime where the
//! heap's ordered merge beats hashing + sorting (Section V-B's
//! compression-factor discussion).

use std::sync::atomic::{AtomicUsize, Ordering};

use pastis_pool::{Engine, WorkPool};
use pastis_trace::{names, Component, Recorder, Track};

use crate::csr::CsrMatrix;
use crate::semiring::Semiring;
use crate::spgemm::{
    hash_row_into, spgemm_hash, spgemm_heap, HashAccumulator, SpGemmKind, SpGemmStats,
};
use crate::triples::Index;

/// Rows claimed per unit of work: small enough for dynamic balance over
/// ragged row costs, large enough to amortize the atomic claim.
const ROWS_PER_CHUNK: usize = 16;

/// `auto` only picks the parallel kernel when there are at least this many
/// rows (several chunks per worker); below it, chunk-claim overhead
/// dominates and a serial kernel wins.
const PARALLEL_MIN_ROWS: usize = 4 * ROWS_PER_CHUNK;

/// `auto` picks the heap kernel when the average merge fan-in (B-rows per
/// nonempty A row) is at or below this; the fan-in bounds the compression
/// factor from above, and a short k-way merge beats hash + sort.
const HEAP_MAX_FANIN: f64 = 8.0;

/// Deterministic chunk-claim parallel map: calls `work(worker, unit)`
/// exactly once for each `unit < n_units`, from whichever of `threads`
/// scoped workers claims the unit off a shared atomic counter, and returns
/// the results **in unit order**. The calling thread doubles as worker 0;
/// with one thread (or one unit) no threads are spawned at all.
///
/// Determinism contract: `work` must depend only on its `unit` argument —
/// then the returned vector is identical for every thread count, and any
/// order-sensitive stitching the caller does over it is too.
pub fn run_units<R, F>(threads: usize, n_units: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let workers = threads.max(1).min(n_units.max(1));
    if workers <= 1 {
        return (0..n_units).map(|u| work(0, u)).collect();
    }
    let next = AtomicUsize::new(0);
    let worker = |w: usize| {
        let mut out = Vec::new();
        loop {
            let u = next.fetch_add(1, Ordering::Relaxed);
            if u >= n_units {
                break;
            }
            out.push((u, work(w, u)));
        }
        out
    };
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (1..workers)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        let mut tagged = worker(0);
        for h in handles {
            tagged.extend(h.join().expect("spgemm worker panicked"));
        }
        tagged.sort_unstable_by_key(|&(u, _)| u);
        tagged.into_iter().map(|(_, r)| r).collect()
    })
}

/// Resolve a thread-count knob: `0` means one worker per available core.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Row-partitioned parallel SpGEMM: `C = A ⊗ B` under semiring `sr`,
/// computed by `threads` workers (`0` = one per core) claiming
/// fixed-size row chunks and stitched in ascending row order.
///
/// Bit-identical to [`spgemm_hash`] — same values, same combine order —
/// for any thread count and any semiring, because each row runs the same
/// per-row kernel and the stitch preserves row order. Stats are summed
/// over chunks, matching the serial counters exactly.
///
/// # Panics
///
/// Panics if `a.ncols() != b.nrows()`.
pub fn spgemm_parallel<S>(
    sr: &S,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
    threads: usize,
) -> (CsrMatrix<S::C>, SpGemmStats)
where
    S: Semiring + Sync,
    S::A: Sync,
    S::B: Sync,
    S::C: Send,
{
    spgemm_parallel_traced(sr, a, b, threads, &Recorder::disabled())
}

/// [`spgemm_parallel`] with telemetry: each claimed chunk emits a
/// `spgemm.row_chunk` span on its worker's [`Track::SpGemmWorker`]
/// sub-track (kept off the main rank track so phase totals never
/// double-count pool work). Observation-only — results are unchanged.
pub fn spgemm_parallel_traced<S>(
    sr: &S,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
    threads: usize,
    rec: &Recorder,
) -> (CsrMatrix<S::C>, SpGemmStats)
where
    S: Semiring + Sync,
    S::A: Sync,
    S::B: Sync,
    S::C: Send,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "SpGEMM dimension mismatch: {}x{} · {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let threads = resolve_threads(threads);
    let n_units = a.nrows().div_ceil(ROWS_PER_CHUNK);
    let chunks: Vec<Chunk<S::C>> = run_units(threads, n_units, |w, u| {
        row_chunk(sr, a, b, u, Track::SpGemmWorker(w as u32), rec)
    });
    stitch_chunks(a, b, chunks)
}

/// [`spgemm_parallel_traced`] executing on the unified [`WorkPool`] instead
/// of scoped per-call threads: chunks become pool units an idle alignment
/// worker can steal, and chunk spans land on [`Track::PoolWorker`]
/// sub-tracks. Bit-identical to every other kernel path — same chunking,
/// same per-row kernel, same row-order stitch.
pub fn spgemm_parallel_pooled<S>(
    sr: &S,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
    workers: &WorkPool,
    rec: &Recorder,
) -> (CsrMatrix<S::C>, SpGemmStats)
where
    S: Semiring + Sync,
    S::A: Sync,
    S::B: Sync,
    S::C: Send,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "SpGEMM dimension mismatch: {}x{} · {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let n_units = a.nrows().div_ceil(ROWS_PER_CHUNK);
    let chunks: Vec<Chunk<S::C>> = workers.run(Engine::Sparse, n_units, |u, slot| {
        row_chunk(sr, a, b, u, Track::PoolWorker(slot as u32), rec)
    });
    stitch_chunks(a, b, chunks)
}

/// One chunk's output: per-row lengths plus the concatenated row data.
type Chunk<C> = (Vec<usize>, Vec<Index>, Vec<C>, SpGemmStats);

/// Compute row chunk `u` with the shared per-row hash kernel, emitting its
/// `spgemm.row_chunk` span on `track` when telemetry is on. Depends only
/// on `u` — the determinism requirement of both execution backends.
fn row_chunk<S>(
    sr: &S,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
    u: usize,
    track: Track,
    rec: &Recorder,
) -> Chunk<S::C>
where
    S: Semiring,
{
    let start = u * ROWS_PER_CHUNK;
    let end = ((u + 1) * ROWS_PER_CHUNK).min(a.nrows());
    let mut span = rec.is_enabled().then(|| {
        rec.span(Component::SpGemm, names::SPAN_SPGEMM_ROW_CHUNK)
            .on_track(track)
            .arg("rows", (end - start) as u64)
    });
    let mut acc = HashAccumulator::<S::C>::with_capacity(16);
    let mut lens = Vec::with_capacity(end - start);
    let mut colind: Vec<Index> = Vec::new();
    let mut vals: Vec<S::C> = Vec::new();
    let mut stats = SpGemmStats::default();
    for i in start..end {
        let before = colind.len();
        hash_row_into(sr, a, b, i, &mut acc, &mut colind, &mut vals, &mut stats);
        lens.push(colind.len() - before);
    }
    if let Some(sp) = span.as_mut() {
        sp.push_arg("nnz", colind.len() as u64);
        sp.push_arg("products", stats.products);
    }
    (lens, colind, vals, stats)
}

/// Stitch chunk outputs (already in ascending unit = row order) into CSR.
fn stitch_chunks<A, B, C>(
    a: &CsrMatrix<A>,
    b: &CsrMatrix<B>,
    chunks: Vec<Chunk<C>>,
) -> (CsrMatrix<C>, SpGemmStats) {
    let total: usize = chunks.iter().map(|c| c.1.len()).sum();
    let mut rowptr = Vec::with_capacity(a.nrows() + 1);
    rowptr.push(0usize);
    let mut colind: Vec<Index> = Vec::with_capacity(total);
    let mut vals: Vec<C> = Vec::with_capacity(total);
    let mut stats = SpGemmStats::default();
    let mut end = 0usize;
    for (lens, ccols, cvals, cstats) in chunks {
        for l in lens {
            end += l;
            rowptr.push(end);
        }
        colind.extend(ccols);
        vals.extend(cvals);
        stats.merge(cstats);
    }
    (
        CsrMatrix::from_parts(a.nrows(), b.ncols(), rowptr, colind, vals),
        stats,
    )
}

/// Kernel-selection wrapper around the local SpGEMM kernels: holds the
/// worker count, the [`SpGemmKind`] policy, and an optional telemetry
/// recorder, and dispatches each multiplication to the chosen kernel.
///
/// Every kernel choice produces bit-identical output (the equivalence
/// tests below and the proptest sweep pin values *and* combine order), so
/// the policy only ever changes wall time — the same contract as the
/// alignment side's `AlignPool`.
#[derive(Debug, Clone)]
pub struct SpGemmPool {
    threads: usize,
    kind: SpGemmKind,
    recorder: Recorder,
    workers: Option<WorkPool>,
}

impl SpGemmPool {
    /// A pool of `threads` workers (`0` = one per available core) with the
    /// `auto` selection policy and telemetry off.
    pub fn new(threads: usize) -> SpGemmPool {
        SpGemmPool {
            threads: resolve_threads(threads),
            kind: SpGemmKind::Auto,
            recorder: Recorder::disabled(),
            workers: None,
        }
    }

    /// The exact legacy configuration: one worker, always the serial hash
    /// kernel. `summa` without an explicit pool runs this.
    pub fn serial() -> SpGemmPool {
        SpGemmPool::new(1).with_kind(SpGemmKind::Hash)
    }

    /// Set the kernel-selection policy.
    pub fn with_kind(mut self, kind: SpGemmKind) -> SpGemmPool {
        self.kind = kind;
        self
    }

    /// Attach a telemetry recorder: each multiplication then bumps a
    /// `spgemm.kernel.<name>` counter for the kernel it ran, and the
    /// parallel kernel emits per-chunk `spgemm.row_chunk` spans on
    /// [`Track::SpGemmWorker`] sub-tracks. Observation-only.
    pub fn with_recorder(mut self, recorder: Recorder) -> SpGemmPool {
        self.recorder = recorder;
        self
    }

    /// Submit parallel multiplications to a shared [`WorkPool`] instead of
    /// spawning scoped threads per call: row chunks become pool units, so
    /// idle alignment workers can steal them (and vice versa). Kernel
    /// *selection* then sizes against the unified pool (`workers + the
    /// submitting caller`), and chunk spans move to
    /// [`Track::PoolWorker`] sub-tracks. Results are bit-identical to the
    /// scoped-thread path.
    pub fn with_workers(mut self, workers: WorkPool) -> SpGemmPool {
        self.workers = Some(workers);
        self
    }

    /// Resolved worker count (never 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers `select` sizes the parallel kernel against: the unified
    /// pool (its workers plus the submitting caller) when one is attached,
    /// else the pool's own thread knob.
    fn effective_threads(&self) -> usize {
        self.workers
            .as_ref()
            .map_or(self.threads, |w| w.threads() + 1)
    }

    /// The attached unified pool, if any.
    pub fn workers(&self) -> Option<&WorkPool> {
        self.workers.as_ref()
    }

    /// The attached telemetry recorder (disabled recorder when none was
    /// attached — safe to record against either way).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The configured selection policy.
    pub fn kind(&self) -> SpGemmKind {
        self.kind
    }

    /// The concrete kernel `multiply` would run for these operands —
    /// `auto` resolved against the pool's worker count and the operands'
    /// shape/fan-in; never returns [`SpGemmKind::Auto`].
    pub fn select<A, B>(&self, a: &CsrMatrix<A>, b: &CsrMatrix<B>) -> SpGemmKind {
        match self.kind {
            SpGemmKind::Auto => {
                if self.effective_threads() > 1 && a.nrows() >= PARALLEL_MIN_ROWS {
                    return SpGemmKind::Parallel;
                }
                let rows = a.nonempty_rows();
                if rows == 0 || b.nnz() == 0 {
                    // Trivially empty output; the hash kernel's row loop
                    // is the cheapest way to produce it.
                    return SpGemmKind::Hash;
                }
                // Average B-rows merged per nonempty output row. This
                // upper-bounds the compression factor (a sorted B row
                // contributes each column at most once), so low fan-in ⇒
                // low compression ⇒ the heap's short ordered merge wins.
                let fanin = a.nnz() as f64 / rows as f64;
                if fanin <= HEAP_MAX_FANIN {
                    SpGemmKind::Heap
                } else {
                    SpGemmKind::Hash
                }
            }
            k => k,
        }
    }

    /// Multiply under the configured policy: `C = A ⊗ B`, bit-identical
    /// for every policy and worker count.
    pub fn multiply<S>(
        &self,
        sr: &S,
        a: &CsrMatrix<S::A>,
        b: &CsrMatrix<S::B>,
    ) -> (CsrMatrix<S::C>, SpGemmStats)
    where
        S: Semiring + Sync,
        S::A: Sync,
        S::B: Sync,
        S::C: Send,
    {
        let kind = self.select(a, b);
        self.recorder.add_counter(kind.counter_name(), 1.0);
        match kind {
            SpGemmKind::Hash => spgemm_hash(sr, a, b),
            SpGemmKind::Heap => spgemm_heap(sr, a, b),
            SpGemmKind::Parallel => match &self.workers {
                Some(wp) => spgemm_parallel_pooled(sr, a, b, wp, &self.recorder),
                None => spgemm_parallel_traced(sr, a, b, self.threads, &self.recorder),
            },
            SpGemmKind::Auto => unreachable!("select() never returns Auto"),
        }
    }

    /// The serving path's transpose-product entry point: multiply one
    /// query-block matrix against `B = Aᵀ` stored as column stripes (the
    /// persisted index layout — each stripe holds a contiguous range of
    /// reference columns, rows renumbered to the stripe), and stitch the
    /// per-stripe products back into one `a.nrows() × Σ stripe widths`
    /// matrix with globally ascending column ids.
    ///
    /// Each per-stripe product goes through [`SpGemmPool::multiply`], so
    /// per-entry combine order is the serial Gustavson order for every
    /// kernel and worker count — the stitched output is bit-identical to
    /// multiplying against the unstriped `B`, per stripe decomposition
    /// (pinned by this module's tests).
    pub fn multiply_striped<'b, S>(
        &self,
        sr: &S,
        a: &CsrMatrix<S::A>,
        stripes: impl IntoIterator<Item = &'b CsrMatrix<S::B>>,
    ) -> (CsrMatrix<S::C>, SpGemmStats)
    where
        S: Semiring + Sync,
        S::A: Sync,
        S::B: Sync + 'b,
        S::C: Send,
    {
        // (global column offset, rowptr, colind, vals) of one stripe product.
        type StripePart<V> = (usize, Vec<usize>, Vec<Index>, Vec<V>);
        let nrows = a.nrows();
        let mut stats = SpGemmStats::default();
        let mut parts: Vec<StripePart<S::C>> = Vec::new();
        let mut total_cols = 0usize;
        for b in stripes {
            let (c, st) = self.multiply(sr, a, b);
            stats.products += st.products;
            stats.merged_nnz += st.merged_nnz;
            let (_, ncols, rowptr, colind, vals) = c.into_parts();
            parts.push((total_cols, rowptr, colind, vals));
            total_cols += ncols;
        }
        let total_nnz: usize = parts.iter().map(|p| p.2.len()).sum();
        let mut rowptr = Vec::with_capacity(nrows + 1);
        rowptr.push(0usize);
        let mut colind: Vec<Index> = Vec::with_capacity(total_nnz);
        let mut vals: Vec<S::C> = Vec::with_capacity(total_nnz);
        // Stitch row-major: per output row, each stripe's run of columns is
        // shifted by the stripe's global offset; stripe order is ascending,
        // so each stitched row stays sorted.
        let mut out: Vec<Vec<(Index, S::C)>> = (0..nrows).map(|_| Vec::new()).collect();
        for (offset, p_rowptr, p_colind, p_vals) in parts {
            let mut entries = p_colind.into_iter().zip(p_vals);
            for (i, w) in p_rowptr.windows(2).enumerate() {
                for _ in w[0]..w[1] {
                    let (c, v) = entries.next().expect("rowptr spans nnz");
                    out[i].push((c + offset as Index, v));
                }
            }
        }
        for row in out {
            for (c, v) in row {
                colind.push(c);
                vals.push(v);
            }
            rowptr.push(colind.len());
        }
        (
            CsrMatrix::from_parts(nrows, total_cols, rowptr, colind, vals),
            stats,
        )
    }
}

impl Default for SpGemmPool {
    /// Equivalent to [`SpGemmPool::serial`].
    fn default() -> SpGemmPool {
        SpGemmPool::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;
    use crate::triples::Triples;
    use pastis_trace::TraceSession;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(nrows: usize, ncols: usize, density: f64, seed: u64) -> CsrMatrix<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Triples::new(nrows, ncols);
        for i in 0..nrows as Index {
            for j in 0..ncols as Index {
                if rng.gen_bool(density) {
                    t.push(i, j, rng.gen_range(1u32..100));
                }
            }
        }
        CsrMatrix::from_triples(t)
    }

    #[test]
    fn run_units_preserves_unit_order() {
        for threads in [1usize, 2, 3, 8] {
            let out = run_units(threads, 100, |_, u| u * u);
            assert_eq!(
                out,
                (0..100).map(|u| u * u).collect::<Vec<_>>(),
                "t={threads}"
            );
        }
        let empty: Vec<usize> = run_units(4, 0, |_, u| u);
        assert!(empty.is_empty());
    }

    #[test]
    fn striped_product_matches_unstriped_for_any_decomposition() {
        let a = random_matrix(40, 30, 0.2, 7);
        let b = random_matrix(30, 53, 0.15, 8);
        let sr = PlusTimes::<u32>::new();
        let pool = SpGemmPool::new(3);
        let (want, want_stats) = spgemm_hash(&sr, &a, &b);
        for width in [1usize, 7, 16, 53, 60] {
            let mut stripes = Vec::new();
            let mut lo = 0;
            while lo < b.ncols() {
                let hi = (lo + width).min(b.ncols());
                stripes.push(b.extract_cols(lo, hi));
                lo = hi;
            }
            let (got, stats) = pool.multiply_striped(&sr, &a, stripes.iter());
            assert_eq!(got, want, "width {width}");
            assert_eq!(stats.merged_nnz, want_stats.merged_nnz, "width {width}");
        }
        // No stripes at all: an empty product with zero columns.
        let (empty, _) = pool.multiply_striped(&sr, &a, std::iter::empty());
        assert_eq!(empty.nrows(), a.nrows());
        assert_eq!(empty.ncols(), 0);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn parallel_matches_hash_across_thread_counts() {
        let a = random_matrix(97, 64, 0.12, 1);
        let b = random_matrix(64, 83, 0.15, 2);
        let sr = PlusTimes::<u32>::new();
        let (want, want_stats) = spgemm_hash(&sr, &a, &b);
        for t in [1usize, 2, 3, 8] {
            let (got, stats) = spgemm_parallel(&sr, &a, &b, t);
            assert_eq!(got, want, "t={t}");
            assert_eq!(stats, want_stats, "t={t}");
        }
    }

    #[test]
    fn parallel_handles_empty_and_tiny() {
        let sr = PlusTimes::<u32>::new();
        let a: CsrMatrix<u32> = CsrMatrix::empty(0, 5);
        let b: CsrMatrix<u32> = CsrMatrix::empty(5, 3);
        let (c, stats) = spgemm_parallel(&sr, &a, &b, 4);
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (0, 3, 0));
        assert_eq!(stats.products, 0);
        let a1 = random_matrix(1, 4, 0.9, 3);
        let b1 = random_matrix(4, 4, 0.9, 4);
        let (got, _) = spgemm_parallel(&sr, &a1, &b1, 8);
        assert_eq!(got, spgemm_hash(&sr, &a1, &b1).0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn parallel_dimension_mismatch_panics() {
        let a: CsrMatrix<u32> = CsrMatrix::empty(2, 3);
        let b: CsrMatrix<u32> = CsrMatrix::empty(2, 2);
        let _ = spgemm_parallel(&PlusTimes::new(), &a, &b, 2);
    }

    /// Order-sensitive semiring: combine concatenates, exposing any
    /// difference in accumulation order between kernels or thread counts.
    struct Concat;
    impl Semiring for Concat {
        type A = u32;
        type B = u32;
        type C = Vec<u32>;
        fn multiply(&self, a: &u32, b: &u32) -> Vec<u32> {
            vec![a * 100 + b]
        }
        fn combine(&self, acc: &mut Vec<u32>, mut incoming: Vec<u32>) {
            acc.append(&mut incoming);
        }
    }

    #[test]
    fn parallel_preserves_combine_order_for_noncommutative_semiring() {
        // Wide enough to span several row chunks; values and the per-entry
        // combine order must match the serial kernels exactly.
        let a = random_matrix(80, 40, 0.2, 5);
        let b = random_matrix(40, 50, 0.25, 6);
        let (want, _) = spgemm_hash(&Concat, &a, &b);
        let (heap, _) = spgemm_heap(&Concat, &a, &b);
        assert_eq!(want, heap);
        for t in [1usize, 2, 3, 8] {
            let (got, _) = spgemm_parallel(&Concat, &a, &b, t);
            assert_eq!(got, want, "t={t}");
        }
    }

    #[test]
    fn parallel_survives_forced_accumulator_growth() {
        // Dense rows force repeated HashAccumulator growth inside chunks.
        let a = random_matrix(40, 8, 0.9, 7);
        let b = random_matrix(8, 600, 0.95, 8);
        let sr = PlusTimes::<u32>::new();
        let (want, want_stats) = spgemm_hash(&sr, &a, &b);
        assert!(want.row(0).0.len() > 500, "growth case not dense enough");
        for t in [1usize, 3, 8] {
            let (got, stats) = spgemm_parallel(&sr, &a, &b, t);
            assert_eq!(got, want, "t={t}");
            assert_eq!(stats, want_stats, "t={t}");
        }
    }

    #[test]
    fn pool_zero_threads_means_auto() {
        assert!(SpGemmPool::new(0).threads() >= 1);
        assert_eq!(SpGemmPool::new(3).threads(), 3);
        assert_eq!(SpGemmPool::serial().threads(), 1);
        assert_eq!(SpGemmPool::serial().kind(), SpGemmKind::Hash);
        assert_eq!(SpGemmPool::default().kind(), SpGemmKind::Hash);
    }

    #[test]
    fn auto_selection_policy() {
        // Big operand + multi-worker pool → parallel.
        let big = random_matrix(200, 64, 0.2, 9);
        let b = random_matrix(64, 64, 0.2, 10);
        let pool = SpGemmPool::new(4);
        assert_eq!(pool.select(&big, &b), SpGemmKind::Parallel);
        // One worker → serial kernel chosen by fan-in: ~13 nnz/row → hash.
        let serial_auto = SpGemmPool::new(1);
        assert_eq!(serial_auto.select(&big, &b), SpGemmKind::Hash);
        // Low fan-in (≤ HEAP_MAX_FANIN B-rows per output row) → heap.
        let thin = random_matrix(200, 64, 0.05, 11);
        assert!((thin.nnz() as f64 / thin.nonempty_rows() as f64) <= HEAP_MAX_FANIN);
        assert_eq!(serial_auto.select(&thin, &b), SpGemmKind::Heap);
        // Small operands never pick parallel even with workers available.
        let tiny = random_matrix(8, 8, 0.5, 12);
        assert_ne!(pool.select(&tiny, &tiny), SpGemmKind::Parallel);
        // Forced kinds pass through untouched.
        for k in [SpGemmKind::Hash, SpGemmKind::Heap, SpGemmKind::Parallel] {
            assert_eq!(pool.clone().with_kind(k).select(&big, &b), k);
        }
    }

    #[test]
    fn pool_multiply_is_kernel_invariant() {
        let a = random_matrix(120, 48, 0.15, 13);
        let b = random_matrix(48, 70, 0.2, 14);
        let sr = PlusTimes::<u32>::new();
        let (want, want_stats) = spgemm_hash(&sr, &a, &b);
        for kind in [
            SpGemmKind::Auto,
            SpGemmKind::Hash,
            SpGemmKind::Heap,
            SpGemmKind::Parallel,
        ] {
            for t in [1usize, 4] {
                let pool = SpGemmPool::new(t).with_kind(kind);
                let (got, stats) = pool.multiply(&sr, &a, &b);
                assert_eq!(got, want, "kind={kind} t={t}");
                assert_eq!(stats, want_stats, "kind={kind} t={t}");
            }
        }
    }

    #[test]
    fn traced_pool_emits_chunk_spans_and_kernel_counters() {
        let a = random_matrix(100, 32, 0.2, 15);
        let b = random_matrix(32, 40, 0.2, 16);
        let sr = PlusTimes::<u32>::new();
        let session = TraceSession::new();
        let rec = session.recorder(0);
        let pool = SpGemmPool::new(2)
            .with_kind(SpGemmKind::Parallel)
            .with_recorder(rec.clone());
        let (got, _) = pool.multiply(&sr, &a, &b);
        assert_eq!(got, spgemm_hash(&sr, &a, &b).0);

        let spans = rec.snapshot_spans();
        // 100 rows / 16 per chunk = 7 chunk spans, all on worker tracks.
        assert_eq!(spans.len(), 7);
        let mut rows_total = 0u64;
        for s in &spans {
            assert_eq!(s.name, names::SPAN_SPGEMM_ROW_CHUNK);
            assert!(matches!(s.track, Track::SpGemmWorker(_)), "{:?}", s.track);
            rows_total += s.args.iter().find(|(n, _)| *n == "rows").unwrap().1;
        }
        assert_eq!(rows_total, 100);
        assert_eq!(rec.counters().get("spgemm.kernel.parallel"), Some(&1.0));

        // The serial kernels bump their own counters and emit no spans.
        let rec2 = session.recorder(1);
        let _ = SpGemmPool::serial()
            .with_recorder(rec2.clone())
            .multiply(&sr, &a, &b);
        let _ = SpGemmPool::new(1)
            .with_kind(SpGemmKind::Heap)
            .with_recorder(rec2.clone())
            .multiply(&sr, &a, &b);
        assert!(rec2.snapshot_spans().is_empty());
        assert_eq!(rec2.counters().get("spgemm.kernel.hash"), Some(&1.0));
        assert_eq!(rec2.counters().get("spgemm.kernel.heap"), Some(&1.0));
    }

    #[test]
    fn pooled_kernel_matches_hash_and_preserves_combine_order() {
        let a = random_matrix(97, 64, 0.12, 1);
        let b = random_matrix(64, 83, 0.15, 2);
        let sr = PlusTimes::<u32>::new();
        let (want, want_stats) = spgemm_hash(&sr, &a, &b);
        let (cat_want, _) = spgemm_hash(&Concat, &a, &b);
        for workers in [0usize, 1, 3] {
            let wp = WorkPool::with_exact_workers(workers);
            let rec = Recorder::disabled();
            let (got, stats) = spgemm_parallel_pooled(&sr, &a, &b, &wp, &rec);
            assert_eq!(got, want, "workers={workers}");
            assert_eq!(stats, want_stats, "workers={workers}");
            let (cat_got, _) = spgemm_parallel_pooled(&Concat, &a, &b, &wp, &rec);
            assert_eq!(cat_got, cat_want, "workers={workers}");
        }
    }

    #[test]
    fn pool_backed_multiply_uses_pool_worker_tracks() {
        let a = random_matrix(100, 32, 0.2, 15);
        let b = random_matrix(32, 40, 0.2, 16);
        let sr = PlusTimes::<u32>::new();
        let session = TraceSession::new();
        let rec = session.recorder(0);
        let wp = WorkPool::with_exact_workers(1);
        let pool = SpGemmPool::new(1)
            .with_kind(SpGemmKind::Parallel)
            .with_recorder(rec.clone())
            .with_workers(wp.clone());
        assert!(pool.workers().is_some());
        let (got, _) = pool.multiply(&sr, &a, &b);
        assert_eq!(got, spgemm_hash(&sr, &a, &b).0);
        // Same chunking as the scoped path (100 rows → 7 chunks), but the
        // spans now live on unified-pool tracks.
        let spans = rec.snapshot_spans();
        assert_eq!(spans.len(), 7);
        let mut rows_total = 0u64;
        for s in &spans {
            assert_eq!(s.name, names::SPAN_SPGEMM_ROW_CHUNK);
            assert!(matches!(s.track, Track::PoolWorker(_)), "{:?}", s.track);
            rows_total += s.args.iter().find(|(n, _)| *n == "rows").unwrap().1;
        }
        assert_eq!(rows_total, 100);
    }

    #[test]
    fn attached_pool_drives_auto_selection() {
        let big = random_matrix(200, 64, 0.2, 9);
        let b = random_matrix(64, 64, 0.2, 10);
        // One own thread, but a 3-worker unified pool behind it: auto must
        // size against the pool and pick the parallel kernel.
        let pool = SpGemmPool::new(1).with_workers(WorkPool::with_exact_workers(3));
        assert_eq!(pool.select(&big, &b), SpGemmKind::Parallel);
        // A workerless pool (caller-only) leaves auto at serial choices.
        let solo = SpGemmPool::new(4).with_workers(WorkPool::with_exact_workers(0));
        assert_ne!(solo.select(&big, &b), SpGemmKind::Parallel);
    }

    #[test]
    fn kind_parse_roundtrip() {
        for (s, k) in [
            ("auto", SpGemmKind::Auto),
            ("hash", SpGemmKind::Hash),
            ("heap", SpGemmKind::Heap),
            ("parallel", SpGemmKind::Parallel),
        ] {
            assert_eq!(SpGemmKind::parse(s), Ok(k));
            assert_eq!(k.to_string(), s);
        }
        assert!(SpGemmKind::parse("gpu").is_err());
        assert_eq!(SpGemmKind::default(), SpGemmKind::Auto);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The tentpole contract: all three kernels agree — values and
        /// combine order — for every thread count, on both a commutative
        /// and an order-revealing non-commutative semiring.
        #[test]
        fn kernels_agree_for_every_thread_count(
            seed in 0u64..1_000_000,
            nrows in 1usize..90,
            inner in 1usize..40,
            ncols in 1usize..60,
            density in 0.02f64..0.4,
        ) {
            let a = random_matrix(nrows, inner, density, seed);
            let b = random_matrix(inner, ncols, density, seed ^ 0x9e37_79b9);
            let sr = PlusTimes::<u32>::new();
            let (want, want_stats) = spgemm_hash(&sr, &a, &b);
            let (heap, heap_stats) = spgemm_heap(&sr, &a, &b);
            prop_assert_eq!(&heap, &want);
            prop_assert_eq!(heap_stats, want_stats);
            let (cat_want, _) = spgemm_hash(&Concat, &a, &b);
            let (cat_heap, _) = spgemm_heap(&Concat, &a, &b);
            prop_assert_eq!(&cat_heap, &cat_want);
            for t in [1usize, 2, 3, 8] {
                let (got, stats) = spgemm_parallel(&sr, &a, &b, t);
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(stats, want_stats);
                let (cat_got, _) = spgemm_parallel(&Concat, &a, &b, t);
                prop_assert_eq!(&cat_got, &cat_want);
            }
        }
    }
}
