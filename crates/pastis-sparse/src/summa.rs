//! 2D Sparse SUMMA and the paper's Blocked 2D Sparse SUMMA.
//!
//! Plain Sparse SUMMA (Buluç & Gilbert, SISC'12 — the paper's reference
//! [22]) computes `C = A·B` on a `√p × √p` grid in `√p` stages: at stage
//! `k`, the ranks holding `A(·,k)` broadcast along their grid row, the
//! ranks holding `B(k,·)` broadcast along their grid column, and every rank
//! multiplies the received pair locally, accumulating partials.
//!
//! The paper's innovation (Section VI-A) generalizes this with arbitrary
//! row/column blocking factors `br × bc`: `A` is split into `br` row
//! stripes and `B` into `bc` column stripes, **each stripe distributed over
//! the entire grid**, and the output is produced one `C(r,c)` block at a
//! time — each block a full SUMMA over stripe `r` of `A` and stripe `c` of
//! `B`. Forming `C` incrementally bounds the peak memory of the similarity
//! search at the cost of broadcasting the inputs multiple times
//! (`2α(br·bc)√p log√p + βs(br+bc)√p log√p`).
//!
//! Both algorithms apply the semiring `combine` in ascending inner-index
//! order (stage order is ascending, and stages own contiguous ascending
//! inner ranges), so results are *identical* to a serial SpGEMM for any
//! associative semiring — the determinism property PASTIS advertises
//! against DIAMOND/MMseqs2.

use pastis_comm::grid::{BlockDist1D, ProcessGrid};
use pastis_comm::Communicator;

use crate::csr::CsrMatrix;
use crate::distmat::{DistElem, DistSparseMatrix};
use crate::semiring::Semiring;
use crate::spgemm::{spgemm_hash, SpGemmStats};
use crate::spops::spadd;
use crate::triples::Triples;

/// Distributed SpGEMM `C = A ⊗ B` via 2D Sparse SUMMA.
///
/// Collective over `grid`; returns this rank's block of `C` wrapped as a
/// distributed matrix, plus this rank's local work counters.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn summa<S, C>(
    grid: &ProcessGrid<C>,
    sr: &S,
    a: &DistSparseMatrix<S::A>,
    b: &DistSparseMatrix<S::B>,
) -> (DistSparseMatrix<S::C>, SpGemmStats)
where
    S: Semiring,
    S::A: DistElem,
    S::B: DistElem,
    S::C: DistElem,
    C: Communicator,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "SUMMA inner dimension mismatch: {}x{} · {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let shape = grid.shape();
    let q = shape.rows;
    debug_assert_eq!(shape.rows, shape.cols, "SUMMA requires a square grid");

    let my_row = grid.my_row();
    let my_col = grid.my_col();
    let inner = BlockDist1D::new(a.ncols(), q);

    let mut stats = SpGemmStats::default();
    let c_rows = a.row_dist().part_len(my_row);
    let c_cols = b.col_dist().part_len(my_col);
    let mut c_local: CsrMatrix<S::C> = CsrMatrix::empty(c_rows, c_cols);

    for k in 0..q {
        // Broadcast A's stage block along grid rows (root: grid column k).
        let (a_send, a_bytes) = if my_col == k {
            let m = a.local().clone();
            let b = m.payload_bytes();
            (m, b)
        } else {
            (CsrMatrix::empty(c_rows, inner.part_len(k)), 0)
        };
        let a_recv = grid.row_comm().broadcast(k, a_send, a_bytes);

        // Broadcast B's stage block along grid columns (root: grid row k).
        let (b_send, b_bytes) = if my_row == k {
            let m = b.local().clone();
            let bb = m.payload_bytes();
            (m, bb)
        } else {
            (CsrMatrix::empty(inner.part_len(k), c_cols), 0)
        };
        let b_recv = grid.col_comm().broadcast(k, b_send, b_bytes);

        let (partial, pstats) = spgemm_hash(sr, &a_recv, &b_recv);
        stats.merge(pstats);
        // Stage partials arrive in ascending inner-index order, so this
        // accumulation preserves the serial combine order.
        c_local = spadd(&c_local, &partial, |acc, inc| sr.combine(acc, inc));
    }
    // merged_nnz counted per-stage over-counts coordinates merged across
    // stages; report the final local nnz instead.
    stats.merged_nnz = c_local.nnz() as u64;
    (
        DistSparseMatrix::from_local_block(grid, a.nrows(), b.ncols(), c_local),
        stats,
    )
}

/// The Blocked 2D Sparse SUMMA driver: `A` held as `br` row stripes and `B`
/// as `bc` column stripes, each stripe distributed over the whole grid, so
/// output blocks `C(r,c)` can be produced (and discarded) one at a time.
pub struct BlockedSumma<A, B> {
    a_stripes: Vec<DistSparseMatrix<A>>,
    b_stripes: Vec<DistSparseMatrix<B>>,
    row_stripes: BlockDist1D,
    col_stripes: BlockDist1D,
}

impl<A: DistElem, B: DistElem> BlockedSumma<A, B> {
    /// Distribute `a` (as `br` row stripes) and `b` (as `bc` column
    /// stripes) over `grid`. Every rank may contribute an arbitrary subset
    /// of the global entries, as in
    /// [`DistSparseMatrix::from_global_triples`]; duplicates are folded
    /// with the respective combiner.
    pub fn from_triples<C: Communicator>(
        grid: &ProcessGrid<C>,
        a: Triples<A>,
        b: Triples<B>,
        br: usize,
        bc: usize,
        combine_a: impl Fn(&mut A, A),
        combine_b: impl Fn(&mut B, B),
    ) -> BlockedSumma<A, B> {
        assert!(br >= 1 && bc >= 1, "blocking factors must be positive");
        assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
        assert!(
            br <= a.nrows().max(1) && bc <= b.ncols().max(1),
            "more blocks than rows/columns"
        );
        let row_stripes = BlockDist1D::new(a.nrows(), br);
        let col_stripes = BlockDist1D::new(b.ncols(), bc);
        let inner = a.ncols();

        // Partition A's entries by row stripe, reindexing rows to be
        // stripe-local.
        let (a_nrows, a_ncols) = (a.nrows(), a.ncols());
        let mut a_parts: Vec<Triples<A>> = (0..br)
            .map(|r| Triples::new(row_stripes.part_len(r), a_ncols))
            .collect();
        for e in a.entries {
            let (stripe, local_row) = row_stripes.to_local(e.row as usize);
            a_parts[stripe].push(local_row as u32, e.col, e.val);
        }
        let _ = a_nrows;

        let (b_nrows, b_ncols) = (b.nrows(), b.ncols());
        let mut b_parts: Vec<Triples<B>> = (0..bc)
            .map(|c| Triples::new(b_nrows, col_stripes.part_len(c)))
            .collect();
        for e in b.entries {
            let (stripe, local_col) = col_stripes.to_local(e.col as usize);
            b_parts[stripe].push(e.row, local_col as u32, e.val);
        }
        let _ = b_ncols;

        let a_stripes = a_parts
            .into_iter()
            .enumerate()
            .map(|(r, t)| {
                DistSparseMatrix::from_global_triples(
                    grid,
                    row_stripes.part_len(r),
                    inner,
                    t,
                    |x, y| combine_a(x, y),
                )
            })
            .collect();
        let b_stripes = b_parts
            .into_iter()
            .enumerate()
            .map(|(c, t)| {
                DistSparseMatrix::from_global_triples(
                    grid,
                    inner,
                    col_stripes.part_len(c),
                    t,
                    |x, y| combine_b(x, y),
                )
            })
            .collect();
        BlockedSumma {
            a_stripes,
            b_stripes,
            row_stripes,
            col_stripes,
        }
    }

    /// Row blocking factor `br`.
    pub fn br(&self) -> usize {
        self.row_stripes.parts
    }

    /// Column blocking factor `bc`.
    pub fn bc(&self) -> usize {
        self.col_stripes.parts
    }

    /// Global row range `[start, end)` of output block row `r`.
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        let s = self.row_stripes.part_offset(r);
        (s, s + self.row_stripes.part_len(r))
    }

    /// Global column range `[start, end)` of output block column `c`.
    pub fn col_range(&self, c: usize) -> (usize, usize) {
        let s = self.col_stripes.part_offset(c);
        (s, s + self.col_stripes.part_len(c))
    }

    /// The distributed row stripe `r` of `A`.
    pub fn a_stripe(&self, r: usize) -> &DistSparseMatrix<A> {
        &self.a_stripes[r]
    }

    /// The distributed column stripe `c` of `B`.
    pub fn b_stripe(&self, c: usize) -> &DistSparseMatrix<B> {
        &self.b_stripes[c]
    }

    /// Compute output block `C(r, c) = A(r,·) ⊗ B(·,c)` with one full
    /// SUMMA (collective). The result is a `stripe_r × stripe_c` matrix
    /// distributed over the grid; its global position is given by
    /// [`BlockedSumma::row_range`] / [`BlockedSumma::col_range`].
    pub fn multiply_block<S, C>(
        &self,
        grid: &ProcessGrid<C>,
        sr: &S,
        r: usize,
        c: usize,
    ) -> (DistSparseMatrix<S::C>, SpGemmStats)
    where
        S: Semiring<A = A, B = B>,
        S::C: DistElem,
        C: Communicator,
    {
        assert!(r < self.br() && c < self.bc(), "block index out of range");
        summa(grid, sr, &self.a_stripes[r], &self.b_stripes[c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;
    use crate::triples::Index;
    use pastis_comm::{run_threaded, SelfComm};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_triples(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Triples<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Triples::new(nrows, ncols);
        let mut seen = std::collections::HashSet::new();
        while seen.len() < nnz {
            let r = rng.gen_range(0..nrows) as Index;
            let c = rng.gen_range(0..ncols) as Index;
            if seen.insert((r, c)) {
                t.push(r, c, rng.gen_range(-4..5) as f64);
            }
        }
        t
    }

    fn serial_product(a: &Triples<f64>, b: &Triples<f64>) -> Vec<(Index, Index, f64)> {
        let am = CsrMatrix::from_triples(a.clone());
        let bm = CsrMatrix::from_triples(b.clone());
        let (c, _) = spgemm_hash(&PlusTimes::new(), &am, &bm);
        c.to_triples().to_sorted_tuples()
    }

    #[test]
    fn summa_single_rank_matches_serial() {
        let a = random_triples(10, 8, 30, 1);
        let b = random_triples(8, 12, 25, 2);
        let want = serial_product(&a, &b);
        let grid = ProcessGrid::square(SelfComm::new());
        let da = DistSparseMatrix::from_global_triples(&grid, 10, 8, a, |_, _| {});
        let db = DistSparseMatrix::from_global_triples(&grid, 8, 12, b, |_, _| {});
        let (c, stats) = summa(&grid, &PlusTimes::new(), &da, &db);
        assert_eq!(c.gather_global(&grid).to_sorted_tuples(), want);
        assert_eq!(stats.merged_nnz as usize, c.nnz_local());
    }

    fn summa_threaded_case(p: usize, dims: (usize, usize, usize), seed: u64) {
        let (n, m, l) = dims;
        let a = random_triples(n, m, n * 3, seed);
        let b = random_triples(m, l, m * 3, seed + 1);
        let want = serial_product(&a, &b);
        let a2 = a.clone();
        let b2 = b.clone();
        let out = run_threaded(p, move |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            let (n, m, l) = dims;
            let (ta, tb) = if c.rank() == 0 {
                (a2.clone(), b2.clone())
            } else {
                (Triples::new(n, m), Triples::new(m, l))
            };
            let da = DistSparseMatrix::from_global_triples(&grid, n, m, ta, |_, _| {});
            let db = DistSparseMatrix::from_global_triples(&grid, m, l, tb, |_, _| {});
            let (cm, _) = summa(&grid, &PlusTimes::new(), &da, &db);
            cm.gather_global(&grid).to_sorted_tuples()
        });
        for got in out {
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn summa_4_ranks_matches_serial() {
        summa_threaded_case(4, (10, 8, 12), 10);
    }

    #[test]
    fn summa_9_ranks_matches_serial() {
        summa_threaded_case(9, (13, 11, 9), 20);
    }

    #[test]
    fn summa_9_ranks_square_symmetric_product() {
        // C = A·Aᵀ as in the overlap computation.
        let n = 15;
        let a = random_triples(n, 7, 40, 33);
        let at = a.clone().transpose();
        let want = serial_product(&a, &at);
        let out = run_threaded(9, move |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            let ta = if c.rank() == 0 {
                a.clone()
            } else {
                Triples::new(n, 7)
            };
            let da = DistSparseMatrix::from_global_triples(&grid, n, 7, ta, |_, _| {});
            let dat = da.transpose(&grid);
            let (cm, _) = summa(&grid, &PlusTimes::new(), &da, &dat);
            cm.gather_global(&grid).to_sorted_tuples()
        });
        for got in out {
            assert_eq!(got, want);
        }
    }

    /// Non-commutative (order-revealing) semiring to pin down stage-order
    /// determinism of distributed accumulation.
    struct Trace;
    impl Semiring for Trace {
        type A = u32;
        type B = u32;
        type C = Vec<u32>;
        fn multiply(&self, a: &u32, b: &u32) -> Vec<u32> {
            vec![a * 1000 + b]
        }
        fn combine(&self, acc: &mut Vec<u32>, mut inc: Vec<u32>) {
            acc.append(&mut inc);
        }
    }

    #[test]
    fn summa_combine_order_matches_serial_for_noncommutative_semiring() {
        // Dense-ish 6x6 inputs so many inner indices hit each output.
        let mut ta = Triples::new(6, 6);
        let mut tb = Triples::new(6, 6);
        for i in 0..6u32 {
            for j in 0..6u32 {
                if (i + j) % 2 == 0 {
                    ta.push(i, j, i * 10 + j);
                }
                if (i * j) % 3 != 1 {
                    tb.push(i, j, i * 10 + j);
                }
            }
        }
        let am = CsrMatrix::from_triples(ta.clone());
        let bm = CsrMatrix::from_triples(tb.clone());
        let (serial, _) = spgemm_hash(&Trace, &am, &bm);
        let want = serial.to_triples().to_sorted_tuples();
        for p in [1usize, 4, 9] {
            let ta = ta.clone();
            let tb = tb.clone();
            let out = run_threaded(p, move |c| {
                let world = c.split(0, c.rank());
                let grid = ProcessGrid::square(world);
                let (a, b) = if c.rank() == 0 {
                    (ta.clone(), tb.clone())
                } else {
                    (Triples::new(6, 6), Triples::new(6, 6))
                };
                let da = DistSparseMatrix::from_global_triples(&grid, 6, 6, a, |_, _| {});
                let db = DistSparseMatrix::from_global_triples(&grid, 6, 6, b, |_, _| {});
                let (cm, _) = summa(&grid, &Trace, &da, &db);
                cm.gather_global(&grid).to_sorted_tuples()
            });
            for got in out {
                assert_eq!(got, want, "p={p}");
            }
        }
    }

    #[test]
    fn blocked_summa_blocks_reassemble_full_product() {
        let (n, m, l) = (14usize, 9usize, 11usize);
        let a = random_triples(n, m, 40, 5);
        let b = random_triples(m, l, 35, 6);
        let want = serial_product(&a, &b);
        for p in [1usize, 4] {
            for (br, bc) in [(1usize, 1usize), (2, 3), (3, 2), (4, 4)] {
                let a = a.clone();
                let b = b.clone();
                let out = run_threaded(p, move |c| {
                    let world = c.split(0, c.rank());
                    let grid = ProcessGrid::square(world);
                    let (ta, tb) = if c.rank() == 0 {
                        (a.clone(), b.clone())
                    } else {
                        (Triples::new(n, m), Triples::new(m, l))
                    };
                    let bs =
                        BlockedSumma::from_triples(&grid, ta, tb, br, bc, |_, _| {}, |_, _| {});
                    let mut got: Vec<(Index, Index, f64)> = Vec::new();
                    for r in 0..bs.br() {
                        for cc in 0..bs.bc() {
                            let (cb, _) = bs.multiply_block(&grid, &PlusTimes::new(), r, cc);
                            let (ro, _) = bs.row_range(r);
                            let (co, _) = bs.col_range(cc);
                            for (i, j, v) in cb.gather_global(&grid).to_sorted_tuples() {
                                got.push((i + ro as Index, j + co as Index, v));
                            }
                        }
                    }
                    got.sort_by_key(|x| (x.0, x.1));
                    got
                });
                for got in out {
                    assert_eq!(got, want, "p={p} br={br} bc={bc}");
                }
            }
        }
    }

    #[test]
    fn blocked_summa_peak_block_nnz_below_full() {
        // The memory argument of Section VI-A: the largest single output
        // block is much smaller than the whole product.
        let n = 32;
        let a = random_triples(n, 16, 200, 9);
        let at = a.clone().transpose();
        let grid = ProcessGrid::square(SelfComm::new());
        let full = {
            let da = DistSparseMatrix::from_global_triples(&grid, n, 16, a.clone(), |_, _| {});
            let dat = da.transpose(&grid);
            let (c, _) = summa(&grid, &PlusTimes::new(), &da, &dat);
            c.nnz_local()
        };
        let bs = BlockedSumma::from_triples(&grid, a, at, 4, 4, |_, _| {}, |_, _| {});
        let mut peak = 0usize;
        for r in 0..4 {
            for c in 0..4 {
                let (cb, _) = bs.multiply_block(&grid, &PlusTimes::new(), r, c);
                peak = peak.max(cb.nnz_local());
            }
        }
        assert!(peak * 4 < full, "peak block {peak} vs full {full}");
    }

    #[test]
    #[should_panic(expected = "block index out of range")]
    fn blocked_summa_bad_block_panics() {
        let grid = ProcessGrid::square(SelfComm::new());
        let a = random_triples(8, 8, 10, 1);
        let b = random_triples(8, 8, 10, 2);
        let bs = BlockedSumma::from_triples(&grid, a, b, 2, 2, |_, _| {}, |_, _| {});
        let _ = bs.multiply_block(&grid, &PlusTimes::new(), 2, 0);
    }
}
