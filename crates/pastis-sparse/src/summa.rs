//! 2D Sparse SUMMA and the paper's Blocked 2D Sparse SUMMA.
//!
//! Plain Sparse SUMMA (Buluç & Gilbert, SISC'12 — the paper's reference
//! [22]) computes `C = A·B` on a `√p × √p` grid in `√p` stages: at stage
//! `k`, the ranks holding `A(·,k)` broadcast along their grid row, the
//! ranks holding `B(k,·)` broadcast along their grid column, and every rank
//! multiplies the received pair locally, accumulating partials.
//!
//! The paper's innovation (Section VI-A) generalizes this with arbitrary
//! row/column blocking factors `br × bc`: `A` is split into `br` row
//! stripes and `B` into `bc` column stripes, **each stripe distributed over
//! the entire grid**, and the output is produced one `C(r,c)` block at a
//! time — each block a full SUMMA over stripe `r` of `A` and stripe `c` of
//! `B`. Forming `C` incrementally bounds the peak memory of the similarity
//! search at the cost of broadcasting the inputs multiple times
//! (`2α(br·bc)√p log√p + βs(br+bc)√p log√p`).
//!
//! Both algorithms apply the semiring `combine` in ascending inner-index
//! order (stage order is ascending, and stages own contiguous ascending
//! inner ranges), so results are *identical* to a serial SpGEMM for any
//! associative semiring — the determinism property PASTIS advertises
//! against DIAMOND/MMseqs2.

use std::sync::Arc;

use pastis_comm::grid::{BlockDist1D, ProcessGrid};
use pastis_comm::Communicator;
use pastis_trace::{names, Component, Track};

use crate::csr::CsrMatrix;
use crate::distmat::{DistElem, DistSparseMatrix};
use crate::parallel::SpGemmPool;
use crate::semiring::Semiring;
use crate::spgemm::SpGemmStats;
use crate::spops::spadd_into;
use crate::triples::Triples;

/// Distributed SpGEMM `C = A ⊗ B` via 2D Sparse SUMMA, with the default
/// serial local kernel ([`SpGemmPool::serial`]). See [`summa_with`] to
/// select the local kernel / worker count.
///
/// Collective over `grid`; returns this rank's block of `C` wrapped as a
/// distributed matrix, plus this rank's local work counters.
///
/// # Panics
///
/// Panics if the inner dimensions disagree or the grid is not square.
pub fn summa<S, C>(
    grid: &ProcessGrid<C>,
    sr: &S,
    a: &DistSparseMatrix<S::A>,
    b: &DistSparseMatrix<S::B>,
) -> (DistSparseMatrix<S::C>, SpGemmStats)
where
    S: Semiring + Sync,
    S::A: DistElem,
    S::B: DistElem,
    S::C: DistElem,
    C: Communicator,
{
    summa_with(grid, sr, a, b, &SpGemmPool::serial())
}

/// [`summa`] with an explicit local-kernel pool: each stage's block
/// multiplication runs through `pool` (kernel selection + intra-rank
/// worker threads). Output is bit-identical to [`summa`] for every pool
/// configuration — the kernels share one combine-order contract.
///
/// Stage mechanics: the roots broadcast their resident blocks as [`Arc`]
/// handles (no deep copy of the block on the root), and stage partials are
/// folded with a move-based union merge ([`spadd_into`]) so accumulation
/// is O(total nnz) rather than rebuilding + cloning the accumulated block
/// every stage.
pub fn summa_with<S, C>(
    grid: &ProcessGrid<C>,
    sr: &S,
    a: &DistSparseMatrix<S::A>,
    b: &DistSparseMatrix<S::B>,
    pool: &SpGemmPool,
) -> (DistSparseMatrix<S::C>, SpGemmStats)
where
    S: Semiring + Sync,
    S::A: DistElem,
    S::B: DistElem,
    S::C: DistElem,
    C: Communicator,
{
    summa_with_overlap(grid, sr, a, b, pool, false)
}

/// The pair of broadcast-received stage inputs (A's block, B's block).
type StagePair<S> = (
    Arc<CsrMatrix<<S as Semiring>::A>>,
    Arc<CsrMatrix<<S as Semiring>::B>>,
);

/// Observer of the staged broadcast buffers' lifetimes, so a memory
/// accountant (the pipeline's `--mem-budget` ledger) can charge the bytes
/// a SUMMA stage holds resident between receiving its blocks and folding
/// the stage partial.
///
/// Both callbacks fire on the rank's comm-issuing thread, in deterministic
/// stage order; implementations must not block on the communicator (a
/// collective inside the hook would deadlock the SPMD schedule). The hook
/// observes and accounts — it never changes what SUMMA computes, so the
/// output is bit-identical with or without one attached.
pub trait StageMemHook: Send + Sync {
    /// A stage's received broadcast buffers became resident (`bytes` =
    /// payload bytes of the received A and B blocks).
    fn on_stage_alloc(&self, bytes: u64);
    /// The same stage's buffers were dropped after accumulation.
    fn on_stage_free(&self, bytes: u64);
}

/// [`summa_with`] with optional **double-buffered broadcasts**: while
/// stage `k`'s local multiply runs on a scoped compute thread, the calling
/// thread — the rank's single comm-issuing thread — posts stage `k+1`'s
/// A/B broadcasts, prefetching the received [`Arc`] slots so the
/// collectives come off the critical path.
///
/// The SPMD contract is unchanged: every rank issues exactly the same
/// collective sequence in the same order as the phased loop (row broadcast
/// of stage `k`, then column broadcast of stage `k`, for ascending `k` on
/// one thread), so the per-communicator broadcast *count and order* are
/// identical with overlap on or off — only the wall-clock placement moves.
/// Accumulation still folds stage partials in ascending stage order on the
/// calling thread, so the result is bit-identical for any kernel, thread
/// count, and overlap setting.
///
/// With telemetry attached to `pool`, each overlapped stage emits a
/// `spgemm.stage` span (compute side) and a `summa.bcast.prefetch` span on
/// [`Track::CommPath`] (comm side) whose intervals overlap — the proof the
/// broadcast really ran concurrently with the multiply.
pub fn summa_with_overlap<S, C>(
    grid: &ProcessGrid<C>,
    sr: &S,
    a: &DistSparseMatrix<S::A>,
    b: &DistSparseMatrix<S::B>,
    pool: &SpGemmPool,
    overlap: bool,
) -> (DistSparseMatrix<S::C>, SpGemmStats)
where
    S: Semiring + Sync,
    S::A: DistElem,
    S::B: DistElem,
    S::C: DistElem,
    C: Communicator,
{
    summa_with_overlap_hooked(grid, sr, a, b, pool, overlap, None)
}

/// [`summa_with_overlap`] with an optional [`StageMemHook`] observing the
/// staged broadcast buffers: `alloc` fires when a stage's received blocks
/// become resident (including prefetched stages, which is exactly when the
/// double buffer holds *two* stages' bytes at once), `free` when they are
/// dropped after accumulation. Pass `None` for the unhooked behavior; the
/// output is bit-identical either way.
pub fn summa_with_overlap_hooked<S, C>(
    grid: &ProcessGrid<C>,
    sr: &S,
    a: &DistSparseMatrix<S::A>,
    b: &DistSparseMatrix<S::B>,
    pool: &SpGemmPool,
    overlap: bool,
    hook: Option<&dyn StageMemHook>,
) -> (DistSparseMatrix<S::C>, SpGemmStats)
where
    S: Semiring + Sync,
    S::A: DistElem,
    S::B: DistElem,
    S::C: DistElem,
    C: Communicator,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "SUMMA inner dimension mismatch: {}x{} · {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let shape = grid.shape();
    let q = shape.rows;
    assert_eq!(
        shape.rows, shape.cols,
        "SUMMA requires a square process grid, got {}x{}",
        shape.rows, shape.cols
    );

    let my_row = grid.my_row();
    let my_col = grid.my_col();
    let inner = BlockDist1D::new(a.ncols(), q);

    let mut stats = SpGemmStats::default();
    let c_rows = a.row_dist().part_len(my_row);
    let c_cols = b.col_dist().part_len(my_col);
    let mut c_local: CsrMatrix<S::C> = CsrMatrix::empty(c_rows, c_cols);

    // Stage `k`'s pair of collectives, in the fixed order every rank
    // issues: A's block along grid rows (root: grid column k), then B's
    // block along grid columns (root: grid row k). The roots send their
    // resident blocks as Arc handles — a pointer clone, not a deep copy;
    // receivers only read the block.
    let issue = |k: usize| -> (StagePair<S>, u64) {
        let (a_send, a_bytes) = if my_col == k {
            (a.local_arc(), a.local().payload_bytes())
        } else {
            (Arc::new(CsrMatrix::empty(c_rows, inner.part_len(k))), 0)
        };
        let a_recv = grid.row_comm().broadcast(k, a_send, a_bytes);

        let (b_send, b_bytes) = if my_row == k {
            (b.local_arc(), b.local().payload_bytes())
        } else {
            (Arc::new(CsrMatrix::empty(inner.part_len(k), c_cols)), 0)
        };
        let b_recv = grid.col_comm().broadcast(k, b_send, b_bytes);
        // Charge the *received* blocks: what this rank actually holds
        // resident for the stage (roots included — their local block is the
        // received block).
        let stage_bytes = (a_recv.payload_bytes() + b_recv.payload_bytes()) as u64;
        if let Some(h) = hook {
            h.on_stage_alloc(stage_bytes);
        }
        ((a_recv, b_recv), stage_bytes)
    };

    let recorder = pool.recorder();
    // The double buffer: stage k+1's received blocks, posted while stage k
    // computed. `None` whenever the broadcasts still have to run on the
    // critical path (always, with overlap off — that branch is exactly the
    // phased loop).
    let mut staged: Option<(StagePair<S>, u64)> = None;
    for k in 0..q {
        let ((a_recv, b_recv), stage_bytes) = staged.take().unwrap_or_else(|| issue(k));
        let (partial, pstats) = if overlap && k + 1 < q {
            // Open the compute span on this thread *before* spawning, so
            // its start provably precedes the prefetch span's start — the
            // interval intersection telemetry asserts on.
            let stage_span = recorder.is_enabled().then(|| {
                recorder
                    .span(Component::SpGemm, names::SPAN_SPGEMM_STAGE)
                    .on_track(Track::SpGemmWorker(0))
                    .arg("stage", k as u64)
            });
            std::thread::scope(|scope| {
                let compute = scope.spawn(move || {
                    let _guard = stage_span;
                    pool.multiply(sr, &a_recv, &b_recv)
                });
                // Meanwhile this thread — still the only one touching the
                // communicator — posts stage k+1's broadcasts.
                let prefetch_span = recorder.is_enabled().then(|| {
                    recorder
                        .span(Component::CommWait, names::SPAN_SUMMA_BCAST_PREFETCH)
                        .on_track(Track::CommPath)
                        .arg("stage", (k + 1) as u64)
                });
                staged = Some(issue(k + 1));
                drop(prefetch_span);
                compute.join().expect("SUMMA stage compute thread panicked")
            })
        } else {
            pool.multiply(sr, &a_recv, &b_recv)
        };
        stats.merge(pstats);
        if let Some(h) = hook {
            h.on_stage_free(stage_bytes);
        }
        // Stage partials arrive in ascending inner-index order, so this
        // accumulation preserves the serial combine order; the move-based
        // merge never clones the accumulated values.
        c_local = spadd_into(c_local, partial, |acc, inc| sr.combine(acc, inc));
    }
    // merged_nnz counted per-stage over-counts coordinates merged across
    // stages; report the final local nnz instead.
    stats.merged_nnz = c_local.nnz() as u64;
    (
        DistSparseMatrix::from_local_block(grid, a.nrows(), b.ncols(), c_local),
        stats,
    )
}

/// The Blocked 2D Sparse SUMMA driver: `A` held as `br` row stripes and `B`
/// as `bc` column stripes, each stripe distributed over the whole grid, so
/// output blocks `C(r,c)` can be produced (and discarded) one at a time.
pub struct BlockedSumma<A, B> {
    a_stripes: Vec<DistSparseMatrix<A>>,
    b_stripes: Vec<DistSparseMatrix<B>>,
    row_stripes: BlockDist1D,
    col_stripes: BlockDist1D,
}

impl<A: DistElem, B: DistElem> BlockedSumma<A, B> {
    /// Distribute `a` (as `br` row stripes) and `b` (as `bc` column
    /// stripes) over `grid`. Every rank may contribute an arbitrary subset
    /// of the global entries, as in
    /// [`DistSparseMatrix::from_global_triples`]; duplicates are folded
    /// with the respective combiner.
    pub fn from_triples<C: Communicator>(
        grid: &ProcessGrid<C>,
        a: Triples<A>,
        b: Triples<B>,
        br: usize,
        bc: usize,
        combine_a: impl Fn(&mut A, A),
        combine_b: impl Fn(&mut B, B),
    ) -> BlockedSumma<A, B> {
        assert!(br >= 1 && bc >= 1, "blocking factors must be positive");
        assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
        assert!(
            br <= a.nrows().max(1) && bc <= b.ncols().max(1),
            "more blocks than rows/columns"
        );
        let row_stripes = BlockDist1D::new(a.nrows(), br);
        let col_stripes = BlockDist1D::new(b.ncols(), bc);
        let inner = a.ncols();

        // Partition A's entries by row stripe, reindexing rows to be
        // stripe-local.
        let (a_nrows, a_ncols) = (a.nrows(), a.ncols());
        let mut a_parts: Vec<Triples<A>> = (0..br)
            .map(|r| Triples::new(row_stripes.part_len(r), a_ncols))
            .collect();
        for e in a.entries {
            let (stripe, local_row) = row_stripes.to_local(e.row as usize);
            a_parts[stripe].push(local_row as u32, e.col, e.val);
        }
        let _ = a_nrows;

        let (b_nrows, b_ncols) = (b.nrows(), b.ncols());
        let mut b_parts: Vec<Triples<B>> = (0..bc)
            .map(|c| Triples::new(b_nrows, col_stripes.part_len(c)))
            .collect();
        for e in b.entries {
            let (stripe, local_col) = col_stripes.to_local(e.col as usize);
            b_parts[stripe].push(e.row, local_col as u32, e.val);
        }
        let _ = b_ncols;

        let a_stripes = a_parts
            .into_iter()
            .enumerate()
            .map(|(r, t)| {
                DistSparseMatrix::from_global_triples(
                    grid,
                    row_stripes.part_len(r),
                    inner,
                    t,
                    |x, y| combine_a(x, y),
                )
            })
            .collect();
        let b_stripes = b_parts
            .into_iter()
            .enumerate()
            .map(|(c, t)| {
                DistSparseMatrix::from_global_triples(
                    grid,
                    inner,
                    col_stripes.part_len(c),
                    t,
                    |x, y| combine_b(x, y),
                )
            })
            .collect();
        BlockedSumma {
            a_stripes,
            b_stripes,
            row_stripes,
            col_stripes,
        }
    }

    /// Row blocking factor `br`.
    pub fn br(&self) -> usize {
        self.row_stripes.parts
    }

    /// Column blocking factor `bc`.
    pub fn bc(&self) -> usize {
        self.col_stripes.parts
    }

    /// Global row range `[start, end)` of output block row `r`.
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        let s = self.row_stripes.part_offset(r);
        (s, s + self.row_stripes.part_len(r))
    }

    /// Global column range `[start, end)` of output block column `c`.
    pub fn col_range(&self, c: usize) -> (usize, usize) {
        let s = self.col_stripes.part_offset(c);
        (s, s + self.col_stripes.part_len(c))
    }

    /// The distributed row stripe `r` of `A`.
    pub fn a_stripe(&self, r: usize) -> &DistSparseMatrix<A> {
        &self.a_stripes[r]
    }

    /// The distributed column stripe `c` of `B`.
    pub fn b_stripe(&self, c: usize) -> &DistSparseMatrix<B> {
        &self.b_stripes[c]
    }

    /// Local footprint in bytes of this rank's block of A stripe `r`.
    pub fn a_stripe_bytes(&self, r: usize) -> u64 {
        self.a_stripes[r].local_payload_bytes() as u64
    }

    /// Local footprint in bytes of this rank's block of B stripe `c`.
    pub fn b_stripe_bytes(&self, c: usize) -> u64 {
        self.b_stripes[c].local_payload_bytes() as u64
    }

    /// Evict this rank's local block of A stripe `r` (for spill-to-disk);
    /// see [`DistSparseMatrix::evict_local`]. The stripe multiplies as
    /// all-zero until [`BlockedSumma::restore_a_stripe`] puts the block
    /// back, so callers must restore before the stripe's next block.
    pub fn evict_a_stripe(&mut self, r: usize) -> CsrMatrix<A> {
        self.a_stripes[r].evict_local()
    }

    /// Restore an evicted A stripe block.
    pub fn restore_a_stripe(&mut self, r: usize, block: CsrMatrix<A>) {
        self.a_stripes[r].restore_local(block);
    }

    /// Evict this rank's local block of B stripe `c`.
    pub fn evict_b_stripe(&mut self, c: usize) -> CsrMatrix<B> {
        self.b_stripes[c].evict_local()
    }

    /// Restore an evicted B stripe block.
    pub fn restore_b_stripe(&mut self, c: usize, block: CsrMatrix<B>) {
        self.b_stripes[c].restore_local(block);
    }

    /// Compute output block `C(r, c) = A(r,·) ⊗ B(·,c)` with one full
    /// SUMMA (collective). The result is a `stripe_r × stripe_c` matrix
    /// distributed over the grid; its global position is given by
    /// [`BlockedSumma::row_range`] / [`BlockedSumma::col_range`].
    pub fn multiply_block<S, C>(
        &self,
        grid: &ProcessGrid<C>,
        sr: &S,
        r: usize,
        c: usize,
    ) -> (DistSparseMatrix<S::C>, SpGemmStats)
    where
        S: Semiring<A = A, B = B> + Sync,
        S::C: DistElem,
        C: Communicator,
    {
        self.multiply_block_with(grid, sr, r, c, &SpGemmPool::serial())
    }

    /// [`BlockedSumma::multiply_block`] with an explicit local-kernel pool;
    /// see [`summa_with`].
    pub fn multiply_block_with<S, C>(
        &self,
        grid: &ProcessGrid<C>,
        sr: &S,
        r: usize,
        c: usize,
        pool: &SpGemmPool,
    ) -> (DistSparseMatrix<S::C>, SpGemmStats)
    where
        S: Semiring<A = A, B = B> + Sync,
        S::C: DistElem,
        C: Communicator,
    {
        assert!(r < self.br() && c < self.bc(), "block index out of range");
        summa_with(grid, sr, &self.a_stripes[r], &self.b_stripes[c], pool)
    }

    /// [`BlockedSumma::multiply_block_with`] with the double-buffered
    /// broadcast path of [`summa_with_overlap`]: with `overlap` set, stage
    /// `k+1`'s broadcasts are posted while stage `k`'s local multiply runs
    /// on a scoped compute thread. Bit-identical to the phased path.
    pub fn multiply_block_overlapped<S, C>(
        &self,
        grid: &ProcessGrid<C>,
        sr: &S,
        r: usize,
        c: usize,
        pool: &SpGemmPool,
        overlap: bool,
    ) -> (DistSparseMatrix<S::C>, SpGemmStats)
    where
        S: Semiring<A = A, B = B> + Sync,
        S::C: DistElem,
        C: Communicator,
    {
        assert!(r < self.br() && c < self.bc(), "block index out of range");
        summa_with_overlap(
            grid,
            sr,
            &self.a_stripes[r],
            &self.b_stripes[c],
            pool,
            overlap,
        )
    }

    /// [`BlockedSumma::multiply_block_overlapped`] with an optional
    /// [`StageMemHook`] charging the staged broadcast buffers to a memory
    /// accountant; see [`summa_with_overlap_hooked`].
    #[allow(clippy::too_many_arguments)]
    pub fn multiply_block_hooked<S, C>(
        &self,
        grid: &ProcessGrid<C>,
        sr: &S,
        r: usize,
        c: usize,
        pool: &SpGemmPool,
        overlap: bool,
        hook: Option<&dyn StageMemHook>,
    ) -> (DistSparseMatrix<S::C>, SpGemmStats)
    where
        S: Semiring<A = A, B = B> + Sync,
        S::C: DistElem,
        C: Communicator,
    {
        assert!(r < self.br() && c < self.bc(), "block index out of range");
        summa_with_overlap_hooked(
            grid,
            sr,
            &self.a_stripes[r],
            &self.b_stripes[c],
            pool,
            overlap,
            hook,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;
    use crate::spgemm::{spgemm_hash, SpGemmKind};
    use crate::triples::Index;
    use pastis_comm::{run_threaded, SelfComm};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_triples(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Triples<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Triples::new(nrows, ncols);
        let mut seen = std::collections::HashSet::new();
        while seen.len() < nnz {
            let r = rng.gen_range(0..nrows) as Index;
            let c = rng.gen_range(0..ncols) as Index;
            if seen.insert((r, c)) {
                t.push(r, c, rng.gen_range(-4..5) as f64);
            }
        }
        t
    }

    fn serial_product(a: &Triples<f64>, b: &Triples<f64>) -> Vec<(Index, Index, f64)> {
        let am = CsrMatrix::from_triples(a.clone());
        let bm = CsrMatrix::from_triples(b.clone());
        let (c, _) = spgemm_hash(&PlusTimes::new(), &am, &bm);
        c.to_triples().to_sorted_tuples()
    }

    #[test]
    fn summa_single_rank_matches_serial() {
        let a = random_triples(10, 8, 30, 1);
        let b = random_triples(8, 12, 25, 2);
        let want = serial_product(&a, &b);
        let grid = ProcessGrid::square(SelfComm::new());
        let da = DistSparseMatrix::from_global_triples(&grid, 10, 8, a, |_, _| {});
        let db = DistSparseMatrix::from_global_triples(&grid, 8, 12, b, |_, _| {});
        let (c, stats) = summa(&grid, &PlusTimes::new(), &da, &db);
        assert_eq!(c.gather_global(&grid).to_sorted_tuples(), want);
        assert_eq!(stats.merged_nnz as usize, c.nnz_local());
    }

    fn summa_threaded_case(p: usize, dims: (usize, usize, usize), seed: u64) {
        let (n, m, l) = dims;
        let a = random_triples(n, m, n * 3, seed);
        let b = random_triples(m, l, m * 3, seed + 1);
        let want = serial_product(&a, &b);
        let a2 = a.clone();
        let b2 = b.clone();
        let out = run_threaded(p, move |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            let (n, m, l) = dims;
            let (ta, tb) = if c.rank() == 0 {
                (a2.clone(), b2.clone())
            } else {
                (Triples::new(n, m), Triples::new(m, l))
            };
            let da = DistSparseMatrix::from_global_triples(&grid, n, m, ta, |_, _| {});
            let db = DistSparseMatrix::from_global_triples(&grid, m, l, tb, |_, _| {});
            let (cm, _) = summa(&grid, &PlusTimes::new(), &da, &db);
            cm.gather_global(&grid).to_sorted_tuples()
        });
        for got in out {
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn summa_4_ranks_matches_serial() {
        summa_threaded_case(4, (10, 8, 12), 10);
    }

    #[test]
    fn summa_9_ranks_matches_serial() {
        summa_threaded_case(9, (13, 11, 9), 20);
    }

    #[test]
    fn summa_9_ranks_square_symmetric_product() {
        // C = A·Aᵀ as in the overlap computation.
        let n = 15;
        let a = random_triples(n, 7, 40, 33);
        let at = a.clone().transpose();
        let want = serial_product(&a, &at);
        let out = run_threaded(9, move |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            let ta = if c.rank() == 0 {
                a.clone()
            } else {
                Triples::new(n, 7)
            };
            let da = DistSparseMatrix::from_global_triples(&grid, n, 7, ta, |_, _| {});
            let dat = da.transpose(&grid);
            let (cm, _) = summa(&grid, &PlusTimes::new(), &da, &dat);
            cm.gather_global(&grid).to_sorted_tuples()
        });
        for got in out {
            assert_eq!(got, want);
        }
    }

    /// Non-commutative (order-revealing) semiring to pin down stage-order
    /// determinism of distributed accumulation.
    struct Trace;
    impl Semiring for Trace {
        type A = u32;
        type B = u32;
        type C = Vec<u32>;
        fn multiply(&self, a: &u32, b: &u32) -> Vec<u32> {
            vec![a * 1000 + b]
        }
        fn combine(&self, acc: &mut Vec<u32>, mut inc: Vec<u32>) {
            acc.append(&mut inc);
        }
    }

    #[test]
    fn summa_combine_order_matches_serial_for_noncommutative_semiring() {
        // Dense-ish 6x6 inputs so many inner indices hit each output.
        let mut ta = Triples::new(6, 6);
        let mut tb = Triples::new(6, 6);
        for i in 0..6u32 {
            for j in 0..6u32 {
                if (i + j) % 2 == 0 {
                    ta.push(i, j, i * 10 + j);
                }
                if (i * j) % 3 != 1 {
                    tb.push(i, j, i * 10 + j);
                }
            }
        }
        let am = CsrMatrix::from_triples(ta.clone());
        let bm = CsrMatrix::from_triples(tb.clone());
        let (serial, _) = spgemm_hash(&Trace, &am, &bm);
        let want = serial.to_triples().to_sorted_tuples();
        for p in [1usize, 4, 9] {
            let ta = ta.clone();
            let tb = tb.clone();
            let out = run_threaded(p, move |c| {
                let world = c.split(0, c.rank());
                let grid = ProcessGrid::square(world);
                let (a, b) = if c.rank() == 0 {
                    (ta.clone(), tb.clone())
                } else {
                    (Triples::new(6, 6), Triples::new(6, 6))
                };
                let da = DistSparseMatrix::from_global_triples(&grid, 6, 6, a, |_, _| {});
                let db = DistSparseMatrix::from_global_triples(&grid, 6, 6, b, |_, _| {});
                let (cm, _) = summa(&grid, &Trace, &da, &db);
                cm.gather_global(&grid).to_sorted_tuples()
            });
            for got in out {
                assert_eq!(got, want, "p={p}");
            }
        }
    }

    #[test]
    fn blocked_summa_blocks_reassemble_full_product() {
        let (n, m, l) = (14usize, 9usize, 11usize);
        let a = random_triples(n, m, 40, 5);
        let b = random_triples(m, l, 35, 6);
        let want = serial_product(&a, &b);
        for p in [1usize, 4] {
            for (br, bc) in [(1usize, 1usize), (2, 3), (3, 2), (4, 4)] {
                let a = a.clone();
                let b = b.clone();
                let out = run_threaded(p, move |c| {
                    let world = c.split(0, c.rank());
                    let grid = ProcessGrid::square(world);
                    let (ta, tb) = if c.rank() == 0 {
                        (a.clone(), b.clone())
                    } else {
                        (Triples::new(n, m), Triples::new(m, l))
                    };
                    let bs =
                        BlockedSumma::from_triples(&grid, ta, tb, br, bc, |_, _| {}, |_, _| {});
                    let mut got: Vec<(Index, Index, f64)> = Vec::new();
                    for r in 0..bs.br() {
                        for cc in 0..bs.bc() {
                            let (cb, _) = bs.multiply_block(&grid, &PlusTimes::new(), r, cc);
                            let (ro, _) = bs.row_range(r);
                            let (co, _) = bs.col_range(cc);
                            for (i, j, v) in cb.gather_global(&grid).to_sorted_tuples() {
                                got.push((i + ro as Index, j + co as Index, v));
                            }
                        }
                    }
                    got.sort_by_key(|x| (x.0, x.1));
                    got
                });
                for got in out {
                    assert_eq!(got, want, "p={p} br={br} bc={bc}");
                }
            }
        }
    }

    #[test]
    fn blocked_summa_peak_block_nnz_below_full() {
        // The memory argument of Section VI-A: the largest single output
        // block is much smaller than the whole product.
        let n = 32;
        let a = random_triples(n, 16, 200, 9);
        let at = a.clone().transpose();
        let grid = ProcessGrid::square(SelfComm::new());
        let full = {
            let da = DistSparseMatrix::from_global_triples(&grid, n, 16, a.clone(), |_, _| {});
            let dat = da.transpose(&grid);
            let (c, _) = summa(&grid, &PlusTimes::new(), &da, &dat);
            c.nnz_local()
        };
        let bs = BlockedSumma::from_triples(&grid, a, at, 4, 4, |_, _| {}, |_, _| {});
        let mut peak = 0usize;
        for r in 0..4 {
            for c in 0..4 {
                let (cb, _) = bs.multiply_block(&grid, &PlusTimes::new(), r, c);
                peak = peak.max(cb.nnz_local());
            }
        }
        assert!(peak * 4 < full, "peak block {peak} vs full {full}");
    }

    #[test]
    #[should_panic(expected = "block index out of range")]
    fn blocked_summa_bad_block_panics() {
        let grid = ProcessGrid::square(SelfComm::new());
        let a = random_triples(8, 8, 10, 1);
        let b = random_triples(8, 8, 10, 2);
        let bs = BlockedSumma::from_triples(&grid, a, b, 2, 2, |_, _| {}, |_, _| {});
        let _ = bs.multiply_block(&grid, &PlusTimes::new(), 2, 0);
    }

    #[test]
    fn summa_rejects_non_square_grid_in_release_builds_too() {
        // A 1x2 grid used to slip past a debug_assert and compute garbage
        // in release builds; it must now panic unconditionally.
        let out = run_threaded(2, |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::with_shape(world, 1, 2);
            let da: DistSparseMatrix<f64> =
                DistSparseMatrix::from_global_triples(&grid, 4, 4, Triples::new(4, 4), |_, _| {});
            let db = da.clone();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                summa(&grid, &PlusTimes::new(), &da, &db)
            }))
            .err()
            .and_then(|p| p.downcast_ref::<String>().cloned())
        });
        for msg in out {
            let msg = msg.expect("summa must panic on a 1x2 grid");
            assert!(
                msg.contains("square process grid") && msg.contains("1x2"),
                "unexpected panic message: {msg}"
            );
        }
    }

    /// Payload whose `Clone` bumps a global counter, so tests can prove the
    /// broadcast roots and stage accumulation never deep-copy values.
    #[derive(Debug, PartialEq)]
    struct Tick(u32);
    static TICK_CLONES: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    impl Clone for Tick {
        fn clone(&self) -> Tick {
            TICK_CLONES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Tick(self.0)
        }
    }

    struct TickRing;
    impl Semiring for TickRing {
        type A = Tick;
        type B = Tick;
        type C = Tick;
        fn multiply(&self, a: &Tick, b: &Tick) -> Tick {
            Tick(a.0.wrapping_mul(b.0))
        }
        fn combine(&self, acc: &mut Tick, inc: Tick) {
            acc.0 = acc.0.wrapping_add(inc.0);
        }
    }

    #[test]
    fn summa_never_clones_local_values() {
        // Build per-rank local blocks directly (from_local_block takes the
        // CSR by value), then run a 4-rank SUMMA and count value clones:
        // the Arc broadcast and the move-based spadd_into must not copy a
        // single stored value.
        let out = run_threaded(4, |c| {
            let rank = c.rank();
            let world = c.split(0, rank);
            let grid = ProcessGrid::square(world);
            let mut t = Triples::new(4, 4);
            for i in 0..4u32 {
                for j in 0..4u32 {
                    t.push(i, j, Tick(rank as u32 * 16 + i * 4 + j + 1));
                }
            }
            let local = CsrMatrix::from_triples(t);
            let da = DistSparseMatrix::from_local_block(&grid, 8, 8, local);
            let db = {
                let mut t = Triples::new(4, 4);
                for i in 0..4u32 {
                    t.push(i, i, Tick(1));
                }
                DistSparseMatrix::from_local_block(&grid, 8, 8, CsrMatrix::from_triples(t))
            };
            grid.world().barrier();
            if rank == 0 {
                TICK_CLONES.store(0, std::sync::atomic::Ordering::SeqCst);
            }
            grid.world().barrier();
            let (cm, _) = summa(&grid, &TickRing, &da, &db);
            grid.world().barrier();
            let clones = TICK_CLONES.load(std::sync::atomic::Ordering::SeqCst);
            (cm.nnz_local(), clones)
        });
        for (nnz, clones) in out {
            assert_eq!(nnz, 16, "each rank's C block should be dense 4x4");
            assert_eq!(clones, 0, "SUMMA deep-copied Tick values");
        }
    }

    #[test]
    fn overlap_is_bit_identical_to_phased_and_keeps_the_collective_count() {
        // The Trace semiring exposes combine order, and the broadcast
        // counters pin the collective schedule: overlap may only move the
        // broadcasts in time, never change how many are issued.
        let mut ta = Triples::new(9, 9);
        let mut tb = Triples::new(9, 9);
        for i in 0..9u32 {
            for j in 0..9u32 {
                if (i + 2 * j) % 3 != 1 {
                    ta.push(i, j, i * 10 + j);
                }
                if (i * j + i) % 4 != 2 {
                    tb.push(i, j, i * 10 + j);
                }
            }
        }
        let am = CsrMatrix::from_triples(ta.clone());
        let bm = CsrMatrix::from_triples(tb.clone());
        let (serial, _) = spgemm_hash(&Trace, &am, &bm);
        let want = serial.to_triples().to_sorted_tuples();
        for p in [4usize, 9] {
            for threads in [1usize, 4] {
                let ta = ta.clone();
                let tb = tb.clone();
                let out = run_threaded(p, move |c| {
                    let world = c.split(0, c.rank());
                    let grid = ProcessGrid::square(world);
                    let (a, b) = if c.rank() == 0 {
                        (ta.clone(), tb.clone())
                    } else {
                        (Triples::new(9, 9), Triples::new(9, 9))
                    };
                    let da = DistSparseMatrix::from_global_triples(&grid, 9, 9, a, |_, _| {});
                    let db = DistSparseMatrix::from_global_triples(&grid, 9, 9, b, |_, _| {});
                    let pool = SpGemmPool::new(threads);
                    let bcasts =
                        || grid.row_comm().stats().broadcasts + grid.col_comm().stats().broadcasts;
                    let n0 = bcasts();
                    let (c_off, _) = summa_with_overlap(&grid, &Trace, &da, &db, &pool, false);
                    let n1 = bcasts();
                    let (c_on, _) = summa_with_overlap(&grid, &Trace, &da, &db, &pool, true);
                    let n2 = bcasts();
                    assert_eq!(n1 - n0, n2 - n1, "overlap changed the collective count");
                    (
                        c_off.gather_global(&grid).to_sorted_tuples(),
                        c_on.gather_global(&grid).to_sorted_tuples(),
                    )
                });
                for (off, on) in out {
                    assert_eq!(off, want, "phased p={p} threads={threads}");
                    assert_eq!(on, want, "overlapped p={p} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn overlap_on_unified_pool_matches_phased() {
        // Overlap + the cross-engine WorkPool together: the compute thread
        // submits row chunks to shared workers while the rank thread posts
        // the next stage's broadcasts. One pool serves all four ranks.
        let mut ta = Triples::new(8, 8);
        let mut tb = Triples::new(8, 8);
        for i in 0..8u32 {
            for j in 0..8u32 {
                if (i + j) % 2 == 0 {
                    ta.push(i, j, i * 10 + j);
                }
                if (i * j) % 3 != 1 {
                    tb.push(i, j, i * 10 + j);
                }
            }
        }
        let am = CsrMatrix::from_triples(ta.clone());
        let bm = CsrMatrix::from_triples(tb.clone());
        let (serial, _) = spgemm_hash(&Trace, &am, &bm);
        let want = serial.to_triples().to_sorted_tuples();
        let workers = pastis_pool::WorkPool::with_exact_workers(2);
        let out = run_threaded(4, move |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            let (a, b) = if c.rank() == 0 {
                (ta.clone(), tb.clone())
            } else {
                (Triples::new(8, 8), Triples::new(8, 8))
            };
            let da = DistSparseMatrix::from_global_triples(&grid, 8, 8, a, |_, _| {});
            let db = DistSparseMatrix::from_global_triples(&grid, 8, 8, b, |_, _| {});
            let pool = SpGemmPool::new(1)
                .with_kind(SpGemmKind::Parallel)
                .with_workers(workers.clone());
            let (cm, _) = summa_with_overlap(&grid, &Trace, &da, &db, &pool, true);
            cm.gather_global(&grid).to_sorted_tuples()
        });
        for got in out {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn overlap_never_clones_local_values() {
        // Same zero-copy contract as the phased path: prefetching the next
        // stage's blocks is an Arc handoff, not a deep copy.
        let out = run_threaded(4, |c| {
            let rank = c.rank();
            let world = c.split(0, rank);
            let grid = ProcessGrid::square(world);
            let mut t = Triples::new(4, 4);
            for i in 0..4u32 {
                for j in 0..4u32 {
                    t.push(i, j, Tick(rank as u32 * 16 + i * 4 + j + 1));
                }
            }
            let local = CsrMatrix::from_triples(t);
            let da = DistSparseMatrix::from_local_block(&grid, 8, 8, local);
            let db = {
                let mut t = Triples::new(4, 4);
                for i in 0..4u32 {
                    t.push(i, i, Tick(1));
                }
                DistSparseMatrix::from_local_block(&grid, 8, 8, CsrMatrix::from_triples(t))
            };
            grid.world().barrier();
            if rank == 0 {
                TICK_CLONES.store(0, std::sync::atomic::Ordering::SeqCst);
            }
            grid.world().barrier();
            let (cm, _) =
                summa_with_overlap(&grid, &TickRing, &da, &db, &SpGemmPool::serial(), true);
            grid.world().barrier();
            let clones = TICK_CLONES.load(std::sync::atomic::Ordering::SeqCst);
            (cm.nnz_local(), clones)
        });
        for (nnz, clones) in out {
            assert_eq!(nnz, 16, "each rank's C block should be dense 4x4");
            assert_eq!(clones, 0, "overlapped SUMMA deep-copied Tick values");
        }
    }

    /// `Trace` with a deliberately slow multiply, so each SUMMA stage's
    /// compute provably outlasts the next stage's broadcast posting — the
    /// span-interval assertion below cannot race.
    struct SlowTrace;
    impl Semiring for SlowTrace {
        type A = u32;
        type B = u32;
        type C = Vec<u32>;
        fn multiply(&self, a: &u32, b: &u32) -> Vec<u32> {
            std::thread::sleep(std::time::Duration::from_micros(300));
            vec![a * 1000 + b]
        }
        fn combine(&self, acc: &mut Vec<u32>, mut inc: Vec<u32>) {
            acc.append(&mut inc);
        }
    }

    #[test]
    fn overlap_emits_concurrent_prefetch_and_stage_spans() {
        use pastis_trace::TraceSession;
        let sess = std::sync::Arc::new(TraceSession::new());
        let mut ta = Triples::new(6, 6);
        let mut tb = Triples::new(6, 6);
        for i in 0..6u32 {
            for j in 0..6u32 {
                ta.push(i, j, i * 10 + j);
                tb.push(i, j, i * 10 + j);
            }
        }
        let sess2 = std::sync::Arc::clone(&sess);
        let out = run_threaded(4, move |c| {
            let rec = sess2.recorder(c.rank());
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            let (a, b) = if c.rank() == 0 {
                (ta.clone(), tb.clone())
            } else {
                (Triples::new(6, 6), Triples::new(6, 6))
            };
            let da = DistSparseMatrix::from_global_triples(&grid, 6, 6, a, |_, _| {});
            let db = DistSparseMatrix::from_global_triples(&grid, 6, 6, b, |_, _| {});
            let pool = SpGemmPool::serial().with_recorder(rec);
            let (cm, _) = summa_with_overlap(&grid, &SlowTrace, &da, &db, &pool, true);
            cm.nnz_local()
        });
        assert!(out.iter().all(|&n| n > 0));
        for rec in sess.recorders() {
            let spans = rec.snapshot_spans();
            let stages: Vec<_> = spans
                .iter()
                .filter(|s| s.name == names::SPAN_SPGEMM_STAGE)
                .collect();
            let prefetches: Vec<_> = spans
                .iter()
                .filter(|s| s.name == names::SPAN_SUMMA_BCAST_PREFETCH)
                .collect();
            // 2x2 grid → q = 2 stages, one of which is overlapped.
            assert_eq!(stages.len(), 1, "rank {}", rec.rank());
            assert_eq!(prefetches.len(), 1, "rank {}", rec.rank());
            let s = stages[0];
            let p = prefetches[0];
            assert_eq!(s.track, Track::SpGemmWorker(0));
            assert_eq!(p.track, Track::CommPath);
            // The prefetch ran strictly inside the stage's compute window:
            // true concurrency, not phased scheduling.
            assert!(
                p.start_us >= s.start_us && p.start_us < s.end_us(),
                "rank {}: prefetch [{}, {}] not inside stage [{}, {}]",
                rec.rank(),
                p.start_us,
                p.end_us(),
                s.start_us,
                s.end_us()
            );
        }
    }

    /// A ledger hook recording alloc/free balance and the peak.
    #[derive(Default)]
    struct LedgerHook {
        live: std::sync::atomic::AtomicU64,
        peak: std::sync::atomic::AtomicU64,
        allocs: std::sync::atomic::AtomicU64,
        frees: std::sync::atomic::AtomicU64,
    }
    impl StageMemHook for LedgerHook {
        fn on_stage_alloc(&self, bytes: u64) {
            use std::sync::atomic::Ordering::Relaxed;
            let now = self.live.fetch_add(bytes, Relaxed) + bytes;
            self.peak.fetch_max(now, Relaxed);
            self.allocs.fetch_add(1, Relaxed);
        }
        fn on_stage_free(&self, bytes: u64) {
            use std::sync::atomic::Ordering::Relaxed;
            self.live.fetch_sub(bytes, Relaxed);
            self.frees.fetch_add(1, Relaxed);
        }
    }

    #[test]
    fn stage_hook_balances_and_leaves_output_bit_identical() {
        let (n, m, l) = (12usize, 10usize, 11usize);
        let a = random_triples(n, m, 40, 51);
        let b = random_triples(m, l, 35, 52);
        let want = serial_product(&a, &b);
        for overlap in [false, true] {
            let a = a.clone();
            let b = b.clone();
            let out = run_threaded(4, move |c| {
                let world = c.split(0, c.rank());
                let grid = ProcessGrid::square(world);
                let (ta, tb) = if c.rank() == 0 {
                    (a.clone(), b.clone())
                } else {
                    (Triples::new(n, m), Triples::new(m, l))
                };
                let da = DistSparseMatrix::from_global_triples(&grid, n, m, ta, |_, _| {});
                let db = DistSparseMatrix::from_global_triples(&grid, m, l, tb, |_, _| {});
                let hook = LedgerHook::default();
                let (cm, _) = summa_with_overlap_hooked(
                    &grid,
                    &PlusTimes::new(),
                    &da,
                    &db,
                    &SpGemmPool::serial(),
                    overlap,
                    Some(&hook),
                );
                use std::sync::atomic::Ordering::Relaxed;
                (
                    cm.gather_global(&grid).to_sorted_tuples(),
                    hook.live.load(Relaxed),
                    hook.peak.load(Relaxed),
                    hook.allocs.load(Relaxed),
                    hook.frees.load(Relaxed),
                )
            });
            for (got, live, peak, allocs, frees) in out {
                assert_eq!(got, want, "overlap={overlap}");
                assert_eq!(live, 0, "every stage alloc must be freed");
                assert!(peak > 0, "stages with nonzero payload were charged");
                // 2x2 grid → 2 stages.
                assert_eq!(allocs, 2);
                assert_eq!(frees, 2);
            }
        }
    }

    #[test]
    fn stripe_evict_restore_round_trips_bit_exactly() {
        let (n, m) = (14usize, 9usize);
        let a = random_triples(n, m, 40, 61);
        let at = a.clone().transpose();
        let grid = ProcessGrid::square(SelfComm::new());
        let mut bs =
            BlockedSumma::from_triples(&grid, a.clone(), at.clone(), 3, 2, |_, _| {}, |_, _| {});
        let reference = BlockedSumma::from_triples(&grid, a, at, 3, 2, |_, _| {}, |_, _| {});
        // Evict every stripe, then restore, then verify every block matches
        // the never-spilled driver bit-for-bit.
        let before_a: Vec<u64> = (0..3).map(|r| bs.a_stripe_bytes(r)).collect();
        let a_blocks: Vec<_> = (0..3).map(|r| bs.evict_a_stripe(r)).collect();
        let b_blocks: Vec<_> = (0..2).map(|c| bs.evict_b_stripe(c)).collect();
        for r in 0..3 {
            assert_eq!(bs.a_stripe(r).nnz_local(), 0, "evicted stripe is empty");
        }
        for (r, blk) in a_blocks.into_iter().enumerate() {
            bs.restore_a_stripe(r, blk);
            assert_eq!(bs.a_stripe_bytes(r), before_a[r]);
        }
        for (c, blk) in b_blocks.into_iter().enumerate() {
            bs.restore_b_stripe(c, blk);
        }
        for r in 0..3 {
            for c in 0..2 {
                let (got, _) = bs.multiply_block(&grid, &PlusTimes::new(), r, c);
                let (want, _) = reference.multiply_block(&grid, &PlusTimes::new(), r, c);
                assert_eq!(
                    got.gather_global(&grid).to_sorted_tuples(),
                    want.gather_global(&grid).to_sorted_tuples(),
                    "block ({r},{c}) after spill round trip"
                );
            }
        }
    }

    #[test]
    fn summa_with_is_kernel_and_thread_invariant() {
        // The Trace semiring exposes combine order; every pool
        // configuration must reproduce the serial result bit-for-bit.
        let mut ta = Triples::new(9, 9);
        let mut tb = Triples::new(9, 9);
        for i in 0..9u32 {
            for j in 0..9u32 {
                if (i + 2 * j) % 3 != 1 {
                    ta.push(i, j, i * 10 + j);
                }
                if (i * j + i) % 4 != 2 {
                    tb.push(i, j, i * 10 + j);
                }
            }
        }
        let am = CsrMatrix::from_triples(ta.clone());
        let bm = CsrMatrix::from_triples(tb.clone());
        let (serial, _) = spgemm_hash(&Trace, &am, &bm);
        let want = serial.to_triples().to_sorted_tuples();
        for kind in [
            SpGemmKind::Auto,
            SpGemmKind::Hash,
            SpGemmKind::Heap,
            SpGemmKind::Parallel,
        ] {
            for threads in [1usize, 4] {
                let ta = ta.clone();
                let tb = tb.clone();
                let out = run_threaded(4, move |c| {
                    let world = c.split(0, c.rank());
                    let grid = ProcessGrid::square(world);
                    let (a, b) = if c.rank() == 0 {
                        (ta.clone(), tb.clone())
                    } else {
                        (Triples::new(9, 9), Triples::new(9, 9))
                    };
                    let da = DistSparseMatrix::from_global_triples(&grid, 9, 9, a, |_, _| {});
                    let db = DistSparseMatrix::from_global_triples(&grid, 9, 9, b, |_, _| {});
                    let pool = SpGemmPool::new(threads).with_kind(kind);
                    let (cm, _) = summa_with(&grid, &Trace, &da, &db, &pool);
                    cm.gather_global(&grid).to_sorted_tuples()
                });
                for got in out {
                    assert_eq!(got, want, "kind={kind} threads={threads}");
                }
            }
        }
    }
}
