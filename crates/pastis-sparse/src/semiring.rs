//! User-defined semirings for sparse matrix "multiplication".
//!
//! The paper (Section V, Figure 2): *"the discovery of candidate pairwise
//! sequences is expressed through an overloaded sparse matrix–sparse matrix
//! multiplication, in which the elements involved are custom data types and
//! the conventional multiply-add is overloaded with custom operators, known
//! as semirings."*
//!
//! A [`Semiring`] here is the compute-facing subset GraphBLAS/CombBLAS use
//! in SpGEMM: a `multiply` mapping an `A`-element and a `B`-element to a
//! `C`-element, and a `combine` folding `C`-elements that land on the same
//! output coordinate. The additive identity is implicit in sparsity (absent
//! entries), so no `zero()` is needed; `combine` must be associative for
//! the result to be independent of stage order, which the SUMMA tests
//! verify for every semiring shipped here.

use std::marker::PhantomData;

/// A semiring: `multiply : A × B → C` plus an associative accumulator
/// `combine : C × C → C`.
pub trait Semiring {
    /// Element type of the left operand matrix.
    type A;
    /// Element type of the right operand matrix.
    type B;
    /// Element type of the output matrix.
    type C;

    /// The overloaded "multiplication" of one `A`-element with one
    /// `B`-element that share an inner index.
    fn multiply(&self, a: &Self::A, b: &Self::B) -> Self::C;

    /// Fold `incoming` into `acc`; both address the same output coordinate.
    /// Must be associative (and is applied in ascending inner-index order
    /// by the deterministic kernels).
    fn combine(&self, acc: &mut Self::C, incoming: Self::C);
}

/// The conventional arithmetic semiring `(+, ×)` over any numeric type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlusTimes<T>(PhantomData<T>);

impl<T> PlusTimes<T> {
    /// Create the arithmetic semiring.
    pub fn new() -> PlusTimes<T> {
        PlusTimes(PhantomData)
    }
}

impl<T> Semiring for PlusTimes<T>
where
    T: Copy + std::ops::Add<Output = T> + std::ops::Mul<Output = T>,
{
    type A = T;
    type B = T;
    type C = T;

    #[inline]
    fn multiply(&self, a: &T, b: &T) -> T {
        *a * *b
    }

    #[inline]
    fn combine(&self, acc: &mut T, incoming: T) {
        *acc = *acc + incoming;
    }
}

/// The boolean semiring `(∨, ∧)` — structural products / reachability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolAndOr;

impl Semiring for BoolAndOr {
    type A = bool;
    type B = bool;
    type C = bool;

    #[inline]
    fn multiply(&self, a: &bool, b: &bool) -> bool {
        *a && *b
    }

    #[inline]
    fn combine(&self, acc: &mut bool, incoming: bool) {
        *acc = *acc || incoming;
    }
}

/// The tropical semiring `(min, +)` over `f64` — shortest paths.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type A = f64;
    type B = f64;
    type C = f64;

    #[inline]
    fn multiply(&self, a: &f64, b: &f64) -> f64 {
        *a + *b
    }

    #[inline]
    fn combine(&self, acc: &mut f64, incoming: f64) {
        if incoming < *acc {
            *acc = incoming;
        }
    }
}

/// Counting semiring: multiply ignores values and yields 1; combine sums —
/// SpGEMM over it counts, per output coordinate, the number of shared inner
/// indices. This is the structural skeleton of PASTIS's overlap detection
/// (the full pipeline uses a richer value carrying seed positions; see
/// `pastis-core::overlap`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountShared<A, B>(PhantomData<(A, B)>);

impl<A, B> CountShared<A, B> {
    /// Create the counting semiring.
    pub fn new() -> CountShared<A, B> {
        CountShared(PhantomData)
    }
}

impl<A, B> Semiring for CountShared<A, B> {
    type A = A;
    type B = B;
    type C = u64;

    #[inline]
    fn multiply(&self, _a: &A, _b: &B) -> u64 {
        1
    }

    #[inline]
    fn combine(&self, acc: &mut u64, incoming: u64) {
        *acc += incoming;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_behaves_arithmetically() {
        let s = PlusTimes::<f64>::new();
        assert_eq!(s.multiply(&3.0, &4.0), 12.0);
        let mut acc = 1.0;
        s.combine(&mut acc, 2.0);
        assert_eq!(acc, 3.0);
    }

    #[test]
    fn plus_times_integer() {
        let s = PlusTimes::<u64>::new();
        assert_eq!(s.multiply(&3, &4), 12);
    }

    #[test]
    fn bool_and_or() {
        let s = BoolAndOr;
        assert!(s.multiply(&true, &true));
        assert!(!s.multiply(&true, &false));
        let mut acc = false;
        s.combine(&mut acc, true);
        assert!(acc);
    }

    #[test]
    fn min_plus_selects_shortest() {
        let s = MinPlus;
        assert_eq!(s.multiply(&2.0, &3.0), 5.0);
        let mut acc = 7.0;
        s.combine(&mut acc, 5.0);
        assert_eq!(acc, 5.0);
        s.combine(&mut acc, 9.0);
        assert_eq!(acc, 5.0);
    }

    #[test]
    fn count_shared_counts() {
        let s = CountShared::<char, char>::new();
        assert_eq!(s.multiply(&'x', &'y'), 1);
        let mut acc = 1;
        s.combine(&mut acc, 1);
        assert_eq!(acc, 2);
    }

    #[test]
    fn combine_associativity_spotcheck() {
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) for MinPlus on sample values.
        let s = MinPlus;
        let (a, b, c) = (3.0, 1.0, 2.0);
        let mut left = a;
        s.combine(&mut left, b);
        s.combine(&mut left, c);
        let mut bc = b;
        s.combine(&mut bc, c);
        let mut right = a;
        s.combine(&mut right, bc);
        assert_eq!(left, right);
    }
}
