//! Coordinate (COO) sparse-matrix form.
//!
//! Triples are the interchange format of the substrate: distributed
//! shuffles, file I/O, and format conversions all pass through them, exactly
//! as CombBLAS uses tuples for its `SpAsgn`/IO paths. Row/column indices are
//! `u32` — PASTIS's production run has 405·10⁶ sequences and 244·10⁶ k-mer
//! columns, both below `u32::MAX`.

/// Row/column index type of every sparse matrix in the substrate.
pub type Index = u32;

/// One nonzero element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triple<T> {
    /// Row index.
    pub row: Index,
    /// Column index.
    pub col: Index,
    /// Stored value.
    pub val: T,
}

/// A sparse matrix in coordinate form: explicit dimensions plus an
/// unordered list of entries (duplicates allowed until a conversion
/// combines them).
#[derive(Debug, Clone, PartialEq)]
pub struct Triples<T> {
    nrows: usize,
    ncols: usize,
    /// The entries; ordering is not significant.
    pub entries: Vec<Triple<T>>,
}

impl<T> Triples<T> {
    /// An empty matrix of the given dimensions.
    pub fn new(nrows: usize, ncols: usize) -> Triples<T> {
        assert!(
            nrows <= Index::MAX as usize && ncols <= Index::MAX as usize,
            "matrix dimension exceeds Index range"
        );
        Triples {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Build from `(row, col, val)` tuples.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_entries(nrows: usize, ncols: usize, entries: Vec<(Index, Index, T)>) -> Triples<T> {
        let mut t = Triples::new(nrows, ncols);
        for (row, col, val) in entries {
            t.push(row, col, val);
        }
        t
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Append an entry, checking bounds.
    pub fn push(&mut self, row: Index, col: Index, val: T) {
        assert!(
            (row as usize) < self.nrows && (col as usize) < self.ncols,
            "entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.entries.push(Triple { row, col, val });
    }

    /// Sort entries into row-major (row, then column) order. Duplicate
    /// coordinates stay adjacent in insertion order (stable sort).
    pub fn sort_row_major(&mut self) {
        self.entries.sort_by_key(|a| (a.row, a.col));
    }

    /// Sort entries into column-major (column, then row) order.
    pub fn sort_col_major(&mut self) {
        self.entries.sort_by_key(|a| (a.col, a.row));
    }

    /// Combine duplicate coordinates with `combine(acc, incoming)`,
    /// left-to-right in current entry order after a stable row-major sort.
    pub fn combine_duplicates(&mut self, mut combine: impl FnMut(&mut T, T)) {
        self.sort_row_major();
        let mut out: Vec<Triple<T>> = Vec::with_capacity(self.entries.len());
        for t in self.entries.drain(..) {
            match out.last_mut() {
                Some(last) if last.row == t.row && last.col == t.col => {
                    combine(&mut last.val, t.val);
                }
                _ => out.push(t),
            }
        }
        self.entries = out;
    }

    /// Map values, preserving structure.
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> Triples<U> {
        Triples {
            nrows: self.nrows,
            ncols: self.ncols,
            entries: self
                .entries
                .into_iter()
                .map(|t| Triple {
                    row: t.row,
                    col: t.col,
                    val: f(t.val),
                })
                .collect(),
        }
    }

    /// Swap rows and columns (transpose in COO form, O(nnz)).
    pub fn transpose(self) -> Triples<T> {
        Triples {
            nrows: self.ncols,
            ncols: self.nrows,
            entries: self
                .entries
                .into_iter()
                .map(|t| Triple {
                    row: t.col,
                    col: t.row,
                    val: t.val,
                })
                .collect(),
        }
    }

    /// Keep only entries satisfying the predicate.
    pub fn retain(&mut self, mut pred: impl FnMut(Index, Index, &T) -> bool) {
        self.entries.retain(|t| pred(t.row, t.col, &t.val));
    }
}

impl<T: Clone> Triples<T> {
    /// Entries as `(row, col, val)` tuples, row-major sorted — convenient
    /// for comparisons in tests.
    pub fn to_sorted_tuples(&self) -> Vec<(Index, Index, T)> {
        let mut v: Vec<(Index, Index, T)> = self
            .entries
            .iter()
            .map(|t| (t.row, t.col, t.val.clone()))
            .collect();
        v.sort_by_key(|t| (t.0, t.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_dims() {
        let mut t = Triples::new(3, 4);
        t.push(0, 0, 1.0);
        t.push(2, 3, 2.0);
        assert_eq!(t.nnz(), 2);
        assert_eq!((t.nrows(), t.ncols()), (3, 4));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut t = Triples::new(2, 2);
        t.push(2, 0, 1u8);
    }

    #[test]
    fn combine_duplicates_sums() {
        let mut t =
            Triples::from_entries(2, 2, vec![(0, 1, 2u32), (1, 0, 5), (0, 1, 3), (0, 1, 1)]);
        t.combine_duplicates(|a, b| *a += b);
        assert_eq!(t.to_sorted_tuples(), vec![(0, 1, 6), (1, 0, 5)]);
    }

    #[test]
    fn combine_is_left_to_right_in_insertion_order() {
        // combine keeps the first value's slot; check order sensitivity.
        let mut t = Triples::from_entries(1, 1, vec![(0, 0, "a"), (0, 0, "b")]);
        let mut seen = Vec::new();
        t.combine_duplicates(|acc, inc| {
            seen.push((*acc, inc));
        });
        assert_eq!(seen, vec![("a", "b")]);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let t = Triples::from_entries(2, 3, vec![(0, 2, 7u8), (1, 0, 9)]);
        let tt = t.transpose();
        assert_eq!((tt.nrows(), tt.ncols()), (3, 2));
        assert_eq!(tt.to_sorted_tuples(), vec![(0, 1, 9), (2, 0, 7)]);
    }

    #[test]
    fn sort_orders() {
        let mut t = Triples::from_entries(2, 2, vec![(1, 0, 1u8), (0, 1, 2), (0, 0, 3)]);
        t.sort_row_major();
        let rows: Vec<_> = t.entries.iter().map(|e| (e.row, e.col)).collect();
        assert_eq!(rows, vec![(0, 0), (0, 1), (1, 0)]);
        t.sort_col_major();
        let cols: Vec<_> = t.entries.iter().map(|e| (e.row, e.col)).collect();
        assert_eq!(cols, vec![(0, 0), (1, 0), (0, 1)]);
    }

    #[test]
    fn retain_filters() {
        let mut t = Triples::from_entries(3, 3, vec![(0, 0, 1u8), (1, 1, 2), (2, 2, 3)]);
        t.retain(|r, c, _| r == c && r > 0);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn map_preserves_structure() {
        let t = Triples::from_entries(2, 2, vec![(0, 1, 2u32)]);
        let m = t.map(|v| v as f64 * 0.5);
        assert_eq!(m.to_sorted_tuples(), vec![(0, 1, 1.0)]);
    }
}
