//! Semiring sparse matrix–vector products.
//!
//! CombBLAS pairs its SpGEMM with semiring SpMV/SpMSpV for the
//! vector-driven graph algorithms layered on the same matrices (the
//! similarity graph PASTIS emits is consumed by exactly such algorithms —
//! e.g. HipMCL's Markov clustering is iterated semiring SpMV). Provided
//! here for the dense-vector and sparse-vector cases, both
//! semiring-generic and tested against each other.

use crate::csr::CsrMatrix;
use crate::semiring::Semiring;
use crate::triples::Index;

/// `y = A ⊗ x` with a dense input vector: `y[i] = ⊕_j multiply(A[i,j], x[j])`.
/// Rows with no contributing entries yield `None`.
pub fn spmv_dense<S: Semiring>(sr: &S, a: &CsrMatrix<S::A>, x: &[S::B]) -> Vec<Option<S::C>> {
    assert_eq!(a.ncols(), x.len(), "SpMV dimension mismatch");
    let mut y: Vec<Option<S::C>> = Vec::with_capacity(a.nrows());
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let mut acc: Option<S::C> = None;
        for (&j, v) in cols.iter().zip(vals) {
            let prod = sr.multiply(v, &x[j as usize]);
            match &mut acc {
                Some(a) => sr.combine(a, prod),
                slot @ None => *slot = Some(prod),
            }
        }
        y.push(acc);
    }
    y
}

/// `y = A ⊗ x` with a sparse input vector given as sorted
/// `(index, value)` pairs; the output is sparse in the same format
/// (SpMSpV). Equivalent to [`spmv_dense`] on the densified vector
/// (property-tested).
pub fn spmv_sparse<S: Semiring>(
    sr: &S,
    a: &CsrMatrix<S::A>,
    x: &[(Index, S::B)],
) -> Vec<(Index, S::C)> {
    debug_assert!(
        x.windows(2).all(|w| w[0].0 < w[1].0),
        "sparse vector must be sorted and duplicate-free"
    );
    debug_assert!(
        x.last().is_none_or(|l| (l.0 as usize) < a.ncols()),
        "sparse vector index out of range"
    );
    let mut y: Vec<(Index, S::C)> = Vec::new();
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let mut acc: Option<S::C> = None;
        // Sorted-merge of the row's columns with the vector's indices.
        let (mut p, mut q) = (0usize, 0usize);
        while p < cols.len() && q < x.len() {
            match cols[p].cmp(&x[q].0) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    let prod = sr.multiply(&vals[p], &x[q].1);
                    match &mut acc {
                        Some(a) => sr.combine(a, prod),
                        slot @ None => *slot = Some(prod),
                    }
                    p += 1;
                    q += 1;
                }
            }
        }
        if let Some(v) = acc {
            y.push((i as Index, v));
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolAndOr, MinPlus, PlusTimes};
    use crate::triples::Triples;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix<f64> {
        CsrMatrix::from_triples(Triples::from_entries(
            3,
            4,
            vec![
                (0, 0, 2.0),
                (0, 3, 1.0),
                (1, 1, -1.0),
                (2, 0, 4.0),
                (2, 2, 0.5),
            ],
        ))
    }

    #[test]
    fn dense_spmv_arithmetic() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = spmv_dense(&PlusTimes::new(), &a, &x);
        assert_eq!(y, vec![Some(2.0 + 4.0), Some(-2.0), Some(4.0 + 1.5)]);
    }

    #[test]
    fn dense_spmv_empty_row_is_none() {
        let a: CsrMatrix<f64> =
            CsrMatrix::from_triples(Triples::from_entries(2, 2, vec![(0, 0, 1.0)]));
        let y = spmv_dense(&PlusTimes::new(), &a, &[5.0, 5.0]);
        assert_eq!(y[1], None);
    }

    #[test]
    fn bool_spmv_is_frontier_expansion() {
        // Adjacency row i reachable from frontier x.
        let g = CsrMatrix::from_triples(Triples::from_entries(
            3,
            3,
            vec![(0, 1, true), (1, 2, true), (2, 0, true)],
        ));
        let frontier = vec![false, true, false];
        let next = spmv_dense(&BoolAndOr, &g, &frontier);
        assert_eq!(next, vec![Some(true), Some(false), Some(false)]);
    }

    #[test]
    fn minplus_spmv_relaxes_distances() {
        let g = CsrMatrix::from_triples(Triples::from_entries(
            2,
            2,
            vec![(0, 0, 0.0), (0, 1, 3.0), (1, 1, 0.0)],
        ));
        let dist = vec![0.0, 10.0];
        let relaxed = spmv_dense(&MinPlus, &g, &dist);
        assert_eq!(relaxed, vec![Some(0.0), Some(10.0)]);
    }

    #[test]
    fn sparse_spmv_matches_dense() {
        let a = sample();
        let xs = vec![(0u32, 1.0), (3u32, 4.0)];
        let ys = spmv_sparse(&PlusTimes::new(), &a, &xs);
        assert_eq!(ys, vec![(0, 2.0 + 4.0), (2, 4.0)]);
    }

    #[test]
    fn sparse_spmv_empty_vector() {
        let a = sample();
        let ys = spmv_sparse(&PlusTimes::new(), &a, &[]);
        assert!(ys.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn spmsv_equals_densified_spmv(
            entries in proptest::collection::vec(
                (0u32..12, 0u32..10, -3i64..4), 0..40),
            xent in proptest::collection::btree_map(0u32..10usize as u32, -3i64..4, 0..10),
        ) {
            let mut t = Triples::new(12, 10);
            let mut seen = std::collections::HashSet::new();
            for (r, c, v) in entries {
                if seen.insert((r, c)) {
                    t.push(r, c, v);
                }
            }
            let a = CsrMatrix::from_triples(t);
            let xs: Vec<(Index, i64)> = xent.iter().map(|(&k, &v)| (k, v)).collect();
            let mut xd = vec![0i64; 10];
            for &(k, v) in &xs {
                xd[k as usize] = v;
            }
            let dense = spmv_dense(&PlusTimes::<i64>::new(), &a, &xd);
            let sparse = spmv_sparse(&PlusTimes::<i64>::new(), &a, &xs);
            // For PlusTimes, densifying x pads with zeros whose products
            // are the additive identity, so: where the sparse result has a
            // row, dense must agree exactly; where it does not, any dense
            // value can only be a sum of zero products.
            let mut sparse_map = std::collections::HashMap::new();
            for (i, v) in sparse {
                sparse_map.insert(i, v);
            }
            for (i, dv) in dense.iter().enumerate() {
                match sparse_map.get(&(i as Index)) {
                    Some(sv) => prop_assert_eq!(*dv, Some(*sv), "row {}", i),
                    None => {
                        if let Some(v) = dv {
                            prop_assert_eq!(*v, 0, "row {}", i);
                        }
                    }
                }
            }
        }
    }
}
