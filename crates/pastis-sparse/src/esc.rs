//! Outer-product (expand–sort–compress) SpGEMM over DCSC operands.
//!
//! CombBLAS's distributed multiply historically pairs hypersparse DCSC
//! blocks with an outer-product local kernel: for every shared inner index
//! `k`, the column `A(:,k)` and row `B(k,:)` form an outer product of
//! intermediate triples, which are then sorted and compressed with the
//! semiring's `combine` (the ESC algorithm of Buluç & Gilbert). This
//! kernel complements the row-wise hash/heap kernels of
//! [`crate::spgemm`]: it never touches empty columns, so its work is
//! `O(flops + nzc)` regardless of the (possibly enormous) logical
//! dimension — exactly the property the paper's 244-million-column k-mer
//! matrices need.
//!
//! Determinism: intermediates are sorted by `(row, col, k)` before
//! compression, so `combine` is applied in ascending-`k` order per output
//! coordinate — bit-identical to the other kernels for any semiring
//! (tested).

use crate::csr::CsrMatrix;
use crate::dcsc::DcscMatrix;
use crate::semiring::Semiring;
use crate::spgemm::SpGemmStats;
use crate::triples::{Index, Triples};

/// ESC SpGEMM: `C = Aᵀ-form ⊗ B-form` where `a_by_col` is `A` in DCSC
/// (column access) and `b_by_row` is `B` in DCSC of `Bᵀ`… to keep the API
/// symmetric we take `A` in DCSC and `B` in DCSC of its *transpose* —
/// i.e. `b_t.col(k)` yields row `k` of `B`.
///
/// Returns CSR like the other kernels.
pub fn spgemm_esc<S: Semiring>(
    sr: &S,
    a: &DcscMatrix<S::A>,
    b_t: &DcscMatrix<S::B>,
) -> (CsrMatrix<S::C>, SpGemmStats)
where
    S::A: Clone,
    S::B: Clone,
    S::C: Clone,
{
    assert_eq!(
        a.ncols(),
        b_t.ncols(),
        "ESC SpGEMM inner dimension mismatch ({} vs {})",
        a.ncols(),
        b_t.ncols()
    );
    let mut stats = SpGemmStats::default();
    // Expand: (row, col, k, value) intermediates over shared inner ids.
    let mut inter: Vec<(Index, Index, Index, S::C)> = Vec::new();
    // Walk both DCSC column lists in merge order (both ascending by id).
    let mut bi = b_t.iter_cols().peekable();
    for (k, arows, avals) in a.iter_cols() {
        // Advance B's iterator to inner id k.
        let mut hit: Option<(&[Index], &[S::B])> = None;
        while let Some(&(bk, brows, bvals)) = bi.peek() {
            if bk < k {
                bi.next();
            } else {
                if bk == k {
                    hit = Some((brows, bvals));
                }
                break;
            }
        }
        let Some((brows, bvals)) = hit else { continue };
        for (&i, av) in arows.iter().zip(avals) {
            for (&j, bv) in brows.iter().zip(bvals) {
                inter.push((i, j, k, sr.multiply(av, bv)));
                stats.products += 1;
            }
        }
    }
    // Sort: by output coordinate, then inner id (combine order contract).
    inter.sort_by_key(|x| (x.0, x.1, x.2));
    // Compress.
    let mut t = Triples::new(a.nrows(), b_t.nrows());
    for (i, j, _k, v) in inter {
        match t.entries.last_mut() {
            Some(last) if last.row == i && last.col == j => sr.combine(&mut last.val, v),
            _ => t.push(i, j, v),
        }
    }
    stats.merged_nnz = t.nnz() as u64;
    (
        CsrMatrix::from_triples_combining(t, |_, _| unreachable!("already compressed")),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;
    use crate::spgemm::spgemm_hash;
    use proptest::prelude::*;

    fn to_dcsc(m: &CsrMatrix<f64>) -> DcscMatrix<f64> {
        DcscMatrix::from_triples(m.to_triples())
    }

    #[test]
    fn matches_hash_kernel_small() {
        let a = CsrMatrix::from_triples(Triples::from_entries(
            3,
            4,
            vec![(0, 0, 2.0), (0, 2, 1.0), (1, 1, 3.0), (2, 3, -1.0)],
        ));
        let b = CsrMatrix::from_triples(Triples::from_entries(
            4,
            3,
            vec![(0, 1, 4.0), (1, 0, 1.0), (2, 1, 5.0), (3, 2, 2.0)],
        ));
        let (want, wstats) = spgemm_hash(&PlusTimes::new(), &a, &b);
        let (got, gstats) = spgemm_esc(&PlusTimes::new(), &to_dcsc(&a), &to_dcsc(&b.transpose()));
        assert_eq!(got, want);
        assert_eq!(gstats.products, wstats.products);
        assert_eq!(gstats.merged_nnz, wstats.merged_nnz);
    }

    #[test]
    fn hypersparse_wide_inner_dimension() {
        // 3 x 100M with 3 nonzeros: ESC touches only the 3 columns.
        let dim = 100_000_000;
        let a = DcscMatrix::from_triples(Triples::from_entries(
            3,
            dim,
            vec![(0, 7, 1.0), (1, 99_999_999, 2.0), (2, 7, 3.0)],
        ));
        let bt = DcscMatrix::from_triples(Triples::from_entries(
            2,
            dim,
            vec![(0, 7, 10.0), (1, 99_999_999, 20.0)],
        ));
        let (c, stats) = spgemm_esc(&PlusTimes::new(), &a, &bt);
        assert_eq!(c.get(0, 0), Some(&10.0));
        assert_eq!(c.get(2, 0), Some(&30.0));
        assert_eq!(c.get(1, 1), Some(&40.0));
        assert_eq!(stats.products, 3);
    }

    /// Order-revealing semiring to pin down the combine-order contract.
    struct Concat;
    impl Semiring for Concat {
        type A = u32;
        type B = u32;
        type C = Vec<u32>;
        fn multiply(&self, a: &u32, b: &u32) -> Vec<u32> {
            vec![a * 100 + b]
        }
        fn combine(&self, acc: &mut Vec<u32>, mut inc: Vec<u32>) {
            acc.append(&mut inc);
        }
    }

    #[test]
    fn combine_order_matches_row_kernels() {
        let a = CsrMatrix::from_triples(Triples::from_entries(
            1,
            4,
            vec![(0, 0, 1u32), (0, 1, 2), (0, 2, 3), (0, 3, 4)],
        ));
        let b = CsrMatrix::from_triples(Triples::from_entries(
            4,
            1,
            vec![(0, 0, 5u32), (1, 0, 6), (2, 0, 7), (3, 0, 8)],
        ));
        let (want, _) = spgemm_hash(&Concat, &a, &b);
        let a_d = DcscMatrix::from_triples(a.to_triples());
        let bt_d = DcscMatrix::from_triples(b.transpose().to_triples());
        let (got, _) = spgemm_esc(&Concat, &a_d, &bt_d);
        assert_eq!(got, want);
        assert_eq!(got.get(0, 0), Some(&vec![105, 206, 307, 408]));
    }

    #[test]
    fn empty_operands() {
        let a: DcscMatrix<f64> = DcscMatrix::from_triples(Triples::new(3, 5));
        let bt: DcscMatrix<f64> = DcscMatrix::from_triples(Triples::new(2, 5));
        let (c, stats) = spgemm_esc(&PlusTimes::new(), &a, &bt);
        assert_eq!((c.nrows(), c.ncols()), (3, 2));
        assert_eq!(c.nnz(), 0);
        assert_eq!(stats.products, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn esc_equals_hash_on_random_matrices(
            ae in proptest::collection::vec((0u32..8, 0u32..9, -3i32..4), 0..40),
            be in proptest::collection::vec((0u32..9, 0u32..7, -3i32..4), 0..40),
        ) {
            let dedup = |v: Vec<(u32, u32, i32)>, nr: usize, nc: usize| {
                let mut t = Triples::new(nr, nc);
                let mut seen = std::collections::HashSet::new();
                for (r, c, x) in v {
                    if seen.insert((r, c)) {
                        t.push(r, c, x as f64);
                    }
                }
                t
            };
            let a = CsrMatrix::from_triples(dedup(ae, 8, 9));
            let b = CsrMatrix::from_triples(dedup(be, 9, 7));
            let (want, _) = spgemm_hash(&PlusTimes::new(), &a, &b);
            let (got, _) = spgemm_esc(
                &PlusTimes::new(),
                &DcscMatrix::from_triples(a.to_triples()),
                &DcscMatrix::from_triples(b.transpose().to_triples()),
            );
            prop_assert_eq!(got, want);
        }
    }
}
