//! CombBLAS-equivalent distributed sparse-matrix substrate for PASTIS-RS.
//!
//! PASTIS expresses protein similarity search as sparse matrix algebra: a
//! sequences-by-k-mers matrix `A`, an overlap matrix `C = A·Aᵀ` computed by
//! a semiring SpGEMM, and a similarity graph assembled from aligned pairs.
//! The paper's substrate for this is CombBLAS; this crate rebuilds the parts
//! PASTIS needs, from storage formats up to the paper's own Blocked 2D
//! Sparse SUMMA generalization (Section VI-A):
//!
//! * [`Triples`] — coordinate (COO) form, the interchange format.
//! * [`CsrMatrix`] — compressed sparse rows, the local compute format.
//! * [`CscMatrix`] / [`DcscMatrix`] — (doubly) compressed sparse columns,
//!   CombBLAS's storage for ordinary and hypersparse blocks.
//! * [`Semiring`] — user-defined multiply/combine pairs; the overlap
//!   discovery "multiplication" of the paper is SpGEMM over a custom
//!   semiring whose values carry k-mer seed positions.
//! * [`spgemm_hash`] / [`spgemm_heap`] / [`spgemm_parallel`] — Gustavson
//!   row-wise kernels (hash and heap accumulators, plus the row-partitioned
//!   multithreaded kernel), all semiring-generic and bit-identical to each
//!   other; [`SpGemmPool`] selects between them per multiplication
//!   ([`SpGemmKind`]).
//! * [`spgemm_esc`] — the outer-product expand–sort–compress kernel over
//!   DCSC operands for hypersparse blocks.
//! * [`spmv_dense`] / [`spmv_sparse`] — semiring matrix–vector products
//!   (the primitive the similarity graph's downstream clustering uses).
//! * [`DistSparseMatrix`] — a matrix 2D-block-distributed over a
//!   `√p × √p` [`pastis_comm::ProcessGrid`].
//! * [`summa`] — 2D Sparse SUMMA (`√p` broadcast stages).
//! * [`BlockedSumma`] — the paper's blocked variant: the output is formed
//!   in `br × bc` blocks so the search can run incrementally under a memory
//!   budget.
//!
//! # Example: semiring SpGEMM
//!
//! ```
//! use pastis_sparse::{CsrMatrix, Triples, PlusTimes, spgemm_hash};
//!
//! let a = CsrMatrix::from_triples(Triples::from_entries(
//!     2, 3, vec![(0, 0, 2.0f64), (0, 2, 1.0), (1, 1, 3.0)],
//! ));
//! let b = CsrMatrix::from_triples(Triples::from_entries(
//!     3, 2, vec![(0, 1, 4.0f64), (1, 0, 1.0), (2, 1, 5.0)],
//! ));
//! let (c, stats) = spgemm_hash(&PlusTimes::new(), &a, &b);
//! assert_eq!(c.get(0, 1), Some(&13.0)); // 2·4 + 1·5
//! assert_eq!(stats.products, 3);
//! ```

#![warn(missing_docs)]

pub mod csr;
pub mod dcsc;
pub mod distmat;
pub mod esc;
pub mod parallel;
pub mod semiring;
pub mod spgemm;
pub mod spmv;
pub mod spops;
pub mod summa;
pub mod triples;

pub use csr::CsrMatrix;
pub use dcsc::{CscMatrix, DcscMatrix};
pub use distmat::DistSparseMatrix;
pub use esc::spgemm_esc;
pub use parallel::{run_units, spgemm_parallel, spgemm_parallel_traced, SpGemmPool};
pub use semiring::{BoolAndOr, MinPlus, PlusTimes, Semiring};
pub use spgemm::{spgemm_dense_ref, spgemm_hash, spgemm_heap, SpGemmKind, SpGemmStats};
pub use spmv::{spmv_dense, spmv_sparse};
pub use spops::{spadd, spadd_into};
pub use summa::{
    summa, summa_with, summa_with_overlap, summa_with_overlap_hooked, BlockedSumma, StageMemHook,
};
pub use triples::{Index, Triple, Triples};

/// Approximate in-memory footprint in bytes of a CSR matrix with `nnz`
/// stored values of `val_size` bytes and `nrows` rows — used to feed the
/// α–β cost model with realistic broadcast payloads.
pub fn csr_payload_bytes(nrows: usize, nnz: usize, val_size: usize) -> usize {
    (nrows + 1) * std::mem::size_of::<usize>() + nnz * (std::mem::size_of::<Index>() + val_size)
}
