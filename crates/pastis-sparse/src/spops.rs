//! Element-wise sparse operations: SpAdd, masking, triangular extraction.
//!
//! These are the CombBLAS building blocks PASTIS needs around the SpGEMM:
//! accumulating per-stage SUMMA partials (SpAdd), and the triangular /
//! parity masks of the two load-balancing schemes in Section VI-B.

use crate::csr::CsrMatrix;
use crate::triples::Index;

/// Element-wise union merge of two same-shaped matrices; coordinates present
/// in both are folded with `combine(acc_from_a, b_value)`.
pub fn spadd<T: Clone>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    mut combine: impl FnMut(&mut T, T),
) -> CsrMatrix<T> {
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "SpAdd shape mismatch"
    );
    let mut rowptr = Vec::with_capacity(a.nrows() + 1);
    rowptr.push(0usize);
    let mut colind: Vec<Index> = Vec::with_capacity(a.nnz() + b.nnz());
    let mut vals: Vec<T> = Vec::with_capacity(a.nnz() + b.nnz());
    for i in 0..a.nrows() {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut x, mut y) = (0usize, 0usize);
        while x < ac.len() || y < bc.len() {
            let take_a = y >= bc.len() || (x < ac.len() && ac[x] <= bc[y]);
            let take_b = x >= ac.len() || (y < bc.len() && bc[y] <= ac[x]);
            match (take_a, take_b) {
                (true, true) => {
                    let mut v = av[x].clone();
                    combine(&mut v, bv[y].clone());
                    colind.push(ac[x]);
                    vals.push(v);
                    x += 1;
                    y += 1;
                }
                (true, false) => {
                    colind.push(ac[x]);
                    vals.push(av[x].clone());
                    x += 1;
                }
                (false, true) => {
                    colind.push(bc[y]);
                    vals.push(bv[y].clone());
                    y += 1;
                }
                (false, false) => unreachable!(),
            }
        }
        rowptr.push(colind.len());
    }
    CsrMatrix::from_parts(a.nrows(), a.ncols(), rowptr, colind, vals)
}

/// Consuming union merge of two same-shaped matrices: the move-based
/// counterpart of [`spadd`], with the same `combine(acc_from_a, b_value)`
/// orientation. Values are *moved* out of both operands (no `Clone` bound),
/// so a SUMMA stage accumulation `c = spadd_into(c, partial, …)` costs
/// O(nnz(c) + nnz(partial)) moves instead of rebuilding + cloning the full
/// accumulated block every stage.
pub fn spadd_into<T>(
    a: CsrMatrix<T>,
    b: CsrMatrix<T>,
    mut combine: impl FnMut(&mut T, T),
) -> CsrMatrix<T> {
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "SpAdd shape mismatch"
    );
    // Structural no-ops move the non-empty side straight through — the
    // first SUMMA stage accumulates into an empty block for free.
    if b.nnz() == 0 {
        return a;
    }
    if a.nnz() == 0 {
        return b;
    }
    let (nrows, ncols, arp, acols, avals) = a.into_parts();
    let (_, _, brp, bcols, bvals) = b.into_parts();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colind: Vec<Index> = Vec::with_capacity(acols.len() + bcols.len());
    let mut vals: Vec<T> = Vec::with_capacity(avals.len() + bvals.len());
    // The union merge consumes each operand's values in strictly increasing
    // storage order, so two monotone iterators move them without cloning.
    let mut aiter = avals.into_iter();
    let mut biter = bvals.into_iter();
    for i in 0..nrows {
        let ac = &acols[arp[i]..arp[i + 1]];
        let bc = &bcols[brp[i]..brp[i + 1]];
        let (mut x, mut y) = (0usize, 0usize);
        while x < ac.len() || y < bc.len() {
            let take_a = y >= bc.len() || (x < ac.len() && ac[x] <= bc[y]);
            let take_b = x >= ac.len() || (y < bc.len() && bc[y] <= ac[x]);
            match (take_a, take_b) {
                (true, true) => {
                    let mut v = aiter.next().expect("a-values exhausted");
                    combine(&mut v, biter.next().expect("b-values exhausted"));
                    colind.push(ac[x]);
                    vals.push(v);
                    x += 1;
                    y += 1;
                }
                (true, false) => {
                    colind.push(ac[x]);
                    vals.push(aiter.next().expect("a-values exhausted"));
                    x += 1;
                }
                (false, true) => {
                    colind.push(bc[y]);
                    vals.push(biter.next().expect("b-values exhausted"));
                    y += 1;
                }
                (false, false) => unreachable!(),
            }
        }
        rowptr.push(colind.len());
    }
    CsrMatrix::from_parts(nrows, ncols, rowptr, colind, vals)
}

/// Strictly upper-triangular part (`j > i`), the candidate set the
/// triangularity-based load balancer keeps (Section VI-B).
pub fn triu_strict<T: Clone>(m: &CsrMatrix<T>) -> CsrMatrix<T> {
    m.prune(|i, j, _| j > i)
}

/// Strictly lower-triangular part (`j < i`).
pub fn tril_strict<T: Clone>(m: &CsrMatrix<T>) -> CsrMatrix<T> {
    m.prune(|i, j, _| j < i)
}

/// The paper's index-based (parity) pruning rule, Figure 6 right: in the
/// lower triangle keep entries whose row and column parities agree; in the
/// upper triangle keep entries whose parities differ; drop the diagonal.
/// For a symmetric matrix this keeps exactly one of `(i,j)` / `(j,i)` per
/// off-diagonal pair while preserving the uniform nonzero distribution.
#[inline]
pub fn parity_keep(i: Index, j: Index) -> bool {
    if i == j {
        return false;
    }
    let same_parity = (i % 2) == (j % 2);
    if j < i {
        // Lower triangle: keep if both odd or both even.
        same_parity
    } else {
        // Upper triangle: keep if parities differ.
        !same_parity
    }
}

/// Apply [`parity_keep`] to a matrix, with `(row_offset, col_offset)` added
/// to local indices so the rule is evaluated on *global* coordinates (each
/// distributed block sees only a window of the overlap matrix).
pub fn parity_prune<T: Clone>(
    m: &CsrMatrix<T>,
    row_offset: usize,
    col_offset: usize,
) -> CsrMatrix<T> {
    m.prune(|i, j, _| parity_keep(i + row_offset as Index, j + col_offset as Index))
}

/// Keep the strictly-upper-triangular part in *global* coordinates — the
/// per-block pruning of the triangularity scheme.
pub fn triu_prune_global<T: Clone>(
    m: &CsrMatrix<T>,
    row_offset: usize,
    col_offset: usize,
) -> CsrMatrix<T> {
    m.prune(|i, j, _| (j as usize + col_offset) > (i as usize + row_offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples::Triples;

    fn dense_sym(n: usize) -> CsrMatrix<u32> {
        // Fully dense symmetric matrix with value i*n+j.
        let mut t = Triples::new(n, n);
        for i in 0..n as Index {
            for j in 0..n as Index {
                t.push(i, j, 1);
            }
        }
        CsrMatrix::from_triples(t)
    }

    #[test]
    fn spadd_union_and_combine() {
        let a = CsrMatrix::from_triples(Triples::from_entries(
            2,
            3,
            vec![(0, 0, 1u32), (0, 2, 2), (1, 1, 3)],
        ));
        let b =
            CsrMatrix::from_triples(Triples::from_entries(2, 3, vec![(0, 2, 10u32), (1, 0, 20)]));
        let c = spadd(&a, &b, |x, y| *x += y);
        assert_eq!(c.get(0, 0), Some(&1));
        assert_eq!(c.get(0, 2), Some(&12));
        assert_eq!(c.get(1, 0), Some(&20));
        assert_eq!(c.get(1, 1), Some(&3));
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn spadd_with_empty_is_identity() {
        let a = CsrMatrix::from_triples(Triples::from_entries(2, 2, vec![(1, 1, 5u8)]));
        let e = CsrMatrix::empty(2, 2);
        assert_eq!(spadd(&a, &e, |_, _| unreachable!()), a);
        assert_eq!(spadd(&e, &a, |_, _| unreachable!()), a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn spadd_shape_mismatch() {
        let a: CsrMatrix<u8> = CsrMatrix::empty(2, 2);
        let b: CsrMatrix<u8> = CsrMatrix::empty(2, 3);
        let _ = spadd(&a, &b, |_, _| ());
    }

    #[test]
    fn spadd_into_matches_spadd() {
        let a = CsrMatrix::from_triples(Triples::from_entries(
            3,
            4,
            vec![(0, 0, 1u32), (0, 2, 2), (1, 1, 3), (2, 3, 4)],
        ));
        let b = CsrMatrix::from_triples(Triples::from_entries(
            3,
            4,
            vec![(0, 2, 10u32), (1, 0, 20), (2, 3, 30)],
        ));
        let by_ref = spadd(&a, &b, |x, y| *x += y);
        let by_move = spadd_into(a, b, |x, y| *x += y);
        assert_eq!(by_ref, by_move);
    }

    #[test]
    fn spadd_into_preserves_combine_orientation() {
        // combine(acc_from_a, b_value): order-revealing Vec payloads.
        let a = CsrMatrix::from_triples(Triples::from_entries(1, 1, vec![(0, 0, vec![1u32])]));
        let b = CsrMatrix::from_triples(Triples::from_entries(1, 1, vec![(0, 0, vec![2u32])]));
        let c = spadd_into(a, b, |x, y| x.extend(y));
        assert_eq!(c.get(0, 0), Some(&vec![1, 2]));
    }

    #[test]
    fn spadd_into_requires_no_clone() {
        // A value type with no Clone impl: proves the merge moves values.
        #[derive(Debug, PartialEq)]
        struct NoClone(u32);
        let a = CsrMatrix::from_parts(2, 2, vec![0, 1, 1], vec![0], vec![NoClone(1)]);
        let b = CsrMatrix::from_parts(
            2,
            2,
            vec![0, 1, 2],
            vec![0, 1],
            vec![NoClone(2), NoClone(3)],
        );
        let c = spadd_into(a, b, |x, y| x.0 += y.0);
        assert_eq!(c.get(0, 0), Some(&NoClone(3)));
        assert_eq!(c.get(1, 1), Some(&NoClone(3)));
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn spadd_into_empty_fast_paths_move_through() {
        let a = CsrMatrix::from_triples(Triples::from_entries(2, 2, vec![(1, 1, 5u8)]));
        let e: CsrMatrix<u8> = CsrMatrix::empty(2, 2);
        assert_eq!(spadd_into(a.clone(), e.clone(), |_, _| unreachable!()), a);
        assert_eq!(spadd_into(e, a.clone(), |_, _| unreachable!()), a);
    }

    #[test]
    fn triangular_parts_partition_offdiagonal() {
        let m = dense_sym(5);
        let up = triu_strict(&m);
        let lo = tril_strict(&m);
        assert_eq!(up.nnz(), 10);
        assert_eq!(lo.nnz(), 10);
        assert_eq!(up.nnz() + lo.nnz() + 5, m.nnz());
    }

    #[test]
    fn parity_keeps_each_pair_exactly_once() {
        // For every off-diagonal (i, j), exactly one of (i,j), (j,i) kept.
        for n in [2usize, 3, 8, 17] {
            for i in 0..n as Index {
                for j in 0..n as Index {
                    if i == j {
                        assert!(!parity_keep(i, j));
                    } else {
                        assert!(
                            parity_keep(i, j) ^ parity_keep(j, i),
                            "pair ({i},{j}) kept zero or two times"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parity_prune_halves_dense_symmetric() {
        let n = 20;
        let m = dense_sym(n);
        let pruned = parity_prune(&m, 0, 0);
        // Exactly one per off-diagonal pair: n(n-1)/2.
        assert_eq!(pruned.nnz(), n * (n - 1) / 2);
    }

    #[test]
    fn parity_prune_respects_global_offsets() {
        // A 2x2 block window at (10, 20) of a larger matrix must evaluate
        // the rule on global indices.
        let m = dense_sym(2);
        let pruned = parity_prune(&m, 10, 20);
        for (i, j, _) in pruned.iter() {
            assert!(parity_keep(i + 10, j + 20));
        }
        // And agree in count with direct evaluation.
        let expect = (0..2u32)
            .flat_map(|i| (0..2u32).map(move |j| (i, j)))
            .filter(|&(i, j)| parity_keep(i + 10, j + 20))
            .count();
        assert_eq!(pruned.nnz(), expect);
    }

    #[test]
    fn triu_prune_global_offsets() {
        let m = dense_sym(3);
        // Window whose global rows are 5..8 and cols 0..3: everything is
        // below the diagonal except entries with j+0 > i+5 — none.
        assert_eq!(triu_prune_global(&m, 5, 0).nnz(), 0);
        // Window above the diagonal: everything kept.
        assert_eq!(triu_prune_global(&m, 0, 5).nnz(), 9);
    }
}

/// Extract an arbitrary submatrix `A[rows, cols]` (the CombBLAS `SpRef`):
/// row `i` of the result is `A[rows[i], ·]` restricted and renumbered to
/// `cols`. Index lists may repeat and reorder rows; `cols` must be strictly
/// ascending (the common case; general column permutation would break CSR
/// ordering invariants cheaply exploited here).
pub fn spref<T: Clone>(m: &CsrMatrix<T>, rows: &[Index], cols: &[Index]) -> CsrMatrix<T> {
    assert!(
        cols.windows(2).all(|w| w[0] < w[1]),
        "SpRef column list must be strictly ascending"
    );
    assert!(
        rows.iter().all(|&r| (r as usize) < m.nrows()),
        "SpRef row index out of range"
    );
    assert!(
        cols.iter().all(|&c| (c as usize) < m.ncols()),
        "SpRef column index out of range"
    );
    let mut rowptr = Vec::with_capacity(rows.len() + 1);
    rowptr.push(0usize);
    let mut colind = Vec::new();
    let mut vals = Vec::new();
    for &r in rows {
        let (rc, rv) = m.row(r as usize);
        // Sorted-merge the row's columns against the requested columns.
        let (mut p, mut q) = (0usize, 0usize);
        while p < rc.len() && q < cols.len() {
            match rc[p].cmp(&cols[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    colind.push(q as Index);
                    vals.push(rv[p].clone());
                    p += 1;
                    q += 1;
                }
            }
        }
        rowptr.push(colind.len());
    }
    CsrMatrix::from_parts(rows.len(), cols.len(), rowptr, colind, vals)
}

/// Element-wise (Hadamard) product under a semiring's `multiply`: the
/// output keeps only coordinates stored in *both* operands (the CombBLAS
/// `SpEWiseMult`, used for masking one matrix by another's pattern).
pub fn spewise_mult<S: crate::semiring::Semiring>(
    sr: &S,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> CsrMatrix<S::C> {
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "SpEWiseMult shape mismatch"
    );
    let mut rowptr = Vec::with_capacity(a.nrows() + 1);
    rowptr.push(0usize);
    let mut colind = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() && q < bc.len() {
            match ac[p].cmp(&bc[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    colind.push(ac[p]);
                    vals.push(sr.multiply(&av[p], &bv[q]));
                    p += 1;
                    q += 1;
                }
            }
        }
        rowptr.push(colind.len());
    }
    CsrMatrix::from_parts(a.nrows(), a.ncols(), rowptr, colind, vals)
}

/// The stored main-diagonal entries `(i, A[i,i])`.
pub fn diagonal<T: Clone>(m: &CsrMatrix<T>) -> Vec<(Index, T)> {
    (0..m.nrows().min(m.ncols()))
        .filter_map(|i| m.get(i, i).map(|v| (i as Index, v.clone())))
        .collect()
}

#[cfg(test)]
mod spref_tests {
    use super::*;
    use crate::semiring::PlusTimes;
    use crate::triples::Triples;

    fn sample() -> CsrMatrix<f64> {
        CsrMatrix::from_triples(Triples::from_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 3, 5.0),
                (3, 3, 6.0),
            ],
        ))
    }

    #[test]
    fn spref_extracts_and_renumbers() {
        let m = sample();
        let s = spref(&m, &[2, 0], &[0, 3]);
        assert_eq!((s.nrows(), s.ncols()), (2, 2));
        assert_eq!(s.get(0, 0), Some(&4.0)); // old (2,0)
        assert_eq!(s.get(0, 1), Some(&5.0)); // old (2,3)
        assert_eq!(s.get(1, 0), Some(&1.0)); // old (0,0)
        assert_eq!(s.get(1, 1), None); // old (0,3) empty
    }

    #[test]
    fn spref_repeats_rows() {
        let m = sample();
        let s = spref(&m, &[1, 1, 1], &[0, 1, 2, 3]);
        assert_eq!(s.nnz(), 3);
        for i in 0..3 {
            assert_eq!(s.get(i, 1), Some(&3.0));
        }
    }

    #[test]
    fn spref_identity_selection_is_identity() {
        let m = sample();
        let all: Vec<Index> = (0..4).collect();
        assert_eq!(spref(&m, &all, &all), m);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn spref_rejects_unsorted_columns() {
        let m = sample();
        let _ = spref(&m, &[0], &[2, 0]);
    }

    #[test]
    fn ewise_mult_intersects_patterns() {
        let a = sample();
        let mask = CsrMatrix::from_triples(Triples::from_entries(
            4,
            4,
            vec![(0, 2, 10.0), (2, 3, 10.0), (1, 0, 10.0)],
        ));
        let c = spewise_mult(&PlusTimes::<f64>::new(), &a, &mask);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 2), Some(&20.0));
        assert_eq!(c.get(2, 3), Some(&50.0));
        assert_eq!(c.get(1, 0), None); // absent in a
    }

    #[test]
    fn diagonal_extraction() {
        let m = sample();
        let d = diagonal(&m);
        assert_eq!(d, vec![(0, 1.0), (1, 3.0), (3, 6.0)]);
    }
}
