//! Semiring-generic local SpGEMM kernels.
//!
//! Gustavson's row-wise algorithm with two accumulator strategies, mirroring
//! the high-performance CPU kernels CombBLAS draws on (Nagasaka et al.,
//! ICPP'18 — the paper's reference [20]):
//!
//! * [`spgemm_hash`] — open-addressing hash accumulator per output row;
//!   best for short rows / low compression factors (the genomics regime).
//! * [`spgemm_heap`] — k-way merge with a binary heap; best when rows of
//!   `B` are long and sorted output order can be exploited.
//!
//! Both kernels are deterministic: `combine` is applied in ascending inner
//! index (`k`) order for each output coordinate, so custom non-commutative
//! accumulations (like PASTIS's seed-position capture) give identical
//! results regardless of kernel choice — a property the tests pin down.
//!
//! The kernels also report [`SpGemmStats`]: the number of semiring products
//! (`flops` in the paper's terminology) and merged output nonzeros, whose
//! ratio is the *compression factor* discussed in Section V-B.

use std::collections::BinaryHeap;

use crate::csr::CsrMatrix;
use crate::semiring::Semiring;
use crate::triples::Index;

/// Work counters from one SpGEMM invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpGemmStats {
    /// Semiring `multiply` invocations (the flops of the multiplication).
    pub products: u64,
    /// Nonzeros in the output (after `combine` merging).
    pub merged_nnz: u64,
}

impl SpGemmStats {
    /// The compression factor: intermediate products per output nonzero
    /// (Section V-B; "even with a modest value between 1 and 10 … memory
    /// management must be given special attention").
    pub fn compression_factor(&self) -> f64 {
        if self.merged_nnz == 0 {
            0.0
        } else {
            self.products as f64 / self.merged_nnz as f64
        }
    }

    /// Accumulate another invocation's counters.
    pub fn merge(&mut self, other: SpGemmStats) {
        self.products += other.products;
        self.merged_nnz += other.merged_nnz;
    }
}

/// Which local kernel multiplies a SUMMA stage's blocks (`--spgemm`).
///
/// Every choice yields bit-identical output — the kernels share one
/// combine-order contract (ascending inner index `k` per output
/// coordinate) — so the policy only ever changes wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpGemmKind {
    /// Heuristic choice per multiplication (see
    /// [`crate::parallel::SpGemmPool`]): the parallel kernel when the pool
    /// has more than one worker and enough rows to amortize chunk claims;
    /// otherwise heap for low merge fan-in, hash for high.
    #[default]
    Auto,
    /// Always the serial hash-accumulator kernel ([`spgemm_hash`]).
    Hash,
    /// Always the serial heap (k-way merge) kernel ([`spgemm_heap`]).
    Heap,
    /// Always the row-partitioned parallel kernel
    /// ([`crate::spgemm_parallel`]).
    Parallel,
}

impl SpGemmKind {
    /// Parse a `--spgemm` value: `auto`, `hash`, `heap`, `parallel`.
    pub fn parse(s: &str) -> Result<SpGemmKind, String> {
        match s {
            "auto" => Ok(SpGemmKind::Auto),
            "hash" => Ok(SpGemmKind::Hash),
            "heap" => Ok(SpGemmKind::Heap),
            "parallel" => Ok(SpGemmKind::Parallel),
            other => Err(format!(
                "unknown SpGEMM kernel '{other}' (expected auto|hash|heap|parallel)"
            )),
        }
    }

    /// Telemetry counter bumped when this concrete kernel runs.
    pub(crate) fn counter_name(self) -> &'static str {
        match self {
            SpGemmKind::Auto => pastis_trace::names::CTR_SPGEMM_KERNEL_AUTO,
            SpGemmKind::Hash => pastis_trace::names::CTR_SPGEMM_KERNEL_HASH,
            SpGemmKind::Heap => pastis_trace::names::CTR_SPGEMM_KERNEL_HEAP,
            SpGemmKind::Parallel => pastis_trace::names::CTR_SPGEMM_KERNEL_PARALLEL,
        }
    }

    /// The flag spelling this kind parses from.
    pub fn name(self) -> &'static str {
        match self {
            SpGemmKind::Auto => "auto",
            SpGemmKind::Hash => "hash",
            SpGemmKind::Heap => "heap",
            SpGemmKind::Parallel => "parallel",
        }
    }
}

impl std::fmt::Display for SpGemmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const EMPTY: Index = Index::MAX;

/// Reusable open-addressing (linear probing) accumulator keyed by column
/// index. Collects one output row, then drains it sorted.
pub(crate) struct HashAccumulator<C> {
    keys: Vec<Index>,
    vals: Vec<Option<C>>,
    occupied: Vec<u32>,
    mask: usize,
}

impl<C> HashAccumulator<C> {
    pub(crate) fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(4) * 2).next_power_of_two();
        HashAccumulator {
            keys: vec![EMPTY; cap],
            vals: (0..cap).map(|_| None).collect(),
            occupied: Vec::with_capacity(expected),
            mask: cap - 1,
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let mut bigger = HashAccumulator::<C> {
            keys: vec![EMPTY; new_cap],
            vals: (0..new_cap).map(|_| None).collect(),
            occupied: Vec::with_capacity(self.occupied.len() * 2),
            mask: new_cap - 1,
        };
        for &slot in &self.occupied {
            let key = self.keys[slot as usize];
            let val = self.vals[slot as usize]
                .take()
                .expect("occupied slot empty");
            bigger.insert_fresh(key, val);
        }
        *self = bigger;
    }

    #[inline]
    fn probe(&self, key: Index) -> usize {
        // Multiplicative hash; the table is power-of-two sized.
        let mut slot = (key as u64).wrapping_mul(0x9E3779B97F4A7C15) as usize & self.mask;
        loop {
            let k = self.keys[slot];
            if k == key || k == EMPTY {
                return slot;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn insert_fresh(&mut self, key: Index, val: C) {
        let slot = self.probe(key);
        debug_assert_eq!(self.keys[slot], EMPTY);
        self.keys[slot] = key;
        self.vals[slot] = Some(val);
        self.occupied.push(slot as u32);
    }

    /// Insert or combine.
    fn upsert<S: Semiring<C = C>>(&mut self, sr: &S, key: Index, val: C) {
        if self.occupied.len() * 2 > self.mask + 1 {
            self.grow();
        }
        let slot = self.probe(key);
        if self.keys[slot] == key {
            let acc = self.vals[slot].as_mut().expect("occupied slot empty");
            sr.combine(acc, val);
        } else {
            self.keys[slot] = key;
            self.vals[slot] = Some(val);
            self.occupied.push(slot as u32);
        }
    }

    /// Drain the row sorted by column, resetting the accumulator.
    fn drain_sorted(&mut self, cols: &mut Vec<Index>, vals: &mut Vec<C>) {
        let mut entries: Vec<(Index, C)> = self
            .occupied
            .drain(..)
            .map(|slot| {
                let key = self.keys[slot as usize];
                self.keys[slot as usize] = EMPTY;
                let val = self.vals[slot as usize]
                    .take()
                    .expect("occupied slot empty");
                (key, val)
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        for (c, v) in entries {
            cols.push(c);
            vals.push(v);
        }
    }

    fn len(&self) -> usize {
        self.occupied.len()
    }
}

/// Hash-accumulator SpGEMM: `C = A ⊗ B` under semiring `sr`.
///
/// # Panics
///
/// Panics if `a.ncols() != b.nrows()`.
///
/// Note: because the hash accumulator visits products in `k` order per row
/// (Gustavson iterates A's row entries in ascending `k`, and each B row is
/// sorted), `combine` is applied in ascending `(k, j)` discovery order; for
/// each output `(i, j)` the combine order is ascending `k`, matching the
/// heap kernel.
pub fn spgemm_hash<S: Semiring>(
    sr: &S,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> (CsrMatrix<S::C>, SpGemmStats) {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "SpGEMM dimension mismatch: {}x{} · {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let mut stats = SpGemmStats::default();
    let mut rowptr = Vec::with_capacity(a.nrows() + 1);
    rowptr.push(0usize);
    let mut colind: Vec<Index> = Vec::new();
    let mut vals: Vec<S::C> = Vec::new();
    let mut acc = HashAccumulator::<S::C>::with_capacity(16);
    for i in 0..a.nrows() {
        hash_row_into(sr, a, b, i, &mut acc, &mut colind, &mut vals, &mut stats);
        rowptr.push(colind.len());
    }
    (
        CsrMatrix::from_parts(a.nrows(), b.ncols(), rowptr, colind, vals),
        stats,
    )
}

/// Compute output row `i` of `A ⊗ B` with the hash-accumulator row kernel,
/// appending the sorted row to `colind`/`vals` and updating `stats`.
///
/// Both [`spgemm_hash`] and the row-partitioned parallel kernel
/// ([`crate::spgemm_parallel`]) run this exact code path per row, so their
/// per-row arithmetic — including the combine order non-commutative
/// semirings observe — is identical by construction.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn hash_row_into<S: Semiring>(
    sr: &S,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
    i: usize,
    acc: &mut HashAccumulator<S::C>,
    colind: &mut Vec<Index>,
    vals: &mut Vec<S::C>,
    stats: &mut SpGemmStats,
) {
    let (acols, avals) = a.row(i);
    for (&k, av) in acols.iter().zip(avals) {
        let (bcols, bvals) = b.row(k as usize);
        stats.products += bcols.len() as u64;
        for (&j, bv) in bcols.iter().zip(bvals) {
            acc.upsert(sr, j, sr.multiply(av, bv));
        }
    }
    stats.merged_nnz += acc.len() as u64;
    acc.drain_sorted(colind, vals);
}

/// Heap-based (k-way merge) SpGEMM: `C = A ⊗ B` under semiring `sr`.
///
/// For each output row, the sorted rows of `B` selected by `A`'s row are
/// merged with a binary heap keyed on `(column, k)`, producing output
/// columns in ascending order and combining duplicates in ascending `k`
/// order — bit-identical to [`spgemm_hash`] for any semiring.
pub fn spgemm_heap<S: Semiring>(
    sr: &S,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> (CsrMatrix<S::C>, SpGemmStats) {
    assert_eq!(a.ncols(), b.nrows(), "SpGEMM dimension mismatch");
    let mut stats = SpGemmStats::default();
    let mut rowptr = Vec::with_capacity(a.nrows() + 1);
    rowptr.push(0usize);
    let mut colind: Vec<Index> = Vec::new();
    let mut vals: Vec<S::C> = Vec::new();

    // Min-heap over (col, k, cursor) via Reverse ordering on (col, k).
    #[derive(PartialEq, Eq)]
    struct Head {
        col: Index,
        k: Index,
        list: u32,
    }
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed for a max-heap acting as a min-heap.
            (other.col, other.k).cmp(&(self.col, self.k))
        }
    }
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap: BinaryHeap<Head> = BinaryHeap::new();
    let mut cursors: Vec<usize> = Vec::new();
    for i in 0..a.nrows() {
        let (acols, avals) = a.row(i);
        heap.clear();
        cursors.clear();
        cursors.resize(acols.len(), 0);
        for (idx, &k) in acols.iter().enumerate() {
            let (bcols, _) = b.row(k as usize);
            if !bcols.is_empty() {
                heap.push(Head {
                    col: bcols[0],
                    k,
                    list: idx as u32,
                });
            }
        }
        let mut current: Option<(Index, S::C)> = None;
        while let Some(head) = heap.pop() {
            let list = head.list as usize;
            let k = head.k as usize;
            let (bcols, bvals) = b.row(k);
            let pos = cursors[list];
            let product = sr.multiply(&avals[list], &bvals[pos]);
            stats.products += 1;
            match current.take() {
                Some((col, mut acc)) if col == head.col => {
                    sr.combine(&mut acc, product);
                    current = Some((col, acc));
                }
                Some((col, acc)) => {
                    colind.push(col);
                    vals.push(acc);
                    current = Some((head.col, product));
                }
                None => current = Some((head.col, product)),
            }
            cursors[list] += 1;
            if cursors[list] < bcols.len() {
                heap.push(Head {
                    col: bcols[cursors[list]],
                    k: head.k,
                    list: head.list,
                });
            }
        }
        if let Some((col, acc)) = current {
            colind.push(col);
            vals.push(acc);
        }
        rowptr.push(colind.len());
    }
    stats.merged_nnz = colind.len() as u64;
    (
        CsrMatrix::from_parts(a.nrows(), b.ncols(), rowptr, colind, vals),
        stats,
    )
}

/// Naive dense reference SpGEMM — O(n³)-ish, for tests only.
///
/// Applies `combine` in ascending `k` order per output coordinate, the same
/// contract as the sparse kernels.
pub fn spgemm_dense_ref<S: Semiring>(
    sr: &S,
    a: &CsrMatrix<S::A>,
    b: &CsrMatrix<S::B>,
) -> CsrMatrix<S::C>
where
    S::C: Clone,
{
    assert_eq!(a.ncols(), b.nrows(), "SpGEMM dimension mismatch");
    let mut rowptr = vec![0usize];
    let mut colind = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        let mut row: Vec<Option<S::C>> = vec![None; b.ncols()];
        let (acols, avals) = a.row(i);
        for (&k, av) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k as usize);
            for (&j, bv) in bcols.iter().zip(bvals) {
                let p = sr.multiply(av, bv);
                match &mut row[j as usize] {
                    Some(acc) => sr.combine(acc, p),
                    slot @ None => *slot = Some(p),
                }
            }
        }
        for (j, slot) in row.into_iter().enumerate() {
            if let Some(v) = slot {
                colind.push(j as Index);
                vals.push(v);
            }
        }
        rowptr.push(colind.len());
    }
    CsrMatrix::from_parts(a.nrows(), b.ncols(), rowptr, colind, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolAndOr, CountShared, MinPlus, PlusTimes};
    use crate::triples::Triples;

    fn mat(nrows: usize, ncols: usize, e: Vec<(Index, Index, f64)>) -> CsrMatrix<f64> {
        CsrMatrix::from_triples(Triples::from_entries(nrows, ncols, e))
    }

    #[test]
    fn hash_matches_dense_small() {
        let a = mat(2, 3, vec![(0, 0, 2.0), (0, 2, 1.0), (1, 1, 3.0)]);
        let b = mat(3, 2, vec![(0, 1, 4.0), (1, 0, 1.0), (2, 1, 5.0)]);
        let (c, stats) = spgemm_hash(&PlusTimes::new(), &a, &b);
        let r = spgemm_dense_ref(&PlusTimes::new(), &a, &b);
        assert_eq!(c, r);
        assert_eq!(stats.products, 3);
        assert_eq!(stats.merged_nnz, 2);
    }

    #[test]
    fn heap_matches_hash_small() {
        let a = mat(2, 3, vec![(0, 0, 2.0), (0, 2, 1.0), (1, 1, 3.0)]);
        let b = mat(3, 2, vec![(0, 1, 4.0), (1, 0, 1.0), (2, 1, 5.0)]);
        let (ch, sh) = spgemm_hash(&PlusTimes::new(), &a, &b);
        let (cp, sp) = spgemm_heap(&PlusTimes::new(), &a, &b);
        assert_eq!(ch, cp);
        assert_eq!(sh, sp);
    }

    #[test]
    fn identity_multiplication() {
        let n = 5;
        let eye = mat(n, n, (0..n as Index).map(|i| (i, i, 1.0)).collect());
        let a = mat(n, n, vec![(0, 4, 2.0), (3, 1, 7.0), (4, 4, -1.0)]);
        let (c, _) = spgemm_hash(&PlusTimes::new(), &eye, &a);
        assert_eq!(c, a);
        let (c2, _) = spgemm_hash(&PlusTimes::new(), &a, &eye);
        assert_eq!(c2, a);
    }

    #[test]
    fn empty_operands() {
        let a: CsrMatrix<f64> = CsrMatrix::empty(3, 4);
        let b: CsrMatrix<f64> = CsrMatrix::empty(4, 2);
        let (c, stats) = spgemm_hash(&PlusTimes::new(), &a, &b);
        assert_eq!(c.nnz(), 0);
        assert_eq!((c.nrows(), c.ncols()), (3, 2));
        assert_eq!(stats.products, 0);
        let (c2, _) = spgemm_heap(&PlusTimes::new(), &a, &b);
        assert_eq!(c, c2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a: CsrMatrix<f64> = CsrMatrix::empty(2, 3);
        let b: CsrMatrix<f64> = CsrMatrix::empty(2, 2);
        let _ = spgemm_hash(&PlusTimes::new(), &a, &b);
    }

    #[test]
    fn boolean_reachability() {
        let t = |e| CsrMatrix::from_triples(Triples::from_entries(3, 3, e));
        // path 0 -> 1 -> 2
        let g = t(vec![(0, 1, true), (1, 2, true)]);
        let (g2, _) = spgemm_hash(&BoolAndOr, &g, &g);
        assert_eq!(g2.get(0, 2), Some(&true));
        assert_eq!(g2.nnz(), 1);
    }

    #[test]
    fn min_plus_shortest_two_hop() {
        let t = |e| CsrMatrix::from_triples(Triples::from_entries(3, 3, e));
        let g = t(vec![(0, 1, 1.0), (0, 2, 10.0), (1, 2, 2.0), (2, 2, 0.0)]);
        let (g2, _) = spgemm_hash(&MinPlus, &g, &g);
        // 0->1->2 = 3 beats 0->2->2 = 10.
        assert_eq!(g2.get(0, 2), Some(&3.0));
    }

    #[test]
    fn count_shared_counts_inner_overlap() {
        // A: 2 sequences x 4 kmers; C = A · Aᵀ counts shared kmers.
        let a = CsrMatrix::from_triples(Triples::from_entries(
            2,
            4,
            vec![(0, 0, ()), (0, 1, ()), (0, 3, ()), (1, 1, ()), (1, 3, ())],
        ));
        let at = a.transpose();
        let (c, stats) = spgemm_hash(&CountShared::new(), &a, &at);
        assert_eq!(c.get(0, 1), Some(&2)); // kmers 1 and 3 shared
        assert_eq!(c.get(0, 0), Some(&3));
        assert_eq!(c.get(1, 1), Some(&2));
        assert!(stats.compression_factor() >= 1.0);
    }

    #[test]
    fn hash_accumulator_growth() {
        // One dense row forces repeated growth of the accumulator.
        let n = 500;
        let a = mat(1, 1, vec![(0, 0, 1.0)]);
        let b = mat(1, n, (0..n as Index).map(|j| (0, j, j as f64)).collect());
        let (c, stats) = spgemm_hash(&PlusTimes::new(), &a, &b);
        assert_eq!(c.nnz(), n);
        assert_eq!(stats.products, n as u64);
        // Sorted output.
        let cols = c.row(0).0;
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
    }

    /// Order-sensitive semiring: combine concatenates, exposing any
    /// difference in accumulation order between kernels.
    struct Concat;
    impl Semiring for Concat {
        type A = u32;
        type B = u32;
        type C = Vec<u32>;
        fn multiply(&self, a: &u32, b: &u32) -> Vec<u32> {
            vec![a * 100 + b]
        }
        fn combine(&self, acc: &mut Vec<u32>, mut incoming: Vec<u32>) {
            acc.append(&mut incoming);
        }
    }

    #[test]
    fn kernels_agree_on_combine_order() {
        // A row with several inner indices hitting the same output column.
        let a = CsrMatrix::from_triples(Triples::from_entries(
            1,
            4,
            vec![(0, 0, 1u32), (0, 1, 2), (0, 2, 3), (0, 3, 4)],
        ));
        let b = CsrMatrix::from_triples(Triples::from_entries(
            4,
            2,
            vec![(0, 0, 5u32), (1, 0, 6), (2, 0, 7), (3, 0, 8), (1, 1, 9)],
        ));
        let (ch, _) = spgemm_hash(&Concat, &a, &b);
        let (cp, _) = spgemm_heap(&Concat, &a, &b);
        let dr = spgemm_dense_ref(&Concat, &a, &b);
        assert_eq!(ch, cp);
        assert_eq!(ch, dr);
        // Ascending k order: k=0..3 each contribute to column 0.
        assert_eq!(ch.get(0, 0), Some(&vec![105, 206, 307, 408]));
    }

    #[test]
    fn stats_compression_factor() {
        let s = SpGemmStats {
            products: 50,
            merged_nnz: 10,
        };
        assert_eq!(s.compression_factor(), 5.0);
        let z = SpGemmStats::default();
        assert_eq!(z.compression_factor(), 0.0);
        let mut m = s;
        m.merge(SpGemmStats {
            products: 10,
            merged_nnz: 10,
        });
        assert_eq!(m.products, 60);
        assert_eq!(m.merged_nnz, 20);
    }
}
