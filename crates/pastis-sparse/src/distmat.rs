//! 2D block-distributed sparse matrices.
//!
//! A [`DistSparseMatrix`] follows the CombBLAS decomposition (Section V-A of
//! the paper): the global matrix is split into `√p × √p` rectangular blocks;
//! the rank at grid position `(r, c)` owns the intersection of row part `r`
//! and column part `c`, stored locally in CSR with local indices.
//!
//! The struct is plain data — all communication happens in methods that
//! take the [`ProcessGrid`] explicitly, so the same matrix value can move
//! between SPMD sections without lifetime entanglement.

use std::sync::Arc;

use pastis_comm::grid::{BlockDist1D, ProcessGrid};
use pastis_comm::Communicator;

use crate::csr::CsrMatrix;
use crate::triples::{Index, Triples};

/// Payload bound for distributed matrix elements (what the threaded
/// communicator can move).
pub trait DistElem: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> DistElem for T {}

/// A sparse matrix distributed over a 2D process grid.
///
/// The local block is held behind an [`Arc`] so collectives can broadcast
/// it by reference count: the SUMMA root hands out `Arc` clones instead of
/// deep-copying its resident block every stage.
#[derive(Debug, Clone, PartialEq)]
pub struct DistSparseMatrix<T> {
    nrows: usize,
    ncols: usize,
    row_dist: BlockDist1D,
    col_dist: BlockDist1D,
    my_row: usize,
    my_col: usize,
    local: Arc<CsrMatrix<T>>,
}

impl<T: DistElem> DistSparseMatrix<T> {
    /// Build a distributed matrix from global triples.
    ///
    /// Every rank may contribute an arbitrary subset of the global entries
    /// (the union across ranks forms the matrix); entries are routed to
    /// their owners with one all-to-allv. Duplicate coordinates — within or
    /// across ranks — are folded with `combine` in an order determined by
    /// (source rank, insertion order), so `combine` should be commutative
    /// and associative or duplicates avoided.
    ///
    /// All ranks must pass identical `nrows`/`ncols` (asserted).
    pub fn from_global_triples<C: Communicator>(
        grid: &ProcessGrid<C>,
        nrows: usize,
        ncols: usize,
        entries: Triples<T>,
        combine: impl FnMut(&mut T, T),
    ) -> DistSparseMatrix<T> {
        assert_eq!(
            (entries.nrows(), entries.ncols()),
            (nrows, ncols),
            "triples dimensions disagree with matrix dimensions"
        );
        let dims = grid.world().all_gather((nrows, ncols));
        assert!(
            dims.iter().all(|&d| d == (nrows, ncols)),
            "ranks disagree on global matrix dimensions"
        );
        let shape = grid.shape();
        let row_dist = BlockDist1D::new(nrows, shape.rows);
        let col_dist = BlockDist1D::new(ncols, shape.cols);
        // Route each entry to its owner.
        let p = grid.world().size();
        let mut parts: Vec<Vec<(Index, Index, T)>> = (0..p).map(|_| Vec::new()).collect();
        for e in entries.entries {
            let owner_row = row_dist.owner(e.row as usize);
            let owner_col = col_dist.owner(e.col as usize);
            let owner = shape.rank_of(owner_row, owner_col);
            parts[owner].push((e.row, e.col, e.val));
        }
        let received = grid.world().all_to_allv(parts);
        // Build the local block in local indices.
        let my_row = grid.my_row();
        let my_col = grid.my_col();
        let row_off = row_dist.part_offset(my_row);
        let col_off = col_dist.part_offset(my_col);
        let mut local_triples = Triples::new(row_dist.part_len(my_row), col_dist.part_len(my_col));
        for part in received {
            for (r, c, v) in part {
                local_triples.push(r - row_off as Index, c - col_off as Index, v);
            }
        }
        let local = Arc::new(CsrMatrix::from_triples_combining(local_triples, combine));
        DistSparseMatrix {
            nrows,
            ncols,
            row_dist,
            col_dist,
            my_row,
            my_col,
            local,
        }
    }

    /// Wrap an already-distributed local block (used by SUMMA to assemble
    /// results without a shuffle). The block must have exactly the local
    /// dimensions implied by the grid position.
    pub fn from_local_block<C: Communicator>(
        grid: &ProcessGrid<C>,
        nrows: usize,
        ncols: usize,
        local: CsrMatrix<T>,
    ) -> DistSparseMatrix<T> {
        let shape = grid.shape();
        let row_dist = BlockDist1D::new(nrows, shape.rows);
        let col_dist = BlockDist1D::new(ncols, shape.cols);
        let my_row = grid.my_row();
        let my_col = grid.my_col();
        assert_eq!(
            (local.nrows(), local.ncols()),
            (row_dist.part_len(my_row), col_dist.part_len(my_col)),
            "local block dimensions disagree with the grid distribution"
        );
        DistSparseMatrix {
            nrows,
            ncols,
            row_dist,
            col_dist,
            my_row,
            my_col,
            local: Arc::new(local),
        }
    }

    /// Global row count.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Global column count.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The local CSR block (local indices).
    pub fn local(&self) -> &CsrMatrix<T> {
        &self.local
    }

    /// A shared handle to the local block — what broadcast roots send so
    /// the resident block is never deep-copied (receivers only read it).
    pub fn local_arc(&self) -> Arc<CsrMatrix<T>> {
        Arc::clone(&self.local)
    }

    /// Global row index of the local block's first row.
    pub fn row_offset(&self) -> usize {
        self.row_dist.part_offset(self.my_row)
    }

    /// Global column index of the local block's first column.
    pub fn col_offset(&self) -> usize {
        self.col_dist.part_offset(self.my_col)
    }

    /// Row distribution over grid rows.
    pub fn row_dist(&self) -> BlockDist1D {
        self.row_dist
    }

    /// Column distribution over grid columns.
    pub fn col_dist(&self) -> BlockDist1D {
        self.col_dist
    }

    /// Local nonzero count.
    pub fn nnz_local(&self) -> usize {
        self.local.nnz()
    }

    /// Global nonzero count (collective).
    pub fn nnz_global<C: Communicator>(&self, grid: &ProcessGrid<C>) -> u64 {
        grid.world()
            .all_reduce(&[self.local.nnz() as u64], pastis_comm::ReduceOp::Sum)[0]
    }

    /// Local triples in *global* coordinates.
    pub fn local_triples_global(&self) -> Vec<(Index, Index, T)> {
        let ro = self.row_offset() as Index;
        let co = self.col_offset() as Index;
        self.local
            .iter()
            .map(|(i, j, v)| (i + ro, j + co, v.clone()))
            .collect()
    }

    /// Gather the full matrix on every rank as global triples (collective;
    /// for tests and small outputs only).
    pub fn gather_global<C: Communicator>(&self, grid: &ProcessGrid<C>) -> Triples<T> {
        let all = grid.world().all_gather(self.local_triples_global());
        let mut t = Triples::new(self.nrows, self.ncols);
        for part in all {
            for (r, c, v) in part {
                t.push(r, c, v);
            }
        }
        t.sort_row_major();
        t
    }

    /// Distributed transpose (collective): entry `(i, j)` moves to `(j, i)`
    /// on the transposed owner.
    pub fn transpose<C: Communicator>(&self, grid: &ProcessGrid<C>) -> DistSparseMatrix<T> {
        let mut t = Triples::new(self.ncols, self.nrows);
        for (i, j, v) in self.local_triples_global() {
            t.push(j, i, v);
        }
        DistSparseMatrix::from_global_triples(grid, self.ncols, self.nrows, t, |_, _| {
            panic!("duplicate coordinate during transpose")
        })
    }

    /// Approximate in-memory footprint of the local block in bytes.
    pub fn local_payload_bytes(&self) -> usize {
        self.local.payload_bytes()
    }

    /// Take the local block out, leaving an empty block of the same local
    /// dimensions — the eviction half of spill-to-disk. The caller owns
    /// serializing the returned CSR; [`DistSparseMatrix::restore_local`]
    /// puts an identical block back. Purely local (no communication), so
    /// ranks may evict independently.
    pub fn evict_local(&mut self) -> CsrMatrix<T> {
        let empty = Arc::new(CsrMatrix::empty(self.local.nrows(), self.local.ncols()));
        let old = std::mem::replace(&mut self.local, empty);
        // After the collectives that shared this Arc complete, this rank is
        // the only holder; a still-shared handle (mid-broadcast) falls back
        // to a copy rather than corrupting a peer's view.
        Arc::try_unwrap(old).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Put an evicted local block back. Must match the local dimensions
    /// (asserted) — the round trip through
    /// [`DistSparseMatrix::evict_local`] and a bit-exact serializer leaves
    /// the matrix indistinguishable from one that never spilled.
    pub fn restore_local(&mut self, block: CsrMatrix<T>) {
        assert_eq!(
            (block.nrows(), block.ncols()),
            (self.local.nrows(), self.local.ncols()),
            "restored block dimensions disagree with the eviction"
        );
        self.local = Arc::new(block);
    }

    /// Apply a pruning predicate in global coordinates, locally.
    pub fn prune_global(
        &self,
        mut keep: impl FnMut(Index, Index, &T) -> bool,
    ) -> DistSparseMatrix<T> {
        let ro = self.row_offset() as Index;
        let co = self.col_offset() as Index;
        DistSparseMatrix {
            local: Arc::new(self.local.prune(|i, j, v| keep(i + ro, j + co, v))),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_comm::{run_threaded, SelfComm};

    fn sample_entries() -> Vec<(Index, Index, u32)> {
        vec![
            (0, 0, 1),
            (0, 5, 2),
            (2, 3, 3),
            (3, 1, 4),
            (5, 5, 5),
            (4, 0, 6),
            (1, 4, 7),
        ]
    }

    #[test]
    fn single_rank_distribution_is_local() {
        let grid = ProcessGrid::square(SelfComm::new());
        let t = Triples::from_entries(6, 6, sample_entries());
        let m = DistSparseMatrix::from_global_triples(&grid, 6, 6, t.clone(), |_, _| {});
        assert_eq!(m.nnz_local(), 7);
        assert_eq!(
            m.gather_global(&grid).to_sorted_tuples(),
            t.to_sorted_tuples()
        );
    }

    #[test]
    fn four_rank_distribution_reassembles() {
        let out = run_threaded(4, |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            // Rank 0 contributes everything; others contribute nothing.
            let t = if c.rank() == 0 {
                Triples::from_entries(6, 6, sample_entries())
            } else {
                Triples::new(6, 6)
            };
            let m = DistSparseMatrix::from_global_triples(&grid, 6, 6, t, |_, _| {});
            (
                m.nnz_local(),
                m.row_offset(),
                m.col_offset(),
                m.nnz_global(&grid),
                m.gather_global(&grid).to_sorted_tuples(),
            )
        });
        let reference = Triples::from_entries(6, 6, sample_entries()).to_sorted_tuples();
        let total: usize = out.iter().map(|o| o.0).sum();
        assert_eq!(total, 7);
        for (_, _, _, g, gathered) in &out {
            assert_eq!(*g, 7);
            assert_eq!(gathered, &reference);
        }
        // Offsets: 6 rows over 2 grid rows -> parts of 3.
        assert_eq!(out[0].1, 0);
        assert_eq!(out[3].1, 3);
        assert_eq!(out[3].2, 3);
    }

    #[test]
    fn contributions_split_across_ranks_merge() {
        let out = run_threaded(4, |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            // Each rank contributes a disjoint slice of the entries.
            let all = sample_entries();
            let mine: Vec<_> = all
                .into_iter()
                .enumerate()
                .filter(|(idx, _)| idx % 4 == c.rank())
                .map(|(_, e)| e)
                .collect();
            let t = Triples::from_entries(6, 6, mine);
            let m = DistSparseMatrix::from_global_triples(&grid, 6, 6, t, |_, _| {});
            m.gather_global(&grid).to_sorted_tuples()
        });
        let reference = Triples::from_entries(6, 6, sample_entries()).to_sorted_tuples();
        for g in out {
            assert_eq!(g, reference);
        }
    }

    #[test]
    fn duplicates_across_ranks_are_combined() {
        let out = run_threaded(4, |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            // Every rank contributes the same single entry.
            let t = Triples::from_entries(4, 4, vec![(1, 1, 10u32)]);
            let m = DistSparseMatrix::from_global_triples(&grid, 4, 4, t, |a, b| *a += b);
            m.nnz_global(&grid)
        });
        for g in out {
            assert_eq!(g, 1);
        }
    }

    #[test]
    fn transpose_distributed_matches_serial() {
        let out = run_threaded(4, |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            let t = if c.rank() == 0 {
                Triples::from_entries(6, 6, sample_entries())
            } else {
                Triples::new(6, 6)
            };
            let m = DistSparseMatrix::from_global_triples(&grid, 6, 6, t, |_, _| {});
            let mt = m.transpose(&grid);
            mt.gather_global(&grid).to_sorted_tuples()
        });
        let reference = Triples::from_entries(6, 6, sample_entries())
            .transpose()
            .to_sorted_tuples();
        for g in out {
            assert_eq!(g, reference);
        }
    }

    #[test]
    fn prune_global_uses_global_coordinates() {
        let out = run_threaded(4, |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            let t = if c.rank() == 0 {
                Triples::from_entries(6, 6, sample_entries())
            } else {
                Triples::new(6, 6)
            };
            let m = DistSparseMatrix::from_global_triples(&grid, 6, 6, t, |_, _| {});
            let upper = m.prune_global(|i, j, _| j > i);
            upper.gather_global(&grid).to_sorted_tuples()
        });
        // Strict upper of the sample: (0,5),(2,3),(1,4).
        for g in out {
            assert_eq!(g.len(), 3);
            assert!(g.iter().all(|&(i, j, _)| j > i));
        }
    }

    #[test]
    fn rectangular_matrix_distribution() {
        let out = run_threaded(4, |c| {
            let world = c.split(0, c.rank());
            let grid = ProcessGrid::square(world);
            let t = if c.rank() == 0 {
                Triples::from_entries(5, 7, vec![(4, 6, 1u8), (0, 0, 2), (2, 3, 3)])
            } else {
                Triples::new(5, 7)
            };
            let m = DistSparseMatrix::from_global_triples(&grid, 5, 7, t, |_, _| {});
            (m.local().nrows(), m.local().ncols(), m.nnz_global(&grid))
        });
        // 5 rows over 2 -> 3/2; 7 cols over 2 -> 4/3.
        assert_eq!(out[0].0, 3);
        assert_eq!(out[0].1, 4);
        assert_eq!(out[3].0, 2);
        assert_eq!(out[3].1, 3);
        for o in &out {
            assert_eq!(o.2, 3);
        }
    }

    #[test]
    #[should_panic(expected = "local block dimensions disagree")]
    fn from_local_block_checks_dims() {
        let grid = ProcessGrid::square(SelfComm::new());
        let wrong: CsrMatrix<u8> = CsrMatrix::empty(2, 2);
        let _ = DistSparseMatrix::from_local_block(&grid, 3, 3, wrong);
    }
}
