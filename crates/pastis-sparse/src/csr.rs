//! Compressed sparse row (CSR) storage — the local compute format.
//!
//! All local SpGEMM kernels and the alignment-pair extraction iterate rows,
//! so blocks live in CSR between exchanges. Column indices within each row
//! are kept sorted and unique, which makes row merges, transposes, and
//! equality checks deterministic.

use crate::triples::{Index, Triples};

/// A sparse matrix in CSR format with sorted, duplicate-free rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colind: Vec<Index>,
    vals: Vec<T>,
}

impl<T> CsrMatrix<T> {
    /// An empty `nrows × ncols` matrix.
    pub fn empty(nrows: usize, ncols: usize) -> CsrMatrix<T> {
        CsrMatrix {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colind: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from parts. Debug-asserts the CSR invariants (monotone row
    /// pointers, sorted unique in-bounds columns).
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<Index>,
        vals: Vec<T>,
    ) -> CsrMatrix<T> {
        assert_eq!(rowptr.len(), nrows + 1, "rowptr length mismatch");
        assert_eq!(colind.len(), vals.len(), "colind/vals length mismatch");
        assert_eq!(*rowptr.last().unwrap(), colind.len(), "rowptr end mismatch");
        debug_assert!(
            rowptr.windows(2).all(|w| w[0] <= w[1]),
            "rowptr not monotone"
        );
        debug_assert!(
            (0..nrows).all(|i| {
                let r = &colind[rowptr[i]..rowptr[i + 1]];
                r.windows(2).all(|w| w[0] < w[1]) && r.iter().all(|&c| (c as usize) < ncols)
            }),
            "row columns not sorted/unique/in-bounds"
        );
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colind,
            vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[Index], &[T]) {
        let (s, e) = (self.rowptr[i], self.rowptr[i + 1]);
        (&self.colind[s..e], &self.vals[s..e])
    }

    /// Number of nonzeros in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Number of rows that contain at least one nonzero (relevant for
    /// hypersparsity decisions; cf. [`crate::DcscMatrix`]).
    pub fn nonempty_rows(&self) -> usize {
        (0..self.nrows).filter(|&i| self.row_nnz(i) > 0).count()
    }

    /// Value at `(i, j)` if stored.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&(j as Index)).ok().map(|k| &vals[k])
    }

    /// Iterate stored entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, &T)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals.iter())
                .map(move |(&c, v)| (i as Index, c, v))
        })
    }

    /// The raw row pointer array.
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Decompose into `(nrows, ncols, rowptr, colind, vals)`, consuming the
    /// matrix. The move-based counterpart of [`CsrMatrix::from_parts`]; lets
    /// kernels such as [`crate::spops::spadd_into`] reuse the backing storage
    /// without cloning values.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<Index>, Vec<T>) {
        (self.nrows, self.ncols, self.rowptr, self.colind, self.vals)
    }
}

impl<T: Clone> CsrMatrix<T> {
    /// Build from triples; duplicate coordinates are a bug in the caller
    /// and panic. Use [`CsrMatrix::from_triples_combining`] to fold them.
    pub fn from_triples(t: Triples<T>) -> CsrMatrix<T> {
        Self::from_triples_combining(t, |_, _| panic!("duplicate coordinate in from_triples"))
    }

    /// Build from triples, folding duplicates with `combine`.
    pub fn from_triples_combining(
        mut t: Triples<T>,
        combine: impl FnMut(&mut T, T),
    ) -> CsrMatrix<T> {
        t.combine_duplicates(combine);
        let (nrows, ncols) = (t.nrows(), t.ncols());
        let mut rowptr = vec![0usize; nrows + 1];
        for e in &t.entries {
            rowptr[e.row as usize + 1] += 1;
        }
        for i in 0..nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colind = Vec::with_capacity(t.entries.len());
        let mut vals = Vec::with_capacity(t.entries.len());
        // combine_duplicates leaves entries row-major sorted.
        for e in t.entries {
            colind.push(e.col);
            vals.push(e.val);
        }
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colind,
            vals,
        }
    }

    /// Convert back to triples.
    pub fn to_triples(&self) -> Triples<T> {
        let mut t = Triples::new(self.nrows, self.ncols);
        for (i, j, v) in self.iter() {
            t.push(i, j, v.clone());
        }
        t
    }

    /// Transpose (O(nnz + dims) counting transpose; output rows sorted).
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut rowptr = vec![0usize; self.ncols + 1];
        for &c in &self.colind {
            rowptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            rowptr[i + 1] += rowptr[i];
        }
        let mut cursor = rowptr.clone();
        let mut colind = vec![0 as Index; self.nnz()];
        let mut vals: Vec<Option<T>> = vec![None; self.nnz()];
        for i in 0..self.nrows {
            let (cols, rvals) = self.row(i);
            for (&c, v) in cols.iter().zip(rvals) {
                let slot = cursor[c as usize];
                cursor[c as usize] += 1;
                colind[slot] = i as Index;
                vals[slot] = Some(v.clone());
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr,
            colind,
            vals: vals
                .into_iter()
                .map(|v| v.expect("transpose fill"))
                .collect(),
        }
    }

    /// Extract rows `[start, end)` as a new `(end−start) × ncols` matrix
    /// (row indices renumbered; column space unchanged).
    pub fn extract_rows(&self, start: usize, end: usize) -> CsrMatrix<T> {
        assert!(start <= end && end <= self.nrows, "row range out of bounds");
        let base = self.rowptr[start];
        let rowptr: Vec<usize> = self.rowptr[start..=end].iter().map(|p| p - base).collect();
        CsrMatrix {
            nrows: end - start,
            ncols: self.ncols,
            rowptr,
            colind: self.colind[base..self.rowptr[end]].to_vec(),
            vals: self.vals[base..self.rowptr[end]].to_vec(),
        }
    }

    /// Extract columns `[start, end)` as a new `nrows × (end−start)` matrix
    /// (column indices renumbered).
    pub fn extract_cols(&self, start: usize, end: usize) -> CsrMatrix<T> {
        assert!(
            start <= end && end <= self.ncols,
            "column range out of bounds"
        );
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        let mut colind = Vec::new();
        let mut vals = Vec::new();
        for i in 0..self.nrows {
            let (cols, rvals) = self.row(i);
            // Rows are sorted: binary search the window.
            let lo = cols.partition_point(|&c| (c as usize) < start);
            let hi = cols.partition_point(|&c| (c as usize) < end);
            for k in lo..hi {
                colind.push(cols[k] - start as Index);
                vals.push(rvals[k].clone());
            }
            rowptr.push(colind.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: end - start,
            rowptr,
            colind,
            vals,
        }
    }

    /// Keep entries satisfying the predicate (the CombBLAS `Prune`).
    pub fn prune(&self, mut keep: impl FnMut(Index, Index, &T) -> bool) -> CsrMatrix<T> {
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        let mut colind = Vec::new();
        let mut vals = Vec::new();
        for i in 0..self.nrows {
            let (cols, rvals) = self.row(i);
            for (&c, v) in cols.iter().zip(rvals) {
                if keep(i as Index, c, v) {
                    colind.push(c);
                    vals.push(v.clone());
                }
            }
            rowptr.push(colind.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colind,
            vals,
        }
    }

    /// Map values, preserving structure (the CombBLAS `Apply`).
    pub fn map<U: Clone>(&self, f: impl FnMut(&T) -> U) -> CsrMatrix<U> {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr: self.rowptr.clone(),
            colind: self.colind.clone(),
            vals: self.vals.iter().map(f).collect(),
        }
    }

    /// Approximate in-memory payload size in bytes (used for broadcast
    /// cost accounting).
    pub fn payload_bytes(&self) -> usize {
        crate::csr_payload_bytes(self.nrows, self.nnz(), std::mem::size_of::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_triples(Triples::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        ))
    }

    #[test]
    fn from_triples_builds_sorted_rows() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0).0, &[0, 2]);
        assert_eq!(m.row(1).0, &[] as &[Index]);
        assert_eq!(m.row(2).0, &[0, 1]);
        assert_eq!(m.get(2, 1), Some(&4.0));
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.nonempty_rows(), 2);
    }

    #[test]
    fn triples_roundtrip() {
        let m = sample();
        let back = CsrMatrix::from_triples(m.to_triples());
        assert_eq!(m, back);
    }

    #[test]
    #[should_panic(expected = "duplicate coordinate")]
    fn duplicates_panic_without_combiner() {
        CsrMatrix::from_triples(Triples::from_entries(1, 1, vec![(0, 0, 1.0), (0, 0, 2.0)]));
    }

    #[test]
    fn duplicates_combined() {
        let m = CsrMatrix::from_triples_combining(
            Triples::from_entries(1, 2, vec![(0, 1, 1u32), (0, 1, 41)]),
            |a, b| *a += b,
        );
        assert_eq!(m.get(0, 1), Some(&42));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_entries() {
        let t = sample().transpose();
        assert_eq!((t.nrows(), t.ncols()), (3, 3));
        assert_eq!(t.get(0, 0), Some(&1.0));
        assert_eq!(t.get(0, 2), Some(&3.0));
        assert_eq!(t.get(1, 2), Some(&4.0));
        assert_eq!(t.get(2, 0), Some(&2.0));
    }

    #[test]
    fn extract_rows_window() {
        let m = sample();
        let sub = m.extract_rows(1, 3);
        assert_eq!((sub.nrows(), sub.ncols()), (2, 3));
        assert_eq!(sub.get(1, 0), Some(&3.0));
        assert_eq!(sub.nnz(), 2);
        let empty = m.extract_rows(1, 1);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn extract_cols_window() {
        let m = sample();
        let sub = m.extract_cols(1, 3);
        assert_eq!((sub.nrows(), sub.ncols()), (3, 2));
        assert_eq!(sub.get(0, 1), Some(&2.0));
        assert_eq!(sub.get(2, 0), Some(&4.0));
        assert_eq!(sub.nnz(), 2);
    }

    #[test]
    fn prune_keeps_predicate() {
        let m = sample();
        let diag = m.prune(|i, j, _| i == j);
        assert_eq!(diag.nnz(), 1);
        assert_eq!(diag.get(0, 0), Some(&1.0));
    }

    #[test]
    fn map_changes_values_only() {
        let m = sample();
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(doubled.get(2, 1), Some(&8.0));
        assert_eq!(doubled.nnz(), m.nnz());
    }

    #[test]
    fn empty_matrix() {
        let m: CsrMatrix<u8> = CsrMatrix::empty(0, 0);
        assert_eq!(m.nnz(), 0);
        let m2: CsrMatrix<u8> = CsrMatrix::empty(5, 5);
        assert_eq!(m2.row(4).0.len(), 0);
    }

    #[test]
    fn payload_bytes_monotone_in_nnz() {
        let small = CsrMatrix::from_triples(Triples::from_entries(2, 2, vec![(0, 0, 1.0f64)]));
        let large = sample();
        assert!(large.payload_bytes() > small.payload_bytes());
    }
}
