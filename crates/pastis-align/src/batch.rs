//! Batch alignment driver with exact work accounting.
//!
//! PASTIS hands the aligner large batches of candidate pairs discovered by
//! the SpGEMM; ADEPT's driver packs them, ships them to the node's GPUs and
//! returns scores. [`BatchAligner`] is the equivalent driver: it executes
//! the batch (on the CPU, exactly), and returns per-batch [`BatchStats`] —
//! pair count, total DP cells, wall time — from which alignments/second and
//! CUPs are computed, Section VII's reporting metrics.

use std::time::Instant;

use crate::matrices::Scoring;
use crate::simd::SimdBackend;
use crate::sw::{sw_align, AlignmentResult, GapPenalties};

/// One alignment task: indices into the caller's sequence store plus the
/// seed position recorded by the overlap semiring (used by the banded /
/// x-drop kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignTask {
    /// Query sequence id (caller-side index).
    pub query: u32,
    /// Reference sequence id.
    pub reference: u32,
    /// Seed position in the query (first shared k-mer).
    pub seed_q: u32,
    /// Seed position in the reference.
    pub seed_r: u32,
}

/// Aggregate counters for one executed batch.
///
/// Time is tracked twice so throughput stays honest under the parallel
/// driver: [`seconds`](BatchStats::seconds) is the *sum of per-worker
/// busy time* (CPU seconds), while
/// [`wall_seconds`](BatchStats::wall_seconds) is the elapsed time of the
/// batch. For the serial driver the two coincide; with `t` workers
/// `seconds / wall_seconds` approaches the pool's effective speedup.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchStats {
    /// Pairs aligned.
    pub pairs: u64,
    /// Total DP cells updated (`Σ |q|·|r|`).
    pub cells: u64,
    /// Largest single DP matrix in the batch.
    pub max_cells: u64,
    /// Pairs whose i16 vector lane saturated and were re-scored through
    /// the scalar i32 kernel (score-only dispatch). Pair-intrinsic, so
    /// identical for every backend/width/thread count.
    pub lane_promotions: u64,
    /// Vector backend the batch's score-only work dispatched through
    /// ([`SimdBackend::Scalar`] for traceback/banded batches, which run
    /// scalar kernels only).
    pub simd: SimdBackend,
    /// CPU seconds: summed busy time of every worker thread (measured).
    pub seconds: f64,
    /// Wall-clock seconds of the batch (measured).
    pub wall_seconds: f64,
}

impl BatchStats {
    /// Alignments per second of wall time (0 if no time elapsed).
    pub fn alignments_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.pairs as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Cell updates per second (CUPs) of wall time — the paper's headline
    /// kernel metric, which parallelism legitimately increases.
    pub fn cups(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.cells as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Cell updates per CPU second — per-core kernel efficiency,
    /// independent of the worker count.
    pub fn cups_per_cpu(&self) -> f64 {
        if self.seconds > 0.0 {
            self.cells as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Fold another batch's counters into this one. Both time components
    /// add: merged batches are modelled as having run back-to-back. The
    /// merged backend is the widest one involved (batches mixing backends
    /// do not occur in practice; the report shows the run's selection).
    pub fn merge(&mut self, other: &BatchStats) {
        self.pairs += other.pairs;
        self.cells += other.cells;
        self.max_cells = self.max_cells.max(other.max_cells);
        self.lane_promotions += other.lane_promotions;
        if other.simd != SimdBackend::Scalar {
            self.simd = other.simd;
        }
        self.seconds += other.seconds;
        self.wall_seconds += other.wall_seconds;
    }
}

/// Batch Smith–Waterman driver.
pub struct BatchAligner<S: Scoring> {
    scoring: S,
    gaps: GapPenalties,
}

impl<S: Scoring> BatchAligner<S> {
    /// Create a driver with the given scoring and gap model.
    pub fn new(scoring: S, gaps: GapPenalties) -> BatchAligner<S> {
        BatchAligner { scoring, gaps }
    }

    /// The gap model in use.
    pub fn gaps(&self) -> GapPenalties {
        self.gaps
    }

    /// Align one pair.
    pub fn align_pair(&self, q: &[u8], r: &[u8]) -> AlignmentResult {
        sw_align(q, r, &self.scoring, self.gaps)
    }

    /// Execute a batch of tasks against a sequence lookup.
    ///
    /// `lookup(id)` resolves a task's sequence id to its residues. Results
    /// are returned in task order together with the batch counters.
    pub fn run_batch<'a>(
        &self,
        tasks: &[AlignTask],
        mut lookup: impl FnMut(u32) -> &'a [u8],
    ) -> (Vec<AlignmentResult>, BatchStats) {
        let start = Instant::now();
        let mut stats = BatchStats::default();
        let mut results = Vec::with_capacity(tasks.len());
        for t in tasks {
            let q = lookup(t.query);
            let r = lookup(t.reference);
            let res = sw_align(q, r, &self.scoring, self.gaps);
            stats.pairs += 1;
            stats.cells += res.cells;
            stats.max_cells = stats.max_cells.max(res.cells);
            results.push(res);
        }
        stats.seconds = start.elapsed().as_secs_f64();
        stats.wall_seconds = stats.seconds;
        (results, stats)
    }

    /// Execute a batch on a worker pool of `threads` threads (0 ⇒ one per
    /// available core). Results and counters are **bit-identical** to
    /// [`run_batch`](BatchAligner::run_batch) for every thread count —
    /// only the time fields differ: `seconds` sums worker busy time and
    /// `wall_seconds` reports elapsed time.
    ///
    /// Unlike `run_batch`, the sequence lookup must be shareable across
    /// workers (`Fn + Sync` instead of `FnMut`).
    pub fn run_batch_parallel<'a, L>(
        &self,
        tasks: &[AlignTask],
        lookup: L,
        threads: usize,
    ) -> (Vec<AlignmentResult>, BatchStats)
    where
        S: Sync,
        L: Fn(u32) -> &'a [u8] + Sync,
    {
        crate::parallel::AlignPool::new(threads).run_traceback(
            tasks,
            lookup,
            &self.scoring,
            self.gaps,
        )
    }

    /// Work (DP cells) a batch *would* perform, without aligning — used by
    /// the load-balancing analysis and the performance-model plane, since
    /// the paper's Figure 7b metric is exactly this sum.
    pub fn batch_cells(tasks: &[AlignTask], mut seq_len: impl FnMut(u32) -> usize) -> u64 {
        tasks
            .iter()
            .map(|t| seq_len(t.query) as u64 * seq_len(t.reference) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{encode, Blosum62};

    fn store() -> Vec<Vec<u8>> {
        ["MKVLAWYHEE", "MKVLAWYHEE", "PAWHEAE", "GGGGG"]
            .iter()
            .map(|s| encode(s).unwrap())
            .collect()
    }

    fn task(q: u32, r: u32) -> AlignTask {
        AlignTask {
            query: q,
            reference: r,
            seed_q: 0,
            seed_r: 0,
        }
    }

    #[test]
    fn batch_aligns_in_task_order() {
        let seqs = store();
        let aligner = BatchAligner::new(Blosum62, GapPenalties::pastis_defaults());
        let tasks = vec![task(0, 1), task(0, 2), task(0, 3)];
        let (results, stats) = aligner.run_batch(&tasks, |id| &seqs[id as usize]);
        assert_eq!(results.len(), 3);
        // 0 vs 1 are identical.
        assert_eq!(results[0].identity(), 1.0);
        // 0 vs 3 share nothing.
        assert_eq!(results[2].score, 0);
        assert_eq!(stats.pairs, 3);
        assert_eq!(stats.cells, (10 * 10 + 10 * 7 + 10 * 5) as u64);
        assert_eq!(stats.max_cells, 100);
    }

    #[test]
    fn empty_batch() {
        let seqs = store();
        let aligner = BatchAligner::new(Blosum62, GapPenalties::pastis_defaults());
        let (results, stats) = aligner.run_batch(&[], |id| &seqs[id as usize]);
        assert!(results.is_empty());
        assert_eq!(stats.pairs, 0);
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn batch_cells_predicts_run_batch() {
        let seqs = store();
        let tasks = vec![task(1, 2), task(2, 3), task(0, 0)];
        let predicted = BatchAligner::<Blosum62>::batch_cells(&tasks, |id| seqs[id as usize].len());
        let aligner = BatchAligner::new(Blosum62, GapPenalties::pastis_defaults());
        let (_, stats) = aligner.run_batch(&tasks, |id| &seqs[id as usize]);
        assert_eq!(predicted, stats.cells);
    }

    #[test]
    fn stats_merge_and_rates() {
        let mut a = BatchStats {
            pairs: 10,
            cells: 1000,
            max_cells: 400,
            lane_promotions: 2,
            simd: SimdBackend::Scalar,
            seconds: 2.0,
            wall_seconds: 2.0,
        };
        let b = BatchStats {
            pairs: 5,
            cells: 500,
            max_cells: 450,
            lane_promotions: 1,
            simd: SimdBackend::detect(),
            seconds: 1.0,
            wall_seconds: 1.0,
        };
        a.merge(&b);
        assert_eq!(a.pairs, 15);
        assert_eq!(a.max_cells, 450);
        assert_eq!(a.lane_promotions, 3);
        assert_eq!(a.simd, SimdBackend::detect());
        assert!((a.alignments_per_sec() - 5.0).abs() < 1e-12);
        assert!((a.cups() - 500.0).abs() < 1e-12);
        assert!((a.cups_per_cpu() - 500.0).abs() < 1e-12);
        let z = BatchStats::default();
        assert_eq!(z.alignments_per_sec(), 0.0);
        assert_eq!(z.cups(), 0.0);
    }

    #[test]
    fn wall_vs_cpu_seconds_split() {
        // A 4-worker batch: 4 s of CPU time in 1.25 s of wall time.
        let s = BatchStats {
            pairs: 8,
            cells: 4000,
            max_cells: 1000,
            lane_promotions: 0,
            simd: SimdBackend::default(),
            seconds: 4.0,
            wall_seconds: 1.25,
        };
        assert!((s.cups() - 3200.0).abs() < 1e-9);
        assert!((s.cups_per_cpu() - 1000.0).abs() < 1e-9);
        assert!((s.alignments_per_sec() - 6.4).abs() < 1e-9);
    }

    #[test]
    fn serial_driver_sets_both_clocks() {
        let seqs = store();
        let aligner = BatchAligner::new(Blosum62, GapPenalties::pastis_defaults());
        let (_, stats) = aligner.run_batch(&[task(0, 1)], |id| &seqs[id as usize]);
        assert_eq!(stats.seconds, stats.wall_seconds);
    }
}
