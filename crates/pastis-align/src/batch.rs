//! Batch alignment driver with exact work accounting.
//!
//! PASTIS hands the aligner large batches of candidate pairs discovered by
//! the SpGEMM; ADEPT's driver packs them, ships them to the node's GPUs and
//! returns scores. [`BatchAligner`] is the equivalent driver: it executes
//! the batch (on the CPU, exactly), and returns per-batch [`BatchStats`] —
//! pair count, total DP cells, wall time — from which alignments/second and
//! CUPs are computed, Section VII's reporting metrics.

use std::time::Instant;

use crate::matrices::Scoring;
use crate::sw::{sw_align, AlignmentResult, GapPenalties};

/// One alignment task: indices into the caller's sequence store plus the
/// seed position recorded by the overlap semiring (used by the banded /
/// x-drop kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignTask {
    /// Query sequence id (caller-side index).
    pub query: u32,
    /// Reference sequence id.
    pub reference: u32,
    /// Seed position in the query (first shared k-mer).
    pub seed_q: u32,
    /// Seed position in the reference.
    pub seed_r: u32,
}

/// Aggregate counters for one executed batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchStats {
    /// Pairs aligned.
    pub pairs: u64,
    /// Total DP cells updated (`Σ |q|·|r|`).
    pub cells: u64,
    /// Largest single DP matrix in the batch.
    pub max_cells: u64,
    /// Wall-clock seconds spent in the batch (measured).
    pub seconds: f64,
}

impl BatchStats {
    /// Alignments per second (0 if no time elapsed).
    pub fn alignments_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.pairs as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Cell updates per second (CUPs).
    pub fn cups(&self) -> f64 {
        if self.seconds > 0.0 {
            self.cells as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Fold another batch's counters into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.pairs += other.pairs;
        self.cells += other.cells;
        self.max_cells = self.max_cells.max(other.max_cells);
        self.seconds += other.seconds;
    }
}

/// Batch Smith–Waterman driver.
pub struct BatchAligner<S: Scoring> {
    scoring: S,
    gaps: GapPenalties,
}

impl<S: Scoring> BatchAligner<S> {
    /// Create a driver with the given scoring and gap model.
    pub fn new(scoring: S, gaps: GapPenalties) -> BatchAligner<S> {
        BatchAligner { scoring, gaps }
    }

    /// The gap model in use.
    pub fn gaps(&self) -> GapPenalties {
        self.gaps
    }

    /// Align one pair.
    pub fn align_pair(&self, q: &[u8], r: &[u8]) -> AlignmentResult {
        sw_align(q, r, &self.scoring, self.gaps)
    }

    /// Execute a batch of tasks against a sequence lookup.
    ///
    /// `lookup(id)` resolves a task's sequence id to its residues. Results
    /// are returned in task order together with the batch counters.
    pub fn run_batch<'a>(
        &self,
        tasks: &[AlignTask],
        mut lookup: impl FnMut(u32) -> &'a [u8],
    ) -> (Vec<AlignmentResult>, BatchStats) {
        let start = Instant::now();
        let mut stats = BatchStats::default();
        let mut results = Vec::with_capacity(tasks.len());
        for t in tasks {
            let q = lookup(t.query);
            let r = lookup(t.reference);
            let res = sw_align(q, r, &self.scoring, self.gaps);
            stats.pairs += 1;
            stats.cells += res.cells;
            stats.max_cells = stats.max_cells.max(res.cells);
            results.push(res);
        }
        stats.seconds = start.elapsed().as_secs_f64();
        (results, stats)
    }

    /// Work (DP cells) a batch *would* perform, without aligning — used by
    /// the load-balancing analysis and the performance-model plane, since
    /// the paper's Figure 7b metric is exactly this sum.
    pub fn batch_cells(
        tasks: &[AlignTask],
        mut seq_len: impl FnMut(u32) -> usize,
    ) -> u64 {
        tasks
            .iter()
            .map(|t| seq_len(t.query) as u64 * seq_len(t.reference) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{encode, Blosum62};

    fn store() -> Vec<Vec<u8>> {
        ["MKVLAWYHEE", "MKVLAWYHEE", "PAWHEAE", "GGGGG"]
            .iter()
            .map(|s| encode(s).unwrap())
            .collect()
    }

    fn task(q: u32, r: u32) -> AlignTask {
        AlignTask {
            query: q,
            reference: r,
            seed_q: 0,
            seed_r: 0,
        }
    }

    #[test]
    fn batch_aligns_in_task_order() {
        let seqs = store();
        let aligner = BatchAligner::new(Blosum62, GapPenalties::pastis_defaults());
        let tasks = vec![task(0, 1), task(0, 2), task(0, 3)];
        let (results, stats) = aligner.run_batch(&tasks, |id| &seqs[id as usize]);
        assert_eq!(results.len(), 3);
        // 0 vs 1 are identical.
        assert_eq!(results[0].identity(), 1.0);
        // 0 vs 3 share nothing.
        assert_eq!(results[2].score, 0);
        assert_eq!(stats.pairs, 3);
        assert_eq!(
            stats.cells,
            (10 * 10 + 10 * 7 + 10 * 5) as u64
        );
        assert_eq!(stats.max_cells, 100);
    }

    #[test]
    fn empty_batch() {
        let seqs = store();
        let aligner = BatchAligner::new(Blosum62, GapPenalties::pastis_defaults());
        let (results, stats) = aligner.run_batch(&[], |id| &seqs[id as usize]);
        assert!(results.is_empty());
        assert_eq!(stats.pairs, 0);
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn batch_cells_predicts_run_batch() {
        let seqs = store();
        let tasks = vec![task(1, 2), task(2, 3), task(0, 0)];
        let predicted =
            BatchAligner::<Blosum62>::batch_cells(&tasks, |id| seqs[id as usize].len());
        let aligner = BatchAligner::new(Blosum62, GapPenalties::pastis_defaults());
        let (_, stats) = aligner.run_batch(&tasks, |id| &seqs[id as usize]);
        assert_eq!(predicted, stats.cells);
    }

    #[test]
    fn stats_merge_and_rates() {
        let mut a = BatchStats {
            pairs: 10,
            cells: 1000,
            max_cells: 400,
            seconds: 2.0,
        };
        let b = BatchStats {
            pairs: 5,
            cells: 500,
            max_cells: 450,
            seconds: 1.0,
        };
        a.merge(&b);
        assert_eq!(a.pairs, 15);
        assert_eq!(a.max_cells, 450);
        assert!((a.alignments_per_sec() - 5.0).abs() < 1e-12);
        assert!((a.cups() - 500.0).abs() < 1e-12);
        let z = BatchStats::default();
        assert_eq!(z.alignments_per_sec(), 0.0);
        assert_eq!(z.cups(), 0.0);
    }
}
