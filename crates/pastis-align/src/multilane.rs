//! Multi-lane (inter-task) batched Smith–Waterman.
//!
//! ADEPT's GPU kernel derives much of its throughput from *inter-task*
//! parallelism — many independent alignments advance in lock-step. On the
//! CPU the same structure maps onto SIMD lanes: `L` pairs share one DP
//! sweep whose inner loop updates all lanes per cell, which the compiler
//! auto-vectorizes. This is the SeqAn-class vectorized backend of the
//! pipeline; results are bit-identical to the scalar kernel (tested).
//!
//! Lanes are padded to the batch's maximum dimensions with a PAD residue
//! scoring −100 against everything: padded cells can never climb above the
//! local-alignment floor of zero, so they cannot influence any lane's
//! optimum.

use crate::matrices::Scoring;
use crate::sw::GapPenalties;

/// Residue code used to pad ragged lanes.
const PAD: u8 = u8::MAX;
const PAD_SCORE: i32 = -100;

#[inline]
fn lane_score<S: Scoring>(scoring: &S, a: u8, b: u8) -> i32 {
    if a == PAD || b == PAD {
        PAD_SCORE
    } else {
        scoring.score(a, b)
    }
}

/// Align `L` pairs in lock-step; returns each lane's optimal local score.
///
/// Lanes may have ragged lengths (they are padded internally). For empty
/// batches of work in a lane (`q` or `r` empty), the lane's score is 0.
pub fn sw_score_multi<const L: usize, S: Scoring>(
    queries: &[&[u8]; L],
    refs: &[&[u8]; L],
    scoring: &S,
    gaps: GapPenalties,
) -> [i32; L] {
    let m = queries.iter().map(|q| q.len()).max().unwrap_or(0);
    let n = refs.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut best = [0i32; L];
    if m == 0 || n == 0 {
        return best;
    }
    let neg = i32::MIN / 2;
    let first = gaps.open + gaps.extend;

    // Row-major DP, all lanes advanced per cell. Layout: [cell][lane].
    let mut h_prev = vec![[0i32; L]; n + 1];
    let mut h_cur = vec![[0i32; L]; n + 1];
    let mut f_prev = vec![[neg; L]; n + 1];
    let mut f_cur = vec![[neg; L]; n + 1];

    // Pre-padded query residues per row avoid per-cell bounds checks.
    for i in 1..=m {
        let mut qi = [PAD; L];
        for l in 0..L {
            if i - 1 < queries[l].len() {
                qi[l] = queries[l][i - 1];
            }
        }
        let mut e = [neg; L];
        for j in 1..=n {
            let mut rj = [PAD; L];
            for l in 0..L {
                if j - 1 < refs[l].len() {
                    rj[l] = refs[l][j - 1];
                }
            }
            let hl = &h_cur[j - 1];
            let hp = &h_prev[j];
            let hd = &h_prev[j - 1];
            let fp = &f_prev[j];
            let mut hout = [0i32; L];
            let mut fout = [neg; L];
            for l in 0..L {
                let ev = (hl[l] - first).max(e[l] - gaps.extend);
                e[l] = ev;
                let fv = (hp[l] - first).max(fp[l] - gaps.extend);
                fout[l] = fv;
                let diag = hd[l] + lane_score(scoring, qi[l], rj[l]);
                let h = 0.max(diag).max(ev).max(fv);
                hout[l] = h;
                if h > best[l] {
                    best[l] = h;
                }
            }
            h_cur[j] = hout;
            f_cur[j] = fout;
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
        h_cur[0] = [0; L];
    }
    best
}

/// Score a whole batch of pairs through the multi-lane kernel, processing
/// `L` at a time (the tail batch is padded with empty lanes).
pub fn sw_score_batch<const L: usize, S: Scoring>(
    pairs: &[(&[u8], &[u8])],
    scoring: &S,
    gaps: GapPenalties,
) -> Vec<i32> {
    let mut out = Vec::with_capacity(pairs.len());
    for chunk in pairs.chunks(L) {
        let mut qs: [&[u8]; L] = [&[]; L];
        let mut rs: [&[u8]; L] = [&[]; L];
        for (l, (q, r)) in chunk.iter().enumerate() {
            qs[l] = q;
            rs[l] = r;
        }
        let scores = sw_score_multi::<L, S>(&qs, &rs, scoring, gaps);
        out.extend_from_slice(&scores[..chunk.len()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{encode, Blosum62};
    use crate::sw::sw_score_only;
    use proptest::prelude::*;

    fn scalar(q: &[u8], r: &[u8]) -> i32 {
        sw_score_only(q, r, &Blosum62, GapPenalties::pastis_defaults()).0
    }

    #[test]
    fn uniform_lanes_match_scalar() {
        let q = encode("HEAGAWGHEE").unwrap();
        let r = encode("PAWHEAE").unwrap();
        let got = sw_score_multi::<4, _>(
            &[&q, &q, &q, &q],
            &[&r, &r, &r, &r],
            &Blosum62,
            GapPenalties::pastis_defaults(),
        );
        let want = scalar(&q, &r);
        assert_eq!(got, [want; 4]);
    }

    #[test]
    fn ragged_lanes_match_scalar() {
        let seqs: Vec<Vec<u8>> = ["MKVLAWYHEE", "PAWHEAE", "GGSTPNQRCDGGSTPNQRCD", "MK"]
            .iter()
            .map(|s| encode(s).unwrap())
            .collect();
        let qs: [&[u8]; 4] = [&seqs[0], &seqs[1], &seqs[2], &seqs[3]];
        let rs: [&[u8]; 4] = [&seqs[1], &seqs[2], &seqs[3], &seqs[0]];
        let got = sw_score_multi::<4, _>(&qs, &rs, &Blosum62, GapPenalties::pastis_defaults());
        for l in 0..4 {
            assert_eq!(got[l], scalar(qs[l], rs[l]), "lane {l}");
        }
    }

    #[test]
    fn empty_lanes_are_zero() {
        let q = encode("MKVLAW").unwrap();
        let e: Vec<u8> = Vec::new();
        let got = sw_score_multi::<2, _>(
            &[&q, &e],
            &[&q, &q],
            &Blosum62,
            GapPenalties::pastis_defaults(),
        );
        assert_eq!(got[0], scalar(&q, &q));
        assert_eq!(got[1], 0);
    }

    #[test]
    fn batch_wrapper_handles_tail() {
        let seqs: Vec<Vec<u8>> = (0..7)
            .map(|i| encode(&"MKVLAWYHEE"[..4 + i]).unwrap())
            .collect();
        let pairs: Vec<(&[u8], &[u8])> = (0..7)
            .map(|i| (seqs[i].as_slice(), seqs[(i + 3) % 7].as_slice()))
            .collect();
        let got = sw_score_batch::<4, _>(&pairs, &Blosum62, GapPenalties::pastis_defaults());
        assert_eq!(got.len(), 7);
        for (idx, (q, r)) in pairs.iter().enumerate() {
            assert_eq!(got[idx], scalar(q, r), "pair {idx}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn lanes_always_match_scalar(
            a in proptest::collection::vec(0u8..21, 0..24),
            b in proptest::collection::vec(0u8..21, 0..24),
            c in proptest::collection::vec(0u8..21, 0..24),
            d in proptest::collection::vec(0u8..21, 0..24),
        ) {
            let g = GapPenalties::pastis_defaults();
            let got = sw_score_multi::<2, _>(&[&a, &c], &[&b, &d], &Blosum62, g);
            prop_assert_eq!(got[0], scalar(&a, &b));
            prop_assert_eq!(got[1], scalar(&c, &d));
        }
    }
}
