//! Multi-lane (inter-sequence) batched Smith–Waterman on real SIMD lanes.
//!
//! ADEPT's GPU kernel derives much of its throughput from *inter-task*
//! parallelism — many independent alignments advance in lock-step. On the
//! CPU the same structure maps onto vector lanes (Rognes' SWIPE and the
//! inter-sequence mode of SeqAn): one sequence pair per i16 lane, all
//! lanes updated per DP cell with saturating vector arithmetic. The lane
//! arithmetic comes from the [`crate::simd`] backends (AVX2/SSE2/NEON, or
//! the portable scalar-array fallback) selected by [`SimdBackend`].
//!
//! # Exactness
//!
//! The kernel is *bit-identical* to the scalar i32 kernel
//! [`sw_score_only`], which the paper's determinism claim requires:
//!
//! * `H` values of a local alignment live in `[0, best]`; while
//!   `best < i16::MAX` no intermediate can top-saturate, and i16
//!   arithmetic equals i32 arithmetic exactly.
//! * `E`/`F` can only bottom-saturate at `i16::MIN`, which behaves as the
//!   scalar kernel's `−∞` sentinel: a bottom-saturated value never wins a
//!   `max` against `h − first ≥ −first ≥ −i16::MAX` and feeds nothing
//!   else (saturating subtraction keeps it pinned).
//! * Any top saturation forces that lane's running `best` to `i16::MAX`,
//!   so `best == i16::MAX` is an exact overflow detector: such lanes are
//!   **promoted** — re-scored through the scalar i32 kernel — and counted
//!   ([`LaneScores::promotions`], surfaced as the `align.lane_promotions`
//!   counter). A true score of exactly `i16::MAX` is indistinguishable
//!   from saturation and takes the (equally exact) rescue path too.
//!
//! Scoring models whose table or gap penalties do not fit the i16 scheme
//! (see [`LaneTable::build`]) bypass the lanes entirely and run scalar —
//! exactness is never traded for speed.
//!
//! Lanes are padded to the chunk's maximum dimensions with a PAD residue
//! scoring −100 against everything: padded cells can never climb above the
//! local-alignment floor of zero, so padding cannot influence any lane's
//! optimum (property-tested), and promotion is a property of the pair
//! alone, not of its lane companions.

use crate::matrices::{Scoring, AA_COUNT};
use crate::simd::{ScalarLanes, SimdBackend, SimdVec, MAX_LANES};
use crate::sw::{sw_score_only, GapPenalties};

#[cfg(target_arch = "x86_64")]
use crate::simd::{Avx2Vec, Sse2Vec};

#[cfg(target_arch = "aarch64")]
use crate::simd::NeonVec;

/// Table index used to pad ragged lanes (one past the residue codes).
const PAD_IDX: usize = AA_COUNT;

/// Width of one score-table row: 21 residue codes + the PAD column.
const TABLE_DIM: usize = AA_COUNT + 1;

/// Score of PAD against anything: below the local-alignment floor.
const PAD_SCORE: i16 = -100;

/// Largest |substitution score| the i16 scheme accepts. Leaves headroom so
/// `diag + score` can only saturate at the top (caught by promotion),
/// never wrap at the bottom.
const MAX_TABLE_SCORE: i32 = 30_000;

/// Flattened i16 score profile plus gap costs, pre-validated for the i16
/// lane scheme. Built once per batch ([`LaneTable::build`]); `None` means
/// the scoring model needs the scalar i32 path.
#[derive(Debug, Clone)]
pub struct LaneTable {
    /// `flat[a * TABLE_DIM + b]` = score of codes `a` vs `b`; row/column
    /// [`PAD_IDX`] holds [`PAD_SCORE`].
    flat: [i16; TABLE_DIM * TABLE_DIM],
    first: i16,
    extend: i16,
}

impl LaneTable {
    /// Flatten `scoring` + `gaps` into an i16 profile, or `None` if any
    /// score or gap cost falls outside the range for which the i16 kernel
    /// is provably exact (`|score| ≤ 30000`, `0 ≤ open + extend ≤ i16::MAX`,
    /// `0 ≤ extend ≤ i16::MAX`).
    pub fn build<S: Scoring>(scoring: &S, gaps: GapPenalties) -> Option<LaneTable> {
        let first = gaps.open + gaps.extend;
        if !(0..=i16::MAX as i32).contains(&first) || !(0..=i16::MAX as i32).contains(&gaps.extend)
        {
            return None;
        }
        let mut flat = [PAD_SCORE; TABLE_DIM * TABLE_DIM];
        for a in 0..AA_COUNT {
            for b in 0..AA_COUNT {
                let s = scoring.score(a as u8, b as u8);
                if s.abs() > MAX_TABLE_SCORE {
                    return None;
                }
                flat[a * TABLE_DIM + b] = s as i16;
            }
        }
        Some(LaneTable {
            flat,
            first: first as i16,
            extend: gaps.extend as i16,
        })
    }
}

/// Scores and overflow-rescue count of one multilane invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneScores {
    /// Optimal local score per pair, in input order. Bit-identical to
    /// [`sw_score_only`] for every backend.
    pub scores: Vec<i32>,
    /// Pairs whose i16 lane saturated and were re-scored through the
    /// scalar i32 kernel. A property of each pair (its score vs
    /// `i16::MAX`), not of lane packing — deterministic across backends,
    /// lane widths and thread counts.
    pub promotions: u64,
}

/// The vector kernel proper: one chunk of ≤ `V::LANES` pairs in lock-step.
///
/// Writes non-saturated lanes' scores into `out` and returns the bitmask
/// of saturated lanes (callers re-score those exactly). Marked
/// `#[inline(always)]` so the `#[target_feature]` entry points inline it
/// and the trait ops compile to bare vector instructions.
#[inline(always)]
fn lanes_kernel<V: SimdVec>(qs: &[&[u8]], rs: &[&[u8]], table: &LaneTable, out: &mut [i32]) -> u32 {
    debug_assert!(qs.len() == rs.len() && qs.len() <= V::LANES && V::LANES <= MAX_LANES);
    let lanes = V::LANES;
    let m = qs.iter().map(|q| q.len()).max().unwrap_or(0);
    let n = rs.iter().map(|r| r.len()).max().unwrap_or(0);
    for o in out[..qs.len()].iter_mut() {
        *o = 0;
    }
    if m == 0 || n == 0 {
        return 0;
    }

    // Transposed padded reference residues: rt[(j-1)*lanes + l] is lane
    // l's reference code at column j (PAD beyond the lane's length), so
    // the per-cell score gather is a single sequential slice walk.
    let mut rt = vec![PAD_IDX as u8; n * lanes];
    for (l, r) in rs.iter().enumerate() {
        for (j, &c) in r.iter().enumerate() {
            rt[j * lanes + l] = c;
        }
    }

    let neg = V::splat(i16::MIN);
    let zero = V::zero();
    let vfirst = V::splat(table.first);
    let vext = V::splat(table.extend);
    let mut h = vec![zero; n + 1]; // current row of H; h[0] = H(i, 0) = 0
    let mut f = vec![neg; n + 1]; // F of the previous row, per column
    let mut best = zero;
    let mut qoff = [PAD_IDX * TABLE_DIM; MAX_LANES];
    let mut sbuf = [0i16; MAX_LANES];

    for i in 1..=m {
        for (l, off) in qoff.iter_mut().enumerate().take(lanes) {
            let code = qs
                .get(l)
                .and_then(|q| q.get(i - 1))
                .copied()
                .unwrap_or(PAD_IDX as u8);
            *off = code as usize * TABLE_DIM;
        }
        let mut e = neg;
        let mut h_left = zero; // H(i, j-1), walking left to right
        let mut diag = zero; // H(i-1, j-1); starts at H(i-1, 0) = 0
        for j in 1..=n {
            let up = h[j]; // H(i-1, j)
            let fv = up.sub_sat(vfirst).max(f[j].sub_sat(vext));
            f[j] = fv;
            let ev = h_left.sub_sat(vfirst).max(e.sub_sat(vext));
            e = ev;
            let col = &rt[(j - 1) * lanes..j * lanes];
            for l in 0..lanes {
                sbuf[l] = table.flat[qoff[l] + col[l] as usize];
            }
            let sc = V::load(&sbuf);
            let hv = diag.add_sat(sc).max(ev).max(fv).max(zero);
            best = best.max(hv);
            diag = up;
            h[j] = hv;
            h_left = hv;
        }
    }

    let mut bbuf = [0i16; MAX_LANES];
    best.store(&mut bbuf);
    let mut saturated = 0u32;
    for (l, o) in out[..qs.len()].iter_mut().enumerate() {
        if bbuf[l] == i16::MAX {
            saturated |= 1 << l;
        } else {
            *o = bbuf[l] as i32;
        }
    }
    saturated
}

/// AVX2 entry point: the `#[target_feature]` boundary under which the
/// generic kernel and the `Avx2Vec` ops inline into VEX instructions.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("avx2")`
/// (dispatch goes through [`SimdBackend::is_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lanes_chunk_avx2(qs: &[&[u8]], rs: &[&[u8]], table: &LaneTable, out: &mut [i32]) -> u32 {
    lanes_kernel::<Avx2Vec>(qs, rs, table, out)
}

/// Run one ≤ `backend.lanes()` chunk on the given backend.
fn lanes_chunk(
    backend: SimdBackend,
    qs: &[&[u8]],
    rs: &[&[u8]],
    table: &LaneTable,
    out: &mut [i32],
) -> u32 {
    match backend {
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Sse2 => lanes_kernel::<Sse2Vec>(qs, rs, table, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only selects Avx2 after runtime detection.
        SimdBackend::Avx2 => unsafe { lanes_chunk_avx2(qs, rs, table, out) },
        #[cfg(target_arch = "aarch64")]
        SimdBackend::Neon => lanes_kernel::<NeonVec>(qs, rs, table, out),
        _ => lanes_kernel::<ScalarLanes<16>>(qs, rs, table, out),
    }
}

/// Score `queries[k]` vs `refs[k]` for every `k` through the vector
/// backend, chunking by the backend's lane width, with the overflow
/// rescue applied. Results are bit-identical to [`sw_score_only`].
///
/// Builds the score profile per call; batch drivers that amortize it use
/// [`sw_score_lanes_prepared`].
pub fn sw_score_lanes<S: Scoring>(
    queries: &[&[u8]],
    refs: &[&[u8]],
    scoring: &S,
    gaps: GapPenalties,
    backend: SimdBackend,
) -> LaneScores {
    let table = LaneTable::build(scoring, gaps);
    sw_score_lanes_prepared(queries, refs, scoring, gaps, backend, table.as_ref())
}

/// [`sw_score_lanes`] with a pre-built [`LaneTable`] (`None` forces the
/// scalar path, which [`LaneTable::build`] demands for out-of-range
/// scoring models).
pub fn sw_score_lanes_prepared<S: Scoring>(
    queries: &[&[u8]],
    refs: &[&[u8]],
    scoring: &S,
    gaps: GapPenalties,
    backend: SimdBackend,
    table: Option<&LaneTable>,
) -> LaneScores {
    assert_eq!(queries.len(), refs.len(), "ragged lane inputs");
    let mut scores = vec![0i32; queries.len()];
    let mut promotions = 0u64;
    let Some(table) = table else {
        for (k, (q, r)) in queries.iter().zip(refs).enumerate() {
            scores[k] = sw_score_only(q, r, scoring, gaps).0;
        }
        return LaneScores { scores, promotions };
    };
    // A forced-but-unavailable backend (possible only through library
    // misuse; the CLI validates) degrades to the portable lanes.
    let backend = if backend.is_available() {
        backend
    } else {
        SimdBackend::Scalar
    };
    let w = backend.lanes();
    for ((qs, rs), out) in queries
        .chunks(w)
        .zip(refs.chunks(w))
        .zip(scores.chunks_mut(w))
    {
        let saturated = lanes_chunk(backend, qs, rs, table, out);
        if saturated != 0 {
            for l in 0..qs.len() {
                if saturated & (1 << l) != 0 {
                    out[l] = sw_score_only(qs[l], rs[l], scoring, gaps).0;
                    promotions += 1;
                }
            }
        }
    }
    LaneScores { scores, promotions }
}

/// Score a whole batch of pairs on an explicit backend; the thin wrapper
/// the differential harness and the kernel benchmarks drive directly.
pub fn sw_score_batch_simd<S: Scoring>(
    pairs: &[(&[u8], &[u8])],
    scoring: &S,
    gaps: GapPenalties,
    backend: SimdBackend,
) -> LaneScores {
    let queries: Vec<&[u8]> = pairs.iter().map(|(q, _)| *q).collect();
    let refs: Vec<&[u8]> = pairs.iter().map(|(_, r)| *r).collect();
    sw_score_lanes(&queries, &refs, scoring, gaps, backend)
}

/// Align `L` pairs in lock-step; returns each lane's optimal local score.
///
/// Lanes may have ragged lengths (they are padded internally); empty
/// lanes (`q` or `r` empty) score 0. Retained compatibility surface over
/// [`sw_score_lanes`] on the detected backend.
pub fn sw_score_multi<const L: usize, S: Scoring>(
    queries: &[&[u8]; L],
    refs: &[&[u8]; L],
    scoring: &S,
    gaps: GapPenalties,
) -> [i32; L] {
    let ls = sw_score_lanes(
        &queries[..],
        &refs[..],
        scoring,
        gaps,
        SimdBackend::detect(),
    );
    let mut out = [0i32; L];
    out.copy_from_slice(&ls.scores);
    out
}

/// Score a whole batch of pairs through the multi-lane kernel, processing
/// `L` at a time. Retained compatibility surface; the lane width actually
/// used is the detected backend's, which is what makes it fast.
pub fn sw_score_batch<const L: usize, S: Scoring>(
    pairs: &[(&[u8], &[u8])],
    scoring: &S,
    gaps: GapPenalties,
) -> Vec<i32> {
    sw_score_batch_simd(pairs, scoring, gaps, SimdBackend::detect()).scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{encode, Blosum62, MatchMismatch};
    use proptest::prelude::*;

    fn scalar(q: &[u8], r: &[u8]) -> i32 {
        sw_score_only(q, r, &Blosum62, GapPenalties::pastis_defaults()).0
    }

    #[test]
    fn uniform_lanes_match_scalar() {
        let q = encode("HEAGAWGHEE").unwrap();
        let r = encode("PAWHEAE").unwrap();
        let got = sw_score_multi::<4, _>(
            &[&q, &q, &q, &q],
            &[&r, &r, &r, &r],
            &Blosum62,
            GapPenalties::pastis_defaults(),
        );
        let want = scalar(&q, &r);
        assert_eq!(got, [want; 4]);
    }

    #[test]
    fn ragged_lanes_match_scalar() {
        let seqs: Vec<Vec<u8>> = ["MKVLAWYHEE", "PAWHEAE", "GGSTPNQRCDGGSTPNQRCD", "MK"]
            .iter()
            .map(|s| encode(s).unwrap())
            .collect();
        let qs: [&[u8]; 4] = [&seqs[0], &seqs[1], &seqs[2], &seqs[3]];
        let rs: [&[u8]; 4] = [&seqs[1], &seqs[2], &seqs[3], &seqs[0]];
        let got = sw_score_multi::<4, _>(&qs, &rs, &Blosum62, GapPenalties::pastis_defaults());
        for l in 0..4 {
            assert_eq!(got[l], scalar(qs[l], rs[l]), "lane {l}");
        }
    }

    #[test]
    fn empty_lanes_are_zero() {
        let q = encode("MKVLAW").unwrap();
        let e: Vec<u8> = Vec::new();
        let got = sw_score_multi::<2, _>(
            &[&q, &e],
            &[&q, &q],
            &Blosum62,
            GapPenalties::pastis_defaults(),
        );
        assert_eq!(got[0], scalar(&q, &q));
        assert_eq!(got[1], 0);
    }

    #[test]
    fn batch_wrapper_handles_tail() {
        let seqs: Vec<Vec<u8>> = (0..7)
            .map(|i| encode(&"MKVLAWYHEE"[..4 + i]).unwrap())
            .collect();
        let pairs: Vec<(&[u8], &[u8])> = (0..7)
            .map(|i| (seqs[i].as_slice(), seqs[(i + 3) % 7].as_slice()))
            .collect();
        let got = sw_score_batch::<4, _>(&pairs, &Blosum62, GapPenalties::pastis_defaults());
        assert_eq!(got.len(), 7);
        for (idx, (q, r)) in pairs.iter().enumerate() {
            assert_eq!(got[idx], scalar(q, r), "pair {idx}");
        }
    }

    #[test]
    fn every_available_backend_matches_scalar() {
        let seqs: Vec<Vec<u8>> = [
            "MKVLAWYHEE",
            "PAWHEAE",
            "GGSTPNQRCDGGSTPNQRCD",
            "MK",
            "",
            "W",
            "HEAGAWGHEEHEAGAWGHEE",
        ]
        .iter()
        .map(|s| encode(s).unwrap())
        .collect();
        let pairs: Vec<(&[u8], &[u8])> = (0..seqs.len())
            .flat_map(|i| (0..seqs.len()).map(move |j| (i, j)))
            .map(|(i, j)| (seqs[i].as_slice(), seqs[j].as_slice()))
            .collect();
        let g = GapPenalties::pastis_defaults();
        for backend in SimdBackend::available() {
            let got = sw_score_batch_simd(&pairs, &Blosum62, g, backend);
            assert_eq!(got.promotions, 0, "{backend}: tiny scores promoted");
            for (k, (q, r)) in pairs.iter().enumerate() {
                assert_eq!(
                    got.scores[k],
                    sw_score_only(q, r, &Blosum62, g).0,
                    "{backend} pair {k}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_scoring_takes_scalar_path() {
        // Scores beyond the i16 window must bypass the lanes (build fails)
        // and still come back exact.
        let big = MatchMismatch {
            match_score: 100_000,
            mismatch_score: -100_000,
        };
        let g = GapPenalties::pastis_defaults();
        assert!(LaneTable::build(&big, g).is_none());
        let q = vec![3u8; 12];
        let r = vec![3u8; 12];
        let got = sw_score_batch_simd(&[(&q, &r)], &big, g, SimdBackend::detect());
        assert_eq!(got.scores[0], sw_score_only(&q, &r, &big, g).0);
        assert_eq!(got.promotions, 0);
        // Pathological gap costs likewise.
        let huge_gap = GapPenalties {
            open: i16::MAX as i32,
            extend: 10,
        };
        assert!(LaneTable::build(&Blosum62, huge_gap).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn lanes_always_match_scalar(
            a in proptest::collection::vec(0u8..21, 0..24),
            b in proptest::collection::vec(0u8..21, 0..24),
            c in proptest::collection::vec(0u8..21, 0..24),
            d in proptest::collection::vec(0u8..21, 0..24),
        ) {
            let g = GapPenalties::pastis_defaults();
            let got = sw_score_multi::<2, _>(&[&a, &c], &[&b, &d], &Blosum62, g);
            prop_assert_eq!(got[0], scalar(&a, &b));
            prop_assert_eq!(got[1], scalar(&c, &d));
        }
    }
}
