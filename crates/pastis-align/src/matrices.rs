//! Amino-acid codes and substitution scoring.
//!
//! The canonical residue order is the 20 standard amino acids in the
//! conventional BLOSUM row order, plus `X` (unknown) as code 20:
//! `A R N D C Q E G H I L K M F P S T W Y V X`. Every sequence in
//! PASTIS-RS is encoded into these codes once at parse time; all inner
//! loops work on `u8` codes.

/// Canonical residue ordering; `AA_ALPHABET[code]` is the residue letter.
pub const AA_ALPHABET: &[u8; 21] = b"ARNDCQEGHILKMFPSTWYVX";

/// Number of residue codes (20 amino acids + X).
pub const AA_COUNT: usize = 21;

/// Code of the unknown residue `X`.
pub const AA_X: u8 = 20;

/// Map an ASCII residue letter (either case) to its code. Ambiguity codes
/// `B`/`Z`/`J`/`U`/`O` and `*` map to `X`. Returns `None` for characters
/// that are not residue letters at all.
#[inline]
pub fn aa_code(letter: u8) -> Option<u8> {
    match letter.to_ascii_uppercase() {
        b'A' => Some(0),
        b'R' => Some(1),
        b'N' => Some(2),
        b'D' => Some(3),
        b'C' => Some(4),
        b'Q' => Some(5),
        b'E' => Some(6),
        b'G' => Some(7),
        b'H' => Some(8),
        b'I' => Some(9),
        b'L' => Some(10),
        b'K' => Some(11),
        b'M' => Some(12),
        b'F' => Some(13),
        b'P' => Some(14),
        b'S' => Some(15),
        b'T' => Some(16),
        b'W' => Some(17),
        b'Y' => Some(18),
        b'V' => Some(19),
        b'X' | b'B' | b'Z' | b'J' | b'U' | b'O' | b'*' => Some(AA_X),
        _ => None,
    }
}

/// Encode an ASCII protein string into residue codes.
///
/// # Errors
///
/// Returns the offending byte on the first non-residue character.
pub fn encode(seq: &str) -> Result<Vec<u8>, u8> {
    seq.bytes().map(|b| aa_code(b).ok_or(b)).collect()
}

/// Decode residue codes back into an ASCII string.
pub fn decode(codes: &[u8]) -> String {
    codes
        .iter()
        .map(|&c| AA_ALPHABET[c as usize] as char)
        .collect()
}

/// A substitution scoring function over residue codes.
pub trait Scoring {
    /// Score of aligning residue codes `a` and `b`.
    fn score(&self, a: u8, b: u8) -> i32;

    /// The largest score on the diagonal (best possible per-column score),
    /// used by x-drop bounds and score normalization.
    fn max_match(&self) -> i32 {
        (0..AA_COUNT as u8)
            .map(|c| self.score(c, c))
            .max()
            .unwrap_or(0)
    }
}

/// BLOSUM62, the paper's (and field's) default protein matrix, restricted
/// to the 20 standard residues plus `X`. Values are the standard NCBI
/// table.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blosum62;

/// NCBI BLOSUM62 over the canonical order `ARNDCQEGHILKMFPSTWYVX`.
#[rustfmt::skip]
pub const BLOSUM62: [[i8; AA_COUNT]; AA_COUNT] = [
    //A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   X
    [ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0,  0], // A
    [-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1], // R
    [-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3, -1], // N
    [-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3, -1], // D
    [ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -2], // C
    [-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2, -1], // Q
    [-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2, -1], // E
    [ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1], // G
    [-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3, -1], // H
    [-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -1], // I
    [-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -1], // L
    [-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2, -1], // K
    [-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -1], // M
    [-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -1], // F
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2], // P
    [ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0], // S
    [ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0,  0], // T
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -2], // W
    [-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -1], // Y
    [ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -1], // V
    [ 0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1], // X
];

impl Scoring for Blosum62 {
    #[inline]
    fn score(&self, a: u8, b: u8) -> i32 {
        BLOSUM62[a as usize][b as usize] as i32
    }

    fn max_match(&self) -> i32 {
        11 // W/W
    }
}

/// Uniform match/mismatch scoring (DNA-style; also useful in tests where
/// hand-checkable scores are wanted).
#[derive(Debug, Clone, Copy)]
pub struct MatchMismatch {
    /// Score for identical codes (> 0).
    pub match_score: i32,
    /// Score for differing codes (< 0).
    pub mismatch_score: i32,
}

impl MatchMismatch {
    /// The classic (+1, −1).
    pub fn unit() -> MatchMismatch {
        MatchMismatch {
            match_score: 1,
            mismatch_score: -1,
        }
    }
}

impl Scoring for MatchMismatch {
    #[inline]
    fn score(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.match_score
        } else {
            self.mismatch_score
        }
    }

    fn max_match(&self) -> i32 {
        self.match_score
    }
}

/// An owned table-backed matrix, for custom or programmatically derived
/// scorings (e.g. reduced-alphabet collapsed matrices).
#[derive(Debug, Clone)]
pub struct TableScoring {
    table: [[i8; AA_COUNT]; AA_COUNT],
}

impl TableScoring {
    /// Wrap an explicit table.
    pub fn new(table: [[i8; AA_COUNT]; AA_COUNT]) -> TableScoring {
        TableScoring { table }
    }

    /// The BLOSUM62 table as an owned value.
    pub fn blosum62() -> TableScoring {
        TableScoring { table: BLOSUM62 }
    }
}

impl Scoring for TableScoring {
    #[inline]
    fn score(&self, a: u8, b: u8) -> i32 {
        self.table[a as usize][b as usize] as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_roundtrip() {
        for (code, &letter) in AA_ALPHABET.iter().enumerate() {
            assert_eq!(aa_code(letter), Some(code as u8));
            assert_eq!(aa_code(letter.to_ascii_lowercase()), Some(code as u8));
        }
    }

    #[test]
    fn ambiguity_codes_map_to_x() {
        for b in [b'B', b'Z', b'J', b'U', b'O', b'*'] {
            assert_eq!(aa_code(b), Some(AA_X));
        }
        assert_eq!(aa_code(b'1'), None);
        assert_eq!(aa_code(b' '), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = "MKVLAWYHEE";
        let codes = encode(s).unwrap();
        assert_eq!(decode(&codes), s);
        assert_eq!(encode("MK1"), Err(b'1'));
    }

    #[test]
    fn blosum62_is_symmetric() {
        for (a, row) in BLOSUM62.iter().enumerate() {
            for (b, &v) in row.iter().enumerate() {
                assert_eq!(v, BLOSUM62[b][a], "asymmetry at ({a},{b})");
            }
        }
    }

    #[test]
    fn blosum62_diagonal_dominates_row() {
        // Each residue scores itself at least as high as any substitution.
        for (a, row) in BLOSUM62.iter().enumerate().take(AA_COUNT - 1) {
            for (b, &v) in row.iter().enumerate() {
                if a != b {
                    assert!(row[a] > v, "diag not dominant at ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn blosum62_spot_values() {
        let s = Blosum62;
        let code = |c: u8| aa_code(c).unwrap();
        assert_eq!(s.score(code(b'W'), code(b'W')), 11);
        assert_eq!(s.score(code(b'A'), code(b'A')), 4);
        assert_eq!(s.score(code(b'C'), code(b'C')), 9);
        assert_eq!(s.score(code(b'L'), code(b'I')), 2);
        assert_eq!(s.score(code(b'W'), code(b'G')), -2);
        assert_eq!(s.score(code(b'D'), code(b'E')), 2);
        assert_eq!(s.max_match(), 11);
    }

    #[test]
    fn match_mismatch_scoring() {
        let s = MatchMismatch::unit();
        assert_eq!(s.score(3, 3), 1);
        assert_eq!(s.score(3, 4), -1);
        assert_eq!(s.max_match(), 1);
    }

    #[test]
    fn table_scoring_matches_blosum() {
        let t = TableScoring::blosum62();
        let b = Blosum62;
        for a in 0..AA_COUNT as u8 {
            for c in 0..AA_COUNT as u8 {
                assert_eq!(t.score(a, c), b.score(a, c));
            }
        }
        assert_eq!(t.max_match(), 11);
    }
}
