//! Intra-rank parallel batch-alignment engine — the ADEPT driver analog.
//!
//! ADEPT feeds a GPU thousands of independent alignments that advance in
//! lock-step; on the CPU the same inter-task parallelism maps onto two
//! nested levels, both provided here:
//!
//! * **A worker pool** ([`AlignPool`]): an `AlignTask` batch is split into
//!   units that `t` scoped threads claim from a shared atomic counter
//!   (dynamic self-scheduling, so ragged task costs balance), with results
//!   re-assembled **in task order**. Every task is computed by the same
//!   scalar kernel regardless of which worker claims it, so output is
//!   bit-identical to the serial driver for any thread count — the same
//!   determinism contract the SUMMA layer pins down.
//! * **Multilane packing** ([`AlignPool::run_score_only`]): score-only
//!   work is sorted by length into ragged lanes and dispatched through the
//!   vector kernel ([`crate::multilane`]) at the selected backend's lane
//!   width ([`AlignPool::with_simd`]; AVX2 16, SSE2/NEON 8, portable 16),
//!   falling back to scalar [`sw_score_only`] for oversized tasks. The
//!   lane plan is a pure function of the task list and lane width, never
//!   of the thread count, and the vector kernel is padding-invariant and
//!   bit-identical to the scalar one (its i16 saturation rescue re-scores
//!   through scalar i32), so scores stay bit-identical here too — across
//!   thread counts *and* backends.
//!
//! Traceback-requiring work ([`AlignPool::run_traceback`]) and
//! seed-anchored banded work ([`AlignPool::run_banded`]) parallelize over
//! scalar kernels only — traceback needs the full matrix per pair, and the
//! banded kernel's exploration set depends on per-pair seeds, neither of
//! which fits lock-step lanes.
//!
//! Time accounting: the returned [`BatchStats`] carries the wall-vs-CPU
//! split — `seconds` sums worker busy time, `wall_seconds` is elapsed.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use pastis_pool::{Engine, WorkPool};
use pastis_trace::{names, Component, Recorder, Track};

use crate::banded::sw_banded;
use crate::batch::{AlignTask, BatchStats};
use crate::matrices::Scoring;
use crate::multilane::{sw_score_lanes_prepared, LaneTable};
use crate::simd::{SimdBackend, MAX_LANES};
use crate::sw::{sw_align, sw_score_only, AlignmentResult, GapPenalties};

/// Scalar tasks claimed per unit of work. Small enough for dynamic load
/// balance over ragged lengths, large enough to amortize the atomic claim.
const CHUNK: usize = 32;

/// Sequences longer than this skip the multilane path: one huge lane
/// member would pad every companion to its dimensions, and the lane's
/// working set would fall out of cache.
const OVERSIZED_LEN: usize = 4096;

/// Score and exact work of one score-only or banded task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoreResult {
    /// Optimal local score found by the kernel (≥ 0).
    pub score: i32,
    /// DP cells attributed to the task (`|q|·|r|` for full-matrix
    /// kernels; explored cells for the banded kernel).
    pub cells: u64,
}

/// Persistent-for-the-batch worker pool executing alignment batches as
/// atomically-claimed units across `t` threads.
#[derive(Debug, Clone)]
pub struct AlignPool {
    threads: usize,
    recorder: Recorder,
    simd: SimdBackend,
    workers: Option<WorkPool>,
}

impl AlignPool {
    /// A pool of `threads` workers; `0` means one per available core.
    /// Telemetry is off until [`AlignPool::with_recorder`] attaches a
    /// sink; the score-only vector backend defaults to the best one the
    /// host supports ([`SimdBackend::detect`]).
    pub fn new(threads: usize) -> AlignPool {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        AlignPool {
            threads,
            recorder: Recorder::disabled(),
            simd: SimdBackend::detect(),
            workers: None,
        }
    }

    /// Submit batches to a shared [`WorkPool`] instead of spawning scoped
    /// threads per batch: units become pool jobs an idle sparse worker can
    /// steal (and vice versa), the pool's size supersedes this pool's own
    /// thread knob, and per-unit `align.unit` spans land on
    /// [`Track::PoolWorker`] sub-tracks. Results stay bit-identical — the
    /// units and their unit-order reassembly are unchanged.
    pub fn with_workers(mut self, workers: WorkPool) -> AlignPool {
        self.workers = Some(workers);
        self
    }

    /// The attached unified pool, if any.
    pub fn workers(&self) -> Option<&WorkPool> {
        self.workers.as_ref()
    }

    /// Attach a telemetry recorder: each batch then emits one
    /// `align.worker` span per claiming worker on its
    /// [`Track::AlignWorker`] sub-track (occupancy view), tagged with the
    /// units/pairs/cells that worker processed. Observation-only — results
    /// are unchanged.
    pub fn with_recorder(mut self, recorder: Recorder) -> AlignPool {
        self.recorder = recorder;
        self
    }

    /// Select the vector backend for score-only dispatch (an unavailable
    /// backend degrades to the portable lanes inside the kernel; callers
    /// that must reject that case validate through
    /// [`crate::simd::SimdPolicy::resolve`] first). Scores are
    /// bit-identical for every choice — only throughput changes.
    pub fn with_simd(mut self, simd: SimdBackend) -> AlignPool {
        self.simd = simd;
        self
    }

    /// Worker count this pool dispatches to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Vector backend score-only batches dispatch through.
    pub fn simd(&self) -> SimdBackend {
        self.simd
    }

    /// Full Smith–Waterman with traceback over every task, in parallel
    /// chunks; results in task order, bit-identical to the serial loop.
    pub fn run_traceback<'a, S, L>(
        &self,
        tasks: &[AlignTask],
        lookup: L,
        scoring: &S,
        gaps: GapPenalties,
    ) -> (Vec<AlignmentResult>, BatchStats)
    where
        S: Scoring + Sync,
        L: Fn(u32) -> &'a [u8] + Sync,
    {
        let n_units = tasks.len().div_ceil(CHUNK);
        let (chunks, stats) = self.execute_units(n_units, |u, local| {
            let range = chunk_range(u, tasks.len());
            let mut out = Vec::with_capacity(range.len());
            for t in &tasks[range] {
                let res = sw_align(lookup(t.query), lookup(t.reference), scoring, gaps);
                local.pairs += 1;
                local.cells += res.cells;
                local.max_cells = local.max_cells.max(res.cells);
                out.push(res);
            }
            out
        });
        (chunks.concat(), stats)
    }

    /// Seed-anchored banded Smith–Waterman (half-width `w`) over every
    /// task, in parallel chunks; results in task order.
    pub fn run_banded<'a, S, L>(
        &self,
        tasks: &[AlignTask],
        lookup: L,
        scoring: &S,
        gaps: GapPenalties,
        w: usize,
    ) -> (Vec<ScoreResult>, BatchStats)
    where
        S: Scoring + Sync,
        L: Fn(u32) -> &'a [u8] + Sync,
    {
        let n_units = tasks.len().div_ceil(CHUNK);
        let (chunks, stats) = self.execute_units(n_units, |u, local| {
            let range = chunk_range(u, tasks.len());
            let mut out = Vec::with_capacity(range.len());
            for t in &tasks[range] {
                let b = sw_banded(
                    lookup(t.query),
                    lookup(t.reference),
                    scoring,
                    gaps,
                    t.seed_q as usize,
                    t.seed_r as usize,
                    w,
                );
                local.pairs += 1;
                local.cells += b.cells;
                local.max_cells = local.max_cells.max(b.cells);
                out.push(ScoreResult {
                    score: b.score,
                    cells: b.cells,
                });
            }
            out
        });
        (chunks.concat(), stats)
    }

    /// Full-matrix score-only alignment over every task, dispatched
    /// through the multilane vector kernel where possible.
    ///
    /// Tasks are sorted by length into lanes of the selected backend's
    /// width (so lane members pad against near-equals); oversized tasks
    /// run through scalar [`sw_score_only`]. The plan depends only on the
    /// task list and lane width, and the vector kernel is bit-identical
    /// to the scalar one (saturated lanes are promoted to the scalar i32
    /// kernel), so results match the serial scalar driver for every
    /// thread count and every backend. The returned stats carry the
    /// backend used and the promotion count.
    pub fn run_score_only<'a, S, L>(
        &self,
        tasks: &[AlignTask],
        lookup: L,
        scoring: &S,
        gaps: GapPenalties,
    ) -> (Vec<ScoreResult>, BatchStats)
    where
        S: Scoring + Sync,
        L: Fn(u32) -> &'a [u8] + Sync,
    {
        let backend = if self.simd.is_available() {
            self.simd
        } else {
            SimdBackend::Scalar
        };
        let table = LaneTable::build(scoring, gaps);
        let plan = LanePlan::build(tasks, &lookup, backend.lanes());
        let (unit_results, mut stats) = self.execute_units(plan.units.len(), |u, local| {
            let mut out = Vec::new();
            match plan.units[u] {
                LaneUnit::Lane { start, len } => run_lane(
                    &plan.order[start..start + len],
                    tasks,
                    &lookup,
                    scoring,
                    gaps,
                    backend,
                    table.as_ref(),
                    local,
                    &mut out,
                ),
                LaneUnit::Scalar(idx) => {
                    let t = &tasks[idx];
                    let (score, _, _, cells) =
                        sw_score_only(lookup(t.query), lookup(t.reference), scoring, gaps);
                    local.pairs += 1;
                    local.cells += cells;
                    local.max_cells = local.max_cells.max(cells);
                    out.push((idx, ScoreResult { score, cells }));
                }
            }
            out
        });
        stats.simd = backend;
        self.recorder.add_counter(
            names::CTR_ALIGN_LANE_PROMOTIONS,
            stats.lane_promotions as f64,
        );
        // Scatter lane-ordered results back to task order.
        let mut results = vec![ScoreResult::default(); tasks.len()];
        for (idx, r) in unit_results.into_iter().flatten() {
            results[idx] = r;
        }
        (results, stats)
    }

    /// Dynamic self-scheduling core: `run_unit(u, &mut local_stats)` is
    /// called exactly once for each `u < n_units`, by whichever worker
    /// claims `u` from the shared counter. Returns per-unit payloads in
    /// unit order plus merged stats (busy-time sum in `seconds`, elapsed
    /// in `wall_seconds`).
    fn execute_units<P, F>(&self, n_units: usize, run_unit: F) -> (Vec<P>, BatchStats)
    where
        P: Send,
        F: Fn(usize, &mut BatchStats) -> P + Sync,
    {
        let wall = Instant::now();
        if let Some(wp) = &self.workers {
            return self.execute_units_pooled(wp, n_units, run_unit, wall);
        }
        let workers = self.threads.min(n_units.max(1));
        let (payloads, mut stats) = if workers <= 1 {
            let busy = Instant::now();
            let mut span = self.worker_span(0);
            let mut local = BatchStats::default();
            let out = (0..n_units).map(|u| run_unit(u, &mut local)).collect();
            local.seconds = busy.elapsed().as_secs_f64();
            if let Some(span) = span.as_mut() {
                tag_worker_span(span, n_units as u64, &local);
            }
            (out, local)
        } else {
            let next = AtomicUsize::new(0);
            let worker = |w: u32| {
                let busy = Instant::now();
                let mut span = self.worker_span(w);
                let mut local = BatchStats::default();
                let mut out = Vec::new();
                loop {
                    let u = next.fetch_add(1, Ordering::Relaxed);
                    if u >= n_units {
                        break;
                    }
                    out.push((u, run_unit(u, &mut local)));
                }
                local.seconds = busy.elapsed().as_secs_f64();
                if let Some(span) = span.as_mut() {
                    tag_worker_span(span, out.len() as u64, &local);
                }
                (out, local)
            };
            // The calling thread is worker 0, so `threads = t` occupies
            // exactly t OS threads — important under pre-blocking, where a
            // concurrent sparse thread already owns the communicator.
            std::thread::scope(|scope| {
                let worker = &worker;
                let handles: Vec<_> = (1..workers)
                    .map(|w| scope.spawn(move || worker(w as u32)))
                    .collect();
                let mut tagged: Vec<(usize, P)> = Vec::with_capacity(n_units);
                let (own_out, own_local) = worker(0);
                tagged.extend(own_out);
                let mut merged = own_local;
                for h in handles {
                    let (out, local) = h.join().expect("alignment worker panicked");
                    tagged.extend(out);
                    merged.pairs += local.pairs;
                    merged.cells += local.cells;
                    merged.max_cells = merged.max_cells.max(local.max_cells);
                    merged.lane_promotions += local.lane_promotions;
                    merged.seconds += local.seconds;
                }
                tagged.sort_unstable_by_key(|&(u, _)| u);
                (tagged.into_iter().map(|(_, p)| p).collect(), merged)
            })
        };
        stats.wall_seconds = wall.elapsed().as_secs_f64();
        (payloads, stats)
    }

    /// [`AlignPool::execute_units`] on the unified pool: each unit is a
    /// claimable pool job unit, run by whichever pool worker (or the
    /// submitting thread) takes it — including workers that just finished
    /// sparse chunks. Per-unit payload/stat pairs come back in unit order,
    /// so the merge below reproduces the scoped path's totals exactly.
    fn execute_units_pooled<P, F>(
        &self,
        wp: &WorkPool,
        n_units: usize,
        run_unit: F,
        wall: Instant,
    ) -> (Vec<P>, BatchStats)
    where
        P: Send,
        F: Fn(usize, &mut BatchStats) -> P + Sync,
    {
        let unit_out: Vec<(P, BatchStats)> = wp.run(Engine::Align, n_units, |u, slot| {
            let busy = Instant::now();
            let mut span = self.recorder.is_enabled().then(|| {
                self.recorder
                    .span(Component::Align, names::SPAN_ALIGN_UNIT)
                    .on_track(Track::PoolWorker(slot as u32))
                    .arg("unit", u as u64)
            });
            let mut local = BatchStats::default();
            let p = run_unit(u, &mut local);
            local.seconds = busy.elapsed().as_secs_f64();
            if let Some(span) = span.as_mut() {
                span.push_arg("pairs", local.pairs);
                span.push_arg("cells", local.cells);
            }
            (p, local)
        });
        let mut merged = BatchStats::default();
        let payloads = unit_out
            .into_iter()
            .map(|(p, local)| {
                merged.pairs += local.pairs;
                merged.cells += local.cells;
                merged.max_cells = merged.max_cells.max(local.max_cells);
                merged.lane_promotions += local.lane_promotions;
                merged.seconds += local.seconds;
                p
            })
            .collect();
        merged.wall_seconds = wall.elapsed().as_secs_f64();
        (payloads, merged)
    }

    /// Open worker `w`'s occupancy span on its sub-track, or `None` with
    /// telemetry disabled (skipping even the guard construction).
    fn worker_span(&self, w: u32) -> Option<pastis_trace::SpanGuard> {
        if !self.recorder.is_enabled() {
            return None;
        }
        Some(
            self.recorder
                .span(Component::Align, names::SPAN_ALIGN_WORKER)
                .on_track(Track::AlignWorker(w)),
        )
    }
}

/// Attach the per-worker outcome counters to its occupancy span.
fn tag_worker_span(span: &mut pastis_trace::SpanGuard, units: u64, local: &BatchStats) {
    span.push_arg("units", units);
    span.push_arg("pairs", local.pairs);
    span.push_arg("cells", local.cells);
}

fn chunk_range(unit: usize, total: usize) -> Range<usize> {
    unit * CHUNK..((unit + 1) * CHUNK).min(total)
}

/// One claimable unit of score-only work. Lane units carry the offset
/// and length of their member run in [`LanePlan::order`].
#[derive(Debug, Clone, Copy)]
enum LaneUnit {
    Lane { start: usize, len: usize },
    Scalar(usize),
}

/// Deterministic length-bucketed packing of a score-only batch.
struct LanePlan {
    /// Lane-eligible task indices, sorted by descending max sequence
    /// length (ties by index) so lane members pad against near-equals.
    order: Vec<usize>,
    units: Vec<LaneUnit>,
}

impl LanePlan {
    /// Pack `tasks` into lanes of width `w` (the backend's lane count);
    /// the final lane may be partial — a part-filled vector costs the
    /// same as a full one, so there is no scalar tail.
    fn build<'a, L: Fn(u32) -> &'a [u8]>(tasks: &[AlignTask], lookup: &L, w: usize) -> LanePlan {
        let mut order = Vec::with_capacity(tasks.len());
        let mut units = Vec::new();
        for (idx, t) in tasks.iter().enumerate() {
            let max_len = lookup(t.query).len().max(lookup(t.reference).len());
            if max_len > OVERSIZED_LEN {
                units.push(LaneUnit::Scalar(idx));
            } else {
                order.push((max_len, idx));
            }
        }
        order.sort_unstable_by(|a, b| b.cmp(a));
        let order: Vec<usize> = order.into_iter().map(|(_, idx)| idx).collect();
        let mut pos = 0;
        while pos < order.len() {
            let len = w.min(order.len() - pos);
            units.push(LaneUnit::Lane { start: pos, len });
            pos += len;
        }
        LanePlan { order, units }
    }
}

/// Executes one lane unit: gathers the member pairs, runs the vector
/// kernel (with its exact overflow rescue), and records per-task results
/// and exact (unpadded) cell counts.
#[allow(clippy::too_many_arguments)]
fn run_lane<'a, S, L>(
    members: &[usize],
    tasks: &[AlignTask],
    lookup: &L,
    scoring: &S,
    gaps: GapPenalties,
    backend: SimdBackend,
    table: Option<&LaneTable>,
    local: &mut BatchStats,
    out: &mut Vec<(usize, ScoreResult)>,
) where
    S: Scoring,
    L: Fn(u32) -> &'a [u8],
{
    debug_assert!(!members.is_empty() && members.len() <= MAX_LANES);
    let mut qs: [&[u8]; MAX_LANES] = [&[]; MAX_LANES];
    let mut rs: [&[u8]; MAX_LANES] = [&[]; MAX_LANES];
    let n = members.len();
    for (l, &idx) in members.iter().enumerate() {
        qs[l] = lookup(tasks[idx].query);
        rs[l] = lookup(tasks[idx].reference);
    }
    let lanes = sw_score_lanes_prepared(&qs[..n], &rs[..n], scoring, gaps, backend, table);
    local.lane_promotions += lanes.promotions;
    for (l, &idx) in members.iter().enumerate() {
        let cells = qs[l].len() as u64 * rs[l].len() as u64;
        local.pairs += 1;
        local.cells += cells;
        local.max_cells = local.max_cells.max(cells);
        out.push((
            idx,
            ScoreResult {
                score: lanes.scores[l],
                cells,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchAligner;
    use crate::matrices::{encode, Blosum62};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_store(n: usize, max_len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = rng.gen_range(0..=max_len);
                (0..len).map(|_| rng.gen_range(0u8..21)).collect()
            })
            .collect()
    }

    fn random_tasks(n_seqs: usize, n_tasks: usize, seed: u64) -> Vec<AlignTask> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_tasks)
            .map(|_| AlignTask {
                query: rng.gen_range(0..n_seqs as u32),
                reference: rng.gen_range(0..n_seqs as u32),
                seed_q: 0,
                seed_r: 0,
            })
            .collect()
    }

    #[test]
    fn pool_zero_threads_means_auto() {
        assert!(AlignPool::new(0).threads() >= 1);
        assert_eq!(AlignPool::new(3).threads(), 3);
    }

    #[test]
    fn traceback_matches_serial_for_every_thread_count() {
        let seqs = random_store(12, 40, 1);
        let tasks = random_tasks(12, 70, 2);
        let aligner = BatchAligner::new(Blosum62, GapPenalties::pastis_defaults());
        let (want, want_stats) = aligner.run_batch(&tasks, |id| &seqs[id as usize]);
        for t in [1, 2, 3, 8] {
            let pool = AlignPool::new(t);
            let (got, stats) = pool.run_traceback(
                &tasks,
                |id| &seqs[id as usize],
                &Blosum62,
                GapPenalties::pastis_defaults(),
            );
            assert_eq!(got, want, "t={t}");
            assert_eq!(stats.pairs, want_stats.pairs, "t={t}");
            assert_eq!(stats.cells, want_stats.cells, "t={t}");
            assert_eq!(stats.max_cells, want_stats.max_cells, "t={t}");
        }
    }

    #[test]
    fn banded_matches_serial_kernel() {
        let seqs = random_store(10, 50, 3);
        let tasks = random_tasks(10, 40, 4);
        let g = GapPenalties::pastis_defaults();
        for t in [1, 4] {
            let (got, stats) =
                AlignPool::new(t).run_banded(&tasks, |id| &seqs[id as usize], &Blosum62, g, 5);
            for (k, task) in tasks.iter().enumerate() {
                let want = sw_banded(
                    &seqs[task.query as usize],
                    &seqs[task.reference as usize],
                    &Blosum62,
                    g,
                    0,
                    0,
                    5,
                );
                assert_eq!(got[k].score, want.score, "t={t} task {k}");
                assert_eq!(got[k].cells, want.cells, "t={t} task {k}");
            }
            assert_eq!(stats.pairs, tasks.len() as u64);
        }
    }

    #[test]
    fn score_only_matches_scalar_kernel() {
        let seqs = random_store(16, 60, 5);
        // 70 tasks ⇒ the plan exercises full lanes plus a partial tail
        // lane for every backend width (70 mod 16 = 6, 70 mod 8 = 6).
        let tasks = random_tasks(16, 70, 6);
        let g = GapPenalties::pastis_defaults();
        for t in [1, 2, 3, 8] {
            let (got, stats) =
                AlignPool::new(t).run_score_only(&tasks, |id| &seqs[id as usize], &Blosum62, g);
            for (k, task) in tasks.iter().enumerate() {
                let (score, _, _, cells) = sw_score_only(
                    &seqs[task.query as usize],
                    &seqs[task.reference as usize],
                    &Blosum62,
                    g,
                );
                assert_eq!(got[k].score, score, "t={t} task {k}");
                assert_eq!(got[k].cells, cells, "t={t} task {k}");
            }
            assert_eq!(stats.pairs, tasks.len() as u64);
        }
    }

    #[test]
    fn lane_plan_is_exhaustive_and_deterministic() {
        let seqs = random_store(9, 30, 7);
        let tasks = random_tasks(9, 53, 8);
        let lookup = |id: u32| -> &[u8] { &seqs[id as usize] };
        for width in [4usize, 8, 16] {
            let plan = LanePlan::build(&tasks, &lookup, width);
            // Every task appears in exactly one unit.
            let mut seen = vec![0u32; tasks.len()];
            for unit in &plan.units {
                match *unit {
                    LaneUnit::Lane { start, len } => {
                        assert!(len >= 1 && len <= width, "w={width} lane len {len}");
                        plan.order[start..start + len]
                            .iter()
                            .for_each(|&i| seen[i] += 1);
                    }
                    LaneUnit::Scalar(i) => seen[i] += 1,
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "w={width} coverage: {seen:?}");
            // Descending length order within the lane-eligible set.
            for w in plan.order.windows(2) {
                let len = |i: usize| {
                    seqs[tasks[i].query as usize]
                        .len()
                        .max(seqs[tasks[i].reference as usize].len())
                };
                assert!(len(w[0]) >= len(w[1]));
            }
        }
    }

    #[test]
    fn oversized_tasks_fall_back_to_scalar() {
        let long = vec![7u8; OVERSIZED_LEN + 1];
        let short = encode("MKVLAWYHEE").unwrap();
        let seqs = [long, short];
        let tasks = vec![
            AlignTask {
                query: 0,
                reference: 1,
                seed_q: 0,
                seed_r: 0,
            };
            5
        ];
        let lookup = |id: u32| -> &[u8] { &seqs[id as usize] };
        let plan = LanePlan::build(&tasks, &lookup, SimdBackend::detect().lanes());
        assert!(plan.order.is_empty());
        assert_eq!(plan.units.len(), 5);
        let g = GapPenalties::pastis_defaults();
        let (got, _) = AlignPool::new(2).run_score_only(&tasks, lookup, &Blosum62, g);
        let (want, _, _, _) = sw_score_only(&seqs[0], &seqs[1], &Blosum62, g);
        assert!(got.iter().all(|r| r.score == want));
    }

    #[test]
    fn every_backend_yields_identical_results_and_stats() {
        // The cross-backend contract the differential harness extends:
        // scores, pairs, cells, max_cells and lane_promotions are all
        // invariant under backend choice (only `simd` itself and the
        // clocks may differ).
        let seqs = random_store(14, 80, 21);
        let tasks = random_tasks(14, 90, 22);
        let g = GapPenalties::pastis_defaults();
        let pool = AlignPool::new(2).with_simd(SimdBackend::Scalar);
        let (want, want_stats) = pool.run_score_only(&tasks, |id| &seqs[id as usize], &Blosum62, g);
        assert_eq!(want_stats.simd, SimdBackend::Scalar);
        for backend in SimdBackend::available() {
            let pool = AlignPool::new(2).with_simd(backend);
            assert_eq!(pool.simd(), backend);
            let (got, stats) = pool.run_score_only(&tasks, |id| &seqs[id as usize], &Blosum62, g);
            assert_eq!(got, want, "{backend}");
            assert_eq!(stats.simd, backend);
            assert_eq!(stats.pairs, want_stats.pairs, "{backend}");
            assert_eq!(stats.cells, want_stats.cells, "{backend}");
            assert_eq!(stats.max_cells, want_stats.max_cells, "{backend}");
            assert_eq!(
                stats.lane_promotions, want_stats.lane_promotions,
                "{backend}"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let seqs = random_store(2, 10, 9);
        let pool = AlignPool::new(4);
        let g = GapPenalties::pastis_defaults();
        let (r1, s1) = pool.run_traceback(&[], |id| &seqs[id as usize], &Blosum62, g);
        assert!(r1.is_empty());
        assert_eq!(s1.pairs, 0);
        let (r2, _) = pool.run_score_only(&[], |id| &seqs[id as usize], &Blosum62, g);
        assert!(r2.is_empty());
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The tentpole contract: `run_batch_parallel(t)` is bit-identical
        /// to `run_batch` — every traceback field of every result plus the
        /// pairs/cells/max_cells counters — for any thread count.
        #[test]
        fn parallel_driver_equals_serial_driver(
            store_seed in 0u64..1_000_000,
            task_seed in 0u64..1_000_000,
            n_seqs in 1usize..14,
            n_tasks in 0usize..90,
        ) {
            let seqs = random_store(n_seqs, 48, store_seed);
            let tasks = random_tasks(n_seqs, n_tasks, task_seed);
            let aligner = BatchAligner::new(Blosum62, GapPenalties::pastis_defaults());
            let (want, want_stats) = aligner.run_batch(&tasks, |id| &seqs[id as usize]);
            for t in [1usize, 2, 3, 8] {
                let (got, stats) =
                    aligner.run_batch_parallel(&tasks, |id| &seqs[id as usize], t);
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(stats.pairs, want_stats.pairs);
                prop_assert_eq!(stats.cells, want_stats.cells);
                prop_assert_eq!(stats.max_cells, want_stats.max_cells);
            }
        }

        /// The multilane dispatch path holds the same contract against the
        /// scalar score-only kernel.
        #[test]
        fn multilane_dispatch_equals_scalar_scores(
            store_seed in 0u64..1_000_000,
            n_tasks in 0usize..60,
        ) {
            let seqs = random_store(10, 40, store_seed);
            let tasks = random_tasks(10, n_tasks, store_seed ^ 0x9e37_79b9);
            let g = GapPenalties::pastis_defaults();
            for t in [1usize, 3] {
                let (got, _) = AlignPool::new(t)
                    .run_score_only(&tasks, |id| &seqs[id as usize], &Blosum62, g);
                for (k, task) in tasks.iter().enumerate() {
                    let (score, _, _, cells) = sw_score_only(
                        &seqs[task.query as usize],
                        &seqs[task.reference as usize],
                        &Blosum62,
                        g,
                    );
                    prop_assert_eq!(got[k].score, score);
                    prop_assert_eq!(got[k].cells, cells);
                }
            }
        }
    }

    #[test]
    fn traced_pool_emits_worker_occupancy_spans() {
        use pastis_trace::TraceSession;
        let seqs = random_store(10, 48, 12);
        let tasks = random_tasks(10, 200, 13);
        let g = GapPenalties::pastis_defaults();
        let (want, want_stats) =
            AlignPool::new(3).run_traceback(&tasks, |id| &seqs[id as usize], &Blosum62, g);

        let session = TraceSession::new();
        let rec = session.recorder(0);
        let pool = AlignPool::new(3).with_recorder(rec.clone());
        let (got, stats) = pool.run_traceback(&tasks, |id| &seqs[id as usize], &Blosum62, g);

        // Observation-only: results and merged counters are unchanged.
        assert_eq!(got, want);
        assert_eq!(stats.pairs, want_stats.pairs);
        assert_eq!(stats.cells, want_stats.cells);

        let spans = rec.snapshot_spans();
        // 200 tasks / CHUNK(32) = 7 units ≥ 3 workers, so all 3 workers
        // participate and each emits exactly one span on its own sub-track.
        assert_eq!(spans.len(), 3);
        let mut tracks: Vec<Track> = spans.iter().map(|s| s.track).collect();
        tracks.sort_by_key(|t| t.tid());
        assert_eq!(
            tracks,
            vec![
                Track::AlignWorker(0),
                Track::AlignWorker(1),
                Track::AlignWorker(2)
            ]
        );
        // Per-worker tallies sum to the batch totals.
        let arg = |s: &pastis_trace::SpanEvent, k: &str| {
            s.args
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        let pairs: u64 = spans.iter().map(|s| arg(s, "pairs")).sum();
        let cells: u64 = spans.iter().map(|s| arg(s, "cells")).sum();
        let units: u64 = spans.iter().map(|s| arg(s, "units")).sum();
        assert_eq!(pairs, stats.pairs);
        assert_eq!(cells, stats.cells);
        assert_eq!(units, 200u64.div_ceil(CHUNK as u64));
    }

    #[test]
    fn serial_traced_pool_uses_worker_zero_track() {
        use pastis_trace::TraceSession;
        let seqs = random_store(6, 30, 14);
        let tasks = random_tasks(6, 10, 15);
        let session = TraceSession::new();
        let rec = session.recorder(0);
        let pool = AlignPool::new(1).with_recorder(rec.clone());
        let g = GapPenalties::pastis_defaults();
        let _ = pool.run_score_only(&tasks, |id| &seqs[id as usize], &Blosum62, g);
        let spans = rec.snapshot_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].track, Track::AlignWorker(0));
        assert_eq!(spans[0].name, names::SPAN_ALIGN_WORKER);
    }

    #[test]
    fn pool_backed_batches_match_serial_for_every_worker_count() {
        let seqs = random_store(12, 40, 1);
        let tasks = random_tasks(12, 70, 2);
        let g = GapPenalties::pastis_defaults();
        let (want_tb, want_tb_stats) =
            AlignPool::new(1).run_traceback(&tasks, |id| &seqs[id as usize], &Blosum62, g);
        let (want_so, _) =
            AlignPool::new(1).run_score_only(&tasks, |id| &seqs[id as usize], &Blosum62, g);
        let (want_bd, _) =
            AlignPool::new(1).run_banded(&tasks, |id| &seqs[id as usize], &Blosum62, g, 5);
        for workers in [0usize, 1, 3] {
            let pool = AlignPool::new(1).with_workers(WorkPool::with_exact_workers(workers));
            assert!(pool.workers().is_some());
            let (tb, tb_stats) = pool.run_traceback(&tasks, |id| &seqs[id as usize], &Blosum62, g);
            assert_eq!(tb, want_tb, "workers={workers}");
            assert_eq!(tb_stats.pairs, want_tb_stats.pairs, "workers={workers}");
            assert_eq!(tb_stats.cells, want_tb_stats.cells, "workers={workers}");
            assert_eq!(
                tb_stats.max_cells, want_tb_stats.max_cells,
                "workers={workers}"
            );
            let (so, _) = pool.run_score_only(&tasks, |id| &seqs[id as usize], &Blosum62, g);
            assert_eq!(so, want_so, "workers={workers}");
            let (bd, _) = pool.run_banded(&tasks, |id| &seqs[id as usize], &Blosum62, g, 5);
            assert_eq!(bd, want_bd, "workers={workers}");
        }
    }

    #[test]
    fn pool_backed_batches_emit_unit_spans_on_pool_tracks() {
        use pastis_trace::TraceSession;
        let seqs = random_store(10, 48, 12);
        let tasks = random_tasks(10, 200, 13);
        let g = GapPenalties::pastis_defaults();
        let session = TraceSession::new();
        let rec = session.recorder(0);
        let pool = AlignPool::new(1)
            .with_recorder(rec.clone())
            .with_workers(WorkPool::with_exact_workers(2));
        let (_, stats) = pool.run_traceback(&tasks, |id| &seqs[id as usize], &Blosum62, g);
        let spans = rec.snapshot_spans();
        // One span per unit (200 tasks / CHUNK(32) = 7), each on a
        // unified-pool track, with per-unit tallies summing to the batch.
        assert_eq!(spans.len(), 200usize.div_ceil(CHUNK));
        let arg = |s: &pastis_trace::SpanEvent, k: &str| {
            s.args
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        let mut units: Vec<u64> = Vec::new();
        let mut pairs = 0u64;
        let mut cells = 0u64;
        for s in &spans {
            assert_eq!(s.name, names::SPAN_ALIGN_UNIT);
            assert!(matches!(s.track, Track::PoolWorker(_)), "{:?}", s.track);
            units.push(arg(s, "unit"));
            pairs += arg(s, "pairs");
            cells += arg(s, "cells");
        }
        units.sort_unstable();
        assert_eq!(units, (0..spans.len() as u64).collect::<Vec<_>>());
        assert_eq!(pairs, stats.pairs);
        assert_eq!(cells, stats.cells);
    }

    #[test]
    fn parallel_stats_report_both_clocks() {
        let seqs = random_store(8, 64, 10);
        let tasks = random_tasks(8, 120, 11);
        let (_, stats) = AlignPool::new(4).run_traceback(
            &tasks,
            |id| &seqs[id as usize],
            &Blosum62,
            GapPenalties::pastis_defaults(),
        );
        assert!(stats.wall_seconds > 0.0);
        assert!(stats.seconds > 0.0);
        // CPU time sums over workers; it can exceed wall but never be
        // less than a single worker's share of it by orders of magnitude.
        assert!(stats.seconds >= stats.wall_seconds * 0.01);
    }
}
