//! Batch protein sequence alignment for PASTIS-RS.
//!
//! PASTIS performs its compute-bound phase — millions of pairwise
//! Smith–Waterman alignments per node — on GPUs through ADEPT, with SeqAn
//! as a CPU alternative. This crate is the substrate replacing both:
//!
//! * [`matrices`] — the canonical 20+1-letter amino-acid code, BLOSUM62,
//!   and simple match/mismatch scoring.
//! * [`sw`] — exact full-matrix affine-gap Smith–Waterman: a score-only
//!   linear-memory kernel and a traceback kernel producing the alignment
//!   statistics PASTIS filters on (identity/ANI, coverage).
//! * [`banded`] — banded and x-drop variants (cheaper, bounded-error
//!   kernels offered as sensitivity/performance options).
//! * [`multilane`] — ADEPT-style inter-task batching: many alignments
//!   advance in lock-step vector lanes (the SeqAn-class vectorized CPU
//!   backend), one pair per saturating i16 lane with an exact
//!   promote-to-i32 overflow rescue.
//! * [`simd`] — the lane substrate: a [`simd::SimdVec`] trait with
//!   AVX2/SSE2 (`core::arch::x86_64`, runtime-detected), NEON (aarch64)
//!   and portable scalar-array implementations, plus backend
//!   detection/selection ([`simd::SimdBackend`], [`simd::SimdPolicy`]).
//! * [`semiglobal`] — free-end-gap overlap alignment (containment /
//!   suffix-prefix detection, PASTIS's global-alignment option).
//! * [`parallel`] — the intra-rank parallel engine: a worker pool
//!   executing batches as atomically-claimed chunks across `t` threads
//!   (bit-identical to the serial driver for any thread count), with a
//!   length-bucketing packer dispatching score-only work through the
//!   multilane kernel.
//! * [`batch`] — the batch driver with exact cell-update accounting: the
//!   paper's load-balance metric (Figure 7b) is the *sum of DP-matrix
//!   sizes*, and its headline kernel metric is cell updates per second
//!   (CUPs), both of which come from these counters.
//! * [`device`] — an ADEPT-style multi-GPU device model: batches are
//!   packed, dispatched round-robin across the node's GPUs, and timed with
//!   a calibrated GCUPS rate, reproducing ADEPT's driver behaviour for the
//!   performance-model plane while the actual DP runs on the CPU.
//!
//! # Example
//!
//! ```
//! use pastis_align::{matrices::{encode, Blosum62}, sw::{sw_align, GapPenalties}};
//!
//! let q = encode("HEAGAWGHEE").unwrap();
//! let r = encode("PAWHEAE").unwrap();
//! let res = sw_align(&q, &r, &Blosum62, GapPenalties::blast_defaults());
//! assert!(res.score > 0);
//! assert!(res.identity() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod banded;
pub mod batch;
pub mod device;
pub mod matrices;
pub mod multilane;
pub mod parallel;
pub mod semiglobal;
pub mod simd;
pub mod sw;

pub use batch::{AlignTask, BatchAligner, BatchStats};
pub use device::{host_simd, DeviceModel, HostSimd};
pub use matrices::{encode, Blosum62, MatchMismatch, Scoring, AA_ALPHABET};
pub use multilane::{
    sw_score_batch, sw_score_batch_simd, sw_score_lanes, sw_score_multi, LaneScores, LaneTable,
};
pub use parallel::{AlignPool, ScoreResult};
pub use semiglobal::{semiglobal_score, SemiGlobalResult};
pub use simd::{SimdBackend, SimdPolicy};
pub use sw::{sw_align, sw_score_only, AlignmentResult, GapPenalties};
