//! ADEPT-style multi-GPU device model.
//!
//! ADEPT's driver "detects all the available GPUs on a node and distributes
//! alignments across all the available GPUs", with one host thread per GPU
//! handling packing and transfers. This module reproduces that dispatch
//! policy and times it with a calibrated kernel rate, so the
//! performance-model plane can attribute per-GPU kernel time, packing
//! overheads and the intra-node imbalance between GPUs without actual
//! accelerator hardware (the DP itself runs exactly on the CPU via
//! [`crate::BatchAligner`]).

use crate::simd::SimdBackend;

/// The *actual* vector capability of the host CPU — the counterpart of
/// the modeled GPU plane below, reported so run logs and telemetry can
/// state which kernel the score-only batches really executed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSimd {
    /// Best backend the host supports (what `--simd auto` selects).
    pub backend: SimdBackend,
    /// i16 lanes per vector of that backend.
    pub lanes: usize,
    /// Every backend runnable on this host (always includes the portable
    /// scalar lanes, so the whole dispatch surface is testable anywhere).
    pub available: Vec<SimdBackend>,
}

/// Probe the host's vector capability ([`SimdBackend::detect`] plus the
/// full availability set).
pub fn host_simd() -> HostSimd {
    let backend = SimdBackend::detect();
    HostSimd {
        backend,
        lanes: backend.lanes(),
        available: SimdBackend::available(),
    }
}

/// A modeled multi-GPU alignment device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Number of GPUs on the node (Summit: 6).
    pub gpus: usize,
    /// Sustained kernel rate per GPU in cell updates/second.
    pub cups_per_gpu: f64,
    /// Host-side packing + transfer overhead per alignment, seconds.
    pub overhead_per_pair: f64,
}

impl DeviceModel {
    /// Summit node: 6 × V100 at the paper's effective ≈ 8.7 GCUPS each.
    pub fn summit_node() -> DeviceModel {
        DeviceModel {
            gpus: 6,
            cups_per_gpu: 8.7e9,
            overhead_per_pair: 2.0e-7,
        }
    }

    /// Greedy longest-processing-time assignment of per-pair DP-cell loads
    /// to GPUs (ADEPT balances by splitting the batch across devices).
    /// Returns the per-GPU total cells.
    pub fn assign(&self, pair_cells: &[u64]) -> Vec<u64> {
        assert!(self.gpus > 0, "device must have at least one GPU");
        let mut order: Vec<usize> = (0..pair_cells.len()).collect();
        order.sort_unstable_by(|&a, &b| pair_cells[b].cmp(&pair_cells[a]));
        let mut loads = vec![0u64; self.gpus];
        for idx in order {
            // Place on the least-loaded GPU.
            let g = (0..self.gpus)
                .min_by_key(|&g| loads[g])
                .expect("at least one GPU");
            loads[g] += pair_cells[idx];
        }
        loads
    }

    /// Modeled wall time for one batch: the slowest GPU's kernel time plus
    /// amortized per-pair host overhead.
    pub fn batch_time(&self, pair_cells: &[u64]) -> f64 {
        if pair_cells.is_empty() {
            return 0.0;
        }
        let loads = self.assign(pair_cells);
        let kernel = loads
            .iter()
            .map(|&c| c as f64 / self.cups_per_gpu)
            .fold(0.0, f64::max);
        // One packing thread per GPU works concurrently.
        let overhead = pair_cells.len() as f64 * self.overhead_per_pair / self.gpus as f64;
        kernel + overhead
    }

    /// Aggregate device throughput in cell updates/second.
    pub fn peak_cups(&self) -> f64 {
        self.gpus as f64 * self.cups_per_gpu
    }

    /// Intra-node GPU load imbalance for a batch: `max/avg − 1`, 0 for an
    /// empty batch.
    pub fn imbalance(&self, pair_cells: &[u64]) -> f64 {
        let loads = self.assign(pair_cells);
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let avg = total as f64 / loads.len() as f64;
        let max = *loads.iter().max().expect("nonempty") as f64;
        max / avg - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_simd_reports_consistent_capability() {
        let cap = host_simd();
        assert_eq!(cap.backend, SimdBackend::detect());
        assert_eq!(cap.lanes, cap.backend.lanes());
        assert!(cap.available.contains(&SimdBackend::Scalar));
        assert!(cap.available.contains(&cap.backend));
        assert!(cap.available.iter().all(|b| b.is_available()));
    }

    #[test]
    fn summit_node_peak() {
        let d = DeviceModel::summit_node();
        assert_eq!(d.gpus, 6);
        assert!((d.peak_cups() - 52.2e9).abs() < 1e3);
    }

    #[test]
    fn assign_covers_all_work() {
        let d = DeviceModel {
            gpus: 3,
            cups_per_gpu: 1e9,
            overhead_per_pair: 0.0,
        };
        let cells = vec![5, 9, 2, 7, 7, 1];
        let loads = d.assign(&cells);
        assert_eq!(loads.iter().sum::<u64>(), 31);
        assert_eq!(loads.len(), 3);
    }

    #[test]
    fn lpt_balances_uniform_work_perfectly() {
        let d = DeviceModel {
            gpus: 4,
            cups_per_gpu: 1e9,
            overhead_per_pair: 0.0,
        };
        let cells = vec![10u64; 16];
        let loads = d.assign(&cells);
        assert!(loads.iter().all(|&l| l == 40));
        assert_eq!(d.imbalance(&cells), 0.0);
    }

    #[test]
    fn one_huge_pair_dominates() {
        let d = DeviceModel {
            gpus: 2,
            cups_per_gpu: 1e6,
            overhead_per_pair: 0.0,
        };
        let cells = vec![1_000_000u64, 10, 10];
        // Slowest GPU holds the huge pair: ~1 second.
        let t = d.batch_time(&cells);
        assert!((t - 1.0).abs() < 1e-3);
        assert!(d.imbalance(&cells) > 0.9);
    }

    #[test]
    fn batch_time_includes_overhead_and_empty_is_zero() {
        let d = DeviceModel {
            gpus: 2,
            cups_per_gpu: 1e9,
            overhead_per_pair: 1e-3,
        };
        assert_eq!(d.batch_time(&[]), 0.0);
        let t = d.batch_time(&[100, 100]);
        // Kernel negligible; overhead = 2 pairs × 1ms / 2 gpus = 1ms.
        assert!((t - 1e-3).abs() < 1e-5);
    }

    #[test]
    fn more_gpus_never_slower() {
        let mk = |g| DeviceModel {
            gpus: g,
            cups_per_gpu: 1e9,
            overhead_per_pair: 1e-6,
        };
        let cells: Vec<u64> = (0..100).map(|i| 1000 + i * 37).collect();
        let t1 = mk(1).batch_time(&cells);
        let t3 = mk(3).batch_time(&cells);
        let t6 = mk(6).batch_time(&cells);
        assert!(t3 <= t1);
        assert!(t6 <= t3);
    }
}
