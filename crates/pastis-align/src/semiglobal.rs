//! Semi-global (overlap / free-end-gap) alignment.
//!
//! The original PASTIS exposes both local (Smith–Waterman) and SeqAn's
//! global alignment with free end gaps as alignment options; the coverage
//! semantics differ — semi-global forces the alignment to span from one
//! sequence boundary to another, which suits detecting sequence
//! containment and overlap (the Metaclust non-redundancy criterion itself
//! is "sub-fragments that can be aligned to a longer sequence with 99% of
//! their residues").
//!
//! This kernel charges no penalty for leading/trailing gaps in *either*
//! sequence: the optimum is the best suffix↔prefix / containment overlap.

use crate::matrices::Scoring;
use crate::sw::GapPenalties;

/// Result of a semi-global alignment (score-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemiGlobalResult {
    /// Best overlap score (can be negative for unrelated sequences —
    /// unlike local alignment there is no zero floor).
    pub score: i32,
    /// Query end coordinate (exclusive) of the optimum.
    pub q_end: usize,
    /// Reference end coordinate (exclusive).
    pub r_end: usize,
    /// Cells computed.
    pub cells: u64,
}

/// Overlap alignment with free end gaps on both sequences.
///
/// DP: first row/column initialized to zero (free leading gaps); the
/// optimum is taken over the last row and last column (free trailing
/// gaps). Interior gaps pay the affine penalty.
pub fn semiglobal_score<S: Scoring>(
    q: &[u8],
    r: &[u8],
    scoring: &S,
    gaps: GapPenalties,
) -> SemiGlobalResult {
    let (m, n) = (q.len(), r.len());
    let cells = (m as u64) * (n as u64);
    if m == 0 || n == 0 {
        return SemiGlobalResult {
            score: 0,
            q_end: 0,
            r_end: 0,
            cells,
        };
    }
    let neg = i32::MIN / 2;
    let first = gaps.open + gaps.extend;
    let mut h_prev = vec![0i32; n + 1]; // free leading gaps in q
    let mut h_cur = vec![0i32; n + 1];
    let mut f_prev = vec![neg; n + 1];
    let mut f_cur = vec![neg; n + 1];
    let mut best = i32::MIN;
    let (mut bi, mut bj) = (0usize, 0usize);
    for i in 1..=m {
        let qi = q[i - 1];
        h_cur[0] = 0; // free leading gaps in r
        let mut e = neg;
        for j in 1..=n {
            e = (h_cur[j - 1] - first).max(e - gaps.extend);
            let f = (h_prev[j] - first).max(f_prev[j] - gaps.extend);
            f_cur[j] = f;
            let diag = h_prev[j - 1] + scoring.score(qi, r[j - 1]);
            let h = diag.max(e).max(f);
            h_cur[j] = h;
            // Optimum over the last column (free trailing gap in r).
            if j == n && h > best {
                best = h;
                bi = i;
                bj = j;
            }
        }
        // On the last row, every column is a legal end (free trailing gap
        // in q).
        if i == m {
            for (j, &h) in h_cur.iter().enumerate().skip(1) {
                if h > best {
                    best = h;
                    bi = i;
                    bj = j;
                }
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
    }
    SemiGlobalResult {
        score: best,
        q_end: bi,
        r_end: bj,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{encode, Blosum62, MatchMismatch};
    use crate::sw::sw_score_only;
    use proptest::prelude::*;

    fn gp() -> GapPenalties {
        GapPenalties::pastis_defaults()
    }

    #[test]
    fn identical_sequences_score_self() {
        let s = encode("MKVLAWYHEE").unwrap();
        let res = semiglobal_score(&s, &s, &Blosum62, gp());
        let want: i32 = s.iter().map(|&c| Blosum62.score(c, c)).sum();
        assert_eq!(res.score, want);
        assert_eq!((res.q_end, res.r_end), (10, 10));
    }

    #[test]
    fn containment_scores_fragment_fully() {
        // Fragment contained in a longer sequence: free end gaps mean the
        // flanks cost nothing.
        let long = encode("PPPPPMKVLAWYHEEPPPPP").unwrap();
        let frag = encode("MKVLAWYHEE").unwrap();
        let res = semiglobal_score(&frag, &long, &Blosum62, gp());
        let want: i32 = frag.iter().map(|&c| Blosum62.score(c, c)).sum();
        assert_eq!(res.score, want);
    }

    #[test]
    fn suffix_prefix_overlap() {
        // q's suffix matches r's prefix: the classic assembly overlap.
        let q = encode("GGGGGMKVLAW").unwrap();
        let r = encode("MKVLAWHHHHH").unwrap();
        let res = semiglobal_score(
            &q,
            &r,
            &MatchMismatch::unit(),
            GapPenalties { open: 2, extend: 1 },
        );
        assert_eq!(res.score, 6); // MKVLAW
        assert_eq!(res.q_end, q.len()); // consumes q to its end
        assert_eq!(res.r_end, 6);
    }

    #[test]
    fn unrelated_sequences_can_go_negative() {
        let q = encode("WWWWW").unwrap();
        let r = encode("PPPPP").unwrap();
        let res = semiglobal_score(&q, &r, &Blosum62, gp());
        assert!(res.score < 0, "overlap alignment has no zero floor");
    }

    #[test]
    fn interior_gap_is_charged() {
        let q = encode("MKVLAWMKVLAW").unwrap();
        let r = encode("MKVLAWGGGMKVLAW").unwrap(); // 3-residue insert
        let res = semiglobal_score(
            &q,
            &r,
            &MatchMismatch {
                match_score: 2,
                mismatch_score: -3,
            },
            GapPenalties { open: 1, extend: 1 },
        );
        // 12 matches minus an interior gap of 3 (1 + 3x1): ends are free
        // but the insert is interior.
        assert_eq!(res.score, 12 * 2 - (1 + 3));
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<u8> = Vec::new();
        let s = encode("MKV").unwrap();
        assert_eq!(semiglobal_score(&e, &s, &Blosum62, gp()).score, 0);
        assert_eq!(semiglobal_score(&s, &e, &Blosum62, gp()).score, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn local_dominates_semiglobal(
            a in proptest::collection::vec(0u8..21, 1..30),
            b in proptest::collection::vec(0u8..21, 1..30),
        ) {
            // Local alignment maximizes over all substring pairs, so it is
            // an upper bound on any end-anchored alignment score.
            let local = sw_score_only(&a, &b, &Blosum62, gp()).0;
            let semi = semiglobal_score(&a, &b, &Blosum62, gp()).score;
            prop_assert!(local >= semi, "local {local} < semiglobal {semi}");
        }

        #[test]
        fn semiglobal_is_symmetric(
            a in proptest::collection::vec(0u8..21, 1..25),
            b in proptest::collection::vec(0u8..21, 1..25),
        ) {
            let ab = semiglobal_score(&a, &b, &Blosum62, gp()).score;
            let ba = semiglobal_score(&b, &a, &Blosum62, gp()).score;
            prop_assert_eq!(ab, ba);
        }
    }
}
