//! Exact affine-gap Smith–Waterman local alignment.
//!
//! This is the alignment kernel of the pipeline: ADEPT (the paper's GPU
//! library) "realizes the full Smith–Waterman sequence alignment", i.e. the
//! entire `m × n` dynamic-programming matrix is computed — which is why the
//! paper's preferred load-balance metric is the *sum of DP-matrix sizes*
//! (Figure 7b) and its kernel metric is cell updates per second.
//!
//! Two kernels:
//! * [`sw_score_only`] — linear memory, returns score, end coordinates and
//!   the exact cell count; used when only filtering on score.
//! * [`sw_align`] — full traceback, returning the alignment operations and
//!   the statistics the PASTIS filter needs (identity a.k.a. ANI, per-
//!   sequence coverage).
//!
//! Gap convention: a gap run of length `k` costs `open + k·extend`
//! (NCBI-BLAST convention; the paper's production parameters are
//! `open = 11`, `extend = 2`).

use crate::matrices::Scoring;

/// Affine gap penalties (positive numbers; they are subtracted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapPenalties {
    /// Cost of opening a gap run (charged once per run, on top of the
    /// first `extend`).
    pub open: i32,
    /// Cost per gap character.
    pub extend: i32,
}

impl GapPenalties {
    /// The paper's production parameters: open 11, extend 2 (Table IV).
    pub fn pastis_defaults() -> GapPenalties {
        GapPenalties {
            open: 11,
            extend: 2,
        }
    }

    /// NCBI BLASTP defaults: open 11, extend 1.
    pub fn blast_defaults() -> GapPenalties {
        GapPenalties {
            open: 11,
            extend: 1,
        }
    }

    #[inline]
    fn first(self) -> i32 {
        self.open + self.extend
    }
}

/// One column of a pairwise alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Identical residues aligned.
    Match,
    /// Differing residues aligned.
    Mismatch,
    /// Gap in the query (consumes a reference residue).
    GapInQuery,
    /// Gap in the reference (consumes a query residue).
    GapInRef,
}

/// Result of a local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentResult {
    /// Optimal local alignment score (≥ 0).
    pub score: i32,
    /// Query span `[q_begin, q_end)` of the aligned region (0-based).
    pub q_begin: usize,
    /// Exclusive end of the query span.
    pub q_end: usize,
    /// Reference span `[r_begin, r_end)`.
    pub r_begin: usize,
    /// Exclusive end of the reference span.
    pub r_end: usize,
    /// Identically aligned columns.
    pub matches: usize,
    /// Substituted columns.
    pub mismatches: usize,
    /// Gap characters in the query.
    pub q_gaps: usize,
    /// Gap characters in the reference.
    pub r_gaps: usize,
    /// DP cells computed (`|q| · |r|`), the CUPs numerator.
    pub cells: u64,
    /// Alignment operations, query-to-reference, in sequence order.
    pub ops: Vec<AlignOp>,
}

impl AlignmentResult {
    fn empty(qlen: usize, rlen: usize) -> AlignmentResult {
        AlignmentResult {
            score: 0,
            q_begin: 0,
            q_end: 0,
            r_begin: 0,
            r_end: 0,
            matches: 0,
            mismatches: 0,
            q_gaps: 0,
            r_gaps: 0,
            cells: (qlen as u64) * (rlen as u64),
            ops: Vec::new(),
        }
    }

    /// Total alignment columns.
    pub fn aligned_cols(&self) -> usize {
        self.matches + self.mismatches + self.q_gaps + self.r_gaps
    }

    /// Sequence identity over the alignment — the quantity the paper's
    /// "ANI threshold" (0.30 in Table IV) is applied to. 0 for an empty
    /// alignment.
    pub fn identity(&self) -> f64 {
        let cols = self.aligned_cols();
        if cols == 0 {
            0.0
        } else {
            self.matches as f64 / cols as f64
        }
    }

    /// Fraction of the query covered by the aligned span.
    pub fn coverage_query(&self, qlen: usize) -> f64 {
        if qlen == 0 {
            0.0
        } else {
            (self.q_end - self.q_begin) as f64 / qlen as f64
        }
    }

    /// Fraction of the reference covered by the aligned span.
    pub fn coverage_ref(&self, rlen: usize) -> f64 {
        if rlen == 0 {
            0.0
        } else {
            (self.r_end - self.r_begin) as f64 / rlen as f64
        }
    }

    /// The smaller of the two coverages — what the paper's coverage
    /// threshold (0.70) is checked against.
    pub fn coverage_min(&self, qlen: usize, rlen: usize) -> f64 {
        self.coverage_query(qlen).min(self.coverage_ref(rlen))
    }
}

/// Score-only Smith–Waterman: linear memory, no traceback.
///
/// Returns `(score, q_end, r_end, cells)` where the ends are exclusive
/// coordinates of the best-scoring cell.
pub fn sw_score_only<S: Scoring>(
    q: &[u8],
    r: &[u8],
    scoring: &S,
    gaps: GapPenalties,
) -> (i32, usize, usize, u64) {
    let (m, n) = (q.len(), r.len());
    let cells = (m as u64) * (n as u64);
    if m == 0 || n == 0 {
        return (0, 0, 0, cells);
    }
    // h_prev[j] = H(i-1, j); e[j] = E(i, j) built left-to-right;
    // f_prev[j] = F(i-1, j) required for F recursion — keep per-row F.
    let mut h_prev = vec![0i32; n + 1];
    let mut h_cur = vec![0i32; n + 1];
    let mut f_prev = vec![i32::MIN / 2; n + 1];
    let mut f_cur = vec![i32::MIN / 2; n + 1];
    let (mut best, mut bi, mut bj) = (0i32, 0usize, 0usize);
    for i in 1..=m {
        let qi = q[i - 1];
        let mut e = i32::MIN / 2;
        for j in 1..=n {
            e = (h_cur[j - 1] - gaps.first()).max(e - gaps.extend);
            let f = (h_prev[j] - gaps.first()).max(f_prev[j] - gaps.extend);
            f_cur[j] = f;
            let diag = h_prev[j - 1] + scoring.score(qi, r[j - 1]);
            let h = 0.max(diag).max(e).max(f);
            h_cur[j] = h;
            if h > best {
                best = h;
                bi = i;
                bj = j;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
        h_cur[0] = 0;
    }
    (best, bi, bj, cells)
}

// Traceback encoding, one byte per cell:
// bits 0-1: H source (0 = stop/zero, 1 = diagonal, 2 = E, 3 = F)
// bit 2: E extends a previous E (otherwise opens from H at (i, j-1))
// bit 3: F extends a previous F (otherwise opens from H at (i-1, j))
const H_STOP: u8 = 0;
const H_DIAG: u8 = 1;
const H_FROM_E: u8 = 2;
const H_FROM_F: u8 = 3;
const E_EXT: u8 = 1 << 2;
const F_EXT: u8 = 1 << 3;

/// Full Smith–Waterman with traceback and alignment statistics.
///
/// O(m·n) time and memory (one byte per DP cell for the traceback).
pub fn sw_align<S: Scoring>(
    q: &[u8],
    r: &[u8],
    scoring: &S,
    gaps: GapPenalties,
) -> AlignmentResult {
    let (m, n) = (q.len(), r.len());
    if m == 0 || n == 0 {
        return AlignmentResult::empty(m, n);
    }
    let mut tb = vec![0u8; m * n];
    let mut h_prev = vec![0i32; n + 1];
    let mut h_cur = vec![0i32; n + 1];
    let mut f_prev = vec![i32::MIN / 2; n + 1];
    let mut f_cur = vec![i32::MIN / 2; n + 1];
    let (mut best, mut bi, mut bj) = (0i32, 0usize, 0usize);
    for i in 1..=m {
        let qi = q[i - 1];
        let mut e = i32::MIN / 2;
        let row = (i - 1) * n;
        for j in 1..=n {
            let mut flags = 0u8;
            let e_open = h_cur[j - 1] - gaps.first();
            let e_ext = e - gaps.extend;
            e = if e_ext > e_open {
                flags |= E_EXT;
                e_ext
            } else {
                e_open
            };
            let f_open = h_prev[j] - gaps.first();
            let f_ext = f_prev[j] - gaps.extend;
            let f = if f_ext > f_open {
                flags |= F_EXT;
                f_ext
            } else {
                f_open
            };
            f_cur[j] = f;
            let diag = h_prev[j - 1] + scoring.score(qi, r[j - 1]);
            // Tie-break preference: diagonal > E > F > stop, which yields
            // the most "matched" alignment among optimal ones.
            let mut h = 0;
            let mut src = H_STOP;
            if diag > h {
                h = diag;
                src = H_DIAG;
            }
            if e > h {
                h = e;
                src = H_FROM_E;
            }
            if f > h {
                h = f;
                src = H_FROM_F;
            }
            h_cur[j] = h;
            tb[row + (j - 1)] = flags | src;
            if h > best {
                best = h;
                bi = i;
                bj = j;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
        h_cur[0] = 0;
    }

    let mut res = AlignmentResult::empty(m, n);
    res.score = best;
    if best == 0 {
        return res;
    }
    // Traceback from (bi, bj).
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let (mut i, mut j) = (bi, bj);
    let mut state = State::H;
    let mut ops_rev: Vec<AlignOp> = Vec::new();
    loop {
        let cell = tb[(i - 1) * n + (j - 1)];
        match state {
            State::H => match cell & 0b11 {
                H_STOP => break,
                H_DIAG => {
                    if q[i - 1] == r[j - 1] {
                        res.matches += 1;
                        ops_rev.push(AlignOp::Match);
                    } else {
                        res.mismatches += 1;
                        ops_rev.push(AlignOp::Mismatch);
                    }
                    i -= 1;
                    j -= 1;
                    if i == 0 || j == 0 {
                        break;
                    }
                }
                H_FROM_E => state = State::E,
                H_FROM_F => state = State::F,
                _ => unreachable!(),
            },
            State::E => {
                // Gap in query, consuming r[j-1].
                res.q_gaps += 1;
                ops_rev.push(AlignOp::GapInQuery);
                let ext = cell & E_EXT != 0;
                j -= 1;
                if j == 0 {
                    break;
                }
                if !ext {
                    state = State::H;
                }
            }
            State::F => {
                // Gap in reference, consuming q[i-1].
                res.r_gaps += 1;
                ops_rev.push(AlignOp::GapInRef);
                let ext = cell & F_EXT != 0;
                i -= 1;
                if i == 0 {
                    break;
                }
                if !ext {
                    state = State::H;
                }
            }
        }
    }
    res.q_begin = i;
    res.q_end = bi;
    res.r_begin = j;
    res.r_end = bj;
    ops_rev.reverse();
    res.ops = ops_rev;
    res
}

/// Recompute the score of an alignment from its operations — the checking
/// oracle used by the test suite.
pub fn rescore<S: Scoring>(
    q: &[u8],
    r: &[u8],
    res: &AlignmentResult,
    scoring: &S,
    gaps: GapPenalties,
) -> i32 {
    let mut score = 0i32;
    let (mut i, mut j) = (res.q_begin, res.r_begin);
    let mut prev: Option<AlignOp> = None;
    for &op in &res.ops {
        match op {
            AlignOp::Match | AlignOp::Mismatch => {
                score += scoring.score(q[i], r[j]);
                i += 1;
                j += 1;
            }
            AlignOp::GapInQuery => {
                score -= if prev == Some(AlignOp::GapInQuery) {
                    gaps.extend
                } else {
                    gaps.first()
                };
                j += 1;
            }
            AlignOp::GapInRef => {
                score -= if prev == Some(AlignOp::GapInRef) {
                    gaps.extend
                } else {
                    gaps.first()
                };
                i += 1;
            }
        }
        prev = Some(op);
    }
    assert_eq!(i, res.q_end, "ops do not span the query range");
    assert_eq!(j, res.r_end, "ops do not span the reference range");
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{encode, Blosum62, MatchMismatch};
    use proptest::prelude::*;

    fn gp(open: i32, extend: i32) -> GapPenalties {
        GapPenalties { open, extend }
    }

    #[test]
    fn identical_sequences_align_fully() {
        let s = encode("MKVLAWYHE").unwrap();
        let res = sw_align(&s, &s, &Blosum62, GapPenalties::pastis_defaults());
        assert_eq!(res.matches, s.len());
        assert_eq!(res.mismatches, 0);
        assert_eq!(res.q_gaps + res.r_gaps, 0);
        assert_eq!(res.identity(), 1.0);
        assert_eq!(res.coverage_min(s.len(), s.len()), 1.0);
        // Score = sum of diagonal scores.
        let want: i32 = s.iter().map(|&c| Blosum62.score(c, c)).sum();
        assert_eq!(res.score, want);
    }

    #[test]
    fn known_alignment_heagawghee_pawheae() {
        // Classic textbook pair (Durbin et al.).
        let q = encode("HEAGAWGHEE").unwrap();
        let r = encode("PAWHEAE").unwrap();
        let res = sw_align(&q, &r, &Blosum62, gp(10, 1));
        assert!(res.score > 0);
        assert_eq!(res.score, rescore(&q, &r, &res, &Blosum62, gp(10, 1)));
        let (s, _, _, cells) = sw_score_only(&q, &r, &Blosum62, gp(10, 1));
        assert_eq!(s, res.score);
        assert_eq!(cells, 70);
    }

    #[test]
    fn local_alignment_ignores_flanks() {
        // Shared core "AWGHE" with unrelated flanks.
        let q = encode("PPPPAWGHEPPPP").unwrap();
        let r = encode("KKKAWGHEKKK").unwrap();
        let res = sw_align(&q, &r, &Blosum62, GapPenalties::pastis_defaults());
        assert_eq!(res.matches, 5);
        assert_eq!(
            &q[res.q_begin..res.q_end],
            encode("AWGHE").unwrap().as_slice()
        );
        assert_eq!(
            &r[res.r_begin..res.r_end],
            encode("AWGHE").unwrap().as_slice()
        );
    }

    #[test]
    fn gap_is_opened_when_cheaper_than_mismatches() {
        // q has GGG inserted relative to r; with cheap gaps the optimal
        // local alignment bridges the insert with one 3-char gap run.
        let q = encode("AAAAGGGTTTT").unwrap();
        let r = encode("AAAATTTT").unwrap();
        let sc = MatchMismatch {
            match_score: 2,
            mismatch_score: -3,
        };
        let res = sw_align(&q, &r, &sc, gp(1, 1));
        assert_eq!(res.r_gaps, 3, "ops: {:?}", res.ops);
        assert_eq!(res.matches, 8);
        assert_eq!(res.score, 8 * 2 - (1 + 3));
        assert_eq!(res.score, rescore(&q, &r, &res, &sc, gp(1, 1)));
    }

    #[test]
    fn affine_prefers_one_long_gap_over_two_short() {
        // With high open and low extend, a single gap run is preferred.
        let q = encode("AAAWWWAAA").unwrap();
        let r = encode("AAAAAA").unwrap();
        let res = sw_align(
            &q,
            &r,
            &MatchMismatch {
                match_score: 5,
                mismatch_score: -4,
            },
            gp(6, 1),
        );
        // Best: align AAA...AAA with one 3-long gap in reference.
        assert_eq!(res.matches, 6);
        assert_eq!(res.r_gaps, 3);
        assert_eq!(res.score, 6 * 5 - (6 + 3));
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<u8> = Vec::new();
        let s = encode("MKV").unwrap();
        for (a, b) in [(&e, &s), (&s, &e), (&e, &e)] {
            let res = sw_align(a, b, &Blosum62, GapPenalties::pastis_defaults());
            assert_eq!(res.score, 0);
            assert_eq!(res.aligned_cols(), 0);
            assert_eq!(res.identity(), 0.0);
        }
    }

    #[test]
    fn dissimilar_sequences_score_zero_or_tiny() {
        let q = encode("WWWWW").unwrap();
        let r = encode("PPPPP").unwrap();
        let res = sw_align(&q, &r, &Blosum62, GapPenalties::pastis_defaults());
        assert_eq!(res.score, 0);
        assert!(res.ops.is_empty());
    }

    #[test]
    fn coverage_accounts_for_span_not_columns() {
        let q = encode("MKVLAWYHEE").unwrap();
        let r = encode("MKVLA").unwrap();
        let res = sw_align(&q, &r, &Blosum62, GapPenalties::pastis_defaults());
        assert!((res.coverage_query(q.len()) - 0.5).abs() < 1e-12);
        assert_eq!(res.coverage_ref(r.len()), 1.0);
        assert_eq!(res.coverage_min(q.len(), r.len()), 0.5);
    }

    #[test]
    fn cells_counted_even_when_no_alignment() {
        let (_, _, _, cells) = sw_score_only(
            &encode("WW").unwrap(),
            &encode("PPP").unwrap(),
            &Blosum62,
            GapPenalties::pastis_defaults(),
        );
        assert_eq!(cells, 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn score_is_symmetric(
            a in proptest::collection::vec(0u8..21, 0..40),
            b in proptest::collection::vec(0u8..21, 0..40),
        ) {
            let g = GapPenalties::pastis_defaults();
            let (sab, ..) = sw_score_only(&a, &b, &Blosum62, g);
            let (sba, ..) = sw_score_only(&b, &a, &Blosum62, g);
            prop_assert_eq!(sab, sba);
        }

        #[test]
        fn align_score_matches_score_only_and_rescore(
            a in proptest::collection::vec(0u8..21, 0..40),
            b in proptest::collection::vec(0u8..21, 0..40),
            open in 1i32..15,
            extend in 1i32..5,
        ) {
            let g = gp(open, extend);
            let res = sw_align(&a, &b, &Blosum62, g);
            let (s, ..) = sw_score_only(&a, &b, &Blosum62, g);
            prop_assert_eq!(res.score, s);
            if res.score > 0 {
                prop_assert_eq!(rescore(&a, &b, &res, &Blosum62, g), res.score);
            }
            prop_assert!(res.score >= 0);
        }

        #[test]
        fn self_alignment_is_perfect(
            a in proptest::collection::vec(0u8..20, 1..50),
        ) {
            let res = sw_align(&a, &a, &Blosum62, GapPenalties::pastis_defaults());
            prop_assert_eq!(res.matches, a.len());
            prop_assert_eq!(res.identity(), 1.0);
        }

        #[test]
        fn substring_scores_at_least_its_self_score(
            a in proptest::collection::vec(0u8..20, 5..40),
            start in 0usize..3,
        ) {
            // Aligning a substring against the whole must recover at least
            // the substring's self-score.
            let end = a.len() - 1;
            let sub = &a[start..end];
            let self_score: i32 = sub.iter().map(|&c| Blosum62.score(c, c)).sum();
            let (s, ..) = sw_score_only(sub, &a, &Blosum62, GapPenalties::pastis_defaults());
            prop_assert!(s >= self_score);
        }

        #[test]
        fn longer_gaps_never_increase_score(
            a in proptest::collection::vec(0u8..21, 0..30),
            b in proptest::collection::vec(0u8..21, 0..30),
        ) {
            let (cheap, ..) = sw_score_only(&a, &b, &Blosum62, gp(5, 1));
            let (pricey, ..) = sw_score_only(&a, &b, &Blosum62, gp(11, 2));
            prop_assert!(pricey <= cheap);
        }
    }
}
