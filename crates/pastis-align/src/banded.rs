//! Banded and x-drop Smith–Waterman variants.
//!
//! PASTIS's overlap matrix carries seed positions (the shared k-mer
//! locations), which makes seed-anchored, bounded-work alignment possible
//! as a cheaper alternative to the full DP matrix. These kernels are
//! offered as the crate's performance/sensitivity knobs:
//!
//! * [`sw_banded`] — restricts the DP to a diagonal band of half-width `w`
//!   around the seed diagonal. Work drops from `m·n` to ≈ `(2w+1)·min(m,n)`
//!   cells; scores are a lower bound on the full SW score, with equality
//!   whenever the optimal path stays inside the band.
//! * [`sw_xdrop`] — seed-and-extend with the classic x-drop cutoff (as in
//!   BLAST/DIAMOND): extension stops once the running score falls more
//!   than `x` below the best seen.

use crate::matrices::Scoring;
use crate::sw::GapPenalties;

/// Result of a bounded-work alignment kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedScore {
    /// Best local score found within the explored region (≥ 0).
    pub score: i32,
    /// DP cells actually computed.
    pub cells: u64,
}

/// Banded Smith–Waterman around the diagonal `d = seed_q − seed_r`,
/// half-width `w` (the band covers diagonals `d−w ..= d+w`).
///
/// Returns a lower bound on the unbanded score; equality holds when the
/// optimal path's diagonals all lie within the band (e.g. `w ≥ max(m, n)`
/// always recovers the exact score — a property the tests rely on).
pub fn sw_banded<S: Scoring>(
    q: &[u8],
    r: &[u8],
    scoring: &S,
    gaps: GapPenalties,
    seed_q: usize,
    seed_r: usize,
    w: usize,
) -> BoundedScore {
    let (m, n) = (q.len(), r.len());
    if m == 0 || n == 0 {
        return BoundedScore { score: 0, cells: 0 };
    }
    let d0 = seed_q as i64 - seed_r as i64;
    let wi = w as i64;
    let neg = i32::MIN / 2;
    let first = gaps.open + gaps.extend;

    // Row-wise DP over j ∈ band(i) = [i - d0 - w, i - d0 + w] ∩ [1, n]
    // (1-based i over q, j over r; diagonal of cell (i,j) is i - j).
    let mut h_prev = vec![0i32; n + 1];
    let mut h_cur = vec![neg; n + 1];
    let mut f_prev = vec![neg; n + 1];
    let mut f_cur = vec![neg; n + 1];
    let mut best = 0i32;
    let mut cells = 0u64;
    // Boundaries are free local starts (H = 0 on row 0 and column 0); the
    // band only constrains interior cells, and a diagonal predecessor of an
    // in-band cell is itself in-band, so out-of-band poisoning (neg) is
    // needed only for horizontal/vertical moves.
    for i in 1..=m as i64 {
        let lo = (i - d0 - wi).max(1);
        let hi = (i - d0 + wi).min(n as i64);
        for j in 1..=n {
            h_cur[j] = neg;
            f_cur[j] = neg;
        }
        h_cur[0] = 0;
        // In-band left boundary behaves like H = 0 outside band (local
        // alignment can start anywhere), but moves *into* the band from
        // outside are forbidden: treat out-of-band neighbours as `neg`,
        // and allow fresh starts via the max(0, ·).
        let mut e = neg;
        for j in lo..=hi {
            cells += 1;
            let ju = j as usize;
            let h_left = if j > lo { h_cur[ju - 1] } else { neg };
            e = (h_left - first).max(e - gaps.extend);
            let f = (h_prev[ju] - first).max(f_prev[ju] - gaps.extend);
            f_cur[ju] = f;
            let hp = h_prev[ju - 1];
            let diag_val = if hp <= neg / 2 {
                neg
            } else {
                hp.saturating_add(scoring.score(q[(i - 1) as usize], r[ju - 1]))
            };
            let h = 0.max(diag_val).max(e).max(f);
            h_cur[ju] = h;
            if h > best {
                best = h;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
    }
    BoundedScore { score: best, cells }
}

/// Seed-and-extend with an x-drop bound: gapless extension from the seed
/// pair `(seed_q, seed_r)` in both directions, stopping a direction once
/// the running score drops more than `x` below its best.
///
/// This is the prefilter-style kernel (BLAST's original two-hit extension);
/// it under-reports relative to full SW but touches only O(extension
/// length) cells.
pub fn sw_xdrop<S: Scoring>(
    q: &[u8],
    r: &[u8],
    scoring: &S,
    seed_q: usize,
    seed_r: usize,
    x: i32,
) -> BoundedScore {
    assert!(seed_q <= q.len() && seed_r <= r.len(), "seed out of range");
    let mut cells = 0u64;
    // Forward extension (including the seed position itself).
    let mut best_f = 0i32;
    let mut run = 0i32;
    let mut qi = seed_q;
    let mut rj = seed_r;
    while qi < q.len() && rj < r.len() {
        run += scoring.score(q[qi], r[rj]);
        cells += 1;
        if run > best_f {
            best_f = run;
        }
        if best_f - run > x {
            break;
        }
        qi += 1;
        rj += 1;
    }
    // Backward extension (cells before the seed).
    let mut best_b = 0i32;
    run = 0;
    let mut qi = seed_q;
    let mut rj = seed_r;
    while qi > 0 && rj > 0 {
        qi -= 1;
        rj -= 1;
        run += scoring.score(q[qi], r[rj]);
        cells += 1;
        if run > best_b {
            best_b = run;
        }
        if best_b - run > x {
            break;
        }
    }
    BoundedScore {
        score: (best_f + best_b).max(0),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{encode, Blosum62};
    use crate::sw::sw_score_only;
    use proptest::prelude::*;

    fn full(q: &[u8], r: &[u8]) -> i32 {
        sw_score_only(q, r, &Blosum62, GapPenalties::pastis_defaults()).0
    }

    #[test]
    fn wide_band_recovers_exact_score() {
        let q = encode("HEAGAWGHEE").unwrap();
        let r = encode("PAWHEAE").unwrap();
        let g = GapPenalties::pastis_defaults();
        let b = sw_banded(&q, &r, &Blosum62, g, 0, 0, q.len() + r.len());
        assert_eq!(b.score, full(&q, &r));
    }

    #[test]
    fn banded_never_exceeds_full() {
        let q = encode("MKVLAWYHEEGAWGHEE").unwrap();
        let r = encode("MKVAWYHEPAWHEAE").unwrap();
        let g = GapPenalties::pastis_defaults();
        for w in [0usize, 1, 2, 4, 8, 32] {
            let b = sw_banded(&q, &r, &Blosum62, g, 0, 0, w);
            assert!(b.score <= full(&q, &r), "w={w}");
        }
    }

    #[test]
    fn banded_cells_shrink_with_band() {
        let q = encode("MKVLAWYHEEGAWGHEEMKVLAWYHEE").unwrap();
        let r = q.clone();
        let g = GapPenalties::pastis_defaults();
        let narrow = sw_banded(&q, &r, &Blosum62, g, 0, 0, 2);
        let wide = sw_banded(&q, &r, &Blosum62, g, 0, 0, 100);
        assert!(narrow.cells < wide.cells);
        // Identical sequences: the optimal path is the main diagonal, so
        // even the narrow band is exact.
        assert_eq!(narrow.score, full(&q, &r));
    }

    #[test]
    fn banded_empty_inputs() {
        let e: Vec<u8> = Vec::new();
        let s = encode("MKV").unwrap();
        let g = GapPenalties::pastis_defaults();
        assert_eq!(sw_banded(&e, &s, &Blosum62, g, 0, 0, 3).score, 0);
        assert_eq!(sw_banded(&s, &e, &Blosum62, g, 0, 0, 3).score, 0);
    }

    #[test]
    fn xdrop_extends_through_matches() {
        let q = encode("PPPPAWGHEPPPP").unwrap();
        let r = encode("KKKAWGHEKKK").unwrap();
        // Seed at the start of the common core (q pos 4, r pos 3).
        let b = sw_xdrop(&q, &r, &Blosum62, 4, 3, 15);
        let core: i32 = encode("AWGHE")
            .unwrap()
            .iter()
            .map(|&c| Blosum62.score(c, c))
            .sum();
        assert!(b.score >= core);
    }

    #[test]
    fn xdrop_stops_on_drop() {
        // Strong seed then garbage: tight x stops the extension early.
        let q = encode("WWWWWPPPPPPPPPPPPPPP").unwrap();
        let r = encode("WWWWWKKKKKKKKKKKKKKK").unwrap();
        let tight = sw_xdrop(&q, &r, &Blosum62, 0, 0, 3);
        let loose = sw_xdrop(&q, &r, &Blosum62, 0, 0, 1000);
        assert!(tight.cells < loose.cells);
        assert_eq!(tight.score, 55); // 5 × W/W = 55, garbage clipped
    }

    #[test]
    fn xdrop_backward_extension_counts() {
        let q = encode("AWGHE").unwrap();
        let r = encode("AWGHE").unwrap();
        // Seed at the end: everything is recovered backwards.
        let b = sw_xdrop(&q, &r, &Blosum62, 5, 5, 20);
        let want: i32 = q.iter().map(|&c| Blosum62.score(c, c)).sum();
        assert_eq!(b.score, want);
    }

    #[test]
    #[should_panic(expected = "seed out of range")]
    fn xdrop_seed_bounds_checked() {
        let q = encode("AW").unwrap();
        let _ = sw_xdrop(&q, &q, &Blosum62, 5, 0, 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn banded_is_lower_bound_and_wide_band_exact(
            a in proptest::collection::vec(0u8..21, 0..30),
            b in proptest::collection::vec(0u8..21, 0..30),
            w in 0usize..6,
        ) {
            let g = GapPenalties::pastis_defaults();
            let fullscore = full(&a, &b);
            let banded = sw_banded(&a, &b, &Blosum62, g, 0, 0, w);
            prop_assert!(banded.score <= fullscore);
            let exact = sw_banded(&a, &b, &Blosum62, g, 0, 0, a.len() + b.len() + 1);
            prop_assert_eq!(exact.score, fullscore);
        }

        #[test]
        fn xdrop_score_nonnegative_and_bounded(
            a in proptest::collection::vec(0u8..21, 1..30),
            b in proptest::collection::vec(0u8..21, 1..30),
            x in 0i32..50,
        ) {
            let s = sw_xdrop(&a, &b, &Blosum62, 0, 0, x);
            prop_assert!(s.score >= 0);
            // Gapless extension can never beat the full SW optimum.
            prop_assert!(s.score <= full(&a, &b));
        }
    }
}
