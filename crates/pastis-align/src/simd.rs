//! Vector-lane abstraction for the inter-sequence alignment kernel.
//!
//! The multilane kernel ([`crate::multilane`]) advances many independent
//! alignments in lock-step, one pair per lane, on saturating i16 lanes.
//! This module supplies the lanes: a [`SimdVec`] trait whose operations are
//! the complete vocabulary of the kernel (splat/load/store, saturating
//! add/sub, max), implemented by
//!
//! * `core::arch::x86_64` **SSE2** (8 lanes) and **AVX2** (16 lanes)
//!   intrinsics, selected at runtime with `is_x86_feature_detected!`;
//! * **NEON** (8 lanes) on aarch64, where it is a baseline feature;
//! * a portable **scalar-array fallback** ([`ScalarLanes`]) implementing
//!   the identical trait, so every platform compiles the kernel and every
//!   dispatch branch is testable on any machine.
//!
//! [`SimdBackend`] names the compiled-and-detected implementations and
//! [`SimdPolicy`] is the user-facing `--simd auto|avx2|sse2|neon|scalar`
//! selection. Every backend produces bit-identical scores (the
//! `kernel_equivalence` differential harness pins this), so the choice only
//! ever changes wall time.

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

#[cfg(target_arch = "aarch64")]
use core::arch::aarch64::*;

/// Widest lane count any backend exposes; fixed-size scratch buffers in
/// the kernel are sized by this.
pub const MAX_LANES: usize = 16;

/// One vector of i16 lanes: the full instruction vocabulary of the
/// lock-step Smith–Waterman recurrence.
///
/// Implementations must be element-wise and width-uniform: the kernel is
/// generic over this trait and is bit-identical across implementations by
/// construction (saturating i16 arithmetic has one defined result).
pub trait SimdVec: Copy {
    /// Number of i16 lanes in one vector.
    const LANES: usize;

    /// All lanes set to `v`.
    fn splat(v: i16) -> Self;

    /// Load `Self::LANES` values from the front of `src`.
    fn load(src: &[i16]) -> Self;

    /// Store all lanes to the front of `dst`.
    fn store(self, dst: &mut [i16]);

    /// Lane-wise saturating add.
    fn add_sat(self, o: Self) -> Self;

    /// Lane-wise saturating subtract.
    fn sub_sat(self, o: Self) -> Self;

    /// Lane-wise maximum.
    fn max(self, o: Self) -> Self;

    /// All lanes zero.
    #[inline(always)]
    fn zero() -> Self {
        Self::splat(0)
    }
}

/// Portable scalar-array lanes: plain `[i16; L]` arithmetic with the same
/// saturating semantics as the hardware vectors. This is both the fallback
/// backend on targets without intrinsics and the reference implementation
/// the differential harness runs everywhere.
#[derive(Clone, Copy, Debug)]
pub struct ScalarLanes<const L: usize>([i16; L]);

impl<const L: usize> SimdVec for ScalarLanes<L> {
    const LANES: usize = L;

    #[inline(always)]
    fn splat(v: i16) -> Self {
        ScalarLanes([v; L])
    }

    #[inline(always)]
    fn load(src: &[i16]) -> Self {
        let mut a = [0i16; L];
        a.copy_from_slice(&src[..L]);
        ScalarLanes(a)
    }

    #[inline(always)]
    fn store(self, dst: &mut [i16]) {
        dst[..L].copy_from_slice(&self.0);
    }

    #[inline(always)]
    fn add_sat(self, o: Self) -> Self {
        let mut a = self.0;
        for (x, y) in a.iter_mut().zip(o.0) {
            *x = x.saturating_add(y);
        }
        ScalarLanes(a)
    }

    #[inline(always)]
    fn sub_sat(self, o: Self) -> Self {
        let mut a = self.0;
        for (x, y) in a.iter_mut().zip(o.0) {
            *x = x.saturating_sub(y);
        }
        ScalarLanes(a)
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        let mut a = self.0;
        for (x, y) in a.iter_mut().zip(o.0) {
            *x = (*x).max(y);
        }
        ScalarLanes(a)
    }
}

/// SSE2 vector: 8 × i16 in an `__m128i`. SSE2 is a baseline feature of
/// x86_64, so these wrappers are sound on every x86_64 host.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
pub struct Sse2Vec(__m128i);

#[cfg(target_arch = "x86_64")]
impl SimdVec for Sse2Vec {
    const LANES: usize = 8;

    #[inline(always)]
    fn splat(v: i16) -> Self {
        // SAFETY: SSE2 is baseline on x86_64.
        Sse2Vec(unsafe { _mm_set1_epi16(v) })
    }

    #[inline(always)]
    fn load(src: &[i16]) -> Self {
        debug_assert!(src.len() >= 8);
        Sse2Vec(unsafe { _mm_loadu_si128(src.as_ptr() as *const __m128i) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [i16]) {
        debug_assert!(dst.len() >= 8);
        unsafe { _mm_storeu_si128(dst.as_mut_ptr() as *mut __m128i, self.0) }
    }

    #[inline(always)]
    fn add_sat(self, o: Self) -> Self {
        Sse2Vec(unsafe { _mm_adds_epi16(self.0, o.0) })
    }

    #[inline(always)]
    fn sub_sat(self, o: Self) -> Self {
        Sse2Vec(unsafe { _mm_subs_epi16(self.0, o.0) })
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        Sse2Vec(unsafe { _mm_max_epi16(self.0, o.0) })
    }
}

/// AVX2 vector: 16 × i16 in an `__m256i`.
///
/// # Safety contract
///
/// Constructing or operating on this type executes AVX2 instructions; the
/// dispatcher only reaches it after `is_x86_feature_detected!("avx2")`
/// (see [`SimdBackend::is_available`]), which makes the `unsafe` intrinsic
/// calls sound.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
pub struct Avx2Vec(__m256i);

#[cfg(target_arch = "x86_64")]
impl SimdVec for Avx2Vec {
    const LANES: usize = 16;

    #[inline(always)]
    fn splat(v: i16) -> Self {
        Avx2Vec(unsafe { _mm256_set1_epi16(v) })
    }

    #[inline(always)]
    fn load(src: &[i16]) -> Self {
        debug_assert!(src.len() >= 16);
        Avx2Vec(unsafe { _mm256_loadu_si256(src.as_ptr() as *const __m256i) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [i16]) {
        debug_assert!(dst.len() >= 16);
        unsafe { _mm256_storeu_si256(dst.as_mut_ptr() as *mut __m256i, self.0) }
    }

    #[inline(always)]
    fn add_sat(self, o: Self) -> Self {
        Avx2Vec(unsafe { _mm256_adds_epi16(self.0, o.0) })
    }

    #[inline(always)]
    fn sub_sat(self, o: Self) -> Self {
        Avx2Vec(unsafe { _mm256_subs_epi16(self.0, o.0) })
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        Avx2Vec(unsafe { _mm256_max_epi16(self.0, o.0) })
    }
}

/// NEON vector: 8 × i16 in an `int16x8_t`. NEON is a baseline feature of
/// aarch64, so these wrappers are sound on every aarch64 host.
#[cfg(target_arch = "aarch64")]
#[derive(Clone, Copy)]
pub struct NeonVec(int16x8_t);

#[cfg(target_arch = "aarch64")]
impl SimdVec for NeonVec {
    const LANES: usize = 8;

    #[inline(always)]
    fn splat(v: i16) -> Self {
        NeonVec(unsafe { vdupq_n_s16(v) })
    }

    #[inline(always)]
    fn load(src: &[i16]) -> Self {
        debug_assert!(src.len() >= 8);
        NeonVec(unsafe { vld1q_s16(src.as_ptr()) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [i16]) {
        debug_assert!(dst.len() >= 8);
        unsafe { vst1q_s16(dst.as_mut_ptr(), self.0) }
    }

    #[inline(always)]
    fn add_sat(self, o: Self) -> Self {
        NeonVec(unsafe { vqaddq_s16(self.0, o.0) })
    }

    #[inline(always)]
    fn sub_sat(self, o: Self) -> Self {
        NeonVec(unsafe { vqsubq_s16(self.0, o.0) })
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        NeonVec(unsafe { vmaxq_s16(self.0, o.0) })
    }
}

/// A compiled vector backend of the multilane kernel.
///
/// All backends are bit-identical in output; they differ only in lane
/// width and instruction set. [`SimdBackend::Scalar`] exists everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdBackend {
    /// Portable scalar-array lanes (16-wide, auto-vectorizable).
    #[default]
    Scalar,
    /// x86_64 SSE2, 8 × i16 lanes (baseline on every x86_64).
    Sse2,
    /// x86_64 AVX2, 16 × i16 lanes (runtime-detected).
    Avx2,
    /// aarch64 NEON, 8 × i16 lanes (baseline on every aarch64).
    Neon,
}

impl SimdBackend {
    /// Best backend available on this host: AVX2 > SSE2 on x86_64, NEON on
    /// aarch64, the scalar-array fallback elsewhere.
    pub fn detect() -> SimdBackend {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                return SimdBackend::Avx2;
            }
            return SimdBackend::Sse2;
        }
        #[cfg(target_arch = "aarch64")]
        {
            return SimdBackend::Neon;
        }
        #[allow(unreachable_code)]
        SimdBackend::Scalar
    }

    /// Whether this backend is compiled in *and* supported by the running
    /// CPU. [`SimdBackend::Scalar`] is always available.
    pub fn is_available(self) -> bool {
        match self {
            SimdBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            SimdBackend::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Every backend available on this host, scalar first. The
    /// differential test harness iterates this list.
    pub fn available() -> Vec<SimdBackend> {
        [
            SimdBackend::Scalar,
            SimdBackend::Sse2,
            SimdBackend::Avx2,
            SimdBackend::Neon,
        ]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
    }

    /// i16 lanes per vector.
    pub fn lanes(self) -> usize {
        match self {
            SimdBackend::Scalar => 16,
            SimdBackend::Sse2 => 8,
            SimdBackend::Avx2 => 16,
            SimdBackend::Neon => 8,
        }
    }

    /// Lower-case name, as accepted by `--simd`.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Sse2 => "sse2",
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Neon => "neon",
        }
    }

    /// Stable numeric id for telemetry span args / counters
    /// (span args are `u64`): scalar 0, sse2 1, avx2 2, neon 3.
    pub fn id(self) -> u64 {
        match self {
            SimdBackend::Scalar => 0,
            SimdBackend::Sse2 => 1,
            SimdBackend::Avx2 => 2,
            SimdBackend::Neon => 3,
        }
    }
}

impl std::fmt::Display for SimdBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// User-facing backend selection: `auto` defers to runtime detection, a
/// named backend forces that implementation (and errors at validation if
/// the host lacks it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdPolicy {
    /// Pick the best available backend ([`SimdBackend::detect`]).
    #[default]
    Auto,
    /// Force a specific backend; resolution fails if unavailable.
    Force(SimdBackend),
}

impl SimdPolicy {
    /// Parse a `--simd` value: `auto`, `scalar`, `sse2`, `avx2`, `neon`.
    pub fn parse(s: &str) -> Result<SimdPolicy, String> {
        match s {
            "auto" => Ok(SimdPolicy::Auto),
            "scalar" => Ok(SimdPolicy::Force(SimdBackend::Scalar)),
            "sse2" => Ok(SimdPolicy::Force(SimdBackend::Sse2)),
            "avx2" => Ok(SimdPolicy::Force(SimdBackend::Avx2)),
            "neon" => Ok(SimdPolicy::Force(SimdBackend::Neon)),
            other => Err(format!(
                "unknown SIMD backend '{other}' (expected auto|scalar|sse2|avx2|neon)"
            )),
        }
    }

    /// Resolve the policy against the running host.
    pub fn resolve(self) -> Result<SimdBackend, String> {
        match self {
            SimdPolicy::Auto => Ok(SimdBackend::detect()),
            SimdPolicy::Force(b) if b.is_available() => Ok(b),
            SimdPolicy::Force(b) => Err(format!(
                "SIMD backend '{}' is not available on this host (available: {})",
                b.name(),
                SimdBackend::available()
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_ops<V: SimdVec>() {
        assert!(V::LANES <= MAX_LANES);
        let mut src = [0i16; MAX_LANES];
        for (i, v) in src.iter_mut().enumerate() {
            *v = (i as i16) * 1000 - 5000;
        }
        let a = V::load(&src);
        let b = V::splat(30000);
        let mut got = [0i16; MAX_LANES];
        a.add_sat(b).store(&mut got);
        for l in 0..V::LANES {
            assert_eq!(got[l], src[l].saturating_add(30000), "add_sat lane {l}");
        }
        a.sub_sat(b).store(&mut got);
        for l in 0..V::LANES {
            assert_eq!(got[l], src[l].saturating_sub(30000), "sub_sat lane {l}");
        }
        a.max(V::zero()).store(&mut got);
        for l in 0..V::LANES {
            assert_eq!(got[l], src[l].max(0), "max lane {l}");
        }
    }

    #[test]
    fn scalar_lanes_ops() {
        check_ops::<ScalarLanes<8>>();
        check_ops::<ScalarLanes<16>>();
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_ops() {
        check_ops::<Sse2Vec>();
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_ops() {
        if is_x86_feature_detected!("avx2") {
            check_ops::<Avx2Vec>();
        }
    }

    #[cfg(target_arch = "aarch64")]
    #[test]
    fn neon_ops() {
        check_ops::<NeonVec>();
    }

    #[test]
    fn detection_is_consistent() {
        let best = SimdBackend::detect();
        assert!(best.is_available());
        let avail = SimdBackend::available();
        assert!(avail.contains(&SimdBackend::Scalar));
        assert!(avail.contains(&best));
        for b in avail {
            assert!(b.lanes() == 8 || b.lanes() == 16);
            assert!(b.lanes() <= MAX_LANES);
        }
    }

    #[test]
    fn policy_parse_and_resolve() {
        assert_eq!(SimdPolicy::parse("auto").unwrap(), SimdPolicy::Auto);
        assert_eq!(
            SimdPolicy::parse("scalar").unwrap(),
            SimdPolicy::Force(SimdBackend::Scalar)
        );
        assert!(SimdPolicy::parse("warp").is_err());
        assert_eq!(SimdPolicy::Auto.resolve().unwrap(), SimdBackend::detect());
        assert_eq!(
            SimdPolicy::Force(SimdBackend::Scalar).resolve().unwrap(),
            SimdBackend::Scalar
        );
        #[cfg(not(target_arch = "aarch64"))]
        assert!(SimdPolicy::Force(SimdBackend::Neon).resolve().is_err());
    }

    #[test]
    fn ids_and_names_are_stable() {
        for b in [
            SimdBackend::Scalar,
            SimdBackend::Sse2,
            SimdBackend::Avx2,
            SimdBackend::Neon,
        ] {
            assert_eq!(SimdPolicy::parse(b.name()), Ok(SimdPolicy::Force(b)));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(SimdBackend::Scalar.id(), 0);
        assert_eq!(SimdBackend::Sse2.id(), 1);
        assert_eq!(SimdBackend::Avx2.id(), 2);
        assert_eq!(SimdBackend::Neon.id(), 3);
    }
}
