//! Sequence I/O substrate for PASTIS-RS.
//!
//! PASTIS reads one FASTA file with parallel MPI-IO, holds the encoded
//! sequences in memory, and writes the similarity graph as triplets; its
//! 405-million-sequence input is the Metaclust non-redundant protein set.
//! This crate supplies the equivalents:
//!
//! * [`fasta`] — a robust FASTA reader/writer and the in-memory
//!   [`SeqStore`] the pipeline works from.
//! * [`faidx`] — a samtools-faidx-style index for O(1) random access to
//!   records of a large FASTA file.
//! * [`parallel_io`] — byte-range-partitioned FASTA reading (each rank
//!   parses only its slice of the file, MPI-IO style) and partitioned
//!   output writing.
//! * [`alphabet`] — reduced amino-acid alphabets (Murphy-10, Dayhoff-6),
//!   the sensitivity option from Section V of the paper (its reference
//!   [15]).
//! * [`synth`] — a synthetic protein-family generator standing in for
//!   Metaclust: log-normal sequence lengths, families derived from common
//!   ancestors at controlled divergence, plus singletons. It reproduces
//!   the statistical properties the evaluation depends on (variable
//!   lengths, sparse clustered similarity, quadratic candidate growth)
//!   with planted ground truth for sensitivity measurements.

#![warn(missing_docs)]

pub mod alphabet;
pub mod faidx;
pub mod fasta;
pub mod parallel_io;
pub mod qstream;
pub mod synth;

pub use alphabet::ReducedAlphabet;
pub use faidx::{FaiEntry, FastaIndex};
pub use fasta::{FastaError, FastaRecord, FastaStream, SeqStore};
pub use qstream::QueryBatchReader;
pub use synth::{SyntheticConfig, SyntheticDataset};
