//! Byte-range-partitioned FASTA input and partitioned output.
//!
//! PASTIS "uses parallel MPI I/O for input and output files": each rank
//! reads a disjoint byte range of the shared FASTA file and parses the
//! records whose headers fall inside its range, so no rank ever touches
//! the whole file. This module implements the same protocol on a local
//! filesystem — the partitioning logic (and its record-boundary edge
//! cases) is identical to the MPI-IO version; only the transport differs.
//!
//! Output follows the same pattern in reverse: ranks write their triplet
//! partitions independently ([`write_partition`]) and a final
//! concatenation produces the single similarity-graph file.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::fasta::{parse_fasta, FastaError, FastaRecord};

/// The byte range `[start, end)` of partition `rank` of `nranks` over a
/// file of `file_len` bytes (even split, remainder to the first ranks).
pub fn byte_range(file_len: u64, rank: usize, nranks: usize) -> (u64, u64) {
    assert!(nranks > 0 && rank < nranks, "bad rank {rank}/{nranks}");
    let base = file_len / nranks as u64;
    let extra = file_len % nranks as u64;
    let start = rank as u64 * base + (rank as u64).min(extra);
    let len = base + u64::from((rank as u64) < extra);
    (start, start + len)
}

/// Read the FASTA records *owned* by `rank`: those whose `>` header byte
/// lies in the rank's byte range. A record straddling the range end is
/// read past the boundary by its owner; a rank whose range begins
/// mid-record skips forward to the first header at or after its start.
///
/// The union over all ranks is exactly the file's record set, each record
/// exactly once (tested), which is the invariant MPI-IO FASTA readers
/// must provide.
pub fn read_fasta_partition(
    path: &Path,
    rank: usize,
    nranks: usize,
) -> Result<Vec<FastaRecord>, FastaError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let (start, end) = byte_range(file_len, rank, nranks);
    if start >= file_len {
        return Ok(Vec::new());
    }
    // Read from `start` to EOF; we stop parsing at the first header past
    // `end`, so the read could be windowed — for the test substrate,
    // simplicity wins and we bound memory by streaming line-by-line.
    file.seek(SeekFrom::Start(start))?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;

    // A header is a '>' at a line start. If `start > 0`, one byte of
    // lookback tells us whether `start` itself is a line start; otherwise
    // we are mid-line and skip to the next newline.
    let mut search_from = 0usize;
    if start > 0 {
        let mut one = [0u8; 1];
        let mut f2 = File::open(path)?;
        f2.seek(SeekFrom::Start(start - 1))?;
        f2.read_exact(&mut one)?;
        if one[0] != b'\n' {
            match buf.iter().position(|&b| b == b'\n') {
                Some(nl) => search_from = nl + 1,
                None => return Ok(Vec::new()),
            }
        }
    }
    // Walk line starts until the first owned header; `pos` is always at a
    // line start inside this loop.
    let mut first_header: Option<usize> = None;
    let mut pos = search_from;
    while pos < buf.len() {
        let abs = start + pos as u64;
        if abs >= end {
            break;
        }
        if buf[pos] == b'>' {
            first_header = Some(pos);
            break;
        }
        match buf[pos..].iter().position(|&b| b == b'\n') {
            Some(nl) => pos += nl + 1,
            None => break,
        }
    }
    let Some(first) = first_header else {
        return Ok(Vec::new());
    };
    // Find the first header at or after `end` (relative to buf) — records
    // owned by the next rank.
    let mut stop = buf.len();
    let mut pos = first;
    while let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') {
        pos += nl + 1;
        if pos >= buf.len() {
            break;
        }
        let abs = start + pos as u64;
        if abs >= end && buf[pos] == b'>' {
            stop = pos;
            break;
        }
    }
    parse_fasta(std::io::Cursor::new(&buf[first..stop]))
}

/// Write one rank's output partition to `<base>.part-<rank>`; returns the
/// number of bytes written. `lines` are written verbatim with trailing
/// newlines.
pub fn write_partition(base: &Path, rank: usize, lines: &[String]) -> std::io::Result<u64> {
    let path = partition_path(base, rank);
    let mut w = BufWriter::new(File::create(path)?);
    let mut bytes = 0u64;
    for line in lines {
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        bytes += line.len() as u64 + 1;
    }
    w.flush()?;
    Ok(bytes)
}

/// Path of partition `rank` under `base`.
pub fn partition_path(base: &Path, rank: usize) -> std::path::PathBuf {
    let mut os = base.as_os_str().to_owned();
    os.push(format!(".part-{rank}"));
    std::path::PathBuf::from(os)
}

/// Concatenate all `nranks` partitions into `base` (the final gather step
/// a parallel writer performs with a shared file pointer).
pub fn concat_partitions(base: &Path, nranks: usize) -> std::io::Result<u64> {
    let mut out = BufWriter::new(File::create(base)?);
    let mut total = 0u64;
    for rank in 0..nranks {
        let part = partition_path(base, rank);
        let mut f = File::open(&part)?;
        total += std::io::copy(&mut f, &mut out)?;
        std::fs::remove_file(part)?;
    }
    out.flush()?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::write_fasta;
    use std::io::Cursor;

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pastis-seqio-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records(n: usize) -> Vec<FastaRecord> {
        (0..n)
            .map(|i| FastaRecord {
                id: format!("seq{i}"),
                desc: (i % 3 == 0).then(|| format!("family {}", i / 7)),
                // Vary lengths so records straddle partition boundaries.
                seq: "MKVLAWYHEE".repeat(1 + i % 5),
            })
            .collect()
    }

    fn write_sample(path: &Path, recs: &[FastaRecord], width: usize) {
        let mut buf = Vec::new();
        write_fasta(&mut buf, recs, width).unwrap();
        std::fs::write(path, buf).unwrap();
    }

    #[test]
    fn byte_ranges_tile_the_file() {
        for len in [0u64, 1, 10, 997, 4096] {
            for nranks in [1usize, 2, 3, 7] {
                let mut expected = 0;
                for r in 0..nranks {
                    let (s, e) = byte_range(len, r, nranks);
                    assert_eq!(s, expected);
                    expected = e;
                }
                assert_eq!(expected, len);
            }
        }
    }

    #[test]
    fn partitions_cover_every_record_exactly_once() {
        let dir = temp_dir();
        let recs = sample_records(23);
        for width in [0usize, 12] {
            let path = dir.join(format!("cover-{width}.fa"));
            write_sample(&path, &recs, width);
            for nranks in [1usize, 2, 3, 5, 8, 16] {
                let mut all: Vec<FastaRecord> = Vec::new();
                for rank in 0..nranks {
                    all.extend(read_fasta_partition(&path, rank, nranks).unwrap());
                }
                assert_eq!(all.len(), recs.len(), "nranks={nranks} width={width}");
                let mut ids: Vec<&str> = all.iter().map(|r| r.id.as_str()).collect();
                ids.sort_unstable();
                let mut want: Vec<&str> = recs.iter().map(|r| r.id.as_str()).collect();
                want.sort_unstable();
                assert_eq!(ids, want);
                // Full records intact, not truncated at boundaries.
                for got in &all {
                    let orig = recs.iter().find(|r| r.id == got.id).unwrap();
                    assert_eq!(got.seq, orig.seq, "record {} truncated", got.id);
                }
            }
        }
    }

    #[test]
    fn more_ranks_than_records() {
        let dir = temp_dir();
        let recs = sample_records(2);
        let path = dir.join("tiny.fa");
        write_sample(&path, &recs, 0);
        let mut total = 0;
        for rank in 0..32 {
            total += read_fasta_partition(&path, rank, 32).unwrap().len();
        }
        assert_eq!(total, 2);
    }

    #[test]
    fn single_rank_reads_everything() {
        let dir = temp_dir();
        let recs = sample_records(5);
        let path = dir.join("single.fa");
        write_sample(&path, &recs, 7);
        let got = read_fasta_partition(&path, 0, 1).unwrap();
        assert_eq!(
            got,
            parse_fasta(Cursor::new(std::fs::read(&path).unwrap())).unwrap()
        );
    }

    #[test]
    fn partitioned_write_and_concat() {
        let dir = temp_dir();
        let base = dir.join("out.tsv");
        let mut written = 0;
        for rank in 0..4usize {
            let lines: Vec<String> = (0..rank + 1).map(|i| format!("{rank}\t{i}\t0.9")).collect();
            written += write_partition(&base, rank, &lines).unwrap();
        }
        let total = concat_partitions(&base, 4).unwrap();
        assert_eq!(total, written);
        let content = std::fs::read_to_string(&base).unwrap();
        assert_eq!(content.lines().count(), 1 + 2 + 3 + 4);
        assert!(content.starts_with("0\t0"));
        // Partition files are cleaned up.
        assert!(!partition_path(&base, 0).exists());
    }

    #[test]
    fn empty_file_partitions() {
        let dir = temp_dir();
        let path = dir.join("empty.fa");
        std::fs::write(&path, b"").unwrap();
        for rank in 0..3 {
            assert!(read_fasta_partition(&path, rank, 3).unwrap().is_empty());
        }
    }
}
