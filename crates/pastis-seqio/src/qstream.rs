//! Streaming query reader for the serving mode.
//!
//! `pastis serve` consumes queries as a FASTA *stream* (a file, a pipe,
//! stdin) rather than a fully materialized store: the admission layer
//! wants records in arrival order, a batch at a time, without waiting for
//! end-of-file. [`QueryBatchReader`] wraps [`FastaStream`] and hands out
//! bounded batches of records, preserving the stream's per-record bound
//! against malformed giant records.

use std::io::BufRead;

use crate::fasta::{FastaError, FastaRecord, FastaStream};

/// Pulls query records off a FASTA stream in bounded batches.
///
/// Errors are sticky: after the underlying stream yields a parse error,
/// the reader reports it once and then behaves as exhausted — a serving
/// process refuses the rest of a malformed stream instead of resyncing
/// on guesswork.
pub struct QueryBatchReader<R: BufRead> {
    stream: FastaStream<R>,
    max_batch: usize,
    done: bool,
}

impl<R: BufRead> QueryBatchReader<R> {
    /// A reader emitting at most `max_batch` records per call (clamped to
    /// ≥ 1).
    pub fn new(reader: R, max_batch: usize) -> QueryBatchReader<R> {
        QueryBatchReader {
            stream: FastaStream::new(reader),
            max_batch: max_batch.max(1),
            done: false,
        }
    }

    /// Cap the in-memory size of a single record (defends against
    /// unterminated garbage); forwarded to [`FastaStream::with_record_bound`].
    pub fn with_record_bound(mut self, bytes: usize) -> QueryBatchReader<R> {
        self.stream = self.stream.with_record_bound(bytes);
        self
    }

    /// The next batch of records, in stream order: `Ok(batch)` with
    /// 1..=`max_batch` records, `Ok(vec![])` at end of stream, or the
    /// first parse error (after which the reader is exhausted).
    pub fn next_batch(&mut self) -> Result<Vec<FastaRecord>, FastaError> {
        let mut batch = Vec::new();
        if self.done {
            return Ok(batch);
        }
        while batch.len() < self.max_batch {
            match self.stream.next() {
                Some(Ok(rec)) => batch.push(rec),
                Some(Err(e)) => {
                    self.done = true;
                    return Err(e);
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn doc() -> String {
        (0..7)
            .map(|i| format!(">q{i} desc\nMKVLAW\nYHEE\n"))
            .collect()
    }

    #[test]
    fn batches_preserve_stream_order_and_bound() {
        let mut r = QueryBatchReader::new(Cursor::new(doc()), 3);
        let mut seen = Vec::new();
        loop {
            let b = r.next_batch().unwrap();
            if b.is_empty() {
                break;
            }
            assert!(b.len() <= 3);
            seen.extend(b.into_iter().map(|rec| rec.id));
        }
        let want: Vec<String> = (0..7).map(|i| format!("q{i}")).collect();
        assert_eq!(seen, want);
        // Exhausted stays exhausted.
        assert!(r.next_batch().unwrap().is_empty());
    }

    #[test]
    fn zero_batch_clamps_to_one() {
        let mut r = QueryBatchReader::new(Cursor::new(doc()), 0);
        assert_eq!(r.next_batch().unwrap().len(), 1);
    }

    #[test]
    fn errors_are_sticky() {
        // A record body with no header is a parse error.
        let mut r = QueryBatchReader::new(Cursor::new("MKVLAW\n>ok\nMKV\n"), 8);
        assert!(r.next_batch().is_err());
        // After the error the reader is exhausted, not resynced.
        assert!(r.next_batch().unwrap().is_empty());
    }

    #[test]
    fn record_bound_is_enforced() {
        let big = format!(">huge\n{}\n", "M".repeat(64));
        let mut r = QueryBatchReader::new(Cursor::new(big), 4).with_record_bound(16);
        assert!(r.next_batch().is_err());
    }
}
