//! Synthetic protein-family dataset generation (the Metaclust surrogate).
//!
//! The paper's production input is Metaclust: 405M proteins assembled from
//! metagenomes, in which true homologs form families and the pairwise
//! similarity structure is extremely sparse (the run's "alignment space"
//! is 5.2·10⁻⁵ of the full 1.6·10¹⁷ search space). The reproduction uses a
//! generator with the same statistical skeleton:
//!
//! * sequence lengths are log-normal (protein-like long tail; variable
//!   lengths are what make alignment load balancing hard — Figure 7b);
//! * sequences come in *families*: each family has a random ancestor and
//!   members derived by substitutions and indels at controlled divergence,
//!   so family members genuinely share k-mers and align with high
//!   identity/coverage;
//! * a configurable fraction of singletons provides the unrelated
//!   background.
//!
//! Ground-truth family labels are retained so experiments can measure
//! sensitivity (did the search recover planted pairs?) in addition to
//! performance.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::fasta::SeqStore;

/// Approximate UniProt background amino-acid frequencies over the
/// canonical code order `ARNDCQEGHILKMFPSTWYV` (percent).
const AA_FREQ: [f64; 20] = [
    8.25, 5.53, 4.06, 5.45, 1.37, 3.93, 6.75, 7.07, 2.27, 5.96, 9.66, 5.84, 2.42, 3.86, 4.70, 6.56,
    5.34, 1.08, 2.92, 6.87,
];

/// Configuration of the synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Total number of sequences to generate.
    pub n_sequences: usize,
    /// Mean family size for non-singleton sequences (≥ 2).
    pub mean_family_size: f64,
    /// Fraction of sequences that are unrelated singletons.
    pub singleton_fraction: f64,
    /// Mean sequence length.
    pub mean_len: f64,
    /// Log-normal shape parameter (0 = constant length).
    pub len_sigma: f64,
    /// Hard minimum sequence length.
    pub min_len: usize,
    /// Per-residue substitution probability for family members.
    pub divergence: f64,
    /// Per-residue indel probability for family members.
    pub indel_prob: f64,
    /// Shuffle sequence order after generation. Metaclust-like inputs
    /// have no id-locality between homologs; without shuffling, families
    /// would be contiguous in id and the 2D matrix distribution would see
    /// wildly unrealistic clustering.
    pub shuffle: bool,
    /// RNG seed — equal seeds give bit-identical datasets.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> SyntheticConfig {
        SyntheticConfig {
            n_sequences: 1000,
            mean_family_size: 8.0,
            singleton_fraction: 0.3,
            mean_len: 250.0,
            len_sigma: 0.45,
            min_len: 30,
            divergence: 0.12,
            indel_prob: 0.02,
            shuffle: true,
            seed: 0xBA5715,
        }
    }
}

impl SyntheticConfig {
    /// A small, fast preset for unit tests and examples.
    pub fn small(n: usize, seed: u64) -> SyntheticConfig {
        SyntheticConfig {
            n_sequences: n,
            mean_len: 120.0,
            seed,
            ..SyntheticConfig::default()
        }
    }
}

/// A generated dataset: the sequences plus planted ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The sequences.
    pub store: SeqStore,
    /// Family id per sequence; [`SyntheticDataset::SINGLETON`] marks
    /// singletons.
    pub family: Vec<u32>,
}

impl SyntheticDataset {
    /// Family label of unrelated singleton sequences.
    pub const SINGLETON: u32 = u32::MAX;

    /// Generate a dataset from `cfg` (deterministic in `cfg.seed`).
    pub fn generate(cfg: &SyntheticConfig) -> SyntheticDataset {
        assert!(
            cfg.mean_family_size >= 2.0,
            "families need at least 2 members"
        );
        assert!((0.0..=1.0).contains(&cfg.singleton_fraction));
        assert!((0.0..1.0).contains(&cfg.divergence));
        assert!((0.0..1.0).contains(&cfg.indel_prob));
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut store = SeqStore::new();
        let mut family = Vec::with_capacity(cfg.n_sequences);

        let n_singletons = (cfg.n_sequences as f64 * cfg.singleton_fraction).round() as usize;
        let n_family_seqs = cfg.n_sequences - n_singletons;

        // Families first.
        let mut fid = 0u32;
        let mut produced = 0usize;
        while produced < n_family_seqs {
            let remaining = n_family_seqs - produced;
            let size = sample_family_size(&mut rng, cfg.mean_family_size).min(remaining);
            let ancestor = random_seq(&mut rng, cfg);
            for m in 0..size {
                let member = if m == 0 {
                    ancestor.clone()
                } else {
                    mutate(&mut rng, &ancestor, cfg)
                };
                store.push(format!("fam{fid}_m{m}"), member);
                family.push(fid);
            }
            produced += size;
            fid += 1;
        }
        // Then singletons.
        for s in 0..n_singletons {
            store.push(format!("single{s}"), random_seq(&mut rng, cfg));
            family.push(Self::SINGLETON);
        }
        if cfg.shuffle {
            // Fisher–Yates over (sequence, label) pairs, deterministic in
            // the same RNG stream.
            let n = family.len();
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let shuffled_store = store.subset(&order);
            let shuffled_family: Vec<u32> = order.iter().map(|&i| family[i]).collect();
            store = shuffled_store;
            family = shuffled_family;
        }
        SyntheticDataset { store, family }
    }

    /// Number of generated families.
    pub fn n_families(&self) -> usize {
        self.family
            .iter()
            .filter(|&&f| f != Self::SINGLETON)
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1)
    }

    /// Whether sequences `i` and `j` are planted homologs.
    pub fn same_family(&self, i: usize, j: usize) -> bool {
        self.family[i] != Self::SINGLETON && self.family[i] == self.family[j]
    }

    /// All planted homolog pairs `(i, j)` with `i < j`.
    pub fn true_pairs(&self) -> Vec<(usize, usize)> {
        let mut by_family: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for (idx, &f) in self.family.iter().enumerate() {
            if f != Self::SINGLETON {
                by_family.entry(f).or_default().push(idx);
            }
        }
        let mut pairs = Vec::new();
        let mut fams: Vec<_> = by_family.into_iter().collect();
        fams.sort_unstable_by_key(|(f, _)| *f);
        for (_, members) in fams {
            for a in 0..members.len() {
                for b in a + 1..members.len() {
                    pairs.push((members[a], members[b]));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }
}

fn sample_family_size(rng: &mut impl Rng, mean: f64) -> usize {
    // 2 + geometric with mean (mean - 2).
    let extra_mean = (mean - 2.0).max(0.0);
    if extra_mean == 0.0 {
        return 2;
    }
    let p = 1.0 / (extra_mean + 1.0);
    let mut extra = 0usize;
    while rng.gen::<f64>() > p && extra < 10_000 {
        extra += 1;
    }
    2 + extra
}

fn sample_length(rng: &mut impl Rng, cfg: &SyntheticConfig) -> usize {
    if cfg.len_sigma == 0.0 {
        return (cfg.mean_len.round() as usize).max(cfg.min_len);
    }
    // Log-normal with E[len] = mean_len: mu = ln(mean) - sigma^2 / 2.
    let mu = cfg.mean_len.ln() - cfg.len_sigma * cfg.len_sigma / 2.0;
    // Box–Muller standard normal.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let len = (mu + cfg.len_sigma * z).exp().round() as usize;
    len.max(cfg.min_len)
}

fn random_residue(rng: &mut impl Rng) -> u8 {
    let mut x = rng.gen_range(0.0..100.0);
    for (code, &f) in AA_FREQ.iter().enumerate() {
        if x < f {
            return code as u8;
        }
        x -= f;
    }
    19 // rounding tail -> V
}

fn random_seq(rng: &mut impl Rng, cfg: &SyntheticConfig) -> Vec<u8> {
    let len = sample_length(rng, cfg);
    (0..len).map(|_| random_residue(rng)).collect()
}

fn mutate(rng: &mut impl Rng, ancestor: &[u8], cfg: &SyntheticConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(ancestor.len() + 8);
    for &res in ancestor {
        let r: f64 = rng.gen();
        if r < cfg.indel_prob / 2.0 {
            // Deletion: skip the residue.
            continue;
        } else if r < cfg.indel_prob {
            // Insertion before the residue.
            out.push(random_residue(rng));
            out.push(res);
        } else if r < cfg.indel_prob + cfg.divergence {
            out.push(random_residue(rng));
        } else {
            out.push(res);
        }
    }
    if out.is_empty() {
        out.push(random_residue(rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = SyntheticConfig::small(200, 42);
        let a = SyntheticDataset::generate(&cfg);
        let b = SyntheticDataset::generate(&cfg);
        assert_eq!(a.store, b.store);
        assert_eq!(a.family, b.family);
        let c = SyntheticDataset::generate(&SyntheticConfig::small(200, 43));
        assert_ne!(a.store, c.store);
    }

    #[test]
    fn counts_and_labels() {
        let cfg = SyntheticConfig::small(500, 7);
        let ds = SyntheticDataset::generate(&cfg);
        assert_eq!(ds.store.len(), 500);
        assert_eq!(ds.family.len(), 500);
        let singles = ds
            .family
            .iter()
            .filter(|&&f| f == SyntheticDataset::SINGLETON)
            .count();
        assert_eq!(singles, 150); // 0.3 × 500
        assert!(ds.n_families() > 10);
    }

    #[test]
    fn lengths_respect_minimum_and_mean() {
        let cfg = SyntheticConfig {
            n_sequences: 400,
            mean_len: 200.0,
            min_len: 40,
            ..SyntheticConfig::default()
        };
        let ds = SyntheticDataset::generate(&cfg);
        for i in 0..ds.store.len() {
            assert!(ds.store.seq_len(i) >= 30); // mutations can shrink a bit
        }
        let mean = ds.store.mean_len();
        assert!(
            (140.0..270.0).contains(&mean),
            "mean length {mean} far from configured 200"
        );
    }

    #[test]
    fn family_members_share_kmers_singletons_do_not() {
        let cfg = SyntheticConfig {
            n_sequences: 60,
            singleton_fraction: 0.5,
            divergence: 0.1,
            seed: 99,
            ..SyntheticConfig::small(60, 99)
        };
        let ds = SyntheticDataset::generate(&cfg);
        let kmers =
            |i: usize| -> std::collections::HashSet<&[u8]> { ds.store.seq(i).windows(6).collect() };
        // Find a family with ≥ 2 members.
        let pairs = ds.true_pairs();
        assert!(!pairs.is_empty());
        let (a, b) = pairs[0];
        let shared_family = kmers(a).intersection(&kmers(b)).count();
        assert!(
            shared_family >= 2,
            "family members share only {shared_family} 6-mers"
        );
        // Two singletons share essentially nothing.
        let singles: Vec<usize> = (0..ds.store.len())
            .filter(|&i| ds.family[i] == SyntheticDataset::SINGLETON)
            .take(2)
            .collect();
        let shared_noise = kmers(singles[0]).intersection(&kmers(singles[1])).count();
        assert!(shared_noise <= 1);
    }

    #[test]
    fn true_pairs_are_within_family_only() {
        let ds = SyntheticDataset::generate(&SyntheticConfig::small(120, 3));
        for (i, j) in ds.true_pairs() {
            assert!(i < j);
            assert!(ds.same_family(i, j));
        }
        // Quadratic-ish count: every family of size s contributes s(s-1)/2.
        let mut expect = 0usize;
        let mut counts = std::collections::HashMap::new();
        for &f in &ds.family {
            if f != SyntheticDataset::SINGLETON {
                *counts.entry(f).or_insert(0usize) += 1;
            }
        }
        for (_, s) in counts {
            expect += s * (s - 1) / 2;
        }
        assert_eq!(ds.true_pairs().len(), expect);
    }

    #[test]
    fn zero_singleton_fraction() {
        let cfg = SyntheticConfig {
            singleton_fraction: 0.0,
            ..SyntheticConfig::small(50, 1)
        };
        let ds = SyntheticDataset::generate(&cfg);
        assert!(ds.family.iter().all(|&f| f != SyntheticDataset::SINGLETON));
    }

    #[test]
    fn all_singletons() {
        let cfg = SyntheticConfig {
            singleton_fraction: 1.0,
            ..SyntheticConfig::small(50, 1)
        };
        let ds = SyntheticDataset::generate(&cfg);
        assert!(ds.family.iter().all(|&f| f == SyntheticDataset::SINGLETON));
        assert!(ds.true_pairs().is_empty());
        assert_eq!(ds.n_families(), 0);
    }

    #[test]
    fn constant_length_mode() {
        let cfg = SyntheticConfig {
            len_sigma: 0.0,
            divergence: 0.0,
            indel_prob: 0.0,
            singleton_fraction: 1.0,
            mean_len: 77.0,
            ..SyntheticConfig::small(20, 5)
        };
        let ds = SyntheticDataset::generate(&cfg);
        for i in 0..ds.store.len() {
            assert_eq!(ds.store.seq_len(i), 77);
        }
    }

    #[test]
    fn residues_follow_background_roughly() {
        let cfg = SyntheticConfig {
            singleton_fraction: 1.0,
            ..SyntheticConfig::small(300, 11)
        };
        let ds = SyntheticDataset::generate(&cfg);
        let mut counts = [0u64; 21];
        for i in 0..ds.store.len() {
            for &c in ds.store.seq(i) {
                counts[c as usize] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        // Leucine (code 10) should be the most common residue (~9.7%).
        let leu = counts[10] as f64 / total as f64;
        assert!((0.07..0.13).contains(&leu), "L frequency {leu}");
        // No X residues generated.
        assert_eq!(counts[20], 0);
    }
}
