//! FASTA random access: a samtools-faidx-style index.
//!
//! Tree-of-life-scale inputs cannot be re-parsed every time a tool needs
//! one sequence; the ecosystem's answer is the `.fai` index (sequence
//! name, length, byte offset, residues per line, bytes per line). This
//! module builds that index from a FASTA file, serializes it in the
//! standard five-column TSV layout, and serves O(1) random access to any
//! record — which is also what a distributed loader needs to fetch
//! straggler sequences without rescanning its partition.

use std::fs::File;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use crate::fasta::FastaError;

/// One record's entry in the index (the `.fai` columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaiEntry {
    /// Sequence id (header up to the first whitespace).
    pub name: String,
    /// Residue count.
    pub length: u64,
    /// Byte offset of the first residue.
    pub offset: u64,
    /// Residues per full sequence line.
    pub line_bases: u32,
    /// Bytes per full sequence line (incl. the newline).
    pub line_bytes: u32,
}

/// An index over a FASTA file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaIndex {
    entries: Vec<FaiEntry>,
}

impl FastaIndex {
    /// Scan `path` and build the index.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, data before the first header, or records whose
    /// interior lines have inconsistent widths (the `.fai` format cannot
    /// represent those).
    pub fn build(path: &Path) -> Result<FastaIndex, FastaError> {
        let file = File::open(path)?;
        let mut reader = BufReader::new(file);
        let mut entries: Vec<FaiEntry> = Vec::new();
        let mut pos: u64 = 0;
        let mut line = String::new();
        // State of the record being scanned.
        struct Cur {
            name: String,
            length: u64,
            offset: u64,
            line_bases: u32,
            line_bytes: u32,
            last_line_short: bool,
        }
        let mut cur: Option<Cur> = None;
        loop {
            line.clear();
            let nread = reader.read_line(&mut line)?;
            if nread == 0 {
                break;
            }
            let content = line.trim_end_matches(['\r', '\n']);
            if let Some(header) = content.strip_prefix('>') {
                if let Some(c) = cur.take() {
                    entries.push(FaiEntry {
                        name: c.name,
                        length: c.length,
                        offset: c.offset,
                        line_bases: c.line_bases,
                        line_bytes: c.line_bytes,
                    });
                }
                let name = header.split_whitespace().next().unwrap_or("").to_owned();
                cur = Some(Cur {
                    name,
                    length: 0,
                    offset: pos + nread as u64,
                    line_bases: 0,
                    line_bytes: 0,
                    last_line_short: false,
                });
            } else if !content.is_empty() {
                let c = cur.as_mut().ok_or(FastaError::DataBeforeHeader {
                    line: entries.len() + 1,
                })?;
                let bases = content.len() as u32;
                let bytes = nread as u32;
                if c.line_bases == 0 {
                    c.line_bases = bases;
                    c.line_bytes = bytes;
                } else {
                    if c.last_line_short {
                        return Err(FastaError::Io(format!(
                            "record '{}' has an interior short line; not indexable",
                            c.name
                        )));
                    }
                    if bases > c.line_bases {
                        return Err(FastaError::Io(format!(
                            "record '{}' has inconsistent line widths; not indexable",
                            c.name
                        )));
                    }
                    if bases < c.line_bases {
                        c.last_line_short = true;
                    }
                }
                c.length += bases as u64;
            }
            pos += nread as u64;
        }
        if let Some(c) = cur.take() {
            entries.push(FaiEntry {
                name: c.name,
                length: c.length,
                offset: c.offset,
                line_bases: c.line_bases,
                line_bytes: c.line_bytes,
            });
        }
        Ok(FastaIndex { entries })
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in file order.
    pub fn entries(&self) -> &[FaiEntry] {
        &self.entries
    }

    /// Look up an entry by sequence id.
    pub fn get(&self, name: &str) -> Option<&FaiEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Serialize as standard `.fai` TSV.
    pub fn to_fai(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                e.name, e.length, e.offset, e.line_bases, e.line_bytes
            ));
        }
        s
    }

    /// Parse a `.fai` TSV.
    ///
    /// # Errors
    ///
    /// Fails on malformed lines.
    pub fn from_fai(s: &str) -> Result<FastaIndex, FastaError> {
        let mut entries = Vec::new();
        for (no, line) in s.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split('\t').collect();
            if f.len() != 5 {
                return Err(FastaError::Io(format!("bad .fai line {}", no + 1)));
            }
            let parse = |x: &str| -> Result<u64, FastaError> {
                x.parse()
                    .map_err(|_| FastaError::Io(format!("bad .fai number on line {}", no + 1)))
            };
            entries.push(FaiEntry {
                name: f[0].to_owned(),
                length: parse(f[1])?,
                offset: parse(f[2])?,
                line_bases: parse(f[3])? as u32,
                line_bytes: parse(f[4])? as u32,
            });
        }
        Ok(FastaIndex { entries })
    }

    /// Fetch the residues of `name` from the FASTA file in O(record) time
    /// using the index (no scan of preceding records).
    ///
    /// # Errors
    ///
    /// Fails if the record is absent or the file read fails.
    pub fn fetch(&self, path: &Path, name: &str) -> Result<String, FastaError> {
        let e = self
            .get(name)
            .ok_or_else(|| FastaError::Io(format!("'{name}' not in index")))?;
        if e.length == 0 {
            return Ok(String::new());
        }
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(e.offset))?;
        // Bytes spanned: full lines plus the tail.
        let full_lines = e.length / e.line_bases as u64;
        let tail = e.length % e.line_bases as u64;
        let newline_overhead = (e.line_bytes - e.line_bases) as u64;
        let span = full_lines * e.line_bytes as u64 + tail;
        let mut buf = vec![0u8; (span + newline_overhead) as usize];
        let got = file.read(&mut buf)?;
        buf.truncate(got);
        let mut seq = String::with_capacity(e.length as usize);
        for &b in &buf {
            if b != b'\n' && b != b'\r' {
                seq.push(b as char);
            }
            if seq.len() == e.length as usize {
                break;
            }
        }
        if seq.len() != e.length as usize {
            return Err(FastaError::Io(format!(
                "'{name}': expected {} residues, found {}",
                e.length,
                seq.len()
            )));
        }
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::{write_fasta, FastaRecord};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pastis-faidx-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.fa"))
    }

    fn records() -> Vec<FastaRecord> {
        vec![
            FastaRecord {
                id: "alpha".into(),
                desc: Some("first".into()),
                seq: "MKVLAWYHEEMKVLAWYHEEMKVLA".into(), // 25 residues
            },
            FastaRecord {
                id: "beta".into(),
                desc: None,
                seq: "PAWHEAE".into(),
            },
            FastaRecord {
                id: "gamma".into(),
                desc: None,
                seq: "GGSTPNQRCD".repeat(4), // 40 residues
            },
        ]
    }

    fn write(path: &std::path::Path, width: usize) {
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records(), width).unwrap();
        std::fs::write(path, buf).unwrap();
    }

    #[test]
    fn index_reports_names_and_lengths() {
        let p = temp_path("basic");
        write(&p, 10);
        let idx = FastaIndex::build(&p).unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.get("alpha").unwrap().length, 25);
        assert_eq!(idx.get("beta").unwrap().length, 7);
        assert_eq!(idx.get("gamma").unwrap().length, 40);
        assert_eq!(idx.get("alpha").unwrap().line_bases, 10);
        assert!(idx.get("delta").is_none());
    }

    #[test]
    fn fetch_matches_original_at_all_widths() {
        for width in [0usize, 7, 10, 100] {
            let p = temp_path(&format!("w{width}"));
            write(&p, width);
            let idx = FastaIndex::build(&p).unwrap();
            for rec in records() {
                let got = idx.fetch(&p, &rec.id).unwrap();
                assert_eq!(got, rec.seq, "record {} width {width}", rec.id);
            }
        }
    }

    #[test]
    fn fai_roundtrip() {
        let p = temp_path("roundtrip");
        write(&p, 10);
        let idx = FastaIndex::build(&p).unwrap();
        let text = idx.to_fai();
        let back = FastaIndex::from_fai(&text).unwrap();
        assert_eq!(back, idx);
        // Standard five-column TSV.
        assert!(text.lines().all(|l| l.split('\t').count() == 5));
    }

    #[test]
    fn bad_fai_rejected() {
        assert!(FastaIndex::from_fai("name\t3\t5").is_err());
        assert!(FastaIndex::from_fai("name\tx\t0\t1\t2\n").is_err());
        assert!(FastaIndex::from_fai("").unwrap().is_empty());
    }

    #[test]
    fn inconsistent_line_widths_rejected() {
        let p = temp_path("ragged");
        std::fs::write(&p, ">a\nMKVL\nMK\nMKVL\n").unwrap();
        assert!(FastaIndex::build(&p).is_err());
    }

    #[test]
    fn fetch_missing_record_errors() {
        let p = temp_path("missing");
        write(&p, 10);
        let idx = FastaIndex::build(&p).unwrap();
        assert!(idx.fetch(&p, "nope").is_err());
    }

    #[test]
    fn empty_file_index() {
        let p = temp_path("empty");
        std::fs::write(&p, b"").unwrap();
        let idx = FastaIndex::build(&p).unwrap();
        assert!(idx.is_empty());
    }
}
