//! Reduced amino-acid alphabets.
//!
//! PASTIS can "plug in a reduced alphabet" during k-mer extraction to
//! enhance sensitivity (Section V; reference [15] is Murphy, Wallqvist &
//! Levy 2000): grouping exchangeable residues lets diverged homologs share
//! k-mers they would otherwise miss. The k-mer *space* also shrinks from
//! `20^k` to `|Σ|^k`, which changes the k-mer matrix width.
//!
//! Codes here are on top of the canonical 21-letter encoding of
//! [`pastis_align::matrices`]; a reduced alphabet maps residue codes
//! `0..21` onto group ids `0..size()`.

#[cfg(test)]
use pastis_align::matrices::aa_code;
use pastis_align::matrices::AA_COUNT;

/// Available alphabets for k-mer extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReducedAlphabet {
    /// The full 20-letter alphabet (X collapses onto A to keep the k-mer
    /// space exactly `20^k`).
    Full20,
    /// Murphy–Wallqvist–Levy 10-group alphabet:
    /// (LVIM)(C)(A)(G)(ST)(P)(FYW)(EDNQ)(KR)(H).
    Murphy10,
    /// Dayhoff 6-group alphabet: (AGPST)(C)(DENQ)(FWY)(HKR)(ILMV).
    Dayhoff6,
}

impl ReducedAlphabet {
    /// Number of groups (the base of the k-mer space).
    pub fn size(&self) -> usize {
        match self {
            ReducedAlphabet::Full20 => 20,
            ReducedAlphabet::Murphy10 => 10,
            ReducedAlphabet::Dayhoff6 => 6,
        }
    }

    /// Map a canonical residue code (0..21) to its group id.
    #[inline]
    pub fn reduce(&self, code: u8) -> u8 {
        debug_assert!((code as usize) < AA_COUNT);
        match self {
            ReducedAlphabet::Full20 => {
                // X (20) folds onto A (0).
                if code >= 20 {
                    0
                } else {
                    code
                }
            }
            ReducedAlphabet::Murphy10 => MURPHY10[code as usize],
            ReducedAlphabet::Dayhoff6 => DAYHOFF6[code as usize],
        }
    }

    /// Reduce a whole encoded sequence.
    pub fn reduce_seq(&self, seq: &[u8]) -> Vec<u8> {
        seq.iter().map(|&c| self.reduce(c)).collect()
    }

    /// The number of distinct k-mers under this alphabet — the column
    /// dimension of the k-mer matrix.
    pub fn kmer_space(&self, k: usize) -> usize {
        self.size().pow(k as u32)
    }
}

/// Group table for Murphy-10, indexed by canonical code
/// (`ARNDCQEGHILKMFPSTWYVX`). Groups:
/// 0=(LVIM) 1=C 2=A 3=G 4=(ST) 5=P 6=(FYW) 7=(EDNQ) 8=(KR) 9=H.
/// X maps to group 2 (A).
#[rustfmt::skip]
const MURPHY10: [u8; AA_COUNT] = [
    2, // A
    8, // R
    7, // N
    7, // D
    1, // C
    7, // Q
    7, // E
    3, // G
    9, // H
    0, // I
    0, // L
    8, // K
    0, // M
    6, // F
    5, // P
    4, // S
    4, // T
    6, // W
    6, // Y
    0, // V
    2, // X
];

/// Group table for Dayhoff-6. Groups:
/// 0=(AGPST) 1=C 2=(DENQ) 3=(FWY) 4=(HKR) 5=(ILMV). X maps to group 0.
#[rustfmt::skip]
const DAYHOFF6: [u8; AA_COUNT] = [
    0, // A
    4, // R
    2, // N
    2, // D
    1, // C
    2, // Q
    2, // E
    0, // G
    4, // H
    5, // I
    5, // L
    4, // K
    5, // M
    3, // F
    0, // P
    0, // S
    0, // T
    3, // W
    3, // Y
    5, // V
    0, // X
];

#[cfg(test)]
mod tests {
    use super::*;

    fn code(c: u8) -> u8 {
        aa_code(c).unwrap()
    }

    #[test]
    fn sizes() {
        assert_eq!(ReducedAlphabet::Full20.size(), 20);
        assert_eq!(ReducedAlphabet::Murphy10.size(), 10);
        assert_eq!(ReducedAlphabet::Dayhoff6.size(), 6);
    }

    #[test]
    fn group_ids_in_range() {
        for alpha in [
            ReducedAlphabet::Full20,
            ReducedAlphabet::Murphy10,
            ReducedAlphabet::Dayhoff6,
        ] {
            for c in 0..AA_COUNT as u8 {
                assert!((alpha.reduce(c) as usize) < alpha.size());
            }
        }
    }

    #[test]
    fn murphy_groups_exchangeable_residues() {
        let a = ReducedAlphabet::Murphy10;
        // LVIM together.
        assert_eq!(a.reduce(code(b'L')), a.reduce(code(b'V')));
        assert_eq!(a.reduce(code(b'I')), a.reduce(code(b'M')));
        // KR together, H alone.
        assert_eq!(a.reduce(code(b'K')), a.reduce(code(b'R')));
        assert_ne!(a.reduce(code(b'H')), a.reduce(code(b'K')));
        // Aromatics together.
        assert_eq!(a.reduce(code(b'F')), a.reduce(code(b'W')));
        assert_eq!(a.reduce(code(b'W')), a.reduce(code(b'Y')));
        // EDNQ together.
        assert_eq!(a.reduce(code(b'E')), a.reduce(code(b'D')));
        assert_eq!(a.reduce(code(b'N')), a.reduce(code(b'Q')));
        // C alone.
        assert_ne!(a.reduce(code(b'C')), a.reduce(code(b'S')));
    }

    #[test]
    fn dayhoff_groups() {
        let a = ReducedAlphabet::Dayhoff6;
        for pair in [(b'A', b'G'), (b'P', b'S'), (b'S', b'T')] {
            assert_eq!(a.reduce(code(pair.0)), a.reduce(code(pair.1)));
        }
        assert_eq!(a.reduce(code(b'H')), a.reduce(code(b'K')));
        assert_ne!(a.reduce(code(b'C')), a.reduce(code(b'A')));
    }

    #[test]
    fn full20_is_identity_except_x() {
        let a = ReducedAlphabet::Full20;
        for c in 0..20u8 {
            assert_eq!(a.reduce(c), c);
        }
        assert_eq!(a.reduce(20), 0);
    }

    #[test]
    fn reduce_seq_maps_elementwise() {
        let a = ReducedAlphabet::Murphy10;
        let seq = vec![code(b'L'), code(b'K'), code(b'C')];
        assert_eq!(a.reduce_seq(&seq), vec![0, 8, 1]);
    }

    #[test]
    fn kmer_space_sizes() {
        assert_eq!(ReducedAlphabet::Full20.kmer_space(6), 64_000_000);
        assert_eq!(ReducedAlphabet::Murphy10.kmer_space(6), 1_000_000);
        assert_eq!(ReducedAlphabet::Dayhoff6.kmer_space(3), 216);
    }

    #[test]
    fn reduction_preserves_distinguishability_partially() {
        // Murphy-10 must still distinguish at least 10 residues pairwise.
        let a = ReducedAlphabet::Murphy10;
        let groups: std::collections::HashSet<u8> = (0..20u8).map(|c| a.reduce(c)).collect();
        assert_eq!(groups.len(), 10);
    }
}
