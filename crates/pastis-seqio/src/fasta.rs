//! FASTA parsing/writing and the in-memory sequence store.
//!
//! The PASTIS input is "a file in FASTA format (a very common file format
//! in bioinformatics)"; sequences are read once, encoded, and held in
//! memory for the whole search. [`SeqStore`] is that in-memory form:
//! residue-coded sequences plus ids, the structure every other crate
//! aligns and indexes against.

use std::fmt;
use std::io::{BufRead, Write};

use pastis_align::matrices::{aa_code, decode};

/// One FASTA record: header id, optional description, raw residue letters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// The id: header text up to the first whitespace.
    pub id: String,
    /// The rest of the header line, if any.
    pub desc: Option<String>,
    /// Residue letters (possibly multi-line in the file, joined here).
    pub seq: String,
}

/// Errors from FASTA parsing or encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastaError {
    /// Sequence data appeared before any `>` header.
    DataBeforeHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A header introduced a record that has no sequence lines.
    EmptyRecord {
        /// The record id.
        id: String,
    },
    /// A residue letter outside the amino-acid alphabet.
    InvalidResidue {
        /// The record id.
        id: String,
        /// The offending byte.
        byte: u8,
    },
    /// A record exceeded the streaming reader's per-record byte bound.
    RecordTooLarge {
        /// The record id.
        id: String,
        /// The configured bound in bytes.
        limit: usize,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::DataBeforeHeader { line } => {
                write!(f, "sequence data before any '>' header at line {line}")
            }
            FastaError::EmptyRecord { id } => write!(f, "record '{id}' has no sequence"),
            FastaError::InvalidResidue { id, byte } => write!(
                f,
                "invalid residue byte 0x{byte:02x} ('{}') in record '{id}'",
                *byte as char
            ),
            FastaError::RecordTooLarge { id, limit } => {
                write!(f, "record '{id}' exceeds the {limit}-byte record bound")
            }
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for FastaError {}

impl From<std::io::Error> for FastaError {
    fn from(e: std::io::Error) -> Self {
        FastaError::Io(e.to_string())
    }
}

/// Streaming FASTA reader: an iterator yielding one [`FastaRecord`] at a
/// time, so ingestion memory is bounded by the largest single record (plus
/// one line buffer) instead of the whole file. Handles multi-line
/// sequences, CRLF line endings, blank lines, and lowercase residues —
/// identical accept/reject behavior to [`parse_fasta`], which is now a
/// `collect()` over this stream.
///
/// An optional per-record byte bound ([`FastaStream::with_record_bound`])
/// turns a pathologically large record into a typed
/// [`FastaError::RecordTooLarge`] instead of unbounded growth — the
/// ingestion guard for `--mem-budget` runs.
pub struct FastaStream<R: BufRead> {
    reader: R,
    line: String,
    lineno: usize,
    /// Header of the next record, already consumed from the reader.
    pending: Option<(String, Option<String>)>,
    record_bound: Option<usize>,
    /// Set after an error or EOF: the stream yields nothing further.
    done: bool,
}

fn split_header(header: &str) -> (String, Option<String>) {
    let mut parts = header.splitn(2, char::is_whitespace);
    let id = parts.next().unwrap_or("").to_owned();
    let desc = parts
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned);
    (id, desc)
}

impl<R: BufRead> FastaStream<R> {
    /// Stream records from `reader` with no per-record bound.
    pub fn new(reader: R) -> FastaStream<R> {
        FastaStream {
            reader,
            line: String::new(),
            lineno: 0,
            pending: None,
            record_bound: None,
            done: false,
        }
    }

    /// Fail any record whose accumulated residue letters exceed `bytes`.
    pub fn with_record_bound(mut self, bytes: usize) -> FastaStream<R> {
        self.record_bound = Some(bytes);
        self
    }

    /// Read the next line into the reused buffer; `Ok(None)` at EOF.
    fn read_line(&mut self) -> Result<Option<&str>, FastaError> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Ok(None);
        }
        self.lineno += 1;
        Ok(Some(self.line.trim_end_matches(['\r', '\n'])))
    }

    fn next_record(&mut self) -> Result<Option<FastaRecord>, FastaError> {
        // Find this record's header: carried over from the previous call,
        // or the first non-blank line of the stream.
        let (id, desc) = match self.pending.take() {
            Some(h) => h,
            None => loop {
                match self.read_line()? {
                    None => return Ok(None),
                    Some("") => continue,
                    Some(line) => match line.strip_prefix('>') {
                        Some(h) => break split_header(h),
                        None => return Err(FastaError::DataBeforeHeader { line: self.lineno }),
                    },
                }
            },
        };
        // Accumulate sequence lines until the next header or EOF.
        let mut seq = String::new();
        loop {
            match self.read_line()? {
                None => break,
                Some("") => continue,
                Some(line) => match line.strip_prefix('>') {
                    Some(h) => {
                        self.pending = Some(split_header(h));
                        break;
                    }
                    None => {
                        seq.push_str(line.trim());
                        if self.record_bound.is_some_and(|b| seq.len() > b) {
                            return Err(FastaError::RecordTooLarge {
                                id,
                                limit: self.record_bound.unwrap(),
                            });
                        }
                    }
                },
            }
        }
        if seq.is_empty() {
            return Err(FastaError::EmptyRecord { id });
        }
        Ok(Some(FastaRecord { id, desc, seq }))
    }
}

impl<R: BufRead> Iterator for FastaStream<R> {
    type Item = Result<FastaRecord, FastaError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Parse all records from a reader. Handles multi-line sequences, CRLF
/// line endings, blank lines, and lowercase residues.
pub fn parse_fasta<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>, FastaError> {
    FastaStream::new(reader).collect()
}

/// Write records in FASTA format, wrapping sequence lines at `width`
/// characters (0 = no wrapping).
pub fn write_fasta<W: Write>(
    mut w: W,
    records: &[FastaRecord],
    width: usize,
) -> std::io::Result<()> {
    for rec in records {
        match &rec.desc {
            Some(d) => writeln!(w, ">{} {}", rec.id, d)?,
            None => writeln!(w, ">{}", rec.id)?,
        }
        if width == 0 {
            writeln!(w, "{}", rec.seq)?;
        } else {
            for chunk in rec.seq.as_bytes().chunks(width) {
                w.write_all(chunk)?;
                writeln!(w)?;
            }
        }
    }
    Ok(())
}

fn encode_residues(id: &str, seq: &str) -> Result<Vec<u8>, FastaError> {
    let mut codes = Vec::with_capacity(seq.len());
    for b in seq.bytes() {
        match aa_code(b) {
            Some(c) => codes.push(c),
            None => {
                return Err(FastaError::InvalidResidue {
                    id: id.to_owned(),
                    byte: b,
                })
            }
        }
    }
    Ok(codes)
}

/// The in-memory dataset: residue-coded sequences plus their ids.
///
/// Sequence ids are dense `0..len()` and travel the rest of the pipeline
/// as `u32` (block-local SUMMA coordinates, pair tasks, similarity edges,
/// TSV dedup keys). [`SeqStore::push`] therefore refuses to grow a store
/// past `u32::MAX + 1` sequences, which makes every downstream
/// `as u32` narrowing of a store index provably lossless.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeqStore {
    ids: Vec<String>,
    seqs: Vec<Vec<u8>>,
}

/// The id the next pushed sequence would get, checked against the `u32`
/// id space the pipeline uses. Factored out of [`SeqStore::push`] so the
/// 2³²-edge boundary can be tested directly: a real store at the edge
/// carries ~2³² heap vectors of bookkeeping, far past what a test can
/// allocate, but every `push` routes through this seam unconditionally.
#[inline]
fn checked_seq_id(next: usize) -> u32 {
    u32::try_from(next).expect(
        "sequence id overflows u32: the pipeline's pair tasks, similarity \
         edges, and load-balance parity all carry u32 ids — shard the input \
         across ranks instead of growing one store past 2^32 sequences",
    )
}

impl SeqStore {
    /// An empty store.
    pub fn new() -> SeqStore {
        SeqStore::default()
    }

    /// Build from parsed FASTA records, encoding residues.
    pub fn from_records(records: &[FastaRecord]) -> Result<SeqStore, FastaError> {
        let mut store = SeqStore::new();
        for rec in records {
            let codes = encode_residues(&rec.id, &rec.seq)?;
            store.push(rec.id.clone(), codes);
        }
        Ok(store)
    }

    /// Build by draining a record stream, encoding each record as it
    /// arrives and dropping its letters immediately — at any moment the
    /// transient footprint beyond the store itself is one record. This is
    /// the bounded ingestion path behind `--mem-budget`.
    pub fn from_fasta_stream<R: BufRead>(stream: FastaStream<R>) -> Result<SeqStore, FastaError> {
        let mut store = SeqStore::new();
        for rec in stream {
            let rec = rec?;
            let codes = encode_residues(&rec.id, &rec.seq)?;
            store.push(rec.id, codes);
        }
        Ok(store)
    }

    /// Append a sequence, returning the dense id it was assigned.
    ///
    /// # Panics
    ///
    /// Panics if the new sequence's id would not fit in `u32` — the id
    /// type the rest of the pipeline narrows to.
    pub fn push(&mut self, id: String, codes: Vec<u8>) -> u32 {
        let seq_id = checked_seq_id(self.ids.len());
        self.ids.push(id);
        self.seqs.push(codes);
        seq_id
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Residue codes of sequence `i`.
    pub fn seq(&self, i: usize) -> &[u8] {
        &self.seqs[i]
    }

    /// Id of sequence `i`.
    pub fn id(&self, i: usize) -> &str {
        &self.ids[i]
    }

    /// Length of sequence `i`.
    pub fn seq_len(&self, i: usize) -> usize {
        self.seqs[i].len()
    }

    /// Total residues across the store.
    pub fn total_residues(&self) -> usize {
        self.seqs.iter().map(Vec::len).sum()
    }

    /// Mean sequence length (0 for an empty store).
    pub fn mean_len(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.total_residues() as f64 / self.len() as f64
        }
    }

    /// Convert back to FASTA records (decoding residue codes).
    pub fn to_records(&self) -> Vec<FastaRecord> {
        (0..self.len())
            .map(|i| FastaRecord {
                id: self.ids[i].clone(),
                desc: None,
                seq: decode(&self.seqs[i]),
            })
            .collect()
    }

    /// A sub-store with the sequences at `indices` (in that order) —
    /// used to carve per-rank partitions and test subsets.
    pub fn subset(&self, indices: &[usize]) -> SeqStore {
        let mut out = SeqStore::new();
        for &i in indices {
            out.push(self.ids[i].clone(), self.seqs[i].clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = ">seq1 first protein\nMKVLAW\nYHEE\n\n>seq2\nPAWHEAE\n";

    #[test]
    fn push_assigns_dense_u32_ids() {
        let mut s = SeqStore::new();
        assert_eq!(s.push("a".into(), vec![0]), 0);
        assert_eq!(s.push("b".into(), vec![1]), 1);
        assert_eq!(s.push("c".into(), vec![2]), 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn seq_id_boundary_holds_at_the_u32_edge() {
        // Largest valid id: exactly u32::MAX (a store of 2^32 sequences).
        assert_eq!(checked_seq_id(u32::MAX as usize), u32::MAX);
        assert_eq!(checked_seq_id(0), 0);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    #[should_panic(expected = "sequence id overflows u32")]
    fn seq_id_past_the_u32_edge_is_rejected() {
        // The 2^32-th id (index 2^32) is the first that cannot narrow.
        let _ = checked_seq_id(u32::MAX as usize + 1);
    }

    #[test]
    fn parse_multiline_and_descriptions() {
        let recs = parse_fasta(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "seq1");
        assert_eq!(recs[0].desc.as_deref(), Some("first protein"));
        assert_eq!(recs[0].seq, "MKVLAWYHEE");
        assert_eq!(recs[1].id, "seq2");
        assert_eq!(recs[1].desc, None);
        assert_eq!(recs[1].seq, "PAWHEAE");
    }

    #[test]
    fn parse_crlf() {
        let recs = parse_fasta(Cursor::new(">a x\r\nMKV\r\nLAW\r\n")).unwrap();
        assert_eq!(recs[0].seq, "MKVLAW");
        assert_eq!(recs[0].desc.as_deref(), Some("x"));
    }

    #[test]
    fn data_before_header_is_an_error() {
        let err = parse_fasta(Cursor::new("MKV\n>a\nMKV\n")).unwrap_err();
        assert!(matches!(err, FastaError::DataBeforeHeader { line: 1 }));
    }

    #[test]
    fn empty_record_is_an_error() {
        let err = parse_fasta(Cursor::new(">a\n>b\nMKV\n")).unwrap_err();
        assert!(matches!(err, FastaError::EmptyRecord { .. }));
        // Trailing empty record too.
        let err = parse_fasta(Cursor::new(">a\nMKV\n>b\n")).unwrap_err();
        assert!(matches!(err, FastaError::EmptyRecord { .. }));
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert_eq!(parse_fasta(Cursor::new("")).unwrap().len(), 0);
        assert_eq!(parse_fasta(Cursor::new("\n\n")).unwrap().len(), 0);
    }

    #[test]
    fn write_parse_roundtrip() {
        let recs = parse_fasta(Cursor::new(SAMPLE)).unwrap();
        for width in [0usize, 3, 80] {
            let mut buf = Vec::new();
            write_fasta(&mut buf, &recs, width).unwrap();
            let back = parse_fasta(Cursor::new(buf)).unwrap();
            assert_eq!(back, recs, "width={width}");
        }
    }

    #[test]
    fn store_encodes_and_reports() {
        let recs = parse_fasta(Cursor::new(SAMPLE)).unwrap();
        let store = SeqStore::from_records(&recs).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.seq_len(0), 10);
        assert_eq!(store.total_residues(), 17);
        assert!((store.mean_len() - 8.5).abs() < 1e-12);
        assert_eq!(store.id(1), "seq2");
        // Codes round-trip through decode.
        assert_eq!(store.to_records()[0].seq, "MKVLAWYHEE");
    }

    #[test]
    fn store_rejects_invalid_residue() {
        let recs = vec![FastaRecord {
            id: "bad".into(),
            desc: None,
            seq: "MK1".into(),
        }];
        let err = SeqStore::from_records(&recs).unwrap_err();
        assert!(matches!(err, FastaError::InvalidResidue { byte: b'1', .. }));
    }

    #[test]
    fn store_accepts_lowercase_and_ambiguity() {
        let recs = vec![FastaRecord {
            id: "ok".into(),
            desc: None,
            seq: "mkvBZX*".into(),
        }];
        let store = SeqStore::from_records(&recs).unwrap();
        assert_eq!(store.seq_len(0), 7);
    }

    #[test]
    fn subset_preserves_order() {
        let recs = parse_fasta(Cursor::new(SAMPLE)).unwrap();
        let store = SeqStore::from_records(&recs).unwrap();
        let sub = store.subset(&[1, 0]);
        assert_eq!(sub.id(0), "seq2");
        assert_eq!(sub.id(1), "seq1");
    }

    #[test]
    fn mean_len_empty_store() {
        assert_eq!(SeqStore::new().mean_len(), 0.0);
    }

    #[test]
    fn stream_yields_records_one_at_a_time() {
        let mut stream = FastaStream::new(Cursor::new(SAMPLE));
        let r1 = stream.next().unwrap().unwrap();
        assert_eq!(r1.id, "seq1");
        assert_eq!(r1.seq, "MKVLAWYHEE");
        let r2 = stream.next().unwrap().unwrap();
        assert_eq!(r2.id, "seq2");
        assert!(stream.next().is_none());
        // Fused: keeps returning None.
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_matches_batch_parser_on_errors() {
        for input in ["MKV\n>a\nMKV\n", ">a\n>b\nMKV\n", ">a\nMKV\n>b\n"] {
            let batch = parse_fasta(Cursor::new(input)).unwrap_err();
            let streamed = FastaStream::new(Cursor::new(input))
                .collect::<Result<Vec<_>, _>>()
                .unwrap_err();
            assert_eq!(batch, streamed, "input {input:?}");
        }
        // Errors fuse the stream too.
        let mut s = FastaStream::new(Cursor::new("MKV\n>a\nMKV\n"));
        assert!(s.next().unwrap().is_err());
        assert!(s.next().is_none());
    }

    #[test]
    fn stream_record_bound_rejects_oversized_records() {
        let input = ">big\nMKVLAW\nYHEE\n>small\nMKV\n";
        let err = FastaStream::new(Cursor::new(input))
            .with_record_bound(8)
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(
            matches!(&err, FastaError::RecordTooLarge { id, limit: 8 } if id == "big"),
            "{err:?}"
        );
        // A bound at least as large as every record accepts the input.
        let recs = FastaStream::new(Cursor::new(input))
            .with_record_bound(10)
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn store_from_stream_matches_batch_path() {
        let batch = SeqStore::from_records(&parse_fasta(Cursor::new(SAMPLE)).unwrap()).unwrap();
        let streamed = SeqStore::from_fasta_stream(FastaStream::new(Cursor::new(SAMPLE))).unwrap();
        assert_eq!(batch, streamed);
    }
}
