//! Search parameters.
//!
//! Defaults follow the paper's production run (Table IV): k-mer length 6,
//! gap open 11 / extend 2, common-k-mer threshold 2, ANI threshold 0.30,
//! coverage threshold 0.70.

use std::path::PathBuf;

use pastis_align::sw::GapPenalties;
use pastis_align::SimdPolicy;
use pastis_seqio::ReducedAlphabet;
use pastis_sparse::SpGemmKind;

use crate::autotune::TunePolicy;
use crate::loadbalance::LoadBalance;

/// Which alignment kernel the pipeline uses on candidate pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignKind {
    /// Full-matrix Smith–Waterman with traceback (the paper's ADEPT
    /// kernel; required for exact ANI/coverage filtering).
    FullSw,
    /// Banded Smith–Waterman around the recorded seed diagonal with the
    /// given half-width. Score-only: candidate edges keep count/score but
    /// ANI/coverage filtering degrades to a score threshold.
    Banded(usize),
    /// Full-matrix score-only Smith–Waterman, dispatched through the
    /// multilane lock-step SIMD kernel (ADEPT-style inter-task
    /// parallelism). Exact scores — equivalent to `Banded(∞)` — at a
    /// fraction of the scalar kernel's cost; edge filtering degrades to
    /// the same normalized-score threshold as `Banded`.
    ScoreOnly,
}

/// All tunables of one similarity search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchParams {
    /// k-mer length (paper: 6).
    pub k: usize,
    /// Alphabet used for k-mer extraction (sensitivity option).
    pub alphabet: ReducedAlphabet,
    /// Number of substitute (nearest-neighbor) k-mers added per extracted
    /// k-mer (0 disables; sensitivity option from Section V).
    pub substitute_kmers: usize,
    /// Minimum number of shared k-mers for a pair to be aligned
    /// (paper: 2).
    pub common_kmer_threshold: u32,
    /// Minimum alignment identity for a pair to enter the similarity
    /// graph (paper's "ANI threshold": 0.30).
    pub ani_threshold: f64,
    /// Minimum coverage of the shorter sequence (paper: 0.70).
    pub coverage_threshold: f64,
    /// Affine gap model (paper: open 11, extend 2).
    pub gaps: GapPenalties,
    /// Alignment kernel.
    pub align_kind: AlignKind,
    /// Worker threads of the intra-rank batch-alignment pool (Section
    /// IV-D's ADEPT driver analog). `1` aligns on the calling thread;
    /// `0` uses one worker per available core. The similarity graph is
    /// bit-identical for every value — only wall time changes.
    pub align_threads: usize,
    /// Vector backend of the score-only alignment kernel (`--simd`).
    /// `Auto` picks the best the host supports; forcing an unavailable
    /// backend fails validation. Like `align_threads`, the similarity
    /// graph is bit-identical for every choice — only throughput changes.
    pub simd: SimdPolicy,
    /// Worker threads of the intra-rank local SpGEMM pool used inside each
    /// SUMMA stage (`--spgemm-threads`). `1` multiplies on the calling
    /// thread; `0` uses one worker per available core. The overlap matrix
    /// — and therefore the whole similarity graph — is bit-identical for
    /// every value; only wall time changes.
    pub spgemm_threads: usize,
    /// Local SpGEMM kernel-selection policy (`--spgemm`). `Auto` picks
    /// hash/heap/parallel per multiplication from a compression-factor
    /// heuristic; the kernels share one combine-order contract, so the
    /// output is bit-identical for every choice.
    pub spgemm: SpGemmKind,
    /// Size of the unified intra-rank worker pool shared by the sparse and
    /// alignment engines (`--threads`). `None` keeps the legacy static
    /// split (`align_threads` / `spgemm_threads` each own their scoped
    /// team); `Some(n)` runs both engines through one pool of `n` threads
    /// total — `n - 1` persistent workers plus the submitting thread — so
    /// idle sparse workers steal alignment units and vice versa. `Some(0)`
    /// sizes the pool at one thread per available core. The similarity
    /// graph is bit-identical either way — only wall time changes.
    pub threads: Option<usize>,
    /// With the unified pool, an upper bound on how many pool workers may
    /// serve alignment units concurrently (`None` = uncapped). This is the
    /// cap semantics `--align-threads` takes when `--threads` is given.
    /// Requires `threads`.
    pub align_cap: Option<usize>,
    /// With the unified pool, an upper bound on how many pool workers may
    /// serve SpGEMM row chunks concurrently (`None` = uncapped). This is
    /// the cap semantics `--spgemm-threads` takes when `--threads` is
    /// given. Requires `threads`.
    pub spgemm_cap: Option<usize>,
    /// Double-buffer the SUMMA broadcasts (`--overlap`): while stage `k`'s
    /// local multiply runs on a scoped compute thread, the rank thread —
    /// still the only one issuing collectives — posts stage `k+1`'s A/B
    /// broadcasts. The collective order and count are unchanged, so the
    /// output graph is bit-identical with overlap on or off; only the
    /// broadcasts' wall-clock placement moves.
    pub overlap: bool,
    /// Row blocking factor of the Blocked 2D Sparse SUMMA.
    pub block_rows: usize,
    /// Column blocking factor.
    pub block_cols: usize,
    /// Load-balancing scheme (Section VI-B).
    pub load_balance: LoadBalance,
    /// Overlap block `i+1`'s SpGEMM with block `i`'s alignment
    /// (Section VI-C).
    pub pre_blocking: bool,
    /// Deadline in milliseconds for blocking point-to-point receives in the
    /// pipeline (the sequence-exchange "cwait"). `None` waits forever;
    /// `Some` turns a lost peer into a typed error instead of a hang.
    /// Robustness knob — never affects the output.
    pub op_timeout_ms: Option<u64>,
    /// Directory for per-block checkpoints (`None` disables
    /// checkpointing). Robustness knob — never affects the output.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the newest valid checkpoint in `checkpoint_dir` instead
    /// of recomputing completed blocks. The resumed run's final graph is
    /// bit-identical to an uninterrupted run.
    pub resume: bool,
    /// Stop after this many scheduled blocks (absolute index, so it
    /// composes with `resume`). Deterministic stand-in for "the job was
    /// killed here" in kill-and-resume tests; `None` runs to completion.
    pub halt_after_blocks: Option<usize>,
    /// Flag ranks whose block seconds exceed `factor × median` at the end
    /// of the run (`None` disables the scan). Must exceed 1.0.
    pub straggler_factor: Option<f64>,
    /// Per-rank memory budget in bytes (`--mem-budget`). `None` runs
    /// unbudgeted. With a budget, the pipeline charges sequences, k-mer
    /// matrix stripes, staged SUMMA broadcast buffers, and completed
    /// output blocks to a [`crate::MemBudget`] accountant, spilling the
    /// coldest completed blocks and inactive index stripes to
    /// [`SearchParams::spill_dir`] under pressure. Robustness knob — the
    /// similarity graph stays bit-identical for every budget large enough
    /// to complete.
    pub mem_budget: Option<u64>,
    /// Directory for spilled shards. Required when `mem_budget` is set
    /// (spilling is the budget's relief valve). Robustness knob — never
    /// affects the output.
    pub spill_dir: Option<PathBuf>,
    /// Self-tuning policy (`--tune`). `Off` leaves every knob as passed;
    /// `Auto` seeds the engine split from the cost model and re-splits
    /// caps / lookahead mid-run from collectively-reduced telemetry;
    /// `Fixed(spec)` applies a hand-tuned spec once. Scheduling knob —
    /// every policy produces a bit-identical similarity graph; only wall
    /// time changes. Excluded from the checkpoint fingerprint for the
    /// same reason threads/caps/overlap are.
    pub tune: TunePolicy,
    /// Seeded fault-injection plan applied to spill-shard writes (the
    /// `spill_*` keys of the `--fault` spec). Reads verify CRCs and fall
    /// back to recomputing the affected block, so the output stays
    /// bit-identical under any survivable plan.
    pub spill_faults: Option<pastis_comm::FaultPlan>,
}

impl Default for SearchParams {
    fn default() -> SearchParams {
        SearchParams {
            k: 6,
            alphabet: ReducedAlphabet::Full20,
            substitute_kmers: 0,
            common_kmer_threshold: 2,
            ani_threshold: 0.30,
            coverage_threshold: 0.70,
            gaps: GapPenalties::pastis_defaults(),
            align_kind: AlignKind::FullSw,
            align_threads: 1,
            simd: SimdPolicy::Auto,
            spgemm_threads: 1,
            spgemm: SpGemmKind::Auto,
            threads: None,
            align_cap: None,
            spgemm_cap: None,
            overlap: false,
            block_rows: 1,
            block_cols: 1,
            load_balance: LoadBalance::IndexBased,
            pre_blocking: false,
            op_timeout_ms: None,
            checkpoint_dir: None,
            resume: false,
            halt_after_blocks: None,
            straggler_factor: Some(3.0),
            mem_budget: None,
            spill_dir: None,
            tune: TunePolicy::Off,
            spill_faults: None,
        }
    }
}

impl SearchParams {
    /// Parameters tuned for unit tests: short k so tiny sequences share
    /// k-mers, permissive thresholds.
    pub fn test_defaults() -> SearchParams {
        SearchParams {
            k: 4,
            common_kmer_threshold: 1,
            ani_threshold: 0.30,
            coverage_threshold: 0.30,
            ..SearchParams::default()
        }
    }

    /// Set the blocking factors, builder style.
    pub fn with_blocking(mut self, br: usize, bc: usize) -> SearchParams {
        self.block_rows = br;
        self.block_cols = bc;
        self
    }

    /// Set the load-balancing scheme, builder style.
    pub fn with_load_balance(mut self, lb: LoadBalance) -> SearchParams {
        self.load_balance = lb;
        self
    }

    /// Enable/disable pre-blocking, builder style.
    pub fn with_pre_blocking(mut self, on: bool) -> SearchParams {
        self.pre_blocking = on;
        self
    }

    /// Set the intra-rank alignment worker count, builder style
    /// (`0` = one worker per available core).
    pub fn with_align_threads(mut self, threads: usize) -> SearchParams {
        self.align_threads = threads;
        self
    }

    /// Set the score-only vector-backend policy, builder style.
    pub fn with_simd(mut self, simd: SimdPolicy) -> SearchParams {
        self.simd = simd;
        self
    }

    /// Set the intra-rank SpGEMM worker count, builder style
    /// (`0` = one worker per available core).
    pub fn with_spgemm_threads(mut self, threads: usize) -> SearchParams {
        self.spgemm_threads = threads;
        self
    }

    /// Set the local SpGEMM kernel-selection policy, builder style.
    pub fn with_spgemm(mut self, kind: SpGemmKind) -> SearchParams {
        self.spgemm = kind;
        self
    }

    /// Run both engines through one unified pool of `threads` threads
    /// total, builder style (`0` = one per available core).
    pub fn with_threads(mut self, threads: usize) -> SearchParams {
        self.threads = Some(threads);
        self
    }

    /// Cap concurrent alignment workers of the unified pool, builder
    /// style. Requires [`SearchParams::with_threads`].
    pub fn with_align_cap(mut self, cap: usize) -> SearchParams {
        self.align_cap = Some(cap);
        self
    }

    /// Cap concurrent SpGEMM workers of the unified pool, builder style.
    /// Requires [`SearchParams::with_threads`].
    pub fn with_spgemm_cap(mut self, cap: usize) -> SearchParams {
        self.spgemm_cap = Some(cap);
        self
    }

    /// Enable/disable double-buffered SUMMA broadcasts, builder style.
    pub fn with_overlap(mut self, on: bool) -> SearchParams {
        self.overlap = on;
        self
    }

    /// Set the checkpoint directory, builder style.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> SearchParams {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Enable/disable resume-from-checkpoint, builder style.
    pub fn with_resume(mut self, on: bool) -> SearchParams {
        self.resume = on;
        self
    }

    /// Halt after `blocks` scheduled blocks (absolute index), builder
    /// style.
    pub fn with_halt_after_blocks(mut self, blocks: usize) -> SearchParams {
        self.halt_after_blocks = Some(blocks);
        self
    }

    /// Set the point-to-point receive deadline, builder style.
    pub fn with_op_timeout_ms(mut self, ms: u64) -> SearchParams {
        self.op_timeout_ms = Some(ms);
        self
    }

    /// Set the per-rank memory budget in bytes, builder style.
    pub fn with_mem_budget(mut self, bytes: u64) -> SearchParams {
        self.mem_budget = Some(bytes);
        self
    }

    /// Set the spill directory, builder style.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> SearchParams {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Set the self-tuning policy, builder style.
    pub fn with_tune(mut self, tune: TunePolicy) -> SearchParams {
        self.tune = tune;
        self
    }

    /// Set the spill-write fault-injection plan, builder style.
    pub fn with_spill_faults(mut self, plan: pastis_comm::FaultPlan) -> SearchParams {
        self.spill_faults = Some(plan);
        self
    }

    /// Number of k-mer columns of the sequences-by-k-mers matrix.
    pub fn kmer_space(&self) -> usize {
        self.alphabet.kmer_space(self.k)
    }

    /// Validate parameter sanity; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k-mer length must be positive".into());
        }
        if self.k > 12 {
            return Err(format!(
                "k = {} overflows the 32-bit k-mer id space for this alphabet",
                self.k
            ));
        }
        if self.kmer_space() > u32::MAX as usize {
            return Err(format!(
                "k-mer space {} exceeds the matrix index range",
                self.kmer_space()
            ));
        }
        if self.block_rows == 0 || self.block_cols == 0 {
            return Err("blocking factors must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.ani_threshold)
            || !(0.0..=1.0).contains(&self.coverage_threshold)
        {
            return Err("thresholds must lie in [0, 1]".into());
        }
        if self.gaps.open < 0 || self.gaps.extend < 0 {
            return Err("gap penalties must be non-negative".into());
        }
        if self.resume && self.checkpoint_dir.is_none() {
            return Err("resume requires a checkpoint directory".into());
        }
        if self.threads.is_none() && (self.align_cap.is_some() || self.spgemm_cap.is_some()) {
            return Err("per-engine caps require the unified pool (--threads)".into());
        }
        if let TunePolicy::Fixed(spec) = &self.tune {
            // Same contradiction as explicit caps without a pool.
            if self.threads.is_none() && (spec.spgemm_cap.is_some() || spec.align_cap.is_some()) {
                return Err(
                    "--tune fixed: engine caps require the unified pool (--threads)".into(),
                );
            }
        }
        self.simd.resolve()?;
        if let Some(f) = self.straggler_factor {
            if f.is_nan() || f <= 1.0 {
                return Err(format!("straggler factor must exceed 1.0, got {f}"));
            }
        }
        if let Some(b) = self.mem_budget {
            if b == 0 {
                return Err("memory budget must be positive".into());
            }
            if self.spill_dir.is_none() {
                return Err("--mem-budget requires a spill directory".into());
            }
            if self.checkpoint_dir.is_some() {
                return Err(
                    "--mem-budget cannot be combined with checkpointing: spill shards \
                     already persist completed blocks, and a checkpoint written under \
                     a budget would omit the spilled ones"
                        .into(),
                );
            }
        }
        if self
            .spill_faults
            .as_ref()
            .is_some_and(|p| p.has_spill_faults())
            && self.spill_dir.is_none()
        {
            return Err("spill fault injection requires a spill directory".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_production_run() {
        let p = SearchParams::default();
        assert_eq!(p.k, 6);
        assert_eq!(p.gaps.open, 11);
        assert_eq!(p.gaps.extend, 2);
        assert_eq!(p.common_kmer_threshold, 2);
        assert!((p.ani_threshold - 0.30).abs() < 1e-12);
        assert!((p.coverage_threshold - 0.70).abs() < 1e-12);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn kmer_space_by_alphabet() {
        let full = SearchParams::default();
        assert_eq!(full.kmer_space(), 64_000_000);
        let reduced = SearchParams {
            alphabet: ReducedAlphabet::Murphy10,
            ..SearchParams::default()
        };
        assert_eq!(reduced.kmer_space(), 1_000_000);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let bad_k = SearchParams {
            k: 0,
            ..SearchParams::default()
        };
        assert!(bad_k.validate().is_err());
        let big_k = SearchParams {
            k: 9,
            ..SearchParams::default()
        };
        // 20^9 > u32::MAX.
        assert!(big_k.validate().is_err());
        let bad_block = SearchParams::default().with_blocking(0, 3);
        assert!(bad_block.validate().is_err());
        let bad_thr = SearchParams {
            ani_threshold: 1.5,
            ..SearchParams::default()
        };
        assert!(bad_thr.validate().is_err());
    }

    #[test]
    fn reduced_alphabet_allows_larger_k() {
        let p = SearchParams {
            alphabet: ReducedAlphabet::Dayhoff6,
            k: 12,
            ..SearchParams::default()
        };
        // 6^12 ≈ 2.2e9 — still within u32? No: 2_176_782_336 < 4_294_967_295. OK.
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let p = SearchParams::default()
            .with_blocking(4, 5)
            .with_load_balance(LoadBalance::Triangular)
            .with_pre_blocking(true)
            .with_align_threads(4);
        assert_eq!((p.block_rows, p.block_cols), (4, 5));
        assert_eq!(p.load_balance, LoadBalance::Triangular);
        assert!(p.pre_blocking);
        assert_eq!(p.align_threads, 4);
    }

    #[test]
    fn robustness_knobs_validate() {
        // Resume without a checkpoint dir is a contradiction.
        let bad = SearchParams::default().with_resume(true);
        assert!(bad.validate().is_err());
        let ok = SearchParams::default()
            .with_checkpoint_dir("/tmp/ckpt")
            .with_resume(true)
            .with_halt_after_blocks(3)
            .with_op_timeout_ms(5000);
        assert!(ok.validate().is_ok());
        // A straggler factor at or below the median would flag healthy
        // ranks.
        let bad_factor = SearchParams {
            straggler_factor: Some(1.0),
            ..SearchParams::default()
        };
        assert!(bad_factor.validate().is_err());
        let off = SearchParams {
            straggler_factor: None,
            ..SearchParams::default()
        };
        assert!(off.validate().is_ok());
    }

    #[test]
    fn mem_budget_knobs_validate() {
        // Budget defaults off.
        let p = SearchParams::default();
        assert_eq!(p.mem_budget, None);
        assert_eq!(p.spill_dir, None);
        assert!(p.spill_faults.is_none());
        // A budget with nowhere to spill is a contradiction.
        let bad = SearchParams::default().with_mem_budget(1 << 20);
        assert!(bad.validate().is_err());
        let zero = SearchParams::default()
            .with_mem_budget(0)
            .with_spill_dir("/tmp/spill");
        assert!(zero.validate().is_err());
        let ok = SearchParams::default()
            .with_mem_budget(1 << 20)
            .with_spill_dir("/tmp/spill");
        assert!(ok.validate().is_ok());
        // Spill faults without a spill directory can never fire.
        let plan = pastis_comm::FaultPlan::parse("seed=1,spill_corrupt=0.5").unwrap();
        let bad = SearchParams::default().with_spill_faults(plan.clone());
        assert!(bad.validate().is_err());
        let ok = SearchParams::default()
            .with_spill_faults(plan)
            .with_spill_dir("/tmp/spill");
        assert!(ok.validate().is_ok());
        // A comm-only plan carried in spill_faults is harmless without a dir.
        let comm_only = pastis_comm::FaultPlan::parse("seed=1,delay=0.1:10").unwrap();
        assert!(SearchParams::default()
            .with_spill_faults(comm_only)
            .validate()
            .is_ok());
        // A checkpoint written under a budget would omit spilled blocks —
        // the combination is rejected outright.
        let conflict = SearchParams::default()
            .with_mem_budget(1 << 20)
            .with_spill_dir("/tmp/spill")
            .with_checkpoint_dir("/tmp/ckpt");
        assert!(conflict.validate().unwrap_err().contains("checkpoint"));
    }

    #[test]
    fn simd_policy_defaults_auto_and_validates() {
        use pastis_align::SimdBackend;
        let p = SearchParams::default();
        assert_eq!(p.simd, SimdPolicy::Auto);
        assert!(p.validate().is_ok());
        // Forcing the always-present scalar backend is valid everywhere.
        let scalar = SearchParams::default().with_simd(SimdPolicy::Force(SimdBackend::Scalar));
        assert!(scalar.validate().is_ok());
        // Forcing a backend the host lacks must be rejected at validation
        // (NEON never exists on x86_64 and vice versa for AVX2).
        #[cfg(target_arch = "x86_64")]
        let missing = SimdBackend::Neon;
        #[cfg(not(target_arch = "x86_64"))]
        let missing = SimdBackend::Avx2;
        let forced = SearchParams::default().with_simd(SimdPolicy::Force(missing));
        let err = forced.validate().unwrap_err();
        assert!(err.contains("not available"), "{err}");
    }

    #[test]
    fn align_threads_defaults_serial_and_zero_is_valid() {
        let p = SearchParams::default();
        assert_eq!(p.align_threads, 1);
        // 0 means "one worker per core" and must validate.
        assert!(p.with_align_threads(0).validate().is_ok());
    }

    #[test]
    fn unified_pool_knobs_default_off_and_validate() {
        let p = SearchParams::default();
        assert_eq!(p.threads, None);
        assert_eq!(p.align_cap, None);
        assert_eq!(p.spgemm_cap, None);
        assert!(!p.overlap);
        // Caps without the unified pool are a contradiction.
        let bad = SearchParams::default().with_align_cap(2);
        assert!(bad.validate().is_err());
        let bad = SearchParams::default().with_spgemm_cap(2);
        assert!(bad.validate().is_err());
        // With --threads they compose; 0 means auto-size and validates.
        let ok = SearchParams::default()
            .with_threads(4)
            .with_align_cap(2)
            .with_spgemm_cap(1)
            .with_overlap(true);
        assert!(ok.validate().is_ok());
        assert_eq!(ok.threads, Some(4));
        assert_eq!((ok.align_cap, ok.spgemm_cap), (Some(2), Some(1)));
        assert!(ok.overlap);
        assert!(SearchParams::default().with_threads(0).validate().is_ok());
        // Overlap alone (phased pools) is also fine.
        assert!(SearchParams::default()
            .with_overlap(true)
            .validate()
            .is_ok());
    }

    #[test]
    fn tune_policy_defaults_off_and_validates() {
        let p = SearchParams::default();
        assert_eq!(p.tune, TunePolicy::Off);
        assert!(p.validate().is_ok());
        // Auto needs nothing else: without --threads it can still pick
        // blocking/batches; the cap re-split just has no pool to act on.
        assert!(SearchParams::default()
            .with_tune(TunePolicy::Auto)
            .validate()
            .is_ok());
        // A fixed spec with engine caps mirrors the caps-require-threads
        // rule.
        let spec = TunePolicy::parse("fixed:spgemm=2,align=2").unwrap();
        let bad = SearchParams::default().with_tune(spec.clone());
        assert!(bad.validate().unwrap_err().contains("--threads"));
        let ok = SearchParams::default().with_threads(4).with_tune(spec);
        assert!(ok.validate().is_ok());
        // A lookahead/batch-only spec is fine without a pool.
        let la = TunePolicy::parse("fixed:lookahead=0,batch=64").unwrap();
        assert!(SearchParams::default().with_tune(la).validate().is_ok());
    }

    #[test]
    fn spgemm_knobs_default_serial_auto_and_compose() {
        let p = SearchParams::default();
        assert_eq!(p.spgemm_threads, 1);
        assert_eq!(p.spgemm, SpGemmKind::Auto);
        let p = p.with_spgemm_threads(4).with_spgemm(SpGemmKind::Parallel);
        assert_eq!(p.spgemm_threads, 4);
        assert_eq!(p.spgemm, SpGemmKind::Parallel);
        // 0 means "one worker per core" and must validate.
        assert!(p.with_spgemm_threads(0).validate().is_ok());
    }
}
