//! PASTIS-RS core: many-against-many protein similarity search via
//! distributed sparse matrices.
//!
//! This crate is the Rust reproduction of the primary contribution of
//! *"Extreme-scale many-against-many protein similarity search"* (SC'22):
//! the PASTIS pipeline with its three innovations —
//!
//! 1. **Blocked 2D Sparse SUMMA** (Section VI-A): the overlap matrix
//!    `C = A·Aᵀ` (A = sequences × k-mers) is formed in `br × bc` blocks so
//!    the search runs incrementally under a memory budget
//!    ([`pipeline`], on top of [`pastis_sparse::BlockedSumma`]).
//! 2. **Symmetry-aware load balancing** (Section VI-B): the
//!    triangularity-based scheme (skip avoidable blocks, keep the strict
//!    upper triangle) and the index-based scheme (parity pruning that
//!    preserves the uniform nonzero distribution) — [`loadbalance`].
//! 3. **Pre-blocking** (Section VI-C): the SpGEMM discovering block `i+1`
//!    runs concurrently with the alignment of block `i`, hiding the
//!    memory-bound sparse phase behind the compute-bound alignment phase —
//!    [`pipeline`] (real overlapped execution) and [`perfmodel`] (modeled).
//!
//! The pipeline runs on two planes sharing all of this code:
//!
//! * the **functional plane** ([`pipeline::run_search`]) really executes
//!   the distributed program over a [`pastis_comm::Communicator`] — used to
//!   demonstrate that results are identical for any process count,
//!   blocking factor, and load-balancing scheme;
//! * the **performance plane** ([`perfmodel`]) replays the same block
//!   schedule with exact per-rank work counts and an α–β machine model, so
//!   the paper's scaling experiments (Figures 5–9, Tables I–IV) can be
//!   regenerated at Summit node counts on one host.

#![warn(missing_docs)]

pub mod autotune;
pub mod checkpoint;
pub mod distcc;
pub mod filter;
pub mod index;
pub mod kmer;
pub mod loadbalance;
pub mod mcl;
pub mod membudget;
pub mod overlap;
pub mod params;
pub mod perfmodel;
pub mod pipeline;
pub mod serve;
pub mod simgraph;
pub mod stats;
pub mod straggler;
pub mod subkmers;

pub use autotune::{FixedSpec, TuneKnobs, TunePolicy, TuneSnapshot};
pub use checkpoint::{
    run_fingerprint, Checkpoint, IndexShard, SpillShard, CHECKPOINT_SCHEMA_VERSION,
    SPILL_SCHEMA_VERSION,
};
pub use distcc::distributed_components;
pub use filter::EdgeFilter;
pub use index::{
    build_index, index_fingerprint, store_digest, IndexBuildConfig, IndexBuildReport,
    IndexManifest, PersistedIndex, INDEX_MANIFEST_SCHEMA_VERSION,
};
pub use kmer::kmer_matrix_triples;
pub use loadbalance::{BlockClass, BlockPlan, BlockTask, LoadBalance};
pub use mcl::{mcl, MclParams, MclResult};
pub use membudget::{BudgetExceeded, MemBudget};
pub use overlap::{CommonKmers, OverlapSemiring};
pub use params::SearchParams;
pub use perfmodel::{blocking_for_budget, simulate, simulate_traced, ScaleConfig, ScaleReport};
pub use pipeline::{run_search, run_search_traced, SearchResult};
pub use serve::{
    serve_queries, serve_queries_traced, AdmissionBatcher, BatcherConfig, ResultCache, ServeConfig,
    ServeHit, ServeOutcome, ServeStats,
};
pub use simgraph::{SimilarityEdge, SimilarityGraph};
pub use stats::SearchStats;
pub use straggler::{detect_stragglers, StragglerReport};
