//! Per-rank memory accounting for budgeted execution (`--mem-budget`).
//!
//! The paper sizes its blocked SUMMA so every process fits node memory
//! (Section VI-A chooses the blocking factor from a per-process estimate);
//! this module is the runtime half of that contract. A [`MemBudget`] tracks
//! the live bytes of the big allocations the pipeline makes — encoded
//! sequences, k-mer matrix stripes, staged broadcast buffers, completed
//! output blocks — against an optional hard budget, and reports the peak
//! (`mem.high_water`) so a run can *prove* it stayed under its budget.
//!
//! The accountant never frees anything itself. It answers one question —
//! "would this reservation exceed the budget?" — and the pipeline reacts in
//! a fixed escalation order (spill coldest completed output blocks, spill
//! inactive index stripes, pause broadcast prefetch, shrink align batches,
//! and only then give up with a typed error naming the oversized phase).
//! None of those reactions can change the output graph: spilled blocks come
//! back bit-exact (or are recomputed), and prefetch/batching are
//! wall-time-only knobs, so a budgeted run is bit-identical to an
//! unbudgeted one.
//!
//! Counters are relaxed atomics: reservations happen on the rank thread
//! and on scoped compute threads (the staged-broadcast hook), and the
//! high-water mark is a monotonic max, so exact interleavings only affect
//! which equal peak is recorded, never correctness.

use std::sync::atomic::{AtomicU64, Ordering};

/// What the pipeline was trying to hold when the budget could not be met
/// even after every downgrade. Carried in the error so the flight-recorder
/// dump can name the oversized phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The phase whose reservation failed (e.g. `"sequences"`,
    /// `"kmer_matrix"`, `"summa.stage"`, `"output_block"`).
    pub phase: String,
    /// Bytes the phase asked for.
    pub requested: u64,
    /// Live bytes at the time of the request.
    pub live: u64,
    /// The configured budget.
    pub budget: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exceeded in phase {:?}: requested {} bytes with {} live \
             against a budget of {} (phase alone does not fit; raise --mem-budget \
             or increase the blocking factors)",
            self.phase, self.requested, self.live, self.budget
        )
    }
}

/// A per-rank memory accountant. `budget: None` means unbudgeted — every
/// reservation succeeds and only the high-water mark is tracked.
#[derive(Debug, Default)]
pub struct MemBudget {
    budget: Option<u64>,
    live: AtomicU64,
    high_water: AtomicU64,
}

impl MemBudget {
    /// An accountant enforcing `budget` bytes (`None` = track only).
    pub fn new(budget: Option<u64>) -> MemBudget {
        MemBudget {
            budget,
            live: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Current live bytes.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Peak live bytes observed so far.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Whether `bytes` more would fit under the budget right now. Does not
    /// reserve — the pipeline uses this to decide *whether to downgrade*
    /// (spill, pause prefetch, shrink batches) before committing.
    pub fn would_fit(&self, bytes: u64) -> bool {
        match self.budget {
            None => true,
            Some(b) => self.live().saturating_add(bytes) <= b,
        }
    }

    /// Reserve `bytes` if they fit, advancing the high-water mark. Returns
    /// `false` (reserving nothing) when over budget.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        match self.budget {
            None => {
                self.reserve_unchecked(bytes);
                true
            }
            Some(budget) => {
                // CAS loop: concurrent reservations must not overshoot.
                let mut cur = self.live.load(Ordering::Relaxed);
                loop {
                    let next = match cur.checked_add(bytes) {
                        Some(n) if n <= budget => n,
                        _ => return false,
                    };
                    match self.live.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            self.raise_high_water(next);
                            return true;
                        }
                        Err(seen) => cur = seen,
                    }
                }
            }
        }
    }

    /// Reserve `bytes` unconditionally (used after the pipeline has already
    /// downgraded as far as it can and chooses to proceed — e.g. a single
    /// block's working set that simply is the minimum). Still tracked, so
    /// `high_water` stays honest even when a phase overshoots.
    pub fn reserve_unchecked(&self, bytes: u64) {
        let next = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.raise_high_water(next);
    }

    /// Reserve `bytes` for `phase`, or explain why that can never fit:
    /// the hard-failure path, taken only when `bytes` alone exceeds the
    /// whole budget (no amount of spilling can help).
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] naming the phase, when `bytes > budget`.
    pub fn reserve(&self, phase: &str, bytes: u64) -> Result<(), BudgetExceeded> {
        if let Some(budget) = self.budget {
            if bytes > budget {
                return Err(BudgetExceeded {
                    phase: phase.to_string(),
                    requested: bytes,
                    live: self.live(),
                    budget,
                });
            }
        }
        self.reserve_unchecked(bytes);
        Ok(())
    }

    /// Release `bytes` previously reserved.
    pub fn release(&self, bytes: u64) {
        let mut cur = self.live.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .live
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn raise_high_water(&self, candidate: u64) {
        self.high_water.fetch_max(candidate, Ordering::Relaxed);
    }
}

impl pastis_sparse::StageMemHook for MemBudget {
    fn on_stage_alloc(&self, bytes: u64) {
        // Staged broadcast buffers are short-lived and required for the
        // collective to proceed, so they reserve unconditionally — the
        // pipeline's *pre-block* pressure check (pause prefetch) is what
        // keeps their footprint down.
        self.reserve_unchecked(bytes);
    }

    fn on_stage_free(&self, bytes: u64) {
        self.release(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_sparse::StageMemHook;

    #[test]
    fn unbudgeted_tracks_high_water_only() {
        let m = MemBudget::new(None);
        assert!(m.try_reserve(1000));
        assert!(m.try_reserve(u64::MAX / 2));
        m.release(u64::MAX / 2);
        assert_eq!(m.live(), 1000);
        assert_eq!(m.high_water(), 1000 + u64::MAX / 2);
        assert!(m.would_fit(u64::MAX));
    }

    #[test]
    fn budget_is_a_hard_ceiling_for_try_reserve() {
        let m = MemBudget::new(Some(100));
        assert!(m.try_reserve(60));
        assert!(!m.try_reserve(50), "60+50 > 100 must be refused");
        assert_eq!(m.live(), 60, "failed reservation reserves nothing");
        assert!(m.try_reserve(40));
        assert_eq!(m.live(), 100);
        m.release(30);
        assert!(m.would_fit(30));
        assert!(!m.would_fit(31));
        assert_eq!(m.high_water(), 100);
    }

    #[test]
    fn hard_reserve_names_the_phase() {
        let m = MemBudget::new(Some(100));
        let err = m.reserve("kmer_matrix", 101).unwrap_err();
        assert_eq!(err.phase, "kmer_matrix");
        assert_eq!(err.budget, 100);
        assert!(err.to_string().contains("kmer_matrix"), "{err}");
        // Within budget it reserves even when live overshoots afterwards.
        assert!(m.reserve("sequences", 80).is_ok());
        assert!(m.reserve("sequences", 80).is_ok(), "unchecked overshoot");
        assert_eq!(m.live(), 160);
        assert_eq!(m.high_water(), 160);
    }

    #[test]
    fn release_saturates_at_zero() {
        let m = MemBudget::new(Some(10));
        m.release(5);
        assert_eq!(m.live(), 0);
    }

    #[test]
    fn stage_hook_reserves_and_releases() {
        let m = MemBudget::new(Some(10));
        m.on_stage_alloc(25);
        assert_eq!(m.live(), 25, "stage buffers reserve unconditionally");
        assert_eq!(m.high_water(), 25);
        m.on_stage_free(25);
        assert_eq!(m.live(), 0);
    }

    #[test]
    fn concurrent_reservations_never_overshoot() {
        let m = std::sync::Arc::new(MemBudget::new(Some(1000)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = std::sync::Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                for _ in 0..1000 {
                    if m.try_reserve(7) {
                        got += 7;
                    }
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, m.live());
        assert!(m.high_water() <= 1000, "budget held under contention");
    }
}
