//! The overlap semiring: candidate discovery as SpGEMM.
//!
//! Figure 2 of the paper: the candidate pair discovery is
//! `C = A ⊗ Aᵀ` where `A` is the sequences-by-k-mers matrix and the
//! "multiply-add" is overloaded — multiplying two k-mer positions yields a
//! seed, adding accumulates the shared-k-mer count and keeps the first two
//! seeds (enough to anchor a banded alignment, and what the original
//! PASTIS `CommonKmers` element stores).

use pastis_sparse::Semiring;

/// Sentinel for an empty seed slot.
const NO_SEED: (u32, u32) = (u32::MAX, u32::MAX);

/// Value of one overlap-matrix nonzero: how many k-mers two sequences
/// share, plus up to two seed position pairs `(pos_in_row_seq,
/// pos_in_col_seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonKmers {
    /// Number of distinct shared k-mers.
    pub count: u32,
    /// Up to two seed position pairs; unused slots hold `u32::MAX`.
    pub seeds: [(u32, u32); 2],
}

impl CommonKmers {
    /// A single shared k-mer at the given positions.
    pub fn seed(qpos: u32, rpos: u32) -> CommonKmers {
        CommonKmers {
            count: 1,
            seeds: [(qpos, rpos), NO_SEED],
        }
    }

    /// Number of stored seeds (0–2).
    pub fn n_seeds(&self) -> usize {
        self.seeds.iter().filter(|&&s| s != NO_SEED).count()
    }

    /// The first seed, if any.
    pub fn first_seed(&self) -> Option<(u32, u32)> {
        (self.seeds[0] != NO_SEED).then_some(self.seeds[0])
    }
}

/// The semiring of Figure 2: `multiply(posA, posB) → seed`,
/// `combine` = count sum + seed capture.
///
/// `A`-values are k-mer positions in the row sequence, `B`-values k-mer
/// positions in the column sequence (i.e. `B = Aᵀ`).
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlapSemiring;

impl Semiring for OverlapSemiring {
    type A = u32;
    type B = u32;
    type C = CommonKmers;

    #[inline]
    fn multiply(&self, a: &u32, b: &u32) -> CommonKmers {
        CommonKmers::seed(*a, *b)
    }

    #[inline]
    fn combine(&self, acc: &mut CommonKmers, incoming: CommonKmers) {
        // Associative: counts add; seed slots fill left to right from the
        // incoming value's seeds, preserving discovery (ascending k-mer id)
        // order.
        acc.count += incoming.count;
        for s in incoming.seeds {
            if s == NO_SEED {
                break;
            }
            if acc.seeds[0] == NO_SEED {
                acc.seeds[0] = s;
            } else if acc.seeds[1] == NO_SEED {
                acc.seeds[1] = s;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_sparse::{spgemm_hash, spgemm_heap, CsrMatrix, Triples};

    #[test]
    fn seed_constructor() {
        let c = CommonKmers::seed(3, 7);
        assert_eq!(c.count, 1);
        assert_eq!(c.n_seeds(), 1);
        assert_eq!(c.first_seed(), Some((3, 7)));
    }

    #[test]
    fn combine_counts_and_caps_seeds() {
        let sr = OverlapSemiring;
        let mut acc = CommonKmers::seed(1, 2);
        sr.combine(&mut acc, CommonKmers::seed(3, 4));
        sr.combine(&mut acc, CommonKmers::seed(5, 6));
        sr.combine(&mut acc, CommonKmers::seed(7, 8));
        assert_eq!(acc.count, 4);
        assert_eq!(acc.n_seeds(), 2);
        assert_eq!(acc.seeds, [(1, 2), (3, 4)]);
    }

    #[test]
    fn combine_is_associative_on_counts_and_first_seeds() {
        let sr = OverlapSemiring;
        let vals = [
            CommonKmers::seed(1, 1),
            CommonKmers::seed(2, 2),
            CommonKmers::seed(3, 3),
        ];
        // (a + b) + c
        let mut left = vals[0];
        sr.combine(&mut left, vals[1]);
        sr.combine(&mut left, vals[2]);
        // a + (b + c)
        let mut bc = vals[1];
        sr.combine(&mut bc, vals[2]);
        let mut right = vals[0];
        sr.combine(&mut right, bc);
        assert_eq!(left, right);
    }

    #[test]
    fn overlap_spgemm_counts_shared_kmers() {
        // 3 sequences × 5 k-mers; values are positions.
        // seq0: kmers {0@0, 2@3, 4@9}; seq1: {2@1, 4@2}; seq2: {1@5}.
        let a = CsrMatrix::from_triples(Triples::from_entries(
            3,
            5,
            vec![
                (0, 0, 0u32),
                (0, 2, 3),
                (0, 4, 9),
                (1, 2, 1),
                (1, 4, 2),
                (2, 1, 5),
            ],
        ));
        let at = a.transpose();
        let (c, _) = spgemm_hash(&OverlapSemiring, &a, &at);
        // seq0 vs seq1 share kmers 2 and 4.
        let c01 = c.get(0, 1).unwrap();
        assert_eq!(c01.count, 2);
        assert_eq!(c01.seeds, [(3, 1), (9, 2)]);
        // Symmetric counterpart has mirrored seed positions.
        let c10 = c.get(1, 0).unwrap();
        assert_eq!(c10.count, 2);
        assert_eq!(c10.seeds, [(1, 3), (2, 9)]);
        // Diagonal: self-overlap counts own k-mers.
        assert_eq!(c.get(0, 0).unwrap().count, 3);
        // seq2 shares nothing.
        assert!(c.get(0, 2).is_none());
        assert!(c.get(2, 1).is_none());
    }

    #[test]
    fn hash_and_heap_agree_on_overlap_semiring() {
        let a = CsrMatrix::from_triples(Triples::from_entries(
            4,
            6,
            vec![
                (0, 0, 0u32),
                (0, 3, 2),
                (1, 0, 4),
                (1, 3, 5),
                (1, 5, 1),
                (2, 5, 7),
                (3, 0, 0),
                (3, 5, 3),
            ],
        ));
        let at = a.transpose();
        let (ch, _) = spgemm_hash(&OverlapSemiring, &a, &at);
        let (cp, _) = spgemm_heap(&OverlapSemiring, &a, &at);
        assert_eq!(ch, cp);
    }
}
