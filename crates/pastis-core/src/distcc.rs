//! Distributed connected components of the similarity graph.
//!
//! The production-scale consumer of PASTIS's output clusters a
//! trillion-edge graph, so the clustering itself must be distributed. This
//! module implements label propagation with pointer jumping
//! (Shiloach–Vishkin style) over the [`pastis_comm::Communicator`]
//! substrate: each rank holds only its own edges (exactly what
//! [`crate::pipeline::run_search`] leaves behind) plus a label vector
//! combined by element-wise minimum all-reductions.
//!
//! Per round: every rank relaxes its local edges against its current label
//! copy, performs local pointer jumping, and the ranks all-reduce the
//! label vector with MIN; convergence is an all-reduced "changed" flag.
//! Rounds are `O(log n)` thanks to the pointer jumping.

use pastis_comm::{Communicator, ReduceOp};

use crate::simgraph::SimilarityGraph;

/// Compute connected-component labels for a graph whose edges are
/// distributed across the communicator's ranks (this rank passes its local
/// edge list via `graph`). Every rank receives the full, identical label
/// vector; labels are the minimum vertex id of each component, matching
/// [`SimilarityGraph::connected_components`] exactly (tested).
///
/// Collective over `comm`.
pub fn distributed_components<C: Communicator>(comm: &C, graph: &SimilarityGraph) -> Vec<u32> {
    let n_local = graph.n_vertices() as u64;
    // All ranks must agree on the vertex-set size.
    let n = comm.all_reduce(&[n_local], ReduceOp::Max)[0] as usize;
    assert!(
        graph.n_vertices() == n || graph.n_edges() == 0,
        "ranks disagree on the vertex-set size"
    );
    let mut labels: Vec<u64> = (0..n as u64).collect();
    loop {
        let before = labels.clone();
        // 1. Edge relaxation on the local edges.
        for e in graph.edges() {
            let (i, j) = (e.i as usize, e.j as usize);
            let m = labels[i].min(labels[j]);
            labels[i] = m;
            labels[j] = m;
        }
        // 2. Pointer jumping: label[v] <- label[label[v]] until stable
        //    locally (collapses chains created by relaxation order).
        loop {
            let mut hopped = false;
            for v in 0..n {
                let l = labels[v] as usize;
                if labels[l] < labels[v] {
                    labels[v] = labels[l];
                    hopped = true;
                }
            }
            if !hopped {
                break;
            }
        }
        // 3. Combine across ranks and test convergence.
        labels = comm.all_reduce(&labels, ReduceOp::Min);
        let changed = labels != before;
        let any_changed = comm.all_reduce(&[u64::from(changed)], ReduceOp::Max)[0] == 1;
        if !any_changed {
            break;
        }
    }
    labels.into_iter().map(|l| l as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simgraph::SimilarityEdge;
    use pastis_comm::{run_threaded, SelfComm};

    fn edge(i: u32, j: u32) -> SimilarityEdge {
        SimilarityEdge {
            i,
            j,
            score: 10,
            ani: 0.9,
            coverage: 0.9,
            common_kmers: 2,
        }
    }

    fn chain_and_triangle(n: usize) -> Vec<SimilarityEdge> {
        // A long chain 0-1-2-…-9 plus a triangle {12,13,14}.
        let mut edges: Vec<SimilarityEdge> = (0..9).map(|i| edge(i, i + 1)).collect();
        edges.extend([edge(12, 13), edge(13, 14), edge(12, 14)]);
        assert!(n >= 15);
        edges
    }

    #[test]
    fn single_rank_matches_union_find() {
        let n = 16;
        let mut g = SimilarityGraph::new(n);
        for e in chain_and_triangle(n) {
            g.add(e);
        }
        let want = g.connected_components();
        let got = distributed_components(&SelfComm::new(), &g);
        assert_eq!(got, want);
    }

    #[test]
    fn distributed_edges_match_serial() {
        let n = 16;
        let all_edges = chain_and_triangle(n);
        let mut serial = SimilarityGraph::new(n);
        for e in &all_edges {
            serial.add(*e);
        }
        let want = serial.connected_components();
        for p in [2usize, 4, 5] {
            let all_edges = all_edges.clone();
            let want2 = want.clone();
            let out = run_threaded(p, move |c| {
                // Deal edges round-robin: each rank sees a fragment only.
                let mut local = SimilarityGraph::new(n);
                for (idx, e) in all_edges.iter().enumerate() {
                    if idx % c.size() == c.rank() {
                        local.add(*e);
                    }
                }
                distributed_components(c, &local)
            });
            for labels in out {
                assert_eq!(labels, want2, "p={p}");
            }
        }
    }

    #[test]
    fn empty_graph_labels_are_identity() {
        let g = SimilarityGraph::new(5);
        let got = distributed_components(&SelfComm::new(), &g);
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn some_ranks_with_no_edges() {
        let n = 8;
        let out = run_threaded(3, move |c| {
            let mut local = SimilarityGraph::new(n);
            if c.rank() == 1 {
                local.add(edge(0, 7));
                local.add(edge(3, 4));
            }
            distributed_components(c, &local)
        });
        for labels in out {
            assert_eq!(labels[7], 0);
            assert_eq!(labels[4], 3);
            assert_eq!(labels[2], 2);
        }
    }

    #[test]
    fn adversarial_chain_converges_quickly() {
        // A reversed chain split across ranks exercises pointer jumping:
        // without it, label 0 crawls one hop per round.
        let n = 64;
        let out = run_threaded(4, move |c| {
            let mut local = SimilarityGraph::new(n);
            for i in (0..63u32).rev() {
                if (i as usize) % c.size() == c.rank() {
                    local.add(edge(i, i + 1));
                }
            }
            distributed_components(c, &local)
        });
        for labels in out {
            assert!(labels.iter().all(|&l| l == 0), "one big component");
        }
    }

    #[test]
    fn end_to_end_with_search_results() {
        use crate::pipeline::run_search;
        use crate::SearchParams;
        use pastis_comm::ProcessGrid;
        use pastis_seqio::{SyntheticConfig, SyntheticDataset};

        let ds = SyntheticDataset::generate(&SyntheticConfig {
            n_sequences: 40,
            mean_len: 60.0,
            seed: 21,
            ..SyntheticConfig::small(40, 21)
        });
        let serial =
            crate::pipeline::run_search_serial(&ds.store, &SearchParams::test_defaults()).unwrap();
        let want = serial.graph.connected_components();
        let store = ds.store.clone();
        let out = run_threaded(4, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            let res = run_search(&grid, &store, &SearchParams::test_defaults()).unwrap();
            // Cluster directly from each rank's local edges — no gather.
            distributed_components(grid.world(), &res.graph)
        });
        for labels in out {
            assert_eq!(labels, want);
        }
    }
}
